// Tests for the discrete-event simulator, topology, network and RPC layers.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/backend.h"
#include "src/sim/event_queue.h"
#include "src/sim/rpc.h"

namespace globe::sim {
namespace {

// ---------------------------------------------------------------- Simulator

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&] { order.push_back(3); });
  simulator.ScheduleAt(10, [&] { order.push_back(1); });
  simulator.ScheduleAt(20, [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), 30u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.ScheduleAt(5, [&, i] { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, EventsMayScheduleEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(10, [&] {
    simulator.ScheduleAfter(5, [&] { fired = 1; });
  });
  simulator.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.Now(), 15u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int count = 0;
  simulator.ScheduleAt(10, [&] { ++count; });
  simulator.ScheduleAt(100, [&] { ++count; });
  simulator.RunUntil(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(simulator.Now(), 50u);
  simulator.Run();
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Step());
}

TEST(SimulatorTest, CancelledEventNeitherRunsNorAdvancesClock) {
  Simulator simulator;
  int ran = 0;
  simulator.ScheduleAt(10, [&] { ++ran; });
  Simulator::EventId cancelled = simulator.ScheduleAt(30 * kSecond, [&] { ran += 100; });
  EXPECT_EQ(simulator.pending_events(), 2u);
  EXPECT_TRUE(simulator.Cancel(cancelled));
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.Run();
  EXPECT_EQ(ran, 1);
  // The cancelled event's time must not leak into the clock.
  EXPECT_EQ(simulator.Now(), 10u);
  // Double-cancel and cancelling an executed event both report failure.
  EXPECT_FALSE(simulator.Cancel(cancelled));
  EXPECT_FALSE(simulator.Cancel(Simulator::kNoEvent));
}

TEST(SimulatorTest, CancelInsideRunUntilSkipsCleanly) {
  Simulator simulator;
  std::vector<int> order;
  Simulator::EventId second = simulator.ScheduleAt(20, [&] { order.push_back(2); });
  simulator.ScheduleAt(10, [&] {
    order.push_back(1);
    simulator.Cancel(second);
  });
  simulator.ScheduleAt(40, [&] { order.push_back(3); });
  simulator.RunUntil(25);
  // Only event 1 ran before the deadline; the cancelled one was skipped without
  // dragging the clock to t=20's successor.
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(simulator.Now(), 25u);
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

// ---------------------------------------------------------------- EventHeap

TEST(EventHeapTest, CancelHeavyWorkloadDrainsOnlyLiveEventsInOrder) {
  // The shape of a week-long run's deadline timers: most scheduled events are
  // cancelled before they fire. Compaction is internal; what must hold is that
  // pending() tracks live events only, cancelled events never surface, and the
  // survivors drain in (time, id) order.
  EventHeap heap;
  constexpr uint64_t kEvents = 1000;
  for (uint64_t id = 0; id < kEvents; ++id) {
    heap.Push(/*t=*/kEvents - id, id, [] {});
  }
  for (uint64_t id = 0; id < kEvents; ++id) {
    if (id % 10 != 3) {
      EXPECT_TRUE(heap.Cancel(id));
    }
  }
  EXPECT_EQ(heap.pending(), kEvents / 10);
  SimTime last = 0;
  size_t drained = 0;
  while (const TimedEvent* top = heap.Peek()) {
    EXPECT_GT(top->time, last);
    last = top->time;
    TimedEvent event = heap.PopTop();
    EXPECT_EQ(event.id % 10, 3u);
    ++drained;
  }
  EXPECT_EQ(drained, kEvents / 10);
  EXPECT_EQ(heap.pending(), 0u);
}

TEST(EventHeapTest, CancelReportsWhetherEventWasStillPending) {
  EventHeap heap;
  heap.Push(5, 1, [] {});
  heap.Push(6, 2, [] {});
  EXPECT_TRUE(heap.IsPending(1));
  EXPECT_TRUE(heap.Cancel(1));
  EXPECT_FALSE(heap.Cancel(1));   // already cancelled
  EXPECT_FALSE(heap.Cancel(99));  // never existed
  EXPECT_FALSE(heap.IsPending(1));
  (void)heap.Peek();
  TimedEvent ran = heap.PopTop();
  EXPECT_EQ(ran.id, 2u);
  EXPECT_FALSE(heap.Cancel(2));  // already ran
}

TEST(EventHeapTest, TakeAllReturnsLiveEventsAndResetsHeap) {
  EventHeap heap;
  for (uint64_t id = 0; id < 20; ++id) {
    heap.Push(100 + id, id, [] {});
  }
  for (uint64_t id = 0; id < 20; id += 2) {
    heap.Cancel(id);
  }
  std::vector<TimedEvent> live = heap.TakeAll();
  EXPECT_EQ(live.size(), 10u);
  for (const TimedEvent& event : live) {
    EXPECT_EQ(event.id % 2, 1u);
  }
  EXPECT_EQ(heap.pending(), 0u);
  EXPECT_EQ(heap.Peek(), nullptr);
}

// ---------------------------------------------------------------- Topology

class WorldTest : public ::testing::Test {
 protected:
  // 2 continents x 2 countries x 2 sites, 2 hosts per site = 16 hosts.
  WorldTest() : world_(BuildUniformWorld({2, 2, 2}, 2)) {}
  UniformWorld world_;
};

TEST_F(WorldTest, Counts) {
  EXPECT_EQ(world_.leaf_domains.size(), 8u);
  EXPECT_EQ(world_.hosts.size(), 16u);
  // 1 root + 2 + 4 + 8 = 15 domains.
  EXPECT_EQ(world_.topology.num_domains(), 15u);
}

TEST_F(WorldTest, AscentLevels) {
  const Topology& t = world_.topology;
  // Hosts 0 and 1 share a leaf site.
  EXPECT_EQ(t.AscentLevel(world_.hosts[0], world_.hosts[1]), 0);
  // Hosts 0 and 2 share a country but not a site.
  EXPECT_EQ(t.AscentLevel(world_.hosts[0], world_.hosts[2]), 1);
  // Hosts 0 and 4 share a continent but not a country.
  EXPECT_EQ(t.AscentLevel(world_.hosts[0], world_.hosts[4]), 2);
  // Hosts 0 and 8 are on different continents.
  EXPECT_EQ(t.AscentLevel(world_.hosts[0], world_.hosts[8]), 3);
}

TEST_F(WorldTest, LatencyMonotoneInDistance) {
  LinkProfile profile;
  const Topology& t = world_.topology;
  double same_site = t.LatencyUs(world_.hosts[0], world_.hosts[1], profile);
  double same_country = t.LatencyUs(world_.hosts[0], world_.hosts[2], profile);
  double same_continent = t.LatencyUs(world_.hosts[0], world_.hosts[4], profile);
  double world_apart = t.LatencyUs(world_.hosts[0], world_.hosts[8], profile);
  EXPECT_LT(same_site, same_country);
  EXPECT_LT(same_country, same_continent);
  EXPECT_LT(same_continent, world_apart);
}

TEST_F(WorldTest, LoopbackCheapest) {
  LinkProfile profile;
  const Topology& t = world_.topology;
  EXPECT_LT(t.LatencyUs(world_.hosts[0], world_.hosts[0], profile),
            t.LatencyUs(world_.hosts[0], world_.hosts[1], profile));
}

TEST_F(WorldTest, LatencyIsSymmetric) {
  LinkProfile profile;
  const Topology& t = world_.topology;
  for (NodeId a : {0u, 3u, 9u}) {
    for (NodeId b : {1u, 7u, 15u}) {
      EXPECT_EQ(t.LatencyUs(a, b, profile), t.LatencyUs(b, a, profile));
    }
  }
}

TEST_F(WorldTest, TransmitScalesWithSizeAndDistance) {
  LinkProfile profile;
  const Topology& t = world_.topology;
  double lan_1k = t.TransmitUs(world_.hosts[0], world_.hosts[1], 1000, profile);
  double lan_2k = t.TransmitUs(world_.hosts[0], world_.hosts[1], 2000, profile);
  double wan_1k = t.TransmitUs(world_.hosts[0], world_.hosts[8], 1000, profile);
  EXPECT_NEAR(lan_2k, 2 * lan_1k, 1e-9);
  EXPECT_GT(wan_1k, lan_1k);
}

TEST_F(WorldTest, LcaAndAncestors) {
  const Topology& t = world_.topology;
  DomainId leaf0 = world_.leaf_domains[0];
  DomainId leaf7 = world_.leaf_domains[7];
  EXPECT_EQ(t.Lca(leaf0, leaf7), world_.root);
  EXPECT_EQ(t.Lca(leaf0, leaf0), leaf0);
  EXPECT_TRUE(t.IsAncestorOrSelf(world_.root, leaf0));
  EXPECT_TRUE(t.IsAncestorOrSelf(leaf0, leaf0));
  EXPECT_FALSE(t.IsAncestorOrSelf(leaf0, world_.root));
}

TEST_F(WorldTest, NodesUnder) {
  const Topology& t = world_.topology;
  EXPECT_EQ(t.NodesUnder(world_.root).size(), 16u);
  EXPECT_EQ(t.NodesUnder(world_.leaf_domains[0]).size(), 2u);
}

TEST(TopologyTest, DomainDepths) {
  Topology t;
  DomainId root = t.AddDomain("root", kNoDomain);
  DomainId mid = t.AddDomain("mid", root);
  DomainId leaf = t.AddDomain("leaf", mid);
  EXPECT_EQ(t.DomainDepth(root), 0);
  EXPECT_EQ(t.DomainDepth(mid), 1);
  EXPECT_EQ(t.DomainDepth(leaf), 2);
  EXPECT_EQ(t.DomainChildren(root).size(), 1u);
}

TEST(TopologyTest, LinkProfileClampsBeyondTable) {
  LinkProfile profile;
  profile.latency_us = {100, 200};
  EXPECT_EQ(profile.LatencyAt(0), 100);
  EXPECT_EQ(profile.LatencyAt(1), 200);
  EXPECT_EQ(profile.LatencyAt(7), 200);
}

// ---------------------------------------------------------------- Network

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : world_(BuildUniformWorld({2, 2}, 2)),
        network_(&simulator_, &world_.topology) {}

  Simulator simulator_;
  UniformWorld world_;
  Network network_;
};

TEST_F(NetworkTest, DeliversToRegisteredPort) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  Bytes received;
  network_.RegisterPort(b, 100, [&](const Delivery& d) { received = d.payload.Copy(); });
  network_.Send({a, 50}, {b, 100}, ToBytes("ping"));
  simulator_.Run();
  EXPECT_EQ(globe::ToString(received), "ping");
}

TEST_F(NetworkTest, ChargesLatencyByDistance) {
  NodeId a = world_.hosts[0];
  NodeId near = world_.hosts[1];   // same site
  NodeId far = world_.hosts.back();  // other continent

  SimTime near_time = 0, far_time = 0;
  network_.RegisterPort(near, 1, [&](const Delivery&) { near_time = simulator_.Now(); });
  network_.RegisterPort(far, 1, [&](const Delivery&) { far_time = simulator_.Now(); });
  network_.Send({a, 2}, {near, 1}, Bytes(100));
  network_.Send({a, 2}, {far, 1}, Bytes(100));
  simulator_.Run();
  EXPECT_GT(far_time, near_time);
}

TEST_F(NetworkTest, UnregisteredPortDropsSilently) {
  network_.Send({world_.hosts[0], 1}, {world_.hosts[1], 99}, Bytes(10));
  simulator_.Run();  // must not crash
  EXPECT_EQ(network_.stats().TotalMessages(), 1u);  // sent counts even if undelivered
}

TEST_F(NetworkTest, TrafficAccountingByLevel) {
  NodeId a = world_.hosts[0];
  NodeId same_site = world_.hosts[1];
  NodeId far = world_.hosts.back();
  network_.RegisterPort(same_site, 1, [](const Delivery&) {});
  network_.RegisterPort(far, 1, [](const Delivery&) {});

  network_.Send({a, 2}, {same_site, 1}, Bytes(100));
  network_.Send({a, 2}, {far, 1}, Bytes(200));
  simulator_.Run();

  const TrafficStats& stats = network_.stats();
  ASSERT_GE(stats.per_level.size(), 3u);
  EXPECT_EQ(stats.per_level[0].bytes, 100u);
  EXPECT_EQ(stats.per_level[2].bytes, 200u);
  EXPECT_EQ(stats.TotalBytes(), 300u);
  EXPECT_EQ(stats.BytesAtOrAbove(1), 200u);
}

TEST_F(NetworkTest, LoopbackAccountedSeparately) {
  NodeId a = world_.hosts[0];
  network_.RegisterPort(a, 1, [](const Delivery&) {});
  network_.Send({a, 2}, {a, 1}, Bytes(64));
  simulator_.Run();
  EXPECT_EQ(network_.stats().loopback_bytes, 64u);
  EXPECT_EQ(network_.stats().BytesAtOrAbove(0), 0u);
}

TEST_F(NetworkTest, DownNodeDropsMessages) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  int delivered = 0;
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++delivered; });
  network_.SetNodeUp(b, false);
  network_.Send({a, 2}, {b, 1}, Bytes(10));
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network_.stats().down_node_messages, 1u);

  network_.SetNodeUp(b, true);
  network_.Send({a, 2}, {b, 1}, Bytes(10));
  simulator_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, NodeGoingDownInFlightDropsDelivery) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts.back();
  int delivered = 0;
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++delivered; });
  network_.Send({a, 2}, {b, 1}, Bytes(10));
  // Take b down before the (wide-area, slow) message arrives.
  simulator_.ScheduleAt(1, [&] { network_.SetNodeUp(b, false); });
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkDropTest, DropProbabilityLosesRoughlyThatFraction) {
  Simulator simulator;
  UniformWorld world = BuildUniformWorld({2}, 2);
  NetworkOptions options;
  options.drop_probability = 0.3;
  Network network(&simulator, &world.topology, options);

  int delivered = 0;
  network.RegisterPort(world.hosts[1], 1, [&](const Delivery&) { ++delivered; });
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    network.Send({world.hosts[0], 2}, {world.hosts[1], 1}, Bytes(8));
  }
  simulator.Run();
  EXPECT_NEAR(delivered, kN * 0.7, kN * 0.06);
  EXPECT_EQ(network.stats().dropped_messages + delivered, static_cast<uint64_t>(kN));
}

TEST_F(NetworkTest, EavesdropperSeesPayload) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  std::string sniffed;
  network_.SetEavesdropper([&](const Endpoint&, const Endpoint&, ByteSpan payload) {
    sniffed = globe::ToString(payload);
  });
  network_.RegisterPort(b, 1, [](const Delivery&) {});
  network_.Send({a, 2}, {b, 1}, ToBytes("secret-package"));
  simulator_.Run();
  EXPECT_EQ(sniffed, "secret-package");
}

TEST_F(NetworkTest, PerNodeReceivedCounts) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  network_.RegisterPort(b, 1, [](const Delivery&) {});
  for (int i = 0; i < 5; ++i) {
    network_.Send({a, 2}, {b, 1}, Bytes(8));
  }
  simulator_.Run();
  EXPECT_EQ(network_.per_node_received().at(b), 5u);
}

// ---------------------------------------------------------------- RPC

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : world_(BuildUniformWorld({2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        transport_(&network_) {}

  Simulator simulator_;
  UniformWorld world_;
  Network network_;
  PlainTransport transport_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  NodeId server_node = world_.hosts[0];
  NodeId client_node = world_.hosts[5];
  RpcServer server(&transport_, server_node, 700);
  server.RegisterMethod("echo", [](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });

  Channel client(&transport_, client_node);
  Bytes reply;
  client.Call(server.endpoint(), "echo", ToBytes("hello globe"),
              [&](Result<PayloadView> result) {
                ASSERT_TRUE(result.ok());
                reply = result->Copy();
              });
  simulator_.Run();
  EXPECT_EQ(globe::ToString(reply), "hello globe");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST_F(RpcTest, DrainedCallAdvancesClockByRoundTripNotDeadline) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterMethod("echo", [](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });

  Channel client(&transport_, world_.hosts[5]);
  bool answered = false;
  client.Call(server.endpoint(), "echo", ToBytes("x"),
              [&](Result<PayloadView> result) { answered = result.ok(); });
  simulator_.Run();
  ASSERT_TRUE(answered);
  // The 30 s deadline event was erased when the response landed: draining the
  // queue costs the path's round-trip time, far under a second — not ~30 s.
  EXPECT_LT(simulator_.Now(), kSecond);
  EXPECT_EQ(simulator_.pending_events(), 0u);
}

TEST_F(RpcTest, ErrorStatusPropagates) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterMethod("fail", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return PermissionDenied("not a moderator");
  });

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  client.Call(server.endpoint(), "fail", {}, [&](Result<PayloadView> result) {
    ASSERT_FALSE(result.ok());
    got = result.status();
  });
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(got.message(), "not a moderator");
}

TEST_F(RpcTest, UnknownMethodReturnsNotFound) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  Channel client(&transport_, world_.hosts[1]);
  Status got;
  client.Call(server.endpoint(), "nope", {}, [&](Result<PayloadView> result) {
    got = result.status();
  });
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, DeadlineWhenServerDown) {
  NodeId server_node = world_.hosts[0];
  RpcServer server(&transport_, server_node, 700);
  server.RegisterMethod("echo", [](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  network_.SetNodeUp(server_node, false);

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  CallOptions options;
  options.deadline = 5 * kSecond;
  client.Call(server.endpoint(), "echo", {},
              [&](Result<PayloadView> result) { got = result.status(); }, options);
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
  // The deadline fired exactly when it should.
  EXPECT_EQ(simulator_.Now(), 5 * kSecond);
  EXPECT_EQ(client.stats().deadline_exceeded, 1u);
  EXPECT_EQ(client.PeerLoad(server.endpoint()).failed, 1u);
}

TEST_F(RpcTest, CancelledCallNeverRunsItsCallbackNorLeaksPendingState) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterMethod("echo", [](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });

  Channel client(&transport_, world_.hosts[5]);
  int callback_runs = 0;
  CallHandle handle = client.Call(server.endpoint(), "echo", ToBytes("x"),
                                  [&](Result<PayloadView>) { ++callback_runs; });
  EXPECT_TRUE(handle.active());
  handle.Cancel();
  EXPECT_FALSE(handle.active());
  // Cancel is idempotent.
  handle.Cancel();

  simulator_.Run();
  // The server still answered (the request was already on the wire), but the
  // callback never fired and no pending entry or deadline event leaked.
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(callback_runs, 0);
  EXPECT_EQ(client.PeerLoad(server.endpoint()).outstanding, 0u);
  EXPECT_EQ(client.stats().cancelled, 1u);
  EXPECT_EQ(simulator_.pending_events(), 0u);
  EXPECT_LT(simulator_.Now(), kSecond);  // the deadline event was erased too
}

TEST_F(RpcTest, RetryPolicyExhaustionSurfacesLastError) {
  NodeId server_node = world_.hosts[0];
  RpcServer server(&transport_, server_node, 700);
  network_.SetNodeUp(server_node, false);

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  CallOptions options;
  options.deadline = 2 * kSecond;
  options.retry.attempts = 3;
  options.retry.backoff = 500 * kMillisecond;
  options.retry.backoff_multiplier = 2.0;
  client.Call(server.endpoint(), "echo", {},
              [&](Result<PayloadView> result) { got = result.status(); }, options);
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().deadline_exceeded, 3u);
  // 3 deadlines of 2 s plus backoffs of 0.5 s and 1 s.
  EXPECT_EQ(simulator_.Now(), 3 * 2 * kSecond + 1500 * kMillisecond);
}

TEST_F(RpcTest, RetryPolicyRecoversFromTransientFailures) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  int attempts_seen = 0;
  server.RegisterMethod("flaky", [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
    if (++attempts_seen < 3) {
      return Unavailable("try again");
    }
    return ToBytes("finally");
  });

  Channel client(&transport_, world_.hosts[1]);
  Bytes reply;
  CallOptions options;
  options.retry.attempts = 3;
  options.retry.backoff = 100 * kMillisecond;
  client.Call(server.endpoint(), "flaky", {},
              [&](Result<PayloadView> result) {
                ASSERT_TRUE(result.ok());
                reply = result->Copy();
              },
              options);
  simulator_.Run();
  EXPECT_EQ(globe::ToString(reply), "finally");
  EXPECT_EQ(attempts_seen, 3);
  EXPECT_EQ(client.stats().retries, 2u);
}

TEST_F(RpcTest, StaleErrorResponseDoesNotConsumeRetryBudget) {
  // The server is so slow (3 s service time) that every attempt's 2 s deadline
  // fires before its (error) response arrives. The stale response must not be
  // double-counted as a second failure of the already-charged attempt: both
  // configured attempts go out on the wire before the call fails.
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.set_service_time(3 * kSecond);
  server.RegisterMethod("slow-fail", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return Unavailable("busy");
  });

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  SimTime failed_at = 0;
  CallOptions options;
  options.deadline = 2 * kSecond;
  options.retry.attempts = 2;
  options.retry.backoff = 2 * kSecond;
  client.Call(server.endpoint(), "slow-fail", {},
              [&](Result<PayloadView> result) {
                got = result.status();
                failed_at = simulator_.Now();
              },
              options);
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.requests_served(), 2u);  // both attempts physically sent
  EXPECT_EQ(client.stats().retries, 1u);
  // Attempt 1's deadline (2 s) + backoff (2 s) + attempt 2's deadline (2 s).
  EXPECT_EQ(failed_at, 6 * kSecond);
}

TEST_F(RpcTest, StaleErrorAfterRetryWasSentIsIgnored) {
  // Short backoff: the retry is already on the wire when attempt 1's error
  // response finally arrives. The stale error must neither fail the call (the
  // live retry is still pending) nor burn another budget slot.
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.set_service_time(3 * kSecond);
  server.RegisterMethod("slow-fail", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return Unavailable("busy");
  });

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  SimTime failed_at = 0;
  CallOptions options;
  options.deadline = 2 * kSecond;
  options.retry.attempts = 2;
  options.retry.backoff = 200 * kMillisecond;  // resend at ~2.2 s, stale error ~3 s
  client.Call(server.endpoint(), "slow-fail", {},
              [&](Result<PayloadView> result) {
                got = result.status();
                failed_at = simulator_.Now();
              },
              options);
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(client.stats().retries, 1u);
  // The call fails when attempt 2's own deadline expires (2 s + 0.2 s + 2 s),
  // not when attempt 1's stale error trickles in at ~3 s.
  EXPECT_EQ(failed_at, 4200 * kMillisecond);
}

TEST_F(RpcTest, StaleOkAfterRetryWasSentCompletesTheCall) {
  // The server is slow but succeeds: attempt 1's OK response lands after the
  // retry went out, and must complete the call (superseding the retry, whose
  // eventual response is dropped).
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.set_service_time(3 * kSecond);
  server.RegisterMethod("slow-ok", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return ToBytes("done");
  });

  Channel client(&transport_, world_.hosts[1]);
  Bytes reply;
  int callback_runs = 0;
  CallOptions options;
  options.deadline = 2 * kSecond;
  options.retry.attempts = 2;
  options.retry.backoff = 200 * kMillisecond;
  client.Call(server.endpoint(), "slow-ok", {},
              [&](Result<PayloadView> result) {
                ++callback_runs;
                ASSERT_TRUE(result.ok());
                reply = result->Copy();
              },
              options);
  simulator_.Run();
  EXPECT_EQ(globe::ToString(reply), "done");
  EXPECT_EQ(callback_runs, 1);
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(client.PeerLoad(server.endpoint()).outstanding, 0u);
  EXPECT_EQ(simulator_.pending_events(), 0u);
}

TEST_F(RpcTest, RetryBackoffAdvancesVirtualTimeGeometrically) {
  // Each backoff is backoff * multiplier^k for the k-th retry: with the server
  // unreachable, the whole call costs exactly
  //   attempts * deadline + backoff * (1 + m + m^2).
  NodeId server_node = world_.hosts[0];
  RpcServer server(&transport_, server_node, 700);
  network_.SetNodeUp(server_node, false);

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  CallOptions options;
  options.deadline = 1 * kSecond;
  options.retry.attempts = 4;
  options.retry.backoff = 100 * kMillisecond;
  options.retry.backoff_multiplier = 3.0;
  EXPECT_EQ(options.retry.BackoffFor(1), 100 * kMillisecond);
  EXPECT_EQ(options.retry.BackoffFor(2), 300 * kMillisecond);
  EXPECT_EQ(options.retry.BackoffFor(3), 900 * kMillisecond);
  client.Call(server.endpoint(), "echo", {},
              [&](Result<PayloadView> result) { got = result.status(); }, options);
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
  EXPECT_EQ(simulator_.Now(), 4 * kSecond + (100 + 300 + 900) * kMillisecond);
}

TEST_F(RpcTest, RetryExhaustionSurfacesTheLastError) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  int attempt = 0;
  server.RegisterMethod("flaky", [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return Unavailable("err-" + std::to_string(++attempt));
  });

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  CallOptions options;
  options.retry.attempts = 3;
  options.retry.backoff = 100 * kMillisecond;
  client.Call(server.endpoint(), "flaky", {},
              [&](Result<PayloadView> result) { got = result.status(); }, options);
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
  EXPECT_EQ(got.message(), "err-3");  // the last attempt's error, not the first
}

TEST_F(RpcTest, CancelDuringBackoffStopsTheRetryChain) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterMethod("flaky", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return Unavailable("try again");
  });

  Channel client(&transport_, world_.hosts[1]);
  int callback_runs = 0;
  CallOptions options;
  options.retry.attempts = 5;
  options.retry.backoff = 10 * kSecond;
  CallHandle handle = client.Call(server.endpoint(), "flaky", {},
                                  [&](Result<PayloadView>) { ++callback_runs; }, options);
  // Let attempt 1 fail and the first backoff get scheduled, then cancel.
  simulator_.RunUntil(kSecond);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(client.stats().retries, 1u);  // scheduled, not yet sent
  EXPECT_TRUE(handle.active());
  handle.Cancel();

  simulator_.Run();
  // The pending retry never went out and nothing leaked.
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(callback_runs, 0);
  EXPECT_EQ(client.stats().cancelled, 1u);
  EXPECT_EQ(simulator_.pending_events(), 0u);
}

TEST_F(RpcTest, ApplicationErrorsAreNotRetried) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  int calls = 0;
  server.RegisterMethod("denied", [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
    ++calls;
    return PermissionDenied("no");
  });

  Channel client(&transport_, world_.hosts[1]);
  Status got;
  CallOptions options;
  options.retry.attempts = 5;
  client.Call(server.endpoint(), "denied", {},
              [&](Result<PayloadView> result) { got = result.status(); }, options);
  simulator_.Run();
  EXPECT_EQ(got.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST_F(RpcTest, PeerLoadTracksOutstandingDepthAndLatency) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterMethod("echo", [](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });

  Channel client(&transport_, world_.hosts[5]);
  for (int i = 0; i < 4; ++i) {
    client.Call(server.endpoint(), "echo", {}, [](Result<PayloadView>) {});
  }
  EXPECT_EQ(client.PeerLoad(server.endpoint()).outstanding, 4u);
  simulator_.Run();
  PeerLoad load = client.PeerLoad(server.endpoint());
  EXPECT_EQ(load.outstanding, 0u);
  EXPECT_EQ(load.completed, 4u);
  EXPECT_GT(load.ewma_latency_us, 0.0);
  // A peer never called reports zeroes, and LessLoaded prefers it.
  PeerLoad idle = client.PeerLoad({world_.hosts[7], 700});
  EXPECT_EQ(idle.completed, 0u);
  EXPECT_TRUE(LessLoaded(idle, load));
}

TEST_F(RpcTest, ServiceTimeQueuesRequestsFifo) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.set_service_time(10 * kMillisecond);
  server.RegisterMethod("work", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return Bytes{};
  });

  Channel client(&transport_, world_.hosts[1]);
  std::vector<SimTime> completions;
  for (int i = 0; i < 5; ++i) {
    client.Call(server.endpoint(), "work", {},
                [&](Result<PayloadView> result) {
                  ASSERT_TRUE(result.ok());
                  completions.push_back(simulator_.Now());
                });
  }
  simulator_.Run();
  ASSERT_EQ(completions.size(), 5u);
  // One virtual CPU: the five near-simultaneous requests drained serially, so the
  // last completion paid the whole 50 ms queue.
  EXPECT_GE(completions.back(), 5 * 10 * kMillisecond);
  for (size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i], completions[i - 1] + 10 * kMillisecond);
  }
}

TEST_F(RpcTest, WorkerPoolWidthDrainsTheQueueConcurrently) {
  // Same FIFO queue, two virtual CPUs: four near-simultaneous requests drain
  // pairwise — two complete after one service time, two after two — instead of
  // the single-CPU four-deep serial queue.
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.set_service_time(10 * kMillisecond);
  server.set_worker_pool_width(2);
  EXPECT_EQ(server.worker_pool_width(), 2u);
  server.RegisterMethod("work", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return Bytes{};
  });

  Channel client(&transport_, world_.hosts[1]);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    client.Call(server.endpoint(), "work", {},
                [&](Result<PayloadView> result) {
                  ASSERT_TRUE(result.ok());
                  completions.push_back(simulator_.Now());
                });
  }
  simulator_.Run();
  ASSERT_EQ(completions.size(), 4u);
  // Pairwise batches: requests 0/1 finish together, 2/3 one service time later.
  EXPECT_EQ(completions[0], completions[1]);
  EXPECT_EQ(completions[2], completions[3]);
  EXPECT_EQ(completions[2] - completions[0], 10 * kMillisecond);
  // The whole burst cost two service times of queueing, not four.
  EXPECT_LT(completions.back() - completions.front(), 4 * 10 * kMillisecond);
}

TEST_F(RpcTest, AsyncHandlerCanRespondLater) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterAsyncMethod(
      "slow", [&](const RpcContext&, ByteSpan, RpcServer::Responder respond) {
        simulator_.ScheduleAfter(kSecond, [respond = std::move(respond)] {
          respond(ToBytes("done"));
        });
      });

  Channel client(&transport_, world_.hosts[1]);
  Bytes reply;
  client.Call(server.endpoint(), "slow", {}, [&](Result<PayloadView> result) {
    ASSERT_TRUE(result.ok());
    reply = result->Copy();
  });
  simulator_.Run();
  EXPECT_EQ(globe::ToString(reply), "done");
  EXPECT_GT(simulator_.Now(), kSecond);
}

TEST_F(RpcTest, NestedRpcThroughAsyncHandler) {
  // front server forwards to back server — the GLS lookup pattern.
  RpcServer back(&transport_, world_.hosts[2], 701);
  back.RegisterMethod("get", [](const RpcContext&, ByteSpan) -> Result<Bytes> {
    return ToBytes("from-back");
  });

  RpcServer front(&transport_, world_.hosts[0], 700);
  auto front_client = std::make_shared<Channel>(&transport_, world_.hosts[0]);
  front.RegisterAsyncMethod(
      "forward",
      [&, front_client](const RpcContext&, ByteSpan, RpcServer::Responder respond) {
        front_client->Call(back.endpoint(), "get", {},
                           [respond = std::move(respond)](Result<PayloadView> result) {
                             if (!result.ok()) {
                               respond(result.status());
                               return;
                             }
                             // The forwarded response outlives this delivery:
                             // copy at the ownership boundary.
                             respond(result->Copy());
                           });
      });

  Channel client(&transport_, world_.hosts[5]);
  Bytes reply;
  client.Call(front.endpoint(), "forward", {}, [&](Result<PayloadView> result) {
    ASSERT_TRUE(result.ok());
    reply = result->Copy();
  });
  simulator_.Run();
  EXPECT_EQ(globe::ToString(reply), "from-back");
}

TEST_F(RpcTest, ManyConcurrentCallsCorrelate) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterMethod("double", [](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    ByteReader r(req);
    uint64_t v = r.ReadU64().value();
    ByteWriter w;
    w.WriteU64(v * 2);
    return w.Take();
  });

  Channel client(&transport_, world_.hosts[3]);
  std::map<uint64_t, uint64_t> results;
  for (uint64_t i = 0; i < 50; ++i) {
    ByteWriter w;
    w.WriteU64(i);
    client.Call(server.endpoint(), "double", w.Take(),
                [&, i](Result<PayloadView> result) {
      ASSERT_TRUE(result.ok());
      ByteReader r(*result);
      results[i] = r.ReadU64().value();
    });
  }
  simulator_.Run();
  ASSERT_EQ(results.size(), 50u);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(results[i], i * 2);
  }
}

TEST_F(RpcTest, MalformedFrameIsIgnored) {
  RpcServer server(&transport_, world_.hosts[0], 700);
  server.RegisterMethod("echo", [](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  // Bogus bytes straight to the server port: service must survive (§6.1 availability).
  network_.Send({world_.hosts[1], 999}, {world_.hosts[0], 700}, Bytes{0xde, 0xad});
  simulator_.Run();
  EXPECT_EQ(server.requests_served(), 0u);
}

// ------------------------------------------------------- At-most-once dedup

// Helpers shared by the dedup tests: a raw request frame for `method` under the
// given attempt and call ids, exactly as Channel would emit it.
Bytes RequestFrame(uint64_t attempt_id, uint64_t call_id, std::string_view method,
                   ByteSpan payload) {
  ByteWriter w;
  w.WriteU8(0);  // request
  w.WriteU64(attempt_id);
  w.WriteU64(call_id);
  w.WriteString(method);
  w.WriteLengthPrefixed(payload);
  return w.Take();
}

struct ParsedResponse {
  uint64_t attempt_id = 0;
  StatusCode code = StatusCode::kInternal;
  Bytes payload;
};

Result<ParsedResponse> ParseResponse(ByteSpan frame) {
  ByteReader r(frame);
  ParsedResponse response;
  ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
  if (type != 1) {
    return InvalidArgument("not a response frame");
  }
  ASSIGN_OR_RETURN(response.attempt_id, r.ReadU64());
  ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
  response.code = static_cast<StatusCode>(code);
  ASSIGN_OR_RETURN(std::string message, r.ReadString());
  ASSIGN_OR_RETURN(response.payload, r.ReadLengthPrefixed());
  return response;
}

class DedupTest : public RpcTest {
 protected:
  DedupTest() : server_(&transport_, world_.hosts[0], 700) {
    // A visibly non-idempotent method: every execution bumps the counter and
    // answers with the post-increment value.
    server_.RegisterMethod("counter.add",
                           [this](const RpcContext&, ByteSpan) -> Result<Bytes> {
                             ByteWriter w;
                             w.WriteU64(++executions_);
                             return w.Take();
                           },
                           kNonIdempotent);
    client_ = Endpoint{world_.hosts[1], 41000};
    network_.RegisterPort(client_.node, client_.port, [this](const Delivery& d) {
      auto response = ParseResponse(d.payload);
      ASSERT_TRUE(response.ok());
      responses_.push_back(*response);
    });
  }

  void SendRequest(uint64_t attempt_id, uint64_t call_id) {
    network_.Send(client_, server_.endpoint(),
                  RequestFrame(attempt_id, call_id, "counter.add", {}));
  }

  RpcServer server_;
  uint64_t executions_ = 0;
  Endpoint client_;
  std::vector<ParsedResponse> responses_;
};

TEST_F(DedupTest, DuplicateDeliveryReplaysTheCachedResponse) {
  SendRequest(/*attempt_id=*/1, /*call_id=*/1);
  simulator_.Run();
  // The retry of call 1 arrives under a fresh attempt id, as Channel sends it.
  SendRequest(/*attempt_id=*/2, /*call_id=*/1);
  simulator_.Run();

  EXPECT_EQ(executions_, 1u);  // the handler ran exactly once
  EXPECT_EQ(server_.duplicates_suppressed(), 1u);
  EXPECT_EQ(server_.requests_served(), 1u);  // duplicates are not "served"
  ASSERT_EQ(responses_.size(), 2u);
  // Each attempt got a response, correlated to its own id, with the payload of
  // the one real execution.
  EXPECT_EQ(responses_[0].attempt_id, 1u);
  EXPECT_EQ(responses_[1].attempt_id, 2u);
  EXPECT_EQ(responses_[0].payload, responses_[1].payload);

  // A different call id is a different call: it executes.
  SendRequest(/*attempt_id=*/3, /*call_id=*/2);
  simulator_.Run();
  EXPECT_EQ(executions_, 2u);
}

TEST_F(DedupTest, DuplicateWhileExecutionInProgressJoinsIt) {
  server_.set_service_time(kSecond);  // the first delivery queues for 1 s
  SendRequest(/*attempt_id=*/1, /*call_id=*/1);
  SendRequest(/*attempt_id=*/2, /*call_id=*/1);
  simulator_.Run();

  EXPECT_EQ(executions_, 1u);
  EXPECT_EQ(server_.duplicates_suppressed(), 1u);
  // Both attempts were answered by the single execution when it completed.
  ASSERT_EQ(responses_.size(), 2u);
  EXPECT_EQ(responses_[0].payload, responses_[1].payload);
}

TEST_F(DedupTest, DedupEntriesEvictAfterTtl) {
  server_.set_dedup_ttl(10 * kSecond);
  SendRequest(/*attempt_id=*/1, /*call_id=*/1);
  simulator_.Run();
  EXPECT_EQ(server_.dedup_entries(), 1u);

  // A very late duplicate — after the TTL — finds no entry and executes again.
  // The TTL must therefore cover the client's maximum retry horizon.
  simulator_.ScheduleAfter(11 * kSecond, [] {});
  simulator_.Run();
  SendRequest(/*attempt_id=*/2, /*call_id=*/1);
  simulator_.Run();
  EXPECT_EQ(executions_, 2u);
  EXPECT_EQ(server_.duplicates_suppressed(), 0u);
}

TEST_F(DedupTest, DedupTableSurvivesCheckpointRestore) {
  // A server rebuilt from a checkpoint (the DirectorySubnode::SaveState flow)
  // must still answer duplicates of writes the pre-crash server executed from
  // the restored table, not run them again.
  SendRequest(/*attempt_id=*/1, /*call_id=*/1);
  simulator_.Run();
  ASSERT_EQ(responses_.size(), 1u);
  Bytes original_payload = responses_[0].payload;

  ByteWriter w;
  server_.SerializeDedup(&w);
  Bytes checkpoint = w.Take();

  // The rebuilt server: same method registered, fresh (empty) handler state.
  RpcServer rebuilt(&transport_, world_.hosts[2], 700);
  uint64_t rebuilt_executions = 0;
  rebuilt.RegisterMethod("counter.add",
                         [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
                           ByteWriter out;
                           out.WriteU64(1000 + ++rebuilt_executions);
                           return out.Take();
                         },
                         kNonIdempotent);
  ByteReader r(checkpoint);
  ASSERT_TRUE(rebuilt.RestoreDedup(&r).ok());
  EXPECT_EQ(rebuilt.dedup_entries(), 1u);

  // The client's retry of call 1 reaches the rebuilt server: the dedup key is
  // (client endpoint, call id), so the restored entry replays the original
  // response and the handler never runs.
  network_.Send(client_, rebuilt.endpoint(),
                RequestFrame(/*attempt_id=*/2, /*call_id=*/1, "counter.add", {}));
  simulator_.Run();
  EXPECT_EQ(rebuilt_executions, 0u);
  EXPECT_EQ(rebuilt.duplicates_suppressed(), 1u);
  ASSERT_EQ(responses_.size(), 2u);
  EXPECT_EQ(responses_[1].payload, original_payload);

  // A genuinely new call still executes on the rebuilt server.
  network_.Send(client_, rebuilt.endpoint(),
                RequestFrame(/*attempt_id=*/3, /*call_id=*/2, "counter.add", {}));
  simulator_.Run();
  EXPECT_EQ(rebuilt_executions, 1u);
}

TEST_F(DedupTest, TransientErrorsAreNotPinnedByTheDedupTable) {
  // UNAVAILABLE is the one code retry policies repeat: caching it would doom
  // every retry of the call to the same replayed error for the whole TTL. The
  // entry is dropped instead, so the retry re-executes and can succeed.
  int attempts_seen = 0;
  server_.RegisterMethod("flaky.write",
                         [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
                           if (++attempts_seen == 1) {
                             return Unavailable("chain timed out");
                           }
                           return ToBytes("done");
                         },
                         kNonIdempotent);

  Channel client(&transport_, world_.hosts[2]);
  Bytes reply;
  CallOptions options;
  options.retry.attempts = 3;
  options.retry.backoff = 100 * kMillisecond;
  client.Call(server_.endpoint(), "flaky.write", {},
              [&](Result<PayloadView> result) {
                ASSERT_TRUE(result.ok());
                reply = result->Copy();
              },
              options);
  simulator_.Run();
  EXPECT_EQ(globe::ToString(reply), "done");
  EXPECT_EQ(attempts_seen, 2);
  // Only the definitive outcome stayed cached.
  EXPECT_EQ(server_.dedup_entries(), 1u);
}

TEST_F(DedupTest, ErrorResponsesAreReplayedToo) {
  uint64_t failures = 0;
  server_.RegisterMethod("always.fail",
                         [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
                           ++failures;
                           return FailedPrecondition("nope");
                         },
                         kNonIdempotent);
  network_.Send(client_, server_.endpoint(),
                RequestFrame(1, 9, "always.fail", {}));
  network_.Send(client_, server_.endpoint(),
                RequestFrame(2, 9, "always.fail", {}));
  simulator_.Run();
  EXPECT_EQ(failures, 1u);
  ASSERT_EQ(responses_.size(), 2u);
  EXPECT_EQ(responses_[0].code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(responses_[1].code, StatusCode::kFailedPrecondition);
}

TEST_F(RpcTest, RetriedWriteUnderResponseLossExecutesOnceEndToEnd) {
  // The full at-most-once story: the server executes the write on the first
  // delivery, the response is lost, the client's retry delivers a duplicate,
  // and the dedup table replays the original response instead of re-running
  // the handler.
  NodeId server_node = world_.hosts[0];
  NodeId client_node = world_.hosts[5];
  RpcServer server(&transport_, server_node, 700);
  uint64_t executions = 0;
  server.RegisterMethod("counter.add",
                        [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
                          ByteWriter w;
                          w.WriteU64(++executions);
                          return w.Take();
                        },
                        kNonIdempotent);

  // Lose every response until t = 550 ms; requests flow normally.
  network_.SetLinkDropProbability(server_node, client_node, 1.0);
  simulator_.ScheduleAt(550 * kMillisecond, [&] {
    network_.ClearLinkDropProbability(server_node, client_node);
  });

  Channel client(&transport_, client_node);
  Result<PayloadView> got = Unavailable("pending");
  CallOptions options;
  options.deadline = 500 * kMillisecond;
  options.retry.attempts = 3;
  options.retry.backoff = 100 * kMillisecond;
  client.Call(server.endpoint(), "counter.add", {},
              [&](Result<PayloadView> result) { got = std::move(result); }, options);
  simulator_.Run();

  ASSERT_TRUE(got.ok());
  ByteReader r(*got);
  EXPECT_EQ(r.ReadU64().value(), 1u);  // the first (only) execution's response
  EXPECT_EQ(executions, 1u);
  EXPECT_EQ(server.duplicates_suppressed(), 1u);
  EXPECT_EQ(client.stats().retries, 1u);
  // The per-link counter names the link that lost the response.
  EXPECT_GE(network_.stats().dropped_per_link.at({server_node, client_node}), 1u);
  EXPECT_EQ(network_.stats().dropped_per_link.count({client_node, server_node}), 0u);
}

// ------------------------------------------------------- Fault injection

TEST_F(NetworkTest, PerLinkLossOverridesUniformAndCountsPerLink) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  int delivered = 0;
  network_.RegisterPort(a, 1, [&](const Delivery&) { ++delivered; });
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++delivered; });

  network_.SetLinkDropProbability(a, b, 1.0);  // directed: only a -> b
  network_.Send({a, 2}, {b, 1}, Bytes(8));
  network_.Send({b, 2}, {a, 1}, Bytes(8));
  simulator_.Run();
  EXPECT_EQ(delivered, 1);  // b -> a got through
  EXPECT_EQ(network_.stats().dropped_messages, 1u);
  EXPECT_EQ(network_.stats().dropped_per_link.at({a, b}), 1u);
  EXPECT_EQ(network_.stats().dropped_per_link.count({b, a}), 0u);

  network_.ClearLinkDropProbability(a, b);
  network_.Send({a, 2}, {b, 1}, Bytes(8));
  simulator_.Run();
  EXPECT_EQ(delivered, 2);
}

TEST_F(NetworkTest, PartitionIsBidirectionalAndAutoHeals) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  int delivered = 0;
  network_.RegisterPort(a, 1, [&](const Delivery&) { ++delivered; });
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++delivered; });

  network_.PartitionPair(a, b, 5 * kSecond);
  EXPECT_TRUE(network_.IsPartitioned(a, b));
  EXPECT_TRUE(network_.IsPartitioned(b, a));
  network_.Send({a, 2}, {b, 1}, Bytes(8));
  network_.Send({b, 2}, {a, 1}, Bytes(8));
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network_.stats().partitioned_messages, 2u);
  EXPECT_EQ(network_.stats().dropped_per_link.at({a, b}), 1u);
  EXPECT_EQ(network_.stats().dropped_per_link.at({b, a}), 1u);

  // The partition expires on the virtual clock; traffic flows again.
  simulator_.ScheduleAt(6 * kSecond, [&] {
    EXPECT_FALSE(network_.IsPartitioned(a, b));
    network_.Send({a, 2}, {b, 1}, Bytes(8));
  });
  simulator_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, PartitionCutsMessagesAlreadyInFlight) {
  NodeId a = world_.hosts[0];
  NodeId far = world_.hosts.back();  // other continent: tens of ms in flight
  int delivered = 0;
  network_.RegisterPort(far, 1, [&](const Delivery&) { ++delivered; });
  network_.Send({a, 2}, {far, 1}, Bytes(8));
  network_.PartitionPair(a, far, 5 * kSecond);  // cut while the message flies
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network_.stats().partitioned_messages, 1u);
}

TEST_F(NetworkTest, RepartitioningNeverShortensTheWindow) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  network_.PartitionPair(a, b, 10 * kSecond);
  // A shorter re-partition must not pull the heal time earlier.
  network_.PartitionPair(a, b, 200 * kMillisecond);
  simulator_.ScheduleAt(5 * kSecond,
                        [&] { EXPECT_TRUE(network_.IsPartitioned(a, b)); });
  simulator_.ScheduleAt(11 * kSecond,
                        [&] { EXPECT_FALSE(network_.IsPartitioned(a, b)); });
  simulator_.Run();
}

TEST_F(NetworkTest, CrashCutsMessagesInFlightFromTheCrashedNode) {
  NodeId a = world_.hosts[0];
  NodeId far = world_.hosts.back();
  int delivered = 0;
  network_.RegisterPort(far, 1, [&](const Delivery&) { ++delivered; });
  network_.Send({a, 2}, {far, 1}, Bytes(8));
  network_.CrashNode(a);  // the sender dies while its message is on the wire
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network_.stats().down_node_messages, 1u);
}

TEST_F(NetworkTest, HealPartitionRestoresTrafficImmediately) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  int delivered = 0;
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++delivered; });
  network_.PartitionPair(a, b, 1000 * kSecond);
  network_.HealPartition(a, b);
  network_.Send({a, 2}, {b, 1}, Bytes(8));
  simulator_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, CrashNodeDetachesPortsAndRestartReattachesThem) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  int delivered = 0;
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++delivered; });

  network_.CrashNode(b);
  EXPECT_TRUE(network_.IsCrashed(b));
  EXPECT_FALSE(network_.IsNodeUp(b));
  network_.Send({a, 2}, {b, 1}, Bytes(8));
  simulator_.Run();
  EXPECT_EQ(delivered, 0);

  network_.RestartNode(b);
  EXPECT_FALSE(network_.IsCrashed(b));
  // The stashed handler survived the reboot, like §7 persistent state.
  network_.Send({a, 2}, {b, 1}, Bytes(8));
  simulator_.Run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, PortsChangedWhileCrashedWinOverTheStash) {
  NodeId a = world_.hosts[0];
  NodeId b = world_.hosts[1];
  int old_handler = 0, new_handler = 0, second_port = 0;
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++old_handler; });
  network_.RegisterPort(b, 2, [&](const Delivery&) { ++second_port; });

  network_.CrashNode(b);
  // A service rebuilt from a checkpoint re-registers port 1; the one on port 2
  // is torn down for good.
  network_.RegisterPort(b, 1, [&](const Delivery&) { ++new_handler; });
  network_.UnregisterPort(b, 2);
  network_.RestartNode(b);

  network_.Send({a, 9}, {b, 1}, Bytes(8));
  network_.Send({a, 9}, {b, 2}, Bytes(8));
  simulator_.Run();
  EXPECT_EQ(old_handler, 0);
  EXPECT_EQ(new_handler, 1);
  EXPECT_EQ(second_port, 0);
}

// ---------------------------------------------------------------- TypedMethod

namespace typed_test {

struct PingRequest {
  uint64_t value = 0;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(value);
    return w.Take();
  }
  static Result<PingRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    PingRequest request;
    ASSIGN_OR_RETURN(request.value, r.ReadU64());
    return request;
  }
};

struct PingResponse {
  uint64_t doubled = 0;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(doubled);
    return w.Take();
  }
  static Result<PingResponse> Deserialize(ByteSpan data) {
    ByteReader r(data);
    PingResponse response;
    ASSIGN_OR_RETURN(response.doubled, r.ReadU64());
    return response;
  }
};

constexpr TypedMethod<PingRequest, PingResponse> kPing{"test.ping"};

}  // namespace typed_test

TEST_F(RpcTest, TypedMethodRoundTripAndDecodeErrors) {
  using typed_test::kPing;
  using typed_test::PingRequest;
  using typed_test::PingResponse;

  RpcServer server(&transport_, world_.hosts[0], 700);
  kPing.Register(&server, [](const RpcContext&,
                             const PingRequest& request) -> Result<PingResponse> {
    return PingResponse{request.value * 2};
  });

  Channel client(&transport_, world_.hosts[5]);
  uint64_t got = 0;
  kPing.Call(&client, server.endpoint(), PingRequest{21},
             [&](Result<PingResponse> result) {
               ASSERT_TRUE(result.ok());
               got = result->doubled;
             });
  simulator_.Run();
  EXPECT_EQ(got, 42u);

  // A malformed request is rejected by the registration shim, not the handler.
  Status bad;
  client.Call(server.endpoint(), "test.ping", Bytes{0x01},
              [&](Result<PayloadView> result) { bad = result.status(); });
  simulator_.Run();
  EXPECT_EQ(bad.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace globe::sim
