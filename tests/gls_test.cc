// Tests for the Globe Location Service: object identifiers, contact addresses, the
// directory-node tree (insert / lookup / delete with forwarding pointers), locality of
// lookups, subnode partitioning, authorization, persistence and crash recovery.

#include <gtest/gtest.h>

#include <set>

#include "src/gls/deploy.h"
#include "src/gls/directory.h"
#include "src/gls/oid.h"
#include "src/sec/secure_transport.h"
#include "src/sim/rpc.h"
#include "src/sim/backend.h"

namespace globe::gls {
namespace {

using sim::BuildUniformWorld;
using sim::DomainId;
using sim::NodeId;
using sim::UniformWorld;

// ---------------------------------------------------------------- ObjectId

TEST(ObjectIdTest, GenerateIsUniqueEnough) {
  Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(ObjectId::Generate(&rng).ToHex());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ObjectIdTest, HexRoundTrip) {
  Rng rng(2);
  ObjectId oid = ObjectId::Generate(&rng);
  auto restored = ObjectId::FromHex(oid.ToHex());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, oid);
}

TEST(ObjectIdTest, FromHexRejectsBadInput) {
  EXPECT_FALSE(ObjectId::FromHex("xyz").ok());
  EXPECT_FALSE(ObjectId::FromHex("aabb").ok());  // too short
  EXPECT_FALSE(ObjectId::FromHex(std::string(34, 'a')).ok());
}

TEST(ObjectIdTest, NilDetection) {
  ObjectId nil;
  EXPECT_TRUE(nil.IsNil());
  Rng rng(3);
  EXPECT_FALSE(ObjectId::Generate(&rng).IsNil());
}

TEST(ObjectIdTest, SerializationRoundTrip) {
  Rng rng(4);
  ObjectId oid = ObjectId::Generate(&rng);
  ByteWriter w;
  oid.Serialize(&w);
  ByteReader r(w.data());
  auto restored = ObjectId::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, oid);
}

TEST(ObjectIdTest, HashSpreadsAcrossBuckets) {
  Rng rng(5);
  std::vector<int> buckets(8, 0);
  for (int i = 0; i < 8000; ++i) {
    buckets[ObjectId::Generate(&rng).Hash() % 8]++;
  }
  for (int count : buckets) {
    EXPECT_GT(count, 800);  // expected 1000; very loose balance bound
    EXPECT_LT(count, 1200);
  }
}

TEST(ContactAddressTest, SerializationRoundTrip) {
  ContactAddress address{{42, 700}, 3, ReplicaRole::kSlave};
  ByteWriter w;
  address.Serialize(&w);
  ByteReader r(w.data());
  auto restored = ContactAddress::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, address);
}

// ---------------------------------------------------------------- Directory tree

// World: 2 continents x 2 countries x 2 sites, 2 hosts per site. The GLS adds one
// directory host per domain.
class GlsTreeTest : public ::testing::Test {
 protected:
  GlsTreeTest()
      : world_(BuildUniformWorld({2, 2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        transport_(&network_),
        deployment_(&transport_, &world_.topology, nullptr),
        rng_(99) {}

  // Registers a replica of `oid` living on `host` and waits for completion.
  void InsertAt(const ObjectId& oid, NodeId host,
                ReplicaRole role = ReplicaRole::kMaster) {
    auto client = deployment_.MakeClient(host);
    Status status = InvalidArgument("pending");
    client->Insert(oid, ContactAddress{{host, sim::kPortGos}, 1, role},
                   [&](Status s) { status = s; });
    simulator_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  Result<LookupResult> LookupFrom(const ObjectId& oid, NodeId host) {
    auto client = deployment_.MakeClient(host);
    Result<LookupResult> out = Unavailable("pending");
    client->Lookup(oid, [&](Result<LookupResult> result) { out = std::move(result); });
    simulator_.Run();
    return out;
  }

  Status DeleteAt(const ObjectId& oid, NodeId host,
                  ReplicaRole role = ReplicaRole::kMaster) {
    auto client = deployment_.MakeClient(host);
    Status status = InvalidArgument("pending");
    client->Delete(oid, ContactAddress{{host, sim::kPortGos}, 1, role},
                   [&](Status s) { status = s; });
    simulator_.Run();
    return status;
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport transport_;
  GlsDeployment deployment_;
  Rng rng_;
};

TEST_F(GlsTreeTest, LookupFindsRegisteredReplica) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);

  auto result = LookupFrom(oid, world_.hosts[15]);  // other side of the world
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->addresses.size(), 1u);
  EXPECT_EQ(result->addresses[0].endpoint.node, world_.hosts[0]);
}

TEST_F(GlsTreeTest, LookupFromSameSiteIsLocal) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);

  auto result = LookupFrom(oid, world_.hosts[1]);  // same leaf domain
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hops, 0u);               // answered by the leaf directory itself
  EXPECT_EQ(result->found_depth, 3);         // leaf depth in this 3-level world
  EXPECT_EQ(result->apex_depth, 3);          // never left the leaf
}

TEST_F(GlsTreeTest, LookupCostGrowsWithDistance) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);

  auto same_site = LookupFrom(oid, world_.hosts[1]);
  auto same_country = LookupFrom(oid, world_.hosts[2]);
  auto same_continent = LookupFrom(oid, world_.hosts[4]);
  auto other_continent = LookupFrom(oid, world_.hosts[8]);
  ASSERT_TRUE(same_site.ok());
  ASSERT_TRUE(same_country.ok());
  ASSERT_TRUE(same_continent.ok());
  ASSERT_TRUE(other_continent.ok());

  // Hops: 0 at the leaf, then +2 per level of separation (up and back down).
  EXPECT_EQ(same_site->hops, 0u);
  EXPECT_EQ(same_country->hops, 2u);
  EXPECT_EQ(same_continent->hops, 4u);
  EXPECT_EQ(other_continent->hops, 6u);

  // The apex climbs exactly as far as the separation requires.
  EXPECT_EQ(same_country->apex_depth, 2);
  EXPECT_EQ(same_continent->apex_depth, 1);
  EXPECT_EQ(other_continent->apex_depth, 0);
}

TEST_F(GlsTreeTest, NearestOfTwoReplicasIsFound) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);   // continent 0
  InsertAt(oid, world_.hosts[8]);   // continent 1

  // A client on continent 1 must find the continent-1 replica without crossing the
  // root: its lookup stays inside its own subtree.
  auto result = LookupFrom(oid, world_.hosts[9]);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->addresses.size(), 1u);
  EXPECT_EQ(result->addresses[0].endpoint.node, world_.hosts[8]);
  EXPECT_LE(result->hops, 2u);
  EXPECT_GE(result->apex_depth, 2);
}

TEST_F(GlsTreeTest, UnknownOidIsNotFound) {
  ObjectId oid = ObjectId::Generate(&rng_);
  auto result = LookupFrom(oid, world_.hosts[3]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(GlsTreeTest, DeleteRemovesAddressAndPrunesChain) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  ASSERT_TRUE(LookupFrom(oid, world_.hosts[15]).ok());

  ASSERT_TRUE(DeleteAt(oid, world_.hosts[0]).ok());
  auto result = LookupFrom(oid, world_.hosts[15]);
  EXPECT_FALSE(result.ok());

  // Every directory entry for this OID is gone (pointer chain fully pruned).
  for (const auto& subnode : deployment_.subnodes()) {
    EXPECT_EQ(subnode->NumAddresses(oid), 0u) << subnode->domain();
    EXPECT_EQ(subnode->NumPointers(oid), 0u) << subnode->domain();
  }
}

TEST_F(GlsTreeTest, DeleteOneOfTwoReplicasKeepsTheOther) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  InsertAt(oid, world_.hosts[8]);
  ASSERT_TRUE(DeleteAt(oid, world_.hosts[0]).ok());

  auto result = LookupFrom(oid, world_.hosts[1]);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->addresses.size(), 1u);
  EXPECT_EQ(result->addresses[0].endpoint.node, world_.hosts[8]);
}

TEST_F(GlsTreeTest, DeleteUnknownAddressFails) {
  ObjectId oid = ObjectId::Generate(&rng_);
  EXPECT_EQ(DeleteAt(oid, world_.hosts[0]).code(), StatusCode::kNotFound);
}

TEST_F(GlsTreeTest, DuplicateInsertIsIdempotent) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  InsertAt(oid, world_.hosts[0]);
  auto result = LookupFrom(oid, world_.hosts[1]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->addresses.size(), 1u);
}

TEST_F(GlsTreeTest, TwoReplicasSameSiteReturnsBoth) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  InsertAt(oid, world_.hosts[1]);  // same leaf domain, different host
  auto result = LookupFrom(oid, world_.hosts[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->addresses.size(), 2u);
}

TEST_F(GlsTreeTest, AllocateOidReturnsFreshIds) {
  auto client = deployment_.MakeClient(world_.hosts[0]);
  std::set<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    client->AllocateOid([&](Result<ObjectId> result) {
      ASSERT_TRUE(result.ok());
      ids.insert(result->ToHex());
    });
  }
  simulator_.Run();
  EXPECT_EQ(ids.size(), 5u);
}

// Property test over many objects and random placements: every registered replica is
// findable from every host, and lookups never climb higher than the root.
class GlsPropertyTest : public GlsTreeTest,
                        public ::testing::WithParamInterface<uint64_t> {};

// NOLINTNEXTLINE: gtest needs the fixture to inherit once more for params.
TEST_P(GlsPropertyTest, AllRegisteredReplicasAreFindable) {
  Rng rng(GetParam());
  std::vector<std::pair<ObjectId, NodeId>> placements;
  for (int i = 0; i < 20; ++i) {
    ObjectId oid = ObjectId::Generate(&rng);
    NodeId host = world_.hosts[rng.UniformInt(world_.hosts.size())];
    InsertAt(oid, host);
    placements.push_back({oid, host});
  }
  for (const auto& [oid, host] : placements) {
    NodeId from = world_.hosts[rng.UniformInt(world_.hosts.size())];
    auto result = LookupFrom(oid, from);
    ASSERT_TRUE(result.ok()) << oid.ToHex();
    ASSERT_EQ(result->addresses.size(), 1u);
    EXPECT_EQ(result->addresses[0].endpoint.node, host);
    EXPECT_GE(result->apex_depth, 0);
    EXPECT_LE(result->hops, 6u);  // 3 levels up + 3 down is the worst case
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlsPropertyTest, ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------- Partitioning

TEST(GlsPartitionTest, SubnodesSplitTheLoad) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  GlsDeploymentOptions options;
  options.subnode_count = [&](DomainId, int depth) { return depth == 0 ? 4 : 1; };
  GlsDeployment deployment(&transport, &world.topology, nullptr, options);

  ASSERT_EQ(deployment.DirectoryFor(0).subnodes.size(), 4u);

  // Register objects on one continent, look them all up from the other: every lookup
  // crosses the root directory node.
  Rng rng(7);
  std::vector<ObjectId> oids;
  for (int i = 0; i < 64; ++i) {
    ObjectId oid = ObjectId::Generate(&rng);
    auto client = deployment.MakeClient(world.hosts[0]);
    client->Insert(oid, ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                       ReplicaRole::kMaster},
                   [](Status) {});
    simulator.Run();
    oids.push_back(oid);
  }
  for (const auto& oid : oids) {
    auto client = deployment.MakeClient(world.hosts[7]);
    bool found = false;
    client->Lookup(oid, [&](Result<LookupResult> result) { found = result.ok(); });
    simulator.Run();
    EXPECT_TRUE(found);
  }

  // All four root subnodes carried some of the load, none carried all of it.
  auto root_subnodes = deployment.SubnodesOf(0);
  ASSERT_EQ(root_subnodes.size(), 4u);
  uint64_t total = 0;
  for (const auto* subnode : root_subnodes) {
    EXPECT_GT(subnode->stats().lookups, 0u);
    EXPECT_LT(subnode->stats().lookups, 64u);
    total += subnode->stats().lookups;
  }
  EXPECT_EQ(total, 64u);
}

// ---------------------------------------------------------------- Authorization

TEST(GlsAuthTest, UnauthenticatedRegistrationRejected) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2}, 2);
  sec::KeyRegistry registry;
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport plain(&network);
  sec::SecureTransport secure(&plain, &registry);

  GlsDeploymentOptions options;
  options.node_options.enforce_authorization = true;
  std::set<NodeId> gls_hosts;
  GlsDeployment deployment(&secure, &world.topology, &registry, options,
                           [&](NodeId host) {
                             gls_hosts.insert(host);
                             secure.SetNodeCredential(
                                 host,
                                 registry.Register("gls-host", sec::Role::kGdnHost));
                           });

  // GOS host with a proper GdnHost credential; attacker host with none.
  NodeId gos_host = world.hosts[0];
  NodeId attacker = world.hosts[3];
  secure.SetNodeCredential(gos_host, registry.Register("gos-0", sec::Role::kGdnHost));
  auto is_host = [&](NodeId n) {
    return gls_hosts.count(n) > 0 || n == gos_host;
  };
  secure.SetChannelPolicy([&](NodeId src, NodeId dst) {
    sec::ChannelConfig config;
    if (is_host(src) && is_host(dst)) {
      config.auth = sec::AuthMode::kMutualAuth;
    } else if (is_host(dst)) {
      config.auth = sec::AuthMode::kServerAuth;  // attacker gets only server auth
    }
    return config;
  });

  Rng rng(8);
  ObjectId oid = ObjectId::Generate(&rng);

  // Legitimate insert from the GOS host succeeds.
  GlsClient good(&secure, gos_host, deployment.LeafDirectoryFor(gos_host));
  Status good_status = InvalidArgument("pending");
  good.Insert(oid, ContactAddress{{gos_host, sim::kPortGos}, 1, ReplicaRole::kMaster},
              [&](Status s) { good_status = s; });
  simulator.Run();
  EXPECT_TRUE(good_status.ok()) << good_status;

  // Forged registration from the attacker host is refused.
  ObjectId evil_oid = ObjectId::Generate(&rng);
  GlsClient bad(&secure, attacker, deployment.LeafDirectoryFor(attacker));
  Status bad_status = OkStatus();
  bad.Insert(evil_oid, ContactAddress{{attacker, sim::kPortGos}, 1, ReplicaRole::kMaster},
             [&](Status s) { bad_status = s; });
  simulator.Run();
  EXPECT_EQ(bad_status.code(), StatusCode::kPermissionDenied);

  // And so is a forged deregistration of the legitimate replica.
  Status del_status = OkStatus();
  bad.Delete(oid, ContactAddress{{gos_host, sim::kPortGos}, 1, ReplicaRole::kMaster},
             [&](Status s) { del_status = s; });
  simulator.Run();
  EXPECT_EQ(del_status.code(), StatusCode::kPermissionDenied);

  // The legitimate address is still there.
  GlsClient check(&secure, world.hosts[1], deployment.LeafDirectoryFor(world.hosts[1]));
  bool found = false;
  check.Lookup(oid, [&](Result<LookupResult> result) { found = result.ok(); });
  simulator.Run();
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------- Persistence

TEST_F(GlsTreeTest, SaveAndRestoreState) {
  ObjectId oid_a = ObjectId::Generate(&rng_);
  ObjectId oid_b = ObjectId::Generate(&rng_);
  InsertAt(oid_a, world_.hosts[0]);
  InsertAt(oid_b, world_.hosts[2]);

  for (const auto& subnode : deployment_.subnodes()) {
    Bytes saved = subnode->SaveState();
    size_t entries_before = subnode->TotalEntries();
    // Restore into the same node (simulating reconstruct-after-reboot).
    ASSERT_TRUE(subnode->RestoreState(saved).ok());
    EXPECT_EQ(subnode->TotalEntries(), entries_before);
  }

  // Lookups still work after every node was "rebooted".
  EXPECT_TRUE(LookupFrom(oid_a, world_.hosts[14]).ok());
  EXPECT_TRUE(LookupFrom(oid_b, world_.hosts[14]).ok());
}

TEST_F(GlsTreeTest, RestoreRejectsGarbage) {
  auto& subnode = deployment_.subnodes().front();
  Bytes garbage = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01};
  EXPECT_FALSE(subnode->RestoreState(garbage).ok());
}

// ---------------------------------------------------------------- Lookup cache

TEST(LookupCacheTest, PutGetExpireRoundTrip) {
  LookupCache cache(/*ttl=*/100, /*max_entries=*/8);
  Rng rng(21);
  ObjectId oid = ObjectId::Generate(&rng);
  ContactAddress address{{7, sim::kPortGos}, 1, ReplicaRole::kMaster};

  EXPECT_EQ(cache.Get(oid, 0), nullptr);
  cache.Put(oid, {address}, /*found_depth=*/3, /*now=*/10);
  const auto* entry = cache.Get(oid, 50);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->addresses, std::vector<ContactAddress>{address});
  EXPECT_EQ(entry->found_depth, 3);
  EXPECT_EQ(cache.Get(oid, 110), nullptr);  // expired at 10 + 100
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LookupCacheTest, InvalidateQuarantinesReadmission) {
  LookupCache cache(/*ttl=*/1000 * sim::kSecond, /*max_entries=*/8);
  Rng rng(22);
  ObjectId oid = ObjectId::Generate(&rng);
  ContactAddress address{{7, sim::kPortGos}, 1, ReplicaRole::kMaster};

  cache.Put(oid, {address}, 3, /*now=*/0);
  EXPECT_TRUE(cache.Invalidate(oid, /*now=*/sim::kSecond));
  EXPECT_EQ(cache.Get(oid, sim::kSecond), nullptr);

  // A response that was in flight when the invalidation ran must not re-install
  // the entry...
  cache.Put(oid, {address}, 3, sim::kSecond + 1);
  EXPECT_EQ(cache.Get(oid, sim::kSecond + 2), nullptr);

  // ...but after the quarantine lapses, fresh authoritative answers cache again.
  sim::SimTime later = sim::kSecond + LookupCache::kPutQuarantine;
  cache.Put(oid, {address}, 3, later);
  EXPECT_NE(cache.Get(oid, later + 1), nullptr);
}

TEST(LookupCacheTest, EvictsSoonestToExpireWhenFull) {
  LookupCache cache(/*ttl=*/1000, /*max_entries=*/2);
  Rng rng(23);
  ObjectId a = ObjectId::Generate(&rng);
  ObjectId b = ObjectId::Generate(&rng);
  ObjectId c = ObjectId::Generate(&rng);
  ContactAddress address{{7, sim::kPortGos}, 1, ReplicaRole::kMaster};

  cache.Put(a, {address}, 3, /*now=*/0);
  cache.Put(b, {address}, 3, /*now=*/10);
  cache.Put(c, {address}, 3, /*now=*/20);  // evicts a (soonest to expire)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get(a, 30), nullptr);
  EXPECT_NE(cache.Get(b, 30), nullptr);
  EXPECT_NE(cache.Get(c, 30), nullptr);
}

// Same world as GlsTreeTest, but every directory subnode runs its TTL'd lookup
// cache (src/gls/cache.h).
class GlsCacheTest : public ::testing::Test {
 protected:
  // TTLs are virtual time. Answered calls erase their deadline events, so a drained
  // synchronous step advances the clock by round-trip time only.
  explicit GlsCacheTest(sim::SimTime ttl = 600 * sim::kSecond)
      : world_(BuildUniformWorld({2, 2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        transport_(&network_),
        deployment_(&transport_, &world_.topology, nullptr, CacheOptions(ttl)),
        rng_(1234) {}

  static GlsDeploymentOptions CacheOptions(sim::SimTime ttl) {
    GlsDeploymentOptions options;
    options.node_options.enable_cache = true;
    options.node_options.cache_ttl = ttl;
    return options;
  }

  void InsertAt(const ObjectId& oid, NodeId host) {
    auto client = deployment_.MakeClient(host);
    Status status = InvalidArgument("pending");
    client->Insert(oid, ContactAddress{{host, sim::kPortGos}, 1, ReplicaRole::kMaster},
                   [&](Status s) { status = s; });
    simulator_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  Result<LookupResult> LookupFrom(const ObjectId& oid, NodeId host, bool allow_cached) {
    auto client = deployment_.MakeClient(host);
    client->set_allow_cached(allow_cached);
    Result<LookupResult> out = Unavailable("pending");
    client->Lookup(oid, [&](Result<LookupResult> result) { out = std::move(result); });
    simulator_.Run();
    return out;
  }

  Status DeleteAt(const ObjectId& oid, NodeId host) {
    auto client = deployment_.MakeClient(host);
    Status status = InvalidArgument("pending");
    client->Delete(oid, ContactAddress{{host, sim::kPortGos}, 1, ReplicaRole::kMaster},
                   [&](Status s) { status = s; });
    simulator_.Run();
    return status;
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport transport_;
  GlsDeployment deployment_;
  Rng rng_;
};

TEST_F(GlsCacheTest, CachedLookupSavesDescentHops) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);

  // First cached lookup from the other continent walks the full path (3 up + 3
  // down); the descent populates caches at the replica-side pointer holders.
  auto cold = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->hops, 6u);
  EXPECT_FALSE(cold->from_cache);

  // The repeat stops at the apex (root) cache: only the 3 upward hops remain.
  auto warm = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->hops, 3u);
  EXPECT_EQ(warm->addresses, cold->addresses);
  EXPECT_GE(deployment_.TotalStats().cache_hits, 1u);
}

TEST_F(GlsCacheTest, LookupWithoutAllowCachedIgnoresWarmCache) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  ASSERT_TRUE(LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true).ok());

  auto strict = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/false);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->from_cache);
  EXPECT_EQ(strict->hops, 6u);  // full walk despite the warm cache
}

TEST_F(GlsCacheTest, LookupAfterDeleteNeverServesStaleCache) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true).ok());
  }

  ASSERT_TRUE(DeleteAt(oid, world_.hosts[0]).ok());
  uint64_t positive_hits_after_delete = deployment_.TotalStats().cache_hits;
  auto result = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // That miss may plant short-TTL negative entries on its climb path; what must
  // be gone everywhere is any positive entry still naming the deleted address —
  // repeat lookups stay NotFound and never hit a positive cache entry.
  auto repeat = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_FALSE(repeat.ok());
  EXPECT_EQ(repeat.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(deployment_.TotalStats().cache_hits, positive_hits_after_delete);
}

TEST_F(GlsCacheTest, PartialDeleteInvalidatesAncestorCaches) {
  // Two replicas in sibling sites of one country; the delete of one stops pruning
  // at the country node, but the gls.inval_cache chain still reaches the root.
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);  // site 0 of country 0
  InsertAt(oid, world_.hosts[2]);  // site 1 of country 0
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true).ok());
  }

  ASSERT_TRUE(DeleteAt(oid, world_.hosts[0]).ok());
  for (int i = 0; i < 5; ++i) {
    auto result = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->addresses.size(), 1u);
    EXPECT_EQ(result->addresses[0].endpoint.node, world_.hosts[2])
        << "stale cached address for the deleted replica";
  }
}

TEST_F(GlsCacheTest, InsertInvalidatesWarmCachesWithoutWaitingTtl) {
  // One replica, then a warm apex cache for a far-away looker. Registering a
  // second replica must drop that cached single-address answer immediately
  // (the install chain's inval fan-out, quarantine=false), not after the
  // 600 s TTL: the very next cached-allowed lookup re-walks authoritatively.
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);  // site 0 of country 0
  ASSERT_TRUE(LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true).ok());
  auto warm = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(warm->from_cache);  // the stale answer the insert must kill

  InsertAt(oid, world_.hosts[2]);  // site 1 of country 0
  EXPECT_GT(deployment_.TotalStats().insert_invals, 0u);

  // Fresh descent, not the warm entry. Either replica is a correct answer
  // (descent picks one branch at random); what may not happen is a cache hit
  // still naming only the pre-insert set.
  auto result = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->from_cache);
  ASSERT_EQ(result->addresses.size(), 1u);
  NodeId found = result->addresses[0].endpoint.node;
  EXPECT_TRUE(found == world_.hosts[0] || found == world_.hosts[2]) << found;
}

class GlsCacheShortTtlTest : public GlsCacheTest {
 protected:
  GlsCacheShortTtlTest() : GlsCacheTest(120 * sim::kSecond) {}
};

TEST_F(GlsCacheShortTtlTest, CacheEntryExpiresAfterTtl) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  ASSERT_TRUE(LookupFrom(oid, world_.hosts[8], true).ok());

  auto warm = LookupFrom(oid, world_.hosts[8], true);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);

  // Let virtual time pass the TTL; the entry must lapse back to a full walk.
  simulator_.ScheduleAfter(300 * sim::kSecond, [] {});
  simulator_.Run();
  auto expired = LookupFrom(oid, world_.hosts[8], true);
  ASSERT_TRUE(expired.ok());
  EXPECT_FALSE(expired->from_cache);
  EXPECT_EQ(expired->hops, 6u);
}

TEST_F(GlsCacheTest, CacheStateRoundTripsThroughSaveRestore) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  ASSERT_TRUE(LookupFrom(oid, world_.hosts[8], true).ok());

  auto root_subnodes = deployment_.SubnodesOf(0);
  ASSERT_EQ(root_subnodes.size(), 1u);
  auto* root = const_cast<DirectorySubnode*>(root_subnodes[0]);
  ASSERT_GE(root->CacheSize(), 1u);

  size_t cached_before = root->CacheSize();
  Bytes saved = root->SaveState();
  ASSERT_TRUE(root->RestoreState(saved).ok());
  EXPECT_EQ(root->CacheSize(), cached_before);

  // The restored cache still answers: the repeat lookup stays a 3-hop apex hit.
  uint64_t hits_before = root->stats().cache_hits;
  auto warm = LookupFrom(oid, world_.hosts[8], true);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(root->stats().cache_hits, hits_before + 1);
}

// ---------------------------------------------------------------- Batch RPCs

TEST_F(GlsTreeTest, InsertBatchRegistersAllInOneRoundTrip) {
  std::vector<std::pair<ObjectId, ContactAddress>> items;
  for (int i = 0; i < 8; ++i) {
    items.emplace_back(ObjectId::Generate(&rng_),
                       ContactAddress{{world_.hosts[0], sim::kPortGos}, 1,
                                      ReplicaRole::kMaster});
  }
  auto client = deployment_.MakeClient(world_.hosts[0]);
  Status status = Unavailable("pending");
  client->InsertBatch(items, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;

  // The leaf subnode saw one batch message carrying all eight registrations.
  DomainId leaf_domain = world_.topology.NodeDomain(world_.hosts[0]);
  auto leaf_subnodes = deployment_.SubnodesOf(leaf_domain);
  ASSERT_EQ(leaf_subnodes.size(), 1u);
  EXPECT_EQ(leaf_subnodes[0]->stats().batch_inserts, 1u);
  EXPECT_EQ(leaf_subnodes[0]->stats().inserts, 8u);

  // Every registration is findable from the other side of the world.
  for (const auto& [oid, address] : items) {
    auto result = LookupFrom(oid, world_.hosts[15]);
    ASSERT_TRUE(result.ok()) << oid.ToHex() << ": " << result.status();
    ASSERT_EQ(result->addresses.size(), 1u);
    EXPECT_EQ(result->addresses[0], address);
  }
}

TEST_F(GlsTreeTest, LookupBatchReturnsPositionalResults) {
  ObjectId registered = ObjectId::Generate(&rng_);
  ObjectId unknown = ObjectId::Generate(&rng_);
  InsertAt(registered, world_.hosts[0]);

  auto client = deployment_.MakeClient(world_.hosts[1]);
  Result<std::vector<Result<LookupResult>>> out = Unavailable("pending");
  client->LookupBatch({registered, unknown},
                      [&](Result<std::vector<Result<LookupResult>>> results) {
                        out = std::move(results);
                      });
  simulator_.Run();
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 2u);
  ASSERT_TRUE((*out)[0].ok()) << (*out)[0].status();
  ASSERT_EQ((*out)[0]->addresses.size(), 1u);
  EXPECT_EQ((*out)[0]->addresses[0].endpoint.node, world_.hosts[0]);
  ASSERT_FALSE((*out)[1].ok());
  EXPECT_EQ((*out)[1].status().code(), StatusCode::kNotFound);

  DomainId leaf_domain = world_.topology.NodeDomain(world_.hosts[1]);
  EXPECT_EQ(deployment_.SubnodesOf(leaf_domain)[0]->stats().batch_lookups, 1u);
}

// Cached lookups and batch mutations keep the §6.1 authorization requirement:
// warm caches must not let an unauthenticated peer mutate the directory, and the
// denial shows up in stats().denied like every other refused mutation.
TEST(GlsAuthTest, CachedAndBatchedPathsStillDenyUnauthenticated) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2}, 2);
  sec::KeyRegistry registry;
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport plain(&network);
  sec::SecureTransport secure(&plain, &registry);

  GlsDeploymentOptions options;
  options.node_options.enforce_authorization = true;
  options.node_options.enable_cache = true;
  options.node_options.cache_ttl = 600 * sim::kSecond;
  std::set<NodeId> gls_hosts;
  GlsDeployment deployment(&secure, &world.topology, &registry, options,
                           [&](NodeId host) {
                             gls_hosts.insert(host);
                             secure.SetNodeCredential(
                                 host,
                                 registry.Register("gls-host", sec::Role::kGdnHost));
                           });

  NodeId gos_host = world.hosts[0];
  NodeId attacker = world.hosts[7];
  secure.SetNodeCredential(gos_host, registry.Register("gos-0", sec::Role::kGdnHost));
  auto is_host = [&](NodeId n) { return gls_hosts.count(n) > 0 || n == gos_host; };
  secure.SetChannelPolicy([&](NodeId src, NodeId dst) {
    sec::ChannelConfig config;
    if (is_host(src) && is_host(dst)) {
      config.auth = sec::AuthMode::kMutualAuth;
    } else if (is_host(dst)) {
      config.auth = sec::AuthMode::kServerAuth;
    }
    return config;
  });

  Rng rng(5);
  ObjectId oid = ObjectId::Generate(&rng);
  ContactAddress good_address{{gos_host, sim::kPortGos}, 1, ReplicaRole::kMaster};

  // Authorized batch registration succeeds.
  GlsClient good(&secure, gos_host, deployment.LeafDirectoryFor(gos_host));
  Status good_status = Unavailable("pending");
  good.InsertBatch({{oid, good_address}}, [&](Status s) { good_status = s; });
  simulator.Run();
  ASSERT_TRUE(good_status.ok()) << good_status;

  // Warm the caches with a cross-continent cached lookup (reads are open).
  GlsClient reader(&secure, world.hosts[6], deployment.LeafDirectoryFor(world.hosts[6]));
  reader.set_allow_cached(true);
  bool warmed = false;
  reader.Lookup(oid, [&](Result<LookupResult> r) { warmed = r.ok(); });
  simulator.Run();
  ASSERT_TRUE(warmed);

  uint64_t denied_before = deployment.TotalStats().denied;

  // Unauthenticated batch insert and delete are refused on the cached path.
  GlsClient bad(&secure, attacker, deployment.LeafDirectoryFor(attacker));
  ObjectId evil = ObjectId::Generate(&rng);
  Status batch_status = OkStatus();
  bad.InsertBatch({{evil, ContactAddress{{attacker, sim::kPortGos}, 1,
                                         ReplicaRole::kMaster}}},
                  [&](Status s) { batch_status = s; });
  simulator.Run();
  EXPECT_EQ(batch_status.code(), StatusCode::kPermissionDenied);

  Status delete_status = OkStatus();
  bad.Delete(oid, good_address, [&](Status s) { delete_status = s; });
  simulator.Run();
  EXPECT_EQ(delete_status.code(), StatusCode::kPermissionDenied);

  EXPECT_GE(deployment.TotalStats().denied, denied_before + 2);

  // The cached read path still serves the legitimate address.
  Result<LookupResult> still = Unavailable("pending");
  reader.Lookup(oid, [&](Result<LookupResult> r) { still = std::move(r); });
  simulator.Run();
  ASSERT_TRUE(still.ok()) << still.status();
  ASSERT_EQ(still->addresses.size(), 1u);
  EXPECT_EQ(still->addresses[0], good_address);
  EXPECT_TRUE(still->from_cache);
}

// ---------------------------------------------------------------- Routing

TEST_F(GlsTreeTest, EmptyDirectoryRefFailsGracefully) {
  Rng rng(3);
  ObjectId oid = ObjectId::Generate(&rng);
  DirectoryRef empty;
  EXPECT_FALSE(empty.TryRoute(oid).ok());

  // A client wired to an empty ref reports the error instead of dividing by zero.
  GlsClient client(&transport_, world_.hosts[0], DirectoryRef{});
  Status lookup_status = OkStatus();
  client.Lookup(oid, [&](Result<LookupResult> r) { lookup_status = r.status(); });
  EXPECT_EQ(lookup_status.code(), StatusCode::kFailedPrecondition);

  Status insert_status = OkStatus();
  client.Insert(oid, ContactAddress{}, [&](Status s) { insert_status = s; });
  EXPECT_EQ(insert_status.code(), StatusCode::kFailedPrecondition);

  Status alloc_status = OkStatus();
  client.AllocateOid([&](Result<ObjectId> r) { alloc_status = r.status(); });
  EXPECT_EQ(alloc_status.code(), StatusCode::kFailedPrecondition);

  Status batch_status = OkStatus();
  client.InsertBatch({{oid, ContactAddress{}}}, [&](Status s) { batch_status = s; });
  EXPECT_EQ(batch_status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(GlsTreeTest, CrashedDirectoryMakesLookupsFailThenRecoverAfterRestart) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);

  // Find the leaf directory subnode for host 0's domain and checkpoint it.
  DomainId leaf_domain = world_.topology.NodeDomain(world_.hosts[0]);
  auto leaf_subnodes = deployment_.SubnodesOf(leaf_domain);
  ASSERT_EQ(leaf_subnodes.size(), 1u);
  const DirectorySubnode* leaf = leaf_subnodes[0];
  Bytes checkpoint = leaf->SaveState();

  // Crash the directory host: lookups from afar now fail (the chain dead-ends).
  network_.SetNodeUp(leaf->host(), false);
  auto client = deployment_.MakeClient(world_.hosts[15]);
  Status status = OkStatus();
  client->Lookup(oid, [&](Result<LookupResult> result) { status = result.status(); });
  simulator_.Run();
  EXPECT_FALSE(status.ok());

  // Restart and reconstruct from the checkpoint: lookups succeed again.
  network_.SetNodeUp(leaf->host(), true);
  ASSERT_TRUE(const_cast<DirectorySubnode*>(leaf)->RestoreState(checkpoint).ok());
  auto result = LookupFrom(oid, world_.hosts[15]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->addresses[0].endpoint.node, world_.hosts[0]);
}

// ---------------------------------------------------------------- delete_batch

TEST_F(GlsTreeTest, DeleteBatchDeregistersAllInOneRoundTrip) {
  std::vector<std::pair<ObjectId, ContactAddress>> items;
  for (int i = 0; i < 8; ++i) {
    items.emplace_back(
        ObjectId::Generate(&rng_),
        ContactAddress{{world_.hosts[0], sim::kPortGos}, 1, ReplicaRole::kMaster});
  }
  auto client = deployment_.MakeClient(world_.hosts[0]);
  Status status = Unavailable("pending");
  client->InsertBatch(items, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;

  status = Unavailable("pending");
  client->DeleteBatch(items, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;

  // The leaf subnode saw one batch message carrying all eight deregistrations.
  DomainId leaf_domain = world_.topology.NodeDomain(world_.hosts[0]);
  auto leaf_subnodes = deployment_.SubnodesOf(leaf_domain);
  ASSERT_EQ(leaf_subnodes.size(), 1u);
  EXPECT_EQ(leaf_subnodes[0]->stats().batch_deletes, 1u);
  EXPECT_EQ(leaf_subnodes[0]->stats().deletes, 8u);
  EXPECT_EQ(leaf_subnodes[0]->TotalEntries(), 0u);

  // Every registration is gone, all the way up the tree.
  for (const auto& [oid, address] : items) {
    auto result = LookupFrom(oid, world_.hosts[15]);
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound) << oid.ToHex();
  }
  for (const auto& subnode : deployment_.subnodes()) {
    for (const auto& [oid, address] : items) {
      EXPECT_EQ(subnode->NumPointers(oid), 0u);
    }
  }
}

TEST_F(GlsTreeTest, DeleteBatchSurfacesMissingAddresses) {
  ObjectId registered = ObjectId::Generate(&rng_);
  InsertAt(registered, world_.hosts[0]);
  ContactAddress address{{world_.hosts[0], sim::kPortGos}, 1, ReplicaRole::kMaster};

  std::vector<std::pair<ObjectId, ContactAddress>> items = {
      {registered, address}, {ObjectId::Generate(&rng_), address}};
  auto client = deployment_.MakeClient(world_.hosts[0]);
  Status status = OkStatus();
  client->DeleteBatch(items, [&](Status s) { status = s; });
  simulator_.Run();
  // The unknown item's NotFound surfaces, but the registered one was deleted.
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(LookupFrom(registered, world_.hosts[15]).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GlsCacheTest, DeleteBatchInvalidatesCachePerDeletedOid) {
  std::vector<std::pair<ObjectId, ContactAddress>> items;
  for (int i = 0; i < 4; ++i) {
    items.emplace_back(
        ObjectId::Generate(&rng_),
        ContactAddress{{world_.hosts[0], sim::kPortGos}, 1, ReplicaRole::kMaster});
    InsertAt(items.back().first, world_.hosts[0]);
  }
  // Warm the caches along the cross-continent path, then verify a hit.
  for (const auto& [oid, address] : items) {
    ASSERT_TRUE(LookupFrom(oid, world_.hosts[15], /*allow_cached=*/true).ok());
  }
  auto warm = LookupFrom(items[0].first, world_.hosts[15], /*allow_cached=*/true);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);

  auto client = deployment_.MakeClient(world_.hosts[0]);
  Status status = Unavailable("pending");
  client->DeleteBatch(items, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;

  // No subnode anywhere may serve any of the deleted OIDs from its cache.
  for (const auto& [oid, address] : items) {
    auto after = LookupFrom(oid, world_.hosts[15], /*allow_cached=*/true);
    EXPECT_EQ(after.status().code(), StatusCode::kNotFound) << oid.ToHex();
  }
}

// ------------------------------------------------------- power-of-two routing

class GlsP2cTest : public ::testing::Test {
 protected:
  GlsP2cTest()
      : world_(BuildUniformWorld({2, 2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        transport_(&network_),
        deployment_(&transport_, &world_.topology, nullptr, P2cOptions()),
        rng_(4242) {}

  static GlsDeploymentOptions P2cOptions() {
    GlsDeploymentOptions options;
    options.node_options.enable_cache = true;
    options.node_options.cache_ttl = 600 * sim::kSecond;
    options.node_options.lookup_route_mode = RouteMode::kPowerOfTwoChoices;
    // Every directory node is partitioned so each level has an alternate.
    options.subnode_count = [](DomainId, int) { return 2; };
    return options;
  }

  uint64_t TotalSideways() const {
    uint64_t total = 0;
    for (const auto& subnode : deployment_.subnodes()) {
      total += subnode->stats().forwards_sideways;
    }
    return total;
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport transport_;
  GlsDeployment deployment_;
  Rng rng_;
};

TEST_F(GlsP2cTest, BurstLookupsSucceedViaAlternateSubnodes) {
  ObjectId oid = ObjectId::Generate(&rng_);
  ContactAddress address{{world_.hosts[0], sim::kPortGos}, 1, ReplicaRole::kMaster};
  auto insert_client = deployment_.MakeClient(world_.hosts[0]);
  Status status = Unavailable("pending");
  insert_client->Insert(oid, address, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;

  // A burst of concurrent cross-continent lookups: outstanding depth builds up on
  // the home subnodes, so power-of-two choices diverts part of the burst to the
  // alternates, which hand the lookups sideways to their home siblings (and cache
  // the answers). Every lookup must still find the correct address.
  auto lookup_client = deployment_.MakeClient(world_.hosts[15]);
  lookup_client->set_route_mode(RouteMode::kPowerOfTwoChoices);
  lookup_client->set_allow_cached(true);
  int ok = 0, wrong = 0;
  for (int i = 0; i < 16; ++i) {
    lookup_client->Lookup(oid, [&](Result<LookupResult> result) {
      if (result.ok() && result->addresses.size() == 1 &&
          result->addresses[0] == address) {
        ++ok;
      } else {
        ++wrong;
      }
    });
  }
  simulator_.Run();
  EXPECT_EQ(ok, 16);
  EXPECT_EQ(wrong, 0);
  EXPECT_GE(TotalSideways(), 1u);
}

TEST_F(GlsP2cTest, DeleteInvalidatesAlternateSubnodeCachesToo) {
  ObjectId oid = ObjectId::Generate(&rng_);
  ContactAddress address{{world_.hosts[0], sim::kPortGos}, 1, ReplicaRole::kMaster};
  auto insert_client = deployment_.MakeClient(world_.hosts[0]);
  Status status = Unavailable("pending");
  insert_client->Insert(oid, address, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;

  // Two bursts warm both home and alternate caches at every level.
  auto lookup_client = deployment_.MakeClient(world_.hosts[15]);
  lookup_client->set_route_mode(RouteMode::kPowerOfTwoChoices);
  lookup_client->set_allow_cached(true);
  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 16; ++i) {
      lookup_client->Lookup(oid, [](Result<LookupResult>) {});
    }
    simulator_.Run();
  }

  status = Unavailable("pending");
  insert_client->Delete(oid, address, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;

  // After the delete's fan-out, no subnode — home or alternate, at any level — may
  // serve the deregistered address, cached or otherwise.
  for (int i = 0; i < 16; ++i) {
    lookup_client->Lookup(oid, [&](Result<LookupResult> result) {
      EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
    });
  }
  simulator_.Run();
  for (const auto& subnode : deployment_.subnodes()) {
    EXPECT_EQ(subnode->NumAddresses(oid), 0u);
    EXPECT_EQ(subnode->NumPointers(oid), 0u);
  }
}

TEST_F(GlsTreeTest, HashOnlyRoutingNeverForwardsSideways) {
  ObjectId oid = ObjectId::Generate(&rng_);
  InsertAt(oid, world_.hosts[0]);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(LookupFrom(oid, world_.hosts[15]).ok());
  }
  for (const auto& subnode : deployment_.subnodes()) {
    EXPECT_EQ(subnode->stats().forwards_sideways, 0u);
  }
}

// ---------------------------------------------------------- Negative caching

TEST_F(GlsCacheTest, NegativeCacheAbsorbsRepeatMisses) {
  ObjectId oid = ObjectId::Generate(&rng_);

  // First miss climbs to the root; the NotFound answer plants short-TTL
  // negative entries at every node that forwarded the climb.
  auto first = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kNotFound);
  uint64_t climbs_after_first = deployment_.TotalStats().forwards_up;
  EXPECT_GT(climbs_after_first, 0u);

  // The repeat miss is absorbed at the leaf: NotFound again, zero new climbs.
  auto repeat = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_FALSE(repeat.ok());
  EXPECT_EQ(repeat.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(deployment_.TotalStats().forwards_up, climbs_after_first);
  EXPECT_GE(deployment_.TotalStats().negative_cache_hits, 1u);

  // A lookup that does not allow cached answers still re-walks and is never
  // served the negative entry.
  auto strict = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/false);
  ASSERT_FALSE(strict.ok());
  EXPECT_GT(deployment_.TotalStats().forwards_up, climbs_after_first);

  // Registering the OID in the looker's own domain invalidates the negative
  // entries on the whole install chain (leaf included): the next cached lookup
  // resolves immediately.
  InsertAt(oid, world_.hosts[9]);  // same site (and leaf) as hosts[8]
  auto found = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_EQ(found->addresses.size(), 1u);
  EXPECT_EQ(found->addresses[0].endpoint.node, world_.hosts[9]);
}

TEST_F(GlsCacheTest, NegativeEntriesExpireAfterTheirShortTtl) {
  ObjectId oid = ObjectId::Generate(&rng_);
  ASSERT_FALSE(LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true).ok());

  // Register the OID on the OTHER continent: its install chain never touches
  // hosts[8]'s climb path, so the stale negative entry is served...
  InsertAt(oid, world_.hosts[0]);
  auto stale = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound);

  // ...only until the short negative TTL lapses; then the lookup resolves.
  sim::SimTime negative_ttl = LookupCache::kDefaultNegativeTtl;
  simulator_.ScheduleAfter(negative_ttl + sim::kSecond, [] {});
  simulator_.Run();
  auto fresh = LookupFrom(oid, world_.hosts[8], /*allow_cached=*/true);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_EQ(fresh->addresses.size(), 1u);
  EXPECT_EQ(fresh->addresses[0].endpoint.node, world_.hosts[0]);
}

// ------------------------------------------------- Master-ownership records

class GlsOwnershipTest : public GlsTreeTest {
 protected:
  Result<ClaimOutcome> Claim(const ObjectId& oid, const ContactAddress& claimant,
                             uint64_t known_epoch, NodeId from, bool renew = false,
                             uint64_t version = 0) {
    auto client = deployment_.MakeClient(from);
    MasterClaim claim{oid, claimant, known_epoch, version,
                      /*lease_duration=*/5 * sim::kSecond};
    Result<ClaimOutcome> out = Unavailable("pending");
    auto done = [&](Result<ClaimOutcome> result) { out = std::move(result); };
    if (renew) {
      client->RenewMasterLease(claim, done);
    } else {
      client->ClaimMaster(claim, done);
    }
    simulator_.Run();
    return out;
  }

  const DirectorySubnode* Root() const {
    for (const auto& subnode : deployment_.subnodes()) {
      if (subnode->depth() == 0) {
        return subnode.get();
      }
    }
    return nullptr;
  }
};

TEST_F(GlsOwnershipTest, ClaimMasterArbitratesEpochsAndLeases) {
  Rng rng(7);
  ObjectId oid = ObjectId::Generate(&rng);
  ContactAddress a{{world_.hosts[0], sim::kPortGos}, 2, ReplicaRole::kMaster};
  ContactAddress b{{world_.hosts[10], sim::kPortGos}, 2, ReplicaRole::kMaster};

  // Vacant record: the first claim wins epoch 1.
  auto first = Claim(oid, a, /*known_epoch=*/0, world_.hosts[0]);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->granted);
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(first->master.endpoint, a.endpoint);

  // A rival with the right epoch but an unexpired incumbent lease is refused
  // and told who holds mastership.
  auto rival = Claim(oid, b, /*known_epoch=*/1, world_.hosts[10]);
  ASSERT_TRUE(rival.ok());
  EXPECT_FALSE(rival->granted);
  EXPECT_EQ(rival->epoch, 1u);
  EXPECT_EQ(rival->master.endpoint, a.endpoint);

  // A stale-epoch claim is refused regardless of the lease.
  auto stale = Claim(oid, b, /*known_epoch=*/0, world_.hosts[10]);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->granted);

  // Once the incumbent's lease lapses, the same rival claim is granted epoch 2.
  simulator_.ScheduleAfter(6 * sim::kSecond, [] {});
  simulator_.Run();
  auto takeover = Claim(oid, b, /*known_epoch=*/1, world_.hosts[10]);
  ASSERT_TRUE(takeover.ok());
  EXPECT_TRUE(takeover->granted);
  EXPECT_EQ(takeover->epoch, 2u);

  // The deposed master's renewal is rejected and names the winner; the
  // incumbent's own renewal extends the lease.
  auto deposed = Claim(oid, a, /*known_epoch=*/1, world_.hosts[0], /*renew=*/true);
  ASSERT_TRUE(deposed.ok());
  EXPECT_FALSE(deposed->granted);
  EXPECT_EQ(deposed->epoch, 2u);
  EXPECT_EQ(deposed->master.endpoint, b.endpoint);
  auto renewed = Claim(oid, b, /*known_epoch=*/2, world_.hosts[10], /*renew=*/true);
  ASSERT_TRUE(renewed.ok());
  EXPECT_TRUE(renewed->granted);

  // All arbitration happened at the OID's root home subnode.
  const DirectorySubnode* root = Root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->OwnerEpoch(oid), 2u);
  EXPECT_EQ(root->stats().master_claims, 4u);
  EXPECT_EQ(root->stats().master_claims_granted, 2u);
  EXPECT_EQ(root->stats().lease_renewals, 2u);
}

TEST_F(GlsOwnershipTest, TakeoverScrubsDeposedMastersLeafRegistration) {
  Rng rng(11);
  ObjectId oid = ObjectId::Generate(&rng);
  // Claimant addresses match what InsertAt registers, so the ownership record's
  // deposed master IS the leaf registration the scrub must find.
  ContactAddress a{{world_.hosts[0], sim::kPortGos}, 1, ReplicaRole::kMaster};
  ContactAddress b{{world_.hosts[10], sim::kPortGos}, 1, ReplicaRole::kMaster};

  InsertAt(oid, world_.hosts[0]);
  ASSERT_TRUE(Claim(oid, a, /*known_epoch=*/0, world_.hosts[0])->granted);
  auto before = LookupFrom(oid, world_.hosts[10]);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_EQ(before->addresses.size(), 1u);
  EXPECT_EQ(before->addresses[0].endpoint.node, world_.hosts[0]);

  // A crashes without deregistering; its lease lapses and B takes over. The
  // grant must scrub A's now-stale leaf entry in the background (the Claim
  // helper drains the simulator, which includes the fire-and-forget chain) —
  // otherwise lookups keep routing clients to a dead master until A restarts.
  simulator_.ScheduleAfter(6 * sim::kSecond, [] {});
  simulator_.Run();
  auto takeover = Claim(oid, b, /*known_epoch=*/1, world_.hosts[10]);
  ASSERT_TRUE(takeover.ok()) << takeover.status();
  ASSERT_TRUE(takeover->granted);

  auto gone = LookupFrom(oid, world_.hosts[10]);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  const DirectorySubnode* root = Root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->stats().stale_scrubs, 1u);

  // Once the winner registers itself, lookups see exactly the new master —
  // no lingering trace of the deposed one.
  InsertAt(oid, world_.hosts[10]);
  auto fresh = LookupFrom(oid, world_.hosts[3]);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_EQ(fresh->addresses.size(), 1u);
  EXPECT_EQ(fresh->addresses[0].endpoint.node, world_.hosts[10]);
}

TEST_F(GlsOwnershipTest, VersionFloorBlocksStaleClaimants) {
  Rng rng(9);
  ObjectId oid = ObjectId::Generate(&rng);
  ContactAddress a{{world_.hosts[0], sim::kPortGos}, 2, ReplicaRole::kMaster};
  ContactAddress b{{world_.hosts[10], sim::kPortGos}, 2, ReplicaRole::kMaster};

  ASSERT_TRUE(Claim(oid, a, 0, world_.hosts[0])->granted);
  // The incumbent's renewal reports 7 acked writes: the floor rises.
  ASSERT_TRUE(
      Claim(oid, a, 1, world_.hosts[0], /*renew=*/true, /*version=*/7)->granted);

  simulator_.ScheduleAfter(6 * sim::kSecond, [] {});
  simulator_.Run();  // the lease lapses: mastership is takeable

  // A claimant missing acked writes (version 3 < floor 7) is refused even
  // though the lease lapsed; one at the floor is elected.
  auto stale = Claim(oid, b, 1, world_.hosts[10], /*renew=*/false, /*version=*/3);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->granted);
  auto fresh = Claim(oid, b, 1, world_.hosts[10], /*renew=*/false, /*version=*/7);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->granted);
  EXPECT_EQ(fresh->epoch, 2u);

  // The incumbent exemption: A (same host) may resume below the floor — its
  // checkpoint restore is the sanctioned rollback.
  simulator_.ScheduleAfter(6 * sim::kSecond, [] {});
  simulator_.Run();
  auto resume = Claim(oid, a, 2, world_.hosts[0], /*renew=*/false, /*version=*/0);
  ASSERT_TRUE(resume.ok());
  EXPECT_FALSE(resume->granted);  // wrong: a is not the incumbent any more
  auto b_resume = Claim(oid, b, 2, world_.hosts[10], /*renew=*/false, /*version=*/0);
  ASSERT_TRUE(b_resume.ok());
  EXPECT_TRUE(b_resume->granted);  // b IS the incumbent: exempt from the floor
}

TEST_F(GlsOwnershipTest, OwnershipAndDedupSurviveSaveRestore) {
  Rng rng(8);
  ObjectId oid = ObjectId::Generate(&rng);
  ContactAddress a{{world_.hosts[0], sim::kPortGos}, 2, ReplicaRole::kMaster};
  ASSERT_TRUE(Claim(oid, a, 0, world_.hosts[0])->granted);

  DirectorySubnode* root = const_cast<DirectorySubnode*>(Root());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->OwnerEpoch(oid), 1u);
  // The claim is non-idempotent, so the arbitration left a dedup entry behind.
  size_t dedup_before = root->DedupEntries();
  EXPECT_GT(dedup_before, 0u);

  Bytes checkpoint = root->SaveState();
  ASSERT_TRUE(root->RestoreState(checkpoint).ok());

  // The record and the dedup table both survived the rebuild: a fresh epoch-0
  // claim is still refused, and the at-most-once history is intact.
  EXPECT_EQ(root->OwnerEpoch(oid), 1u);
  EXPECT_EQ(root->DedupEntries(), dedup_before);
  ContactAddress b{{world_.hosts[10], sim::kPortGos}, 2, ReplicaRole::kMaster};
  auto rejected = Claim(oid, b, /*known_epoch=*/0, world_.hosts[10]);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected->granted);
  EXPECT_EQ(rejected->master.endpoint, a.endpoint);
}

// ---------------------------------------------------------------- Bounded store

// The memory-bounded subnode store: entries beyond the capacity spill to the
// cold store and must keep behaving exactly like resident ones — found by
// lookups (fault-in), mutable by inserts and deletes, and carried through a
// SaveState/RestoreState reboot. Nothing registered is ever lost.
TEST(GlsBoundedStoreTest, EvictedEntrySurvivesLookupMutationAndCheckpoint) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  GlsDeploymentOptions options;
  options.node_options.store_capacity = 4;
  GlsDeployment deployment(&transport, &world.topology, nullptr, options);

  auto insert = [&](const ObjectId& oid, NodeId host) {
    auto client = deployment.MakeClient(host);
    Status status = Unavailable("pending");
    client->Insert(oid, ContactAddress{{host, sim::kPortGos}, 1, ReplicaRole::kMaster},
                   [&](Status s) { status = s; });
    simulator.Run();
    EXPECT_TRUE(status.ok()) << status;
  };
  auto lookup = [&](const ObjectId& oid, NodeId host) {
    auto client = deployment.MakeClient(host);
    Result<LookupResult> out = Unavailable("pending");
    client->Lookup(oid, [&](Result<LookupResult> r) { out = std::move(r); });
    simulator.Run();
    return out;
  };

  // Four times the capacity, all on host 0's leaf: the leaf's address entries
  // and every ancestor's pointer entries must spill.
  Rng rng(71);
  std::vector<ObjectId> oids;
  for (int i = 0; i < 16; ++i) {
    oids.push_back(ObjectId::Generate(&rng));
    insert(oids.back(), world.hosts[0]);
  }
  SubnodeStats after_inserts = deployment.TotalStats();
  EXPECT_GT(after_inserts.store_evictions, 0u);
  for (const auto& subnode : deployment.subnodes()) {
    EXPECT_LE(subnode->stats().store_peak_resident, 4u)
        << "subnode for domain " << subnode->domain();
  }

  // The coldest entry (first registered, 12 inserts ago) was evicted; a remote
  // lookup still finds it by faulting it back in.
  auto cold = lookup(oids[0], world.hosts[7]);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->addresses.size(), 1u);
  EXPECT_GT(deployment.TotalStats().store_fault_ins, after_inserts.store_fault_ins);

  // Evicted entries accept mutations: add a second replica, then remove it.
  insert(oids[1], world.hosts[1]);  // hosts[0] and [1] share the leaf domain
  auto doubled = lookup(oids[1], world.hosts[7]);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled->addresses.size(), 2u);
  {
    auto client = deployment.MakeClient(world.hosts[1]);
    Status status = Unavailable("pending");
    client->Delete(oids[1],
                   ContactAddress{{world.hosts[1], sim::kPortGos}, 1,
                                  ReplicaRole::kMaster},
                   [&](Status s) { status = s; });
    simulator.Run();
    EXPECT_TRUE(status.ok()) << status;
  }

  // Checkpoint every subnode and rebuild it in place: resident and spilled
  // entries alike survive the reboot.
  for (const auto& subnode : deployment.subnodes()) {
    size_t entries_before = subnode->TotalEntries();
    Bytes saved = subnode->SaveState();
    ASSERT_TRUE(subnode->RestoreState(saved).ok());
    EXPECT_EQ(subnode->TotalEntries(), entries_before);
    EXPECT_LE(subnode->StoreResidentEntries(), 4u);
  }

  // Zero lost registrations: every object still resolves to exactly one
  // address from the far continent after the reboot.
  for (const auto& oid : oids) {
    auto result = lookup(oid, world.hosts[6]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->addresses.size(), 1u);
  }
}

}  // namespace
}  // namespace globe::gls
