// Tests for the GDN application layer: the package DSO, the moderator tool, the
// GDN-HTTPD with its HTML/file serving and replica binding, and the GdnWorld harness.

#include <gtest/gtest.h>

#include "src/gdn/package.h"
#include "src/gdn/world.h"
#include "src/util/sha256.h"

namespace globe::gdn {
namespace {

// ---------------------------------------------------------------- PackageObject

class PackageObjectTest : public ::testing::Test {
 protected:
  Result<Bytes> Invoke(const dso::Invocation& invocation) {
    return package_.Invoke(invocation);
  }
  PackageObject package_;
};

TEST_F(PackageObjectTest, AddListGetRemove) {
  Bytes content = ToBytes("#!/bin/sh\necho gimp\n");
  ASSERT_TRUE(Invoke(pkg::AddFile("bin/gimp", content)).ok());
  EXPECT_EQ(package_.num_files(), 1u);

  auto listing = Invoke(pkg::ListContents());
  ASSERT_TRUE(listing.ok());
  auto files = pkg::ParseListContents(*listing);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  EXPECT_EQ((*files)[0].path, "bin/gimp");
  EXPECT_EQ((*files)[0].size, content.size());
  EXPECT_EQ((*files)[0].sha256_hex, Sha256::HexDigest(content));

  auto fetched = Invoke(pkg::GetFileContents("bin/gimp"));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, content);

  ASSERT_TRUE(Invoke(pkg::RemoveFile("bin/gimp")).ok());
  EXPECT_EQ(package_.num_files(), 0u);
  EXPECT_FALSE(Invoke(pkg::GetFileContents("bin/gimp")).ok());
}

TEST_F(PackageObjectTest, AddFileOverwrites) {
  ASSERT_TRUE(Invoke(pkg::AddFile("README", ToBytes("v1"))).ok());
  ASSERT_TRUE(Invoke(pkg::AddFile("README", ToBytes("v2-longer"))).ok());
  EXPECT_EQ(package_.num_files(), 1u);
  auto fetched = Invoke(pkg::GetFileContents("README"));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(ToString(*fetched), "v2-longer");
}

TEST_F(PackageObjectTest, EmptyPathRejected) {
  EXPECT_FALSE(Invoke(pkg::AddFile("", ToBytes("x"))).ok());
}

TEST_F(PackageObjectTest, RemoveMissingFileFails) {
  auto result = Invoke(pkg::RemoveFile("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(PackageObjectTest, DescriptionRoundTrip) {
  ASSERT_TRUE(Invoke(pkg::SetDescription("GNU Image Manipulation Program")).ok());
  auto description = Invoke(pkg::GetDescription());
  ASSERT_TRUE(description.ok());
  ByteReader r(*description);
  EXPECT_EQ(r.ReadString().value(), "GNU Image Manipulation Program");
}

TEST_F(PackageObjectTest, UnknownMethodFails) {
  dso::Invocation bogus{"pkg.format_disk", {}, false};
  EXPECT_FALSE(Invoke(bogus).ok());
}

TEST_F(PackageObjectTest, StateRoundTrip) {
  ASSERT_TRUE(Invoke(pkg::AddFile("a", ToBytes("alpha"))).ok());
  ASSERT_TRUE(Invoke(pkg::AddFile("b", ToBytes("beta"))).ok());
  ASSERT_TRUE(Invoke(pkg::SetDescription("two files")).ok());

  PackageObject restored;
  ASSERT_TRUE(restored.SetState(package_.GetState()).ok());
  EXPECT_EQ(restored.num_files(), 2u);
  EXPECT_EQ(restored.total_bytes(), package_.total_bytes());
  auto fetched = restored.Invoke(pkg::GetFileContents("b"));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(ToString(*fetched), "beta");
}

TEST_F(PackageObjectTest, TamperedStateIsRejected) {
  ASSERT_TRUE(Invoke(pkg::AddFile("binary", ToBytes("legit content"))).ok());
  Bytes state = package_.GetState();
  // Flip a byte inside the file content region; the per-file digest must catch it.
  auto needle = ToBytes("legit");
  auto it = std::search(state.begin(), state.end(), needle.begin(), needle.end());
  ASSERT_NE(it, state.end());
  *it ^= 0x01;
  PackageObject restored;
  Status status = restored.SetState(state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST_F(PackageObjectTest, CloneEmptyIsEmpty) {
  ASSERT_TRUE(Invoke(pkg::AddFile("a", ToBytes("x"))).ok());
  auto clone = package_.CloneEmpty();
  EXPECT_EQ(clone->type_id(), kPackageTypeId);
  EXPECT_TRUE(clone->Invoke(pkg::ListContents()).ok());
}

// ---------------------------------------------------------------- GdnWorld end-to-end

class GdnWorldTest : public ::testing::Test {
 protected:
  GdnWorldTest() : world_(MakeConfig()) {}

  static GdnWorldConfig MakeConfig() {
    GdnWorldConfig config;
    config.fanouts = {2, 2, 2};  // 2 continents x 2 countries x 2 sites
    config.user_hosts_per_site = 2;
    return config;
  }

  GdnWorld world_;
};

TEST_F(GdnWorldTest, WorldWiring) {
  EXPECT_EQ(world_.num_countries(), 4u);
  EXPECT_EQ(world_.user_hosts().size(), 16u);
  for (size_t i = 0; i < world_.num_countries(); ++i) {
    EXPECT_NE(world_.GosOf(i), nullptr);
    EXPECT_NE(world_.HttpdOf(i), nullptr);
  }
  // Every user maps to a country and an HTTPD.
  for (sim::NodeId user : world_.user_hosts()) {
    EXPECT_GE(world_.CountryOf(user), 0);
    EXPECT_NE(world_.NearestHttpd(user), nullptr);
  }
}

TEST_F(GdnWorldTest, PublishAndDownloadEndToEnd) {
  std::map<std::string, Bytes> files = {
      {"bin/gimp", ToBytes("ELF executable bytes")},
      {"README", ToBytes("The GNU Image Manipulation Program")},
  };
  auto oid = world_.PublishPackage("/apps/graphics/Gimp", files, dso::kProtoMasterSlave,
                                   /*master_country=*/0, /*replica_countries=*/{2});
  ASSERT_TRUE(oid.ok()) << oid.status();

  // A user on the other continent downloads through their local HTTPD.
  sim::NodeId user = world_.user_hosts().back();
  auto content = world_.DownloadFile(user, "/apps/graphics/Gimp", "README");
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "The GNU Image Manipulation Program");
}

// Same world with the GLS lookup cache enabled: the HTTPDs issue cache-permitted
// lookups, downloads stay correct, and the directory subnodes see cache traffic.
class CachedGdnWorldTest : public ::testing::Test {
 protected:
  CachedGdnWorldTest() : world_(MakeConfig()) {}

  static GdnWorldConfig MakeConfig() {
    GdnWorldConfig config;
    config.fanouts = {2, 2, 2};
    config.user_hosts_per_site = 2;
    config.gls_cache = true;
    config.gls_cache_ttl = 3600 * sim::kSecond;
    return config;
  }

  GdnWorld world_;
};

TEST_F(CachedGdnWorldTest, CachedLookupsServeDownloadsEndToEnd) {
  std::map<std::string, Bytes> files = {{"pkg.tar", ToBytes("payload bytes")}};
  auto oid = world_.PublishPackage("/apps/misc/pkg", files, dso::kProtoMasterSlave,
                                   /*master_country=*/0);
  ASSERT_TRUE(oid.ok()) << oid.status();

  // Users in the two continent-1 countries download through their local HTTPDs:
  // both binds are cross-continent cached lookups.
  auto first = world_.DownloadFile(world_.user_hosts()[8], "/apps/misc/pkg", "pkg.tar");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(ToString(*first), "payload bytes");
  auto second = world_.DownloadFile(world_.user_hosts()[12], "/apps/misc/pkg", "pkg.tar");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(ToString(*second), "payload bytes");

  // The cached read path really ran: allow_cached lookups consulted the caches,
  // and the descents left entries behind on the replica-side pointer holders.
  gls::SubnodeStats stats = world_.gls().TotalStats();
  EXPECT_GT(stats.cache_misses + stats.cache_hits, 0u);
  size_t cached_entries = 0;
  for (const auto& subnode : world_.gls().subnodes()) {
    cached_entries += subnode->CacheSize();
  }
  EXPECT_GT(cached_entries, 0u);
}

TEST_F(GdnWorldTest, ListingIsHtmlWithHashes) {
  std::map<std::string, Bytes> files = {{"tetex.tar", ToBytes("tar bytes here")}};
  ASSERT_TRUE(world_.PublishPackage("/apps/text/teTeX", files, dso::kProtoMasterSlave, 1)
                  .ok());

  auto listing = world_.FetchListing(world_.user_hosts()[0], "/apps/text/teTeX");
  ASSERT_TRUE(listing.ok()) << listing.status();
  EXPECT_NE(listing->find("<html>"), std::string::npos);
  EXPECT_NE(listing->find("tetex.tar"), std::string::npos);
  EXPECT_NE(listing->find(Sha256::HexDigest(ToBytes("tar bytes here"))),
            std::string::npos);
}

TEST_F(GdnWorldTest, DownloadUnknownPackageIs404) {
  auto content = world_.DownloadFile(world_.user_hosts()[0], "/apps/never/was", "x");
  EXPECT_FALSE(content.ok());
}

TEST_F(GdnWorldTest, DownloadUnknownFileIs404) {
  std::map<std::string, Bytes> files = {{"real", ToBytes("x")}};
  ASSERT_TRUE(world_.PublishPackage("/apps/one", files, dso::kProtoMasterSlave, 0).ok());
  auto content = world_.DownloadFile(world_.user_hosts()[0], "/apps/one", "fake");
  EXPECT_FALSE(content.ok());
}

TEST_F(GdnWorldTest, HttpdCachesBindings) {
  std::map<std::string, Bytes> files = {{"f", ToBytes("data")}};
  ASSERT_TRUE(world_.PublishPackage("/apps/pkg", files, dso::kProtoCacheInval, 0).ok());

  sim::NodeId user = world_.user_hosts()[0];
  GdnHttpd* httpd = world_.NearestHttpd(user);
  ASSERT_TRUE(world_.DownloadFile(user, "/apps/pkg", "f").ok());
  uint64_t binds_after_first = httpd->stats().binds;
  ASSERT_TRUE(world_.DownloadFile(user, "/apps/pkg", "f").ok());
  EXPECT_EQ(httpd->stats().binds, binds_after_first);
  EXPECT_GE(httpd->stats().bind_reuses, 1u);
}

TEST_F(GdnWorldTest, HttpdActsAsReplicaAfterBind) {
  // With cache/invalidate replication, the HTTPD's local representative becomes a
  // cache replica registered in the GLS — a second download's reads are local.
  std::map<std::string, Bytes> files = {{"big", Bytes(50000, 0xab)}};
  ASSERT_TRUE(world_.PublishPackage("/apps/big", files, dso::kProtoCacheInval, 0).ok());

  sim::NodeId user = world_.user_hosts().back();  // far from the master in country 0
  ASSERT_TRUE(world_.DownloadFile(user, "/apps/big", "big").ok());

  // First download faulted the state into the local HTTPD cache; a second download
  // must not move the 50 KB across the top level again.
  uint64_t wan_before = world_.network().stats().BytesAtOrAbove(2);
  ASSERT_TRUE(world_.DownloadFile(user, "/apps/big", "big").ok());
  uint64_t wan_after = world_.network().stats().BytesAtOrAbove(2);
  EXPECT_LT(wan_after - wan_before, 10000u);
}

TEST_F(GdnWorldTest, ModeratorUpdatePropagatesToReaders) {
  std::map<std::string, Bytes> files = {{"VERSION", ToBytes("1.0")}};
  ASSERT_TRUE(world_.PublishPackage("/apps/tool", files, dso::kProtoMasterSlave, 0, {3})
                  .ok());

  sim::NodeId user = world_.user_hosts().back();
  auto v1 = world_.DownloadFile(user, "/apps/tool", "VERSION");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(ToString(*v1), "1.0");

  // Moderator ships an update.
  Status update_status = Unavailable("pending");
  world_.moderator()->AddFile("/apps/tool", "VERSION", ToBytes("1.1"),
                              [&](Status s) { update_status = s; });
  world_.Run();
  ASSERT_TRUE(update_status.ok()) << update_status;

  auto v2 = world_.DownloadFile(user, "/apps/tool", "VERSION");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(ToString(*v2), "1.1");
}

TEST_F(GdnWorldTest, RemovePackageMakesItUnreachable) {
  std::map<std::string, Bytes> files = {{"f", ToBytes("y")}};
  ASSERT_TRUE(world_.PublishPackage("/apps/temp", files, dso::kProtoMasterSlave, 0, {1})
                  .ok());
  ASSERT_TRUE(world_.DownloadFile(world_.user_hosts()[0], "/apps/temp", "f").ok());

  Status remove_status = Unavailable("pending");
  world_.moderator()->RemovePackage("/apps/temp", [&](Status s) { remove_status = s; });
  world_.Run();
  world_.naming_authority()->Flush();
  world_.Run();
  ASSERT_TRUE(remove_status.ok()) << remove_status;

  // Fresh HTTPD state (the old one may hold a stale binding): use another country.
  sim::NodeId other_user = world_.user_hosts()[7];
  ASSERT_NE(world_.CountryOf(other_user), world_.CountryOf(world_.user_hosts()[0]));
  auto content = world_.DownloadFile(other_user, "/apps/temp", "f");
  EXPECT_FALSE(content.ok());
}

TEST_F(GdnWorldTest, FrontPageServes) {
  auto browser = world_.MakeBrowser(world_.user_hosts()[0]);
  Result<http::HttpResponse> out = Unavailable("pending");
  browser->Fetch(world_.NearestHttpd(world_.user_hosts()[0])->node(), "/",
                 [&](Result<http::HttpResponse> r) { out = std::move(r); });
  world_.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->status_code, 200);
  EXPECT_NE(ToString(out->body).find("Globe Distribution Network"), std::string::npos);
}

// ---------------------------------------------------------------- Secured world

class SecureGdnWorldTest : public ::testing::Test {
 protected:
  SecureGdnWorldTest() : world_(MakeConfig()) {}

  static GdnWorldConfig MakeConfig() {
    GdnWorldConfig config;
    config.fanouts = {2, 2};
    config.user_hosts_per_site = 2;
    config.secure = true;
    return config;
  }

  GdnWorld world_;
};

TEST_F(SecureGdnWorldTest, PublishAndDownloadStillWork) {
  std::map<std::string, Bytes> files = {{"f", ToBytes("secure bytes")}};
  auto oid = world_.PublishPackage("/apps/sec", files, dso::kProtoMasterSlave, 0, {1});
  ASSERT_TRUE(oid.ok()) << oid.status();

  auto content = world_.DownloadFile(world_.user_hosts().back(), "/apps/sec", "f");
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "secure bytes");
  EXPECT_GT(world_.secure_transport()->stats().handshakes, 0u);
}

TEST_F(SecureGdnWorldTest, UserCannotCommandGos) {
  sim::NodeId user = world_.user_hosts()[0];
  sim::Channel rpc(world_.transport(), user);
  ByteWriter w;
  w.WriteU16(dso::kProtoClientServer);
  w.WriteU16(kPackageTypeId);
  Status status = OkStatus();
  rpc.Call(world_.GosOf(0)->endpoint(), "gos.create_first_replica", w.Take(),
           [&](Result<sim::PayloadView> result) { status = result.status(); });
  world_.Run();
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
}

TEST_F(SecureGdnWorldTest, UserCannotModifyPackageReplica) {
  std::map<std::string, Bytes> files = {{"f", ToBytes("original")}};
  auto oid = world_.PublishPackage("/apps/target", files, dso::kProtoMasterSlave, 0);
  ASSERT_TRUE(oid.ok());

  // The attacker binds to the package directly and attempts a write invocation.
  sim::NodeId attacker = world_.user_hosts()[1];
  dso::RuntimeSystem runtime(world_.transport(), attacker,
                             world_.gls().LeafDirectoryFor(attacker),
                             &world_.repository());
  std::unique_ptr<dso::BoundObject> bound;
  runtime.Bind(*oid, {}, [&](Result<std::unique_ptr<dso::BoundObject>> r) {
    ASSERT_TRUE(r.ok());
    bound = std::move(*r);
  });
  world_.Run();
  ASSERT_NE(bound, nullptr);

  // Reads are allowed...
  Result<Bytes> read = Unavailable("pending");
  auto get = pkg::GetFileContents("f");
  bound->Invoke(get.method, get.args, true,
                [&](Result<Bytes> r) { read = std::move(r); });
  world_.Run();
  EXPECT_TRUE(read.ok());

  // ...but the write is refused by the replica's write guard.
  Result<Bytes> write = Unavailable("pending");
  auto add = pkg::AddFile("f", ToBytes("trojaned"));
  bound->Invoke(add.method, add.args, false,
                [&](Result<Bytes> r) { write = std::move(r); });
  world_.Run();
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.status().code(), StatusCode::kPermissionDenied);

  // The file is untouched.
  auto content = world_.DownloadFile(world_.user_hosts()[2], "/apps/target", "f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ToString(*content), "original");
}

TEST_F(SecureGdnWorldTest, MaintainerMayManageOnlyTheirPackage) {
  // Paper §2 (future work): "A GDN maintainer is allowed to manage just the contents
  // of a package."
  sim::NodeId maintainer_node = world_.user_hosts()[3];
  sec::PrincipalId maintainer =
      world_.AddMaintainerMachine("gimp-maintainer", maintainer_node);

  auto theirs = world_.PublishPackageWithMaintainers(
      "/apps/theirs", {{"f", ToBytes("v1")}}, dso::kProtoMasterSlave, 0, {},
      {maintainer});
  ASSERT_TRUE(theirs.ok()) << theirs.status();
  auto others = world_.PublishPackage("/apps/others", {{"f", ToBytes("v1")}},
                                      dso::kProtoMasterSlave, 0);
  ASSERT_TRUE(others.ok()) << others.status();

  auto write_as_maintainer = [&](const gls::ObjectId& oid) {
    dso::RuntimeSystem runtime(world_.transport(), maintainer_node,
                               world_.gls().LeafDirectoryFor(maintainer_node),
                               &world_.repository());
    std::unique_ptr<dso::BoundObject> bound;
    runtime.Bind(oid, {}, [&](Result<std::unique_ptr<dso::BoundObject>> r) {
      if (r.ok()) {
        bound = std::move(*r);
      }
    });
    world_.Run();
    Status status = Unavailable("bind failed");
    if (bound != nullptr) {
      auto invocation = pkg::AddFile("f", ToBytes("maintained"));
      bound->Invoke(invocation.method, invocation.args, false,
                    [&](Result<Bytes> r) { status = r.ok() ? OkStatus() : r.status(); });
      world_.Run();
    }
    return status;
  };

  // Their own package: allowed.
  EXPECT_TRUE(write_as_maintainer(*theirs).ok());
  // Someone else's package: refused.
  Status foreign = write_as_maintainer(*others);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.code(), StatusCode::kPermissionDenied);

  // And an ordinary user still cannot touch the maintained package.
  sim::NodeId user = world_.user_hosts()[2];
  dso::RuntimeSystem user_runtime(world_.transport(), user,
                                  world_.gls().LeafDirectoryFor(user),
                                  &world_.repository());
  std::unique_ptr<dso::BoundObject> bound;
  user_runtime.Bind(*theirs, {}, [&](Result<std::unique_ptr<dso::BoundObject>> r) {
    if (r.ok()) {
      bound = std::move(*r);
    }
  });
  world_.Run();
  ASSERT_NE(bound, nullptr);
  Status user_write = Unavailable("pending");
  auto invocation = pkg::AddFile("f", ToBytes("trojan"));
  bound->Invoke(invocation.method, invocation.args, false,
                [&](Result<Bytes> r) { user_write = r.ok() ? OkStatus() : r.status(); });
  world_.Run();
  EXPECT_EQ(user_write.code(), StatusCode::kPermissionDenied);
}

TEST_F(SecureGdnWorldTest, ModeratorCanModifyPackage) {
  std::map<std::string, Bytes> files = {{"f", ToBytes("v1")}};
  ASSERT_TRUE(world_.PublishPackage("/apps/mine", files, dso::kProtoMasterSlave, 0).ok());
  Status status = Unavailable("pending");
  world_.moderator()->AddFile("/apps/mine", "f", ToBytes("v2"),
                              [&](Status s) { status = s; });
  world_.Run();
  EXPECT_TRUE(status.ok()) << status;
}

}  // namespace
}  // namespace globe::gdn
