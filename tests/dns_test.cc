// Tests for the DNS substrate and the DNS-based Globe Name Service: zones, queries,
// caching with TTL expiry, TSIG-protected dynamic updates, zone transfer to
// secondaries, name mapping, moderator authorization and update batching.

#include <gtest/gtest.h>

#include "src/dns/gns.h"
#include "src/dns/message.h"
#include "src/dns/name.h"
#include "src/dns/resolver.h"
#include "src/dns/server.h"
#include "src/dns/zone.h"
#include "src/sec/secure_transport.h"
#include "src/sim/rpc.h"
#include "src/sim/backend.h"

namespace globe::dns {
namespace {

using sim::BuildUniformWorld;
using sim::Endpoint;
using sim::kSecond;
using sim::NodeId;
using sim::UniformWorld;

// ---------------------------------------------------------------- Names

TEST(NameTest, CanonicalizesCase) {
  EXPECT_EQ(CanonicalName("Gimp.GDN.cs.VU.nl").value(), "gimp.gdn.cs.vu.nl");
}

TEST(NameTest, RejectsEmpty) { EXPECT_FALSE(CanonicalName("").ok()); }

TEST(NameTest, RejectsEmptyLabel) {
  EXPECT_FALSE(CanonicalName("a..b").ok());
  EXPECT_FALSE(CanonicalName(".a").ok());
}

TEST(NameTest, RejectsLongLabel) {
  std::string label(64, 'a');
  EXPECT_FALSE(CanonicalName(label + ".nl").ok());
  EXPECT_TRUE(CanonicalName(std::string(63, 'a') + ".nl").ok());
}

TEST(NameTest, RejectsBadCharacters) {
  EXPECT_FALSE(CanonicalName("has space.nl").ok());
  EXPECT_FALSE(CanonicalName("star*.nl").ok());
}

TEST(NameTest, RejectsLeadingTrailingHyphen) {
  EXPECT_FALSE(CanonicalName("-abc.nl").ok());
  EXPECT_FALSE(CanonicalName("abc-.nl").ok());
  EXPECT_TRUE(CanonicalName("a-b-c.nl").ok());
}

TEST(NameTest, IsInZone) {
  EXPECT_TRUE(IsInZone("gimp.gdn.cs.vu.nl", "gdn.cs.vu.nl"));
  EXPECT_TRUE(IsInZone("gdn.cs.vu.nl", "gdn.cs.vu.nl"));
  EXPECT_FALSE(IsInZone("gimp.gdn.cs.vu.de", "gdn.cs.vu.nl"));
  EXPECT_FALSE(IsInZone("notgdn.cs.vu.nl", "gdn.cs.vu.nl"));
}

// ---------------------------------------------------------------- Globe <-> DNS names

TEST(GnsNameMappingTest, PaperExample) {
  // §5: /nl/vu/cs/globe/somePackage -> somepackage.globe.cs.vu.nl. Our mapping
  // appends the zone suffix, so the zone here is the top-level "nl" domain and the
  // object name carries the rest of the path.
  auto dns = GlobeNameToDnsName("/vu/cs/globe/somePackage", "nl");
  ASSERT_TRUE(dns.ok());
  EXPECT_EQ(*dns, "somepackage.globe.cs.vu.nl");
}

TEST(GnsNameMappingTest, GdnZoneHidesDomain) {
  auto dns = GlobeNameToDnsName("/apps/graphics/Gimp", "gdn.cs.vu.nl");
  ASSERT_TRUE(dns.ok());
  EXPECT_EQ(*dns, "gimp.graphics.apps.gdn.cs.vu.nl");
}

TEST(GnsNameMappingTest, RoundTrip) {
  auto dns = GlobeNameToDnsName("/apps/graphics/gimp", "gdn.cs.vu.nl");
  ASSERT_TRUE(dns.ok());
  auto globe_name = DnsNameToGlobeName(*dns, "gdn.cs.vu.nl");
  ASSERT_TRUE(globe_name.ok());
  EXPECT_EQ(*globe_name, "/apps/graphics/gimp");
}

TEST(GnsNameMappingTest, RejectsBadSyntax) {
  EXPECT_FALSE(GlobeNameToDnsName("", "gdn.cs.vu.nl").ok());
  EXPECT_FALSE(GlobeNameToDnsName("///", "gdn.cs.vu.nl").ok());
  // DNS syntax restriction surfaces here (paper §5 disadvantage 1).
  EXPECT_FALSE(GlobeNameToDnsName("/apps/my package", "gdn.cs.vu.nl").ok());
}

TEST(GnsNameMappingTest, InverseRejectsForeignZone) {
  EXPECT_FALSE(DnsNameToGlobeName("gimp.example.com", "gdn.cs.vu.nl").ok());
}

// ---------------------------------------------------------------- Zone

TEST(ZoneTest, AddLookupRemove) {
  Zone zone("gdn.cs.vu.nl");
  ASSERT_TRUE(zone.Add({"gimp.gdn.cs.vu.nl", RrType::kTxt, 3600, "oid-1"}).ok());
  auto records = zone.Lookup("gimp.gdn.cs.vu.nl", RrType::kTxt);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].data, "oid-1");
  EXPECT_EQ(zone.Remove("gimp.gdn.cs.vu.nl", RrType::kTxt), 1u);
  EXPECT_TRUE(zone.Lookup("gimp.gdn.cs.vu.nl", RrType::kTxt).empty());
}

TEST(ZoneTest, RejectsOutOfZoneRecord) {
  Zone zone("gdn.cs.vu.nl");
  EXPECT_FALSE(zone.Add({"gimp.example.com", RrType::kTxt, 3600, "x"}).ok());
}

TEST(ZoneTest, SerialBumpsOnChange) {
  Zone zone("gdn.cs.vu.nl");
  uint32_t s0 = zone.serial();
  ASSERT_TRUE(zone.Add({"a.gdn.cs.vu.nl", RrType::kTxt, 60, "1"}).ok());
  EXPECT_GT(zone.serial(), s0);
  uint32_t s1 = zone.serial();
  zone.Remove("a.gdn.cs.vu.nl", RrType::kTxt);
  EXPECT_GT(zone.serial(), s1);
}

TEST(ZoneTest, DuplicateAddIsIdempotent) {
  Zone zone("z.nl");
  ResourceRecord record{"a.z.nl", RrType::kTxt, 60, "1"};
  ASSERT_TRUE(zone.Add(record).ok());
  uint32_t serial = zone.serial();
  ASSERT_TRUE(zone.Add(record).ok());
  EXPECT_EQ(zone.serial(), serial);
  EXPECT_EQ(zone.record_count(), 1u);
}

TEST(ZoneTest, MultipleTypesAtOneName) {
  Zone zone("z.nl");
  ASSERT_TRUE(zone.Add({"a.z.nl", RrType::kTxt, 60, "txt"}).ok());
  ASSERT_TRUE(zone.Add({"a.z.nl", RrType::kA, 60, "10.0.0.1"}).ok());
  EXPECT_EQ(zone.Lookup("a.z.nl", RrType::kTxt).size(), 1u);
  EXPECT_EQ(zone.Lookup("a.z.nl", RrType::kA).size(), 1u);
  EXPECT_EQ(zone.RemoveName("a.z.nl"), 2u);
  EXPECT_FALSE(zone.HasName("a.z.nl"));
}

TEST(ZoneTest, SerializationRoundTrip) {
  Zone zone("z.nl", 120);
  ASSERT_TRUE(zone.Add({"a.z.nl", RrType::kTxt, 60, "one"}).ok());
  ASSERT_TRUE(zone.Add({"b.z.nl", RrType::kTxt, 90, "two"}).ok());
  ByteWriter w;
  zone.Serialize(&w);
  auto restored = Zone::Deserialize(w.data());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->origin(), "z.nl");
  EXPECT_EQ(restored->soa_minimum_ttl(), 120u);
  EXPECT_EQ(restored->serial(), zone.serial());
  EXPECT_EQ(restored->record_count(), 2u);
  EXPECT_EQ(restored->Lookup("b.z.nl", RrType::kTxt)[0].data, "two");
}

// ---------------------------------------------------------------- Messages / TSIG

TEST(MessageTest, QueryRoundTrip) {
  QueryRequest request;
  request.question = {"gimp.gdn.cs.vu.nl", RrType::kTxt};
  auto restored = QueryRequest::Deserialize(request.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->question.name, "gimp.gdn.cs.vu.nl");
  EXPECT_EQ(restored->question.type, RrType::kTxt);
}

TEST(MessageTest, ResponseRoundTrip) {
  QueryResponse response;
  response.rcode = Rcode::kNxDomain;
  response.authoritative = true;
  response.negative_ttl = 300;
  response.answers.push_back({"a.z.nl", RrType::kTxt, 60, "data"});
  auto restored = QueryResponse::Deserialize(response.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->rcode, Rcode::kNxDomain);
  EXPECT_TRUE(restored->authoritative);
  EXPECT_EQ(restored->negative_ttl, 300u);
  ASSERT_EQ(restored->answers.size(), 1u);
  EXPECT_EQ(restored->answers[0].data, "data");
}

TEST(MessageTest, UpdateTsigSignVerify) {
  UpdateRequest update;
  update.zone = "gdn.cs.vu.nl";
  update.additions.push_back({"gimp.gdn.cs.vu.nl", RrType::kTxt, 3600, "oid"});
  update.deletions.push_back({"old.gdn.cs.vu.nl", RrType::kTxt, true});
  update.key_name = "gdn-na";
  update.sequence = 7;

  Bytes key = ToBytes("shared-secret");
  TsigSign(&update, key);
  EXPECT_TRUE(TsigVerify(update, key));
  EXPECT_FALSE(TsigVerify(update, ToBytes("wrong-key")));

  // Any field change invalidates the MAC.
  UpdateRequest tampered = update;
  tampered.additions[0].data = "evil-oid";
  EXPECT_FALSE(TsigVerify(tampered, key));
}

TEST(MessageTest, UpdateSerializationRoundTrip) {
  UpdateRequest update;
  update.zone = "gdn.cs.vu.nl";
  update.additions.push_back({"a.gdn.cs.vu.nl", RrType::kTxt, 60, "x"});
  update.deletions.push_back({"b.gdn.cs.vu.nl", RrType::kTxt, false});
  update.key_name = "k";
  update.sequence = 3;
  TsigSign(&update, ToBytes("key"));

  auto restored = UpdateRequest::Deserialize(update.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->zone, update.zone);
  EXPECT_EQ(restored->additions, update.additions);
  EXPECT_EQ(restored->deletions, update.deletions);
  EXPECT_EQ(restored->sequence, 3u);
  EXPECT_TRUE(TsigVerify(*restored, ToBytes("key")));
}

TEST(MessageTest, MalformedUpdateRejected) {
  EXPECT_FALSE(UpdateRequest::Deserialize(Bytes{1, 2, 3}).ok());
}

// ---------------------------------------------------------------- Server + Resolver

class DnsServiceTest : public ::testing::Test {
 protected:
  static constexpr char kZone[] = "gdn.cs.vu.nl";

  DnsServiceTest()
      : world_(BuildUniformWorld({2, 2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        transport_(&network_) {
    tsig_keys_["gdn-na"] = ToBytes("naming-authority-key");
    tsig_keys_["axfr"] = ToBytes("transfer-key");

    primary_ =
        std::make_unique<AuthoritativeServer>(&transport_, world_.hosts[0], tsig_keys_);
    Zone zone(kZone, /*soa_minimum_ttl=*/300);
    EXPECT_TRUE(zone.Add({"gimp.graphics.apps.gdn.cs.vu.nl", RrType::kTxt, 3600,
                          "aabbccdd"}).ok());
    primary_->AddZone(std::move(zone), /*primary=*/true);

    resolver_ = std::make_unique<CachingResolver>(&transport_, world_.hosts[4]);
    resolver_->AddUpstream(kZone, primary_->endpoint());

    client_ =
        std::make_unique<DnsClient>(&transport_, world_.hosts[6], resolver_->endpoint());
  }

  QueryResponse ResolveSync(std::string_view name, RrType type = RrType::kTxt) {
    QueryResponse out;
    bool done = false;
    client_->Resolve(name, type, [&](Result<QueryResponse> result) {
      EXPECT_TRUE(result.ok()) << result.status();
      if (result.ok()) {
        out = std::move(*result);
      }
      done = true;
    });
    simulator_.Run();
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport transport_;
  TsigKeyTable tsig_keys_;
  std::unique_ptr<AuthoritativeServer> primary_;
  std::unique_ptr<CachingResolver> resolver_;
  std::unique_ptr<DnsClient> client_;
};

TEST_F(DnsServiceTest, PositiveAnswerThroughResolver) {
  QueryResponse response = ResolveSync("gimp.graphics.apps.gdn.cs.vu.nl");
  EXPECT_EQ(response.rcode, Rcode::kNoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].data, "aabbccdd");
  EXPECT_FALSE(response.from_cache);
}

TEST_F(DnsServiceTest, SecondQueryServedFromCache) {
  ResolveSync("gimp.graphics.apps.gdn.cs.vu.nl");
  uint64_t upstream_before = resolver_->stats().upstream_queries;
  QueryResponse response = ResolveSync("gimp.graphics.apps.gdn.cs.vu.nl");
  EXPECT_TRUE(response.from_cache);
  EXPECT_EQ(resolver_->stats().upstream_queries, upstream_before);
  EXPECT_EQ(resolver_->stats().cache_hits, 1u);
}

TEST_F(DnsServiceTest, CacheExpiresAfterTtl) {
  ResolveSync("gimp.graphics.apps.gdn.cs.vu.nl");
  // TTL is 3600 s; advance past it.
  simulator_.RunUntil(simulator_.Now() + 3601 * kSecond);
  QueryResponse response = ResolveSync("gimp.graphics.apps.gdn.cs.vu.nl");
  EXPECT_FALSE(response.from_cache);
  EXPECT_EQ(resolver_->stats().upstream_queries, 2u);
}

TEST_F(DnsServiceTest, NxdomainWithNegativeTtl) {
  QueryResponse response = ResolveSync("nosuch.apps.gdn.cs.vu.nl");
  EXPECT_EQ(response.rcode, Rcode::kNxDomain);
  EXPECT_EQ(response.negative_ttl, 300u);
}

TEST_F(DnsServiceTest, NegativeAnswersAreCached) {
  ResolveSync("nosuch.apps.gdn.cs.vu.nl");
  QueryResponse response = ResolveSync("nosuch.apps.gdn.cs.vu.nl");
  EXPECT_TRUE(response.from_cache);
  EXPECT_EQ(resolver_->stats().negative_cache_hits, 1u);
  // Negative entries expire on the SOA minimum.
  simulator_.RunUntil(simulator_.Now() + 301 * kSecond);
  response = ResolveSync("nosuch.apps.gdn.cs.vu.nl");
  EXPECT_FALSE(response.from_cache);
}

TEST_F(DnsServiceTest, QueryOutsideZoneRefused) {
  QueryResponse response = ResolveSync("www.example.com");
  EXPECT_EQ(response.rcode, Rcode::kServFail);  // resolver has no upstream for it
}

TEST_F(DnsServiceTest, DirectServerQueryOutsideZoneRefused) {
  QueryResponse out;
  client_->QueryServer(primary_->endpoint(), "www.example.com", RrType::kTxt,
                       [&](Result<QueryResponse> result) {
                         ASSERT_TRUE(result.ok());
                         out = std::move(*result);
                       });
  simulator_.Run();
  EXPECT_EQ(out.rcode, Rcode::kRefused);
}

TEST_F(DnsServiceTest, AuthenticUpdateAppliesAndPropagatesToSecondary) {
  auto secondary =
      std::make_unique<AuthoritativeServer>(&transport_, world_.hosts[2], tsig_keys_);
  secondary->AddZone(Zone(kZone, 300), /*primary=*/false);
  primary_->AddSecondary(kZone, secondary->endpoint());

  UpdateRequest update;
  update.zone = kZone;
  update.additions.push_back({"tetex.apps.gdn.cs.vu.nl", RrType::kTxt, 3600, "eeff0011"});
  update.key_name = "gdn-na";
  update.sequence = 1;
  TsigSign(&update, tsig_keys_["gdn-na"]);

  sim::Channel rpc(&transport_, world_.hosts[6]);
  Status status = InvalidArgument("pending");
  rpc.Call(primary_->endpoint(), "dns.update", update.Serialize(),
           [&](Result<sim::PayloadView> result) {
             status = result.ok() ? OkStatus() : result.status();
           });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(primary_->stats().updates_applied, 1u);
  EXPECT_EQ(primary_->stats().transfers_sent, 1u);
  EXPECT_EQ(secondary->stats().transfers_applied, 1u);

  // The secondary now answers for the new name.
  const Zone* replica = secondary->FindZone("tetex.apps.gdn.cs.vu.nl");
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->Lookup("tetex.apps.gdn.cs.vu.nl", RrType::kTxt).size(), 1u);
}

TEST_F(DnsServiceTest, ForgedUpdateRejected) {
  UpdateRequest update;
  update.zone = kZone;
  update.additions.push_back({"evil.gdn.cs.vu.nl", RrType::kTxt, 3600, "badc0de"});
  update.key_name = "gdn-na";
  update.sequence = 1;
  TsigSign(&update, ToBytes("attacker-guess"));  // wrong key

  sim::Channel rpc(&transport_, world_.hosts[6]);
  Status status;
  rpc.Call(primary_->endpoint(), "dns.update", update.Serialize(),
           [&](Result<sim::PayloadView> result) { status = result.status(); });
  simulator_.Run();
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(primary_->stats().updates_rejected, 1u);
  EXPECT_EQ(primary_->FindZone("evil.gdn.cs.vu.nl")
                ->Lookup("evil.gdn.cs.vu.nl", RrType::kTxt)
                .size(),
            0u);
}

TEST_F(DnsServiceTest, ReplayedUpdateRejected) {
  UpdateRequest update;
  update.zone = kZone;
  update.additions.push_back({"pkg.gdn.cs.vu.nl", RrType::kTxt, 3600, "11"});
  update.key_name = "gdn-na";
  update.sequence = 1;
  TsigSign(&update, tsig_keys_["gdn-na"]);
  Bytes wire = update.Serialize();

  sim::Channel rpc(&transport_, world_.hosts[6]);
  int ok_count = 0, denied_count = 0;
  auto record_result = [&](Result<sim::PayloadView> result) {
    if (result.ok()) {
      ++ok_count;
    } else if (result.status().code() == StatusCode::kPermissionDenied) {
      ++denied_count;
    }
  };
  rpc.Call(primary_->endpoint(), "dns.update", wire, record_result);
  simulator_.Run();
  rpc.Call(primary_->endpoint(), "dns.update", wire, record_result);  // replay
  simulator_.Run();
  EXPECT_EQ(ok_count, 1);
  EXPECT_EQ(denied_count, 1);
}

TEST_F(DnsServiceTest, UpdateToSecondaryRefused) {
  auto secondary =
      std::make_unique<AuthoritativeServer>(&transport_, world_.hosts[2], tsig_keys_);
  secondary->AddZone(Zone(kZone, 300), /*primary=*/false);

  UpdateRequest update;
  update.zone = kZone;
  update.key_name = "gdn-na";
  update.additions.push_back({"pkg.gdn.cs.vu.nl", RrType::kTxt, 3600, "11"});
  update.sequence = 1;
  TsigSign(&update, tsig_keys_["gdn-na"]);

  sim::Channel rpc(&transport_, world_.hosts[6]);
  Status status;
  rpc.Call(secondary->endpoint(), "dns.update", update.Serialize(),
           [&](Result<sim::PayloadView> result) { status = result.status(); });
  simulator_.Run();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(DnsServiceTest, RoundRobinAcrossReplicatedServers) {
  auto second =
      std::make_unique<AuthoritativeServer>(&transport_, world_.hosts[2], tsig_keys_);
  Zone zone2(kZone, 300);
  EXPECT_TRUE(
      zone2.Add({"gimp.graphics.apps.gdn.cs.vu.nl", RrType::kTxt, 3600, "aabbccdd"})
          .ok());
  second->AddZone(std::move(zone2), /*primary=*/false);
  resolver_->AddUpstream(kZone, second->endpoint());

  // Distinct names defeat the cache so every query goes upstream.
  for (int i = 0; i < 10; ++i) {
    ResolveSync("name" + std::to_string(i) + ".gdn.cs.vu.nl");
  }
  EXPECT_EQ(primary_->stats().queries, 5u);
  EXPECT_EQ(second->stats().queries, 5u);
}

// ---------------------------------------------------------------- GNS end-to-end

class GnsTest : public ::testing::Test {
 protected:
  static constexpr char kZone[] = "gdn.cs.vu.nl";

  GnsTest()
      : world_(BuildUniformWorld({2, 2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        plain_(&network_),
        secure_(&plain_, &registry_) {
    moderator_cred_ = registry_.Register("moderator-arno", sec::Role::kModerator);
    user_cred_ = registry_.Register("random-user", sec::Role::kUser);
    na_host_cred_ = registry_.Register("na-host", sec::Role::kGdnHost);

    moderator_node_ = world_.hosts[1];
    user_node_ = world_.hosts[3];
    na_node_ = world_.hosts[0];
    dns_node_ = world_.hosts[2];
    resolver_node_ = world_.hosts[4];
    secure_.SetNodeCredential(moderator_node_, moderator_cred_);
    secure_.SetNodeCredential(user_node_, user_cred_);
    secure_.SetNodeCredential(na_node_, na_host_cred_);

    // Moderator tool -> naming authority runs mutually authenticated; everything else
    // plain (the DNS itself cannot be protected by TLS, §6.3).
    secure_.SetChannelPolicy([this](NodeId src, NodeId dst) {
      sec::ChannelConfig config;
      if ((src == moderator_node_ || src == user_node_) && dst == na_node_) {
        config.auth = sec::AuthMode::kMutualAuth;
      }
      return config;
    });

    tsig_keys_["gdn-na"] = ToBytes("na-key");
    tsig_keys_["axfr"] = ToBytes("axfr-key");
    dns_server_ = std::make_unique<AuthoritativeServer>(&secure_, dns_node_, tsig_keys_);
    dns_server_->AddZone(Zone(kZone, 300), /*primary=*/true);

    NamingAuthorityOptions options;
    options.max_batch = 4;
    options.max_batch_delay = 2 * kSecond;
    authority_ = std::make_unique<GnsNamingAuthority>(
        &secure_, na_node_, kZone, &registry_, "gdn-na", tsig_keys_["gdn-na"],
        dns_server_->endpoint(), options);

    resolver_ = std::make_unique<CachingResolver>(&secure_, resolver_node_);
    resolver_->AddUpstream(kZone, dns_server_->endpoint());

    moderator_gns_ = std::make_unique<GnsClient>(&secure_, moderator_node_, kZone,
                                                 authority_->endpoint(),
                                                 resolver_->endpoint());
    user_gns_ = std::make_unique<GnsClient>(&secure_, user_node_, kZone,
                                            authority_->endpoint(),
                                            resolver_->endpoint());
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport plain_;
  sec::KeyRegistry registry_;
  sec::SecureTransport secure_;
  sec::Credential moderator_cred_, user_cred_, na_host_cred_;
  NodeId moderator_node_, user_node_, na_node_, dns_node_, resolver_node_;
  TsigKeyTable tsig_keys_;
  std::unique_ptr<AuthoritativeServer> dns_server_;
  std::unique_ptr<GnsNamingAuthority> authority_;
  std::unique_ptr<CachingResolver> resolver_;
  std::unique_ptr<GnsClient> moderator_gns_, user_gns_;
};

TEST_F(GnsTest, ModeratorRegistersNameUserResolvesIt) {
  Status add_status = InvalidArgument("pending");
  moderator_gns_->AddName("/apps/graphics/Gimp", "deadbeef01", [&](Status s) {
    add_status = s;
  });
  simulator_.Run();
  ASSERT_TRUE(add_status.ok()) << add_status;

  // The batch flushes on the delay timer; Run() drains it all.
  EXPECT_EQ(dns_server_->stats().updates_applied, 1u);

  Result<std::string> oid = NotFound("pending");
  user_gns_->Resolve("/apps/graphics/Gimp", [&](Result<std::string> result) {
    oid = std::move(result);
  });
  simulator_.Run();
  ASSERT_TRUE(oid.ok()) << oid.status();
  EXPECT_EQ(*oid, "deadbeef01");
}

TEST_F(GnsTest, PlainUserCannotRegisterNames) {
  Status status = OkStatus();
  user_gns_->AddName("/apps/evil/warez", "badbadbad0", [&](Status s) { status = s; });
  simulator_.Run();
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(authority_->stats().requests_denied, 1u);
  EXPECT_EQ(dns_server_->stats().updates_applied, 0u);
}

TEST_F(GnsTest, UnauthenticatedChannelCannotRegisterNames) {
  // A GNS client on a node with no credential: the channel policy yields plain.
  GnsClient anonymous(&secure_, world_.hosts[5], kZone, authority_->endpoint(),
                      resolver_->endpoint());
  Status status = OkStatus();
  anonymous.AddName("/apps/evil/warez", "badbadbad0", [&](Status s) { status = s; });
  simulator_.Run();
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
}

TEST_F(GnsTest, BatchingCoalescesUpdates) {
  // Four adds = exactly one batch (max_batch = 4).
  for (int i = 0; i < 4; ++i) {
    moderator_gns_->AddName("/apps/pkg" + std::to_string(i), "0a0b0c0d", [](Status) {});
  }
  simulator_.Run();
  EXPECT_EQ(authority_->stats().batches_sent, 1u);
  EXPECT_EQ(dns_server_->stats().updates_applied, 1u);
  EXPECT_EQ(dns_server_->FindZone("pkg0.apps.gdn.cs.vu.nl")->record_count(), 4u);
}

TEST_F(GnsTest, RemoveNameDeletesRecord) {
  moderator_gns_->AddName("/apps/tmp", "0123456789", [](Status) {});
  simulator_.Run();
  moderator_gns_->RemoveName("/apps/tmp", [](Status) {});
  simulator_.Run();

  // Fresh resolver path (cache may hold the old positive answer; flush it).
  resolver_->FlushCache();
  bool got_not_found = false;
  user_gns_->Resolve("/apps/tmp", [&](Result<std::string> result) {
    got_not_found = !result.ok() && result.status().code() == StatusCode::kNotFound;
  });
  simulator_.Run();
  EXPECT_TRUE(got_not_found);
}

TEST_F(GnsTest, ResolveUnknownNameIsNotFound) {
  bool got_not_found = false;
  user_gns_->Resolve("/apps/never/existed", [&](Result<std::string> result) {
    got_not_found = !result.ok() && result.status().code() == StatusCode::kNotFound;
  });
  simulator_.Run();
  EXPECT_TRUE(got_not_found);
}

}  // namespace
}  // namespace globe::dns
