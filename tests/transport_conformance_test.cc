// Transport conformance: one suite, every backend.
//
// The transport seam promises the layers above it (Channel, RpcServer, the
// whole service stack) the same observable behaviour whatever carries the
// frames. These tests run identically — same source, parameterized fixture —
// against the simulated network (virtual time) and the epoll socket backend
// (real loopback TCP, wall-clock time):
//   - delivery order between one endpoint pair is preserved,
//   - unregistering a port mid-delivery drops frames safely (including a
//     handler unregistering its own port),
//   - frames over kMaxFrameBytes are refused at the send side without harming
//     the connection,
//   - a dead peer surfaces as UNAVAILABLE and retries engage,
//   - a cancelled call schedules no further attempts (the retry-backoff timer
//     regression), and
//   - a typed RPC round-trips.
// Payload-lifetime conformance (the PayloadView contract):
//   - a stashed view observes stable bytes while later traffic churns the
//     backend's receive buffers, until the holder releases it,
//   - a request pinned across a deferred (service-time) dispatch stays valid,
//   - a response view stashed past the channel callback stays valid, and
//   - batched MAC verification rejects exactly the tampered frame in a batch.
// Plus socket-only end-to-ends: a real HTTP GET over a plain TCP socket
// fetches a package file from a StandaloneGdnNode, and read buffers recycle
// through the pool under connection churn without invalidating pinned views.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/gdn/standalone.h"
#include "src/sec/secure_transport.h"
#include "src/net/event_loop.h"
#include "src/net/socket_transport.h"
#include "src/sim/backend.h"
#include "src/sim/rpc.h"
#include "src/util/strings.h"

namespace globe {
namespace {

enum class Backend { kSim, kNet };

// What a conformance test needs from a backend: transports for a "client
// process" and a "server process", node allocation, a way to crash the server
// process, and a pump. On the simulated backend both processes share one
// network and time is virtual; on the socket backend they are two transports
// joined only by loopback TCP and time is the wall clock.
class TransportFixture {
 public:
  virtual ~TransportFixture() = default;
  virtual sim::Transport* client_transport() = 0;
  virtual sim::Transport* server_transport() = 0;
  virtual sim::NodeId NewClientNode() = 0;
  virtual sim::NodeId NewServerNode() = 0;
  // The server process dies: its ports become unreachable, established
  // connections (where connections exist) reset.
  virtual void KillServer() = 0;
  virtual bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout) = 0;
  virtual void RunFor(sim::SimTime duration) = 0;
};

class SimFixture : public TransportFixture {
 public:
  SimFixture() {
    domain_ = topology_.AddDomain("conformance", sim::kNoDomain);
    network_ = std::make_unique<sim::Network>(&simulator_, &topology_,
                                              sim::NetworkOptions{});
    transport_ = std::make_unique<sim::PlainTransport>(network_.get());
  }

  sim::Transport* client_transport() override { return transport_.get(); }
  sim::Transport* server_transport() override { return transport_.get(); }
  sim::NodeId NewClientNode() override { return topology_.AddNode("client", domain_); }
  sim::NodeId NewServerNode() override {
    sim::NodeId node = topology_.AddNode("server", domain_);
    server_nodes_.push_back(node);
    return node;
  }
  void KillServer() override {
    for (sim::NodeId node : server_nodes_) {
      network_->SetNodeUp(node, false);
    }
  }
  bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout) override {
    sim::SimTime deadline = simulator_.Now() + timeout;
    while (!pred()) {
      if (simulator_.Now() >= deadline) {
        return false;
      }
      if (!simulator_.Step()) {
        return pred();
      }
    }
    return true;
  }
  void RunFor(sim::SimTime duration) override {
    simulator_.RunUntil(simulator_.Now() + duration);
  }

 private:
  sim::Simulator simulator_;
  sim::Topology topology_;
  sim::DomainId domain_ = sim::kNoDomain;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<sim::PlainTransport> transport_;
  std::vector<sim::NodeId> server_nodes_;
};

class NetFixture : public TransportFixture {
 public:
  NetFixture() {
    client_ = std::make_unique<net::SocketTransport>(&loop_);
    server_ = std::make_unique<net::SocketTransport>(&loop_);
  }

  sim::Transport* client_transport() override { return client_.get(); }
  sim::Transport* server_transport() override { return server_.get(); }
  sim::NodeId NewClientNode() override { return next_node_++; }
  sim::NodeId NewServerNode() override {
    sim::NodeId node = next_node_++;
    auto port = server_->Listen(node);
    EXPECT_TRUE(port.ok()) << port.status();
    client_->AddRoute(node, "127.0.0.1", *port);
    return node;
  }
  void KillServer() override {
    // Destroying the transport closes the listeners and every connection;
    // peers observe resets / refused connects.
    server_.reset();
  }
  bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout) override {
    return loop_.RunUntil(pred, timeout);
  }
  void RunFor(sim::SimTime duration) override { loop_.RunFor(duration); }

 private:
  net::EventLoop loop_;
  std::unique_ptr<net::SocketTransport> client_;
  std::unique_ptr<net::SocketTransport> server_;
  sim::NodeId next_node_ = 1;
};

class TransportConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kSim) {
      fixture_ = std::make_unique<SimFixture>();
    } else {
      fixture_ = std::make_unique<NetFixture>();
    }
  }

  std::unique_ptr<TransportFixture> fixture_;
};

TEST_P(TransportConformanceTest, DeliveryOrderIsPreserved) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();

  std::vector<uint8_t> received;
  fixture_->server_transport()->RegisterPort(
      server, 7000, [&](const sim::TransportDelivery& d) {
        if (!d.transport_error) {
          received.push_back(d.payload.span()[0]);
        }
      });

  constexpr int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) {
    fixture_->client_transport()->Send({client, 41000}, {server, 7000},
                                       Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(fixture_->RunUntil(
      [&]() { return received.size() == kFrames; }, 10 * sim::kSecond));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(received[i], static_cast<uint8_t>(i)) << "frame " << i << " out of order";
  }
  fixture_->server_transport()->UnregisterPort(server, 7000);
}

TEST_P(TransportConformanceTest, PortUnregisterDuringDelivery) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();
  sim::Transport* st = fixture_->server_transport();

  int a_deliveries = 0;
  int b_deliveries = 0;
  st->RegisterPort(server, 7001, [&](const sim::TransportDelivery& d) {
    if (d.transport_error) {
      return;
    }
    ++a_deliveries;
    // Mid-delivery, tear down the neighbour port AND this very port. Frames
    // already in flight to either must be dropped, not crash.
    st->UnregisterPort(server, 7002);
    st->UnregisterPort(server, 7001);
  });
  st->RegisterPort(server, 7002, [&](const sim::TransportDelivery& d) {
    if (!d.transport_error) {
      ++b_deliveries;
    }
  });

  sim::Transport* ct = fixture_->client_transport();
  ct->Send({client, 41000}, {server, 7001}, Bytes{1});
  ct->Send({client, 41000}, {server, 7001}, Bytes{2});  // self-unregistered
  ct->Send({client, 41000}, {server, 7002}, Bytes{3});  // neighbour-unregistered

  fixture_->RunUntil([&]() { return a_deliveries >= 1; }, 10 * sim::kSecond);
  fixture_->RunFor(200 * sim::kMillisecond);
  EXPECT_EQ(a_deliveries, 1);
  EXPECT_EQ(b_deliveries, 0);
}

TEST_P(TransportConformanceTest, OversizedFrameIsRefusedAtSend) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();

  size_t deliveries = 0;
  size_t last_size = 0;
  fixture_->server_transport()->RegisterPort(
      server, 7003, [&](const sim::TransportDelivery& d) {
        if (!d.transport_error) {
          ++deliveries;
          last_size = d.payload.size();
        }
      });

  fixture_->client_transport()->Send({client, 41000}, {server, 7003},
                                     Bytes(sim::kMaxFrameBytes + 1, 0xAA));
  // The refusal must not poison the path: a legitimate frame still arrives.
  fixture_->client_transport()->Send({client, 41000}, {server, 7003}, Bytes{0x55});

  ASSERT_TRUE(
      fixture_->RunUntil([&]() { return deliveries >= 1; }, 10 * sim::kSecond));
  fixture_->RunFor(100 * sim::kMillisecond);
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(last_size, 1u);
  fixture_->server_transport()->UnregisterPort(server, 7003);
}

TEST_P(TransportConformanceTest, TypedRpcRoundTrip) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  sim::RpcServer server(fixture_->server_transport(), server_node, 7004);
  server.RegisterMethod("echo", [](const sim::RpcContext&, ByteSpan request) {
    return Bytes(request.begin(), request.end());
  });

  sim::Channel channel(fixture_->client_transport(), client_node);
  Result<Bytes> out = Unavailable("pending");
  bool done = false;
  channel.Call(server.endpoint(), "echo", Bytes{1, 2, 3, 4}, [&](Result<sim::PayloadView> r) {
    out = r.ok() ? Result<Bytes>(r->Copy()) : Result<Bytes>(r.status());
    done = true;
  });
  ASSERT_TRUE(fixture_->RunUntil([&]() { return done; }, 10 * sim::kSecond));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (Bytes{1, 2, 3, 4}));
}

TEST_P(TransportConformanceTest, DeadPeerSurfacesUnavailableAndRetriesEngage) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  auto server = std::make_unique<sim::RpcServer>(fixture_->server_transport(),
                                                 server_node, 7005);
  server->RegisterMethod("ping", [](const sim::RpcContext&, ByteSpan) {
    return Bytes{};
  });

  sim::Channel channel(fixture_->client_transport(), client_node);

  // Prove the path works, and (on the socket backend) establish the connection
  // whose reset the client must then observe.
  bool warm_done = false;
  channel.Call(server->endpoint(), "ping", Bytes{}, [&](Result<sim::PayloadView> r) {
    EXPECT_TRUE(r.ok()) << r.status();
    warm_done = true;
  });
  ASSERT_TRUE(fixture_->RunUntil([&]() { return warm_done; }, 10 * sim::kSecond));

  sim::Endpoint dead = server->endpoint();
  server.reset();  // destroy before the process dies so no dangling handler runs
  fixture_->KillServer();
  fixture_->RunFor(100 * sim::kMillisecond);  // let resets propagate

  sim::CallOptions options;
  options.deadline = 300 * sim::kMillisecond;
  options.retry.attempts = 2;
  options.retry.backoff = 100 * sim::kMillisecond;
  Result<sim::PayloadView> out = Unavailable("pending");
  bool done = false;
  channel.Call(
      dead, "ping", Bytes{},
      [&](Result<sim::PayloadView> r) {
        out = std::move(r);
        done = true;
      },
      options);
  ASSERT_TRUE(fixture_->RunUntil([&]() { return done; }, 30 * sim::kSecond));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable) << out.status();
  EXPECT_GE(channel.stats().retries, 1u);
}

// Regression for the retry-backoff timer lifecycle: cancelling a call while it
// waits out the backoff between attempts must cancel the pending resend. Before
// the timer split, a stale backoff timer could fire after Cancel() and launch
// another attempt at the server.
TEST_P(TransportConformanceTest, CancelledCallSchedulesNoFurtherAttempts) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  int executions = 0;
  sim::RpcServer server(fixture_->server_transport(), server_node, 7006);
  server.RegisterMethod("flaky", [&](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
    ++executions;
    return Unavailable("try again");  // retriable: the client schedules a backoff
  });

  sim::Channel channel(fixture_->client_transport(), client_node);
  sim::CallOptions options;
  options.deadline = 5 * sim::kSecond;
  options.retry.attempts = 3;
  options.retry.backoff = 800 * sim::kMillisecond;

  bool callback_ran = false;
  sim::CallHandle call = channel.Call(
      {server_node, 7006}, "flaky", Bytes{},
      [&](Result<sim::PayloadView>) { callback_ran = true; }, options);

  // First attempt executes and its UNAVAILABLE answer lands; the call is now
  // sitting in the 800 ms backoff before attempt two.
  ASSERT_TRUE(fixture_->RunUntil([&]() { return executions == 1; }, 10 * sim::kSecond));
  fixture_->RunFor(100 * sim::kMillisecond);
  ASSERT_TRUE(call.active());

  call.Cancel();
  EXPECT_FALSE(call.active());

  // Ride well past where attempts two and three would have fired.
  fixture_->RunFor(3 * sim::kSecond);
  EXPECT_EQ(executions, 1) << "a cancelled call sent another attempt";
  EXPECT_FALSE(callback_ran);
  EXPECT_EQ(channel.stats().cancelled, 1u);
}

// ---- Payload-lifetime conformance: the PayloadView contract. ----

// A handler stashes the delivery's view without copying; 64 further frames
// then churn the receive path (on the socket backend this forces the
// connection to swap its pinned read buffer). The stashed bytes must read
// back unchanged until the holder releases the pin. Under ASan, a backend
// that recycled the buffer out from under the view fails here loudly.
TEST_P(TransportConformanceTest, StashedViewObservesStableBytesUnderBufferChurn) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();

  Bytes first(4096);
  for (size_t i = 0; i < first.size(); ++i) {
    first[i] = static_cast<uint8_t>(i * 7 + 3);
  }

  sim::PayloadView stashed;
  size_t churn_seen = 0;
  fixture_->server_transport()->RegisterPort(
      server, 7007, [&](const sim::TransportDelivery& d) {
        if (d.transport_error) {
          return;
        }
        if (stashed.empty()) {
          stashed = d.payload;  // pin the view, no copy
        } else {
          ++churn_seen;
        }
      });

  fixture_->client_transport()->Send({client, 41000}, {server, 7007}, first);
  ASSERT_TRUE(
      fixture_->RunUntil([&]() { return !stashed.empty(); }, 10 * sim::kSecond));

  constexpr size_t kChurnFrames = 64;
  for (size_t i = 0; i < kChurnFrames; ++i) {
    fixture_->client_transport()->Send({client, 41000}, {server, 7007},
                                       Bytes(4096, static_cast<uint8_t>(0xC0 + i)));
  }
  ASSERT_TRUE(fixture_->RunUntil([&]() { return churn_seen == kChurnFrames; },
                                 10 * sim::kSecond));

  ASSERT_EQ(stashed.size(), first.size());
  EXPECT_TRUE(std::equal(stashed.span().begin(), stashed.span().end(), first.begin()))
      << "stashed view changed underneath its pin";
  stashed.Reset();  // release: the backing buffer may now return to the pool
  fixture_->server_transport()->UnregisterPort(server, 7007);
}

// Regression for the deferred-dispatch path: with a service time set, the
// server parses the request on arrival but dispatches it only when a virtual
// CPU frees up. The request payload is a pinned view; churn traffic arriving
// on the same connection in between must not invalidate it.
TEST_P(TransportConformanceTest, DeferredDispatchPinsRequestAcrossServiceTime) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  Bytes request(2048);
  for (size_t i = 0; i < request.size(); ++i) {
    request[i] = static_cast<uint8_t>(i * 13 + 1);
  }

  sim::RpcServer server(fixture_->server_transport(), server_node, 7008);
  server.set_service_time(50 * sim::kMillisecond);
  server.RegisterMethod("echo", [](const sim::RpcContext&, ByteSpan req) {
    return Bytes(req.begin(), req.end());
  });
  // A raw port on the same node: its frames share the connection (and thus the
  // read buffer) with the queued request.
  size_t churn_seen = 0;
  fixture_->server_transport()->RegisterPort(
      server_node, 7018, [&](const sim::TransportDelivery& d) {
        if (!d.transport_error) {
          ++churn_seen;
        }
      });

  sim::Channel channel(fixture_->client_transport(), client_node);
  Result<Bytes> out = Unavailable("pending");
  bool done = false;
  channel.Call(server.endpoint(), "echo", request, [&](Result<sim::PayloadView> r) {
    out = r.ok() ? Result<Bytes>(r->Copy()) : Result<Bytes>(r.status());
    done = true;
  });
  constexpr size_t kChurnFrames = 32;
  for (size_t i = 0; i < kChurnFrames; ++i) {
    fixture_->client_transport()->Send({client_node, 41000}, {server_node, 7018},
                                       Bytes(2048, static_cast<uint8_t>(i)));
  }

  ASSERT_TRUE(fixture_->RunUntil([&]() { return done; }, 30 * sim::kSecond));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, request) << "request bytes changed while waiting for a worker";
  EXPECT_EQ(churn_seen, kChurnFrames);
  fixture_->server_transport()->UnregisterPort(server_node, 7018);
}

// A channel callback keeps the Result<PayloadView> past Finalize — the other
// way a view legitimately outlives its delivery. 32 further calls churn the
// same connection before the stash is read.
TEST_P(TransportConformanceTest, StashedResponseViewSurvivesLaterTraffic) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  sim::RpcServer server(fixture_->server_transport(), server_node, 7009);
  server.RegisterMethod("echo", [](const sim::RpcContext&, ByteSpan req) {
    return Bytes(req.begin(), req.end());
  });

  Bytes expected(1024);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<uint8_t>(i * 31 + 7);
  }

  sim::Channel channel(fixture_->client_transport(), client_node);
  Result<sim::PayloadView> saved = Unavailable("pending");
  bool first_done = false;
  channel.Call(server.endpoint(), "echo", expected, [&](Result<sim::PayloadView> r) {
    saved = std::move(r);  // stash the pinned response past the callback
    first_done = true;
  });
  ASSERT_TRUE(fixture_->RunUntil([&]() { return first_done; }, 10 * sim::kSecond));

  size_t later_done = 0;
  for (size_t i = 0; i < 32; ++i) {
    channel.Call(server.endpoint(), "echo", Bytes(1024, static_cast<uint8_t>(i)),
                 [&](Result<sim::PayloadView> r) {
                   if (r.ok()) {
                     ++later_done;
                   }
                 });
  }
  ASSERT_TRUE(
      fixture_->RunUntil([&]() { return later_done == 32; }, 30 * sim::kSecond));

  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_EQ(saved->Copy(), expected) << "stashed response changed under later traffic";
}

// A decorator that corrupts the Nth data frame on its way into the backend —
// the wire attacker sitting between the secure layer and the transport.
class TamperTransport : public sim::Transport {
 public:
  explicit TamperTransport(sim::Transport* inner) : inner_(inner) {}

  void set_tamper_index(int index) { tamper_index_ = index; }
  int data_frames() const { return data_frames_; }

  void Send(const sim::Endpoint& src, const sim::Endpoint& dst,
            ByteSpan payload) override {
    // Port 1 is the secure transport's synthetic handshake sink; only count
    // (and only corrupt) data frames.
    if (dst.port != 1 && data_frames_++ == tamper_index_) {
      Bytes corrupted = ToBytes(payload);
      corrupted.back() ^= 0x01;  // last byte = last MAC byte
      inner_->Send(src, dst, corrupted);
      return;
    }
    inner_->Send(src, dst, payload);
  }
  void RegisterPort(sim::NodeId node, uint16_t port,
                    sim::TransportHandler handler) override {
    inner_->RegisterPort(node, port, std::move(handler));
  }
  void UnregisterPort(sim::NodeId node, uint16_t port) override {
    inner_->UnregisterPort(node, port);
  }
  sim::Clock* clock() override { return inner_->clock(); }
  double EstimateDeliveryDelayUs(sim::NodeId src, sim::NodeId dst,
                                 size_t bytes) const override {
    return inner_->EstimateDeliveryDelayUs(src, dst, bytes);
  }

 private:
  sim::Transport* inner_;
  int tamper_index_ = -1;
  int data_frames_ = 0;
};

// Batched verification must fail frames individually: one corrupted frame in
// a burst is rejected, its batch-mates deliver in order. Runs the secure
// transport over both backends (one shared instance holds both ends' session
// state; on the socket backend Listen()'s self-route loops the frames through
// real TCP).
TEST_P(TransportConformanceTest, BatchedMacVerifyRejectsExactlyTheTamperedFrame) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();

  TamperTransport tamper(fixture_->server_transport());
  sec::KeyRegistry registry;
  sec::CryptoProfile profile;
  profile.mac_us_per_byte = 0;
  profile.cipher_us_per_byte = 0;
  profile.handshake_cpu_us = 0;
  profile.handshake_bytes = 64;
  profile.handshake_rtts = 0;
  sec::SecureTransport secure(&tamper, &registry, profile);
  ASSERT_EQ(secure.verify_mode(), sec::VerifyMode::kBatched);

  secure.SetNodeCredential(client, registry.Register("conf-client", sec::Role::kGdnHost));
  secure.SetNodeCredential(server, registry.Register("conf-server", sec::Role::kGdnHost));
  secure.SetChannelPolicy([](sim::NodeId, sim::NodeId) {
    sec::ChannelConfig config;
    config.auth = sec::AuthMode::kMutualAuth;
    return config;
  });

  std::vector<uint8_t> delivered;
  secure.RegisterPort(server, 7010, [&](const sim::TransportDelivery& d) {
    if (!d.transport_error) {
      delivered.push_back(d.payload.span()[0]);
    }
  });

  // Frame 0 establishes the session and drains the handshake.
  secure.Send({client, 41000}, {server, 7010}, Bytes{0});
  ASSERT_TRUE(
      fixture_->RunUntil([&]() { return delivered.size() == 1; }, 10 * sim::kSecond));

  // A burst of five; the third is corrupted on the wire.
  tamper.set_tamper_index(tamper.data_frames() + 2);
  for (uint8_t i = 1; i <= 5; ++i) {
    secure.Send({client, 41000}, {server, 7010}, Bytes{i});
  }
  ASSERT_TRUE(
      fixture_->RunUntil([&]() { return delivered.size() == 5; }, 10 * sim::kSecond));
  fixture_->RunFor(100 * sim::kMillisecond);

  EXPECT_EQ(delivered, (std::vector<uint8_t>{0, 1, 2, 4, 5}))
      << "exactly the tampered frame must be missing";
  EXPECT_EQ(secure.stats().mac_failures, 1u);
  EXPECT_GE(secure.stats().verify_batches, 2u);
  EXPECT_EQ(secure.stats().batched_frames, 6u);
  if (GetParam() == Backend::kSim) {
    // On virtual time the whole burst lands in one wake: one flush of five.
    EXPECT_EQ(secure.stats().max_batch_frames, 5u);
  }
  secure.UnregisterPort(server, 7010);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values(Backend::kSim, Backend::kNet),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kSim ? "sim" : "net";
                         });

// ---- Socket-only end to end: plain HTTP over a real TCP socket. ----

namespace {

// A minimal blocking HTTP/1.0 client, run on its own thread while the node's
// event loop turns on the test thread. Returns the raw response text.
std::string BlockingHttpGet(uint16_t port, const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  std::string request = "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

}  // namespace

TEST(SocketTransportEndToEnd, HttpGetFetchesPublishedPackage) {
  net::EventLoop loop;
  net::SocketTransport transport(&loop);

  gdn::StandaloneGdnNode node(&transport, {}, [&](sim::NodeId n) {
    auto port = transport.Listen(n);
    ASSERT_TRUE(port.ok()) << port.status();
  });
  auto http_port = transport.ListenHttp(node.httpd_node(), 0);
  ASSERT_TRUE(http_port.ok()) << http_port.status();

  gdn::StandaloneGdnNode::Pump pump = [&](const std::function<bool()>& done) {
    if (!done) {
      loop.RunFor(200 * sim::kMillisecond);
      return true;
    }
    return loop.RunUntil(done, 10 * sim::kSecond);
  };
  const std::string body_text = "conformance suite payload\n";
  auto oid = node.PublishPackage("/tests/Conformance",
                                 {{"data.txt", ToBytes(body_text)}}, pump);
  ASSERT_TRUE(oid.ok()) << oid.status();

  std::atomic<bool> fetched{false};
  std::string response;
  std::thread client([&]() {
    response = BlockingHttpGet(*http_port, "/packages/tests/Conformance/files/data.txt");
    fetched = true;
  });
  EXPECT_TRUE(loop.RunUntil([&]() { return fetched.load(); }, 30 * sim::kSecond));
  client.join();

  ASSERT_FALSE(response.empty()) << "no HTTP response over the socket";
  EXPECT_NE(response.find("200"), std::string::npos) << response.substr(0, 200);
  EXPECT_NE(response.find(body_text), std::string::npos);
  EXPECT_GE(transport.stats().http_requests, 1u);
}

// Connection churn: each short-lived client connection acquires a read buffer
// from the server's pool and returns it on close — except the one still pinned
// by a stashed view, which must keep its bytes until released. Later accepts
// must observe freelist hits.
TEST(SocketTransportEndToEnd, ReadBuffersRecycleUnderConnectionChurn) {
  net::EventLoop loop;
  net::SocketTransport server(&loop);
  const sim::NodeId node = 1;
  auto port = server.Listen(node);
  ASSERT_TRUE(port.ok()) << port.status();

  sim::PayloadView stashed;
  Bytes expected;
  size_t frames = 0;
  server.RegisterPort(node, 7100, [&](const sim::TransportDelivery& d) {
    if (d.transport_error) {
      return;
    }
    ++frames;
    if (stashed.empty()) {
      stashed = d.payload;  // pins the first connection's read buffer
      expected = d.payload.Copy();
    }
  });

  constexpr int kConnections = 6;
  for (int i = 0; i < kConnections; ++i) {
    size_t before = frames;
    net::SocketTransport client(&loop);
    client.AddRoute(node, "127.0.0.1", *port);
    client.Send({static_cast<sim::NodeId>(100 + i), 41000}, {node, 7100},
                Bytes(2048, static_cast<uint8_t>(0x10 + i)));
    ASSERT_TRUE(
        loop.RunUntil([&]() { return frames == before + 1; }, 10 * sim::kSecond));
    // The client destructs here: its connection closes and the server-side
    // read buffer (unless pinned) returns to the pool.
  }
  loop.RunFor(100 * sim::kMillisecond);  // drain the final EOF

  EXPECT_EQ(frames, static_cast<size_t>(kConnections));
  EXPECT_GE(server.stats().read_bufs_recycled, 1u)
      << "closed connections' buffers never came back from the freelist";
  ASSERT_EQ(stashed.size(), expected.size());
  EXPECT_TRUE(std::equal(stashed.span().begin(), stashed.span().end(), expected.begin()))
      << "pinned buffer was recycled while a view still held it";
}

}  // namespace
}  // namespace globe
