// Transport conformance: one suite, every backend.
//
// The transport seam promises the layers above it (Channel, RpcServer, the
// whole service stack) the same observable behaviour whatever carries the
// frames. These tests run identically — same source, parameterized fixture —
// against the simulated network (virtual time) and the epoll socket backend
// (real loopback TCP, wall-clock time):
//   - delivery order between one endpoint pair is preserved,
//   - unregistering a port mid-delivery drops frames safely (including a
//     handler unregistering its own port),
//   - frames over kMaxFrameBytes are refused at the send side without harming
//     the connection,
//   - a dead peer surfaces as UNAVAILABLE and retries engage,
//   - a cancelled call schedules no further attempts (the retry-backoff timer
//     regression), and
//   - a typed RPC round-trips.
// Plus a socket-only end-to-end: a real HTTP GET over a plain TCP socket
// fetches a package file from a StandaloneGdnNode.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/gdn/standalone.h"
#include "src/net/event_loop.h"
#include "src/net/socket_transport.h"
#include "src/sim/backend.h"
#include "src/sim/rpc.h"
#include "src/util/strings.h"

namespace globe {
namespace {

enum class Backend { kSim, kNet };

// What a conformance test needs from a backend: transports for a "client
// process" and a "server process", node allocation, a way to crash the server
// process, and a pump. On the simulated backend both processes share one
// network and time is virtual; on the socket backend they are two transports
// joined only by loopback TCP and time is the wall clock.
class TransportFixture {
 public:
  virtual ~TransportFixture() = default;
  virtual sim::Transport* client_transport() = 0;
  virtual sim::Transport* server_transport() = 0;
  virtual sim::NodeId NewClientNode() = 0;
  virtual sim::NodeId NewServerNode() = 0;
  // The server process dies: its ports become unreachable, established
  // connections (where connections exist) reset.
  virtual void KillServer() = 0;
  virtual bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout) = 0;
  virtual void RunFor(sim::SimTime duration) = 0;
};

class SimFixture : public TransportFixture {
 public:
  SimFixture() {
    domain_ = topology_.AddDomain("conformance", sim::kNoDomain);
    network_ = std::make_unique<sim::Network>(&simulator_, &topology_,
                                              sim::NetworkOptions{});
    transport_ = std::make_unique<sim::PlainTransport>(network_.get());
  }

  sim::Transport* client_transport() override { return transport_.get(); }
  sim::Transport* server_transport() override { return transport_.get(); }
  sim::NodeId NewClientNode() override { return topology_.AddNode("client", domain_); }
  sim::NodeId NewServerNode() override {
    sim::NodeId node = topology_.AddNode("server", domain_);
    server_nodes_.push_back(node);
    return node;
  }
  void KillServer() override {
    for (sim::NodeId node : server_nodes_) {
      network_->SetNodeUp(node, false);
    }
  }
  bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout) override {
    sim::SimTime deadline = simulator_.Now() + timeout;
    while (!pred()) {
      if (simulator_.Now() >= deadline) {
        return false;
      }
      if (!simulator_.Step()) {
        return pred();
      }
    }
    return true;
  }
  void RunFor(sim::SimTime duration) override {
    simulator_.RunUntil(simulator_.Now() + duration);
  }

 private:
  sim::Simulator simulator_;
  sim::Topology topology_;
  sim::DomainId domain_ = sim::kNoDomain;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<sim::PlainTransport> transport_;
  std::vector<sim::NodeId> server_nodes_;
};

class NetFixture : public TransportFixture {
 public:
  NetFixture() {
    client_ = std::make_unique<net::SocketTransport>(&loop_);
    server_ = std::make_unique<net::SocketTransport>(&loop_);
  }

  sim::Transport* client_transport() override { return client_.get(); }
  sim::Transport* server_transport() override { return server_.get(); }
  sim::NodeId NewClientNode() override { return next_node_++; }
  sim::NodeId NewServerNode() override {
    sim::NodeId node = next_node_++;
    auto port = server_->Listen(node);
    EXPECT_TRUE(port.ok()) << port.status();
    client_->AddRoute(node, "127.0.0.1", *port);
    return node;
  }
  void KillServer() override {
    // Destroying the transport closes the listeners and every connection;
    // peers observe resets / refused connects.
    server_.reset();
  }
  bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout) override {
    return loop_.RunUntil(pred, timeout);
  }
  void RunFor(sim::SimTime duration) override { loop_.RunFor(duration); }

 private:
  net::EventLoop loop_;
  std::unique_ptr<net::SocketTransport> client_;
  std::unique_ptr<net::SocketTransport> server_;
  sim::NodeId next_node_ = 1;
};

class TransportConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kSim) {
      fixture_ = std::make_unique<SimFixture>();
    } else {
      fixture_ = std::make_unique<NetFixture>();
    }
  }

  std::unique_ptr<TransportFixture> fixture_;
};

TEST_P(TransportConformanceTest, DeliveryOrderIsPreserved) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();

  std::vector<uint8_t> received;
  fixture_->server_transport()->RegisterPort(
      server, 7000, [&](const sim::TransportDelivery& d) {
        if (!d.transport_error) {
          received.push_back(d.payload.at(0));
        }
      });

  constexpr int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) {
    fixture_->client_transport()->Send({client, 41000}, {server, 7000},
                                       Bytes{static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(fixture_->RunUntil(
      [&]() { return received.size() == kFrames; }, 10 * sim::kSecond));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(received[i], static_cast<uint8_t>(i)) << "frame " << i << " out of order";
  }
  fixture_->server_transport()->UnregisterPort(server, 7000);
}

TEST_P(TransportConformanceTest, PortUnregisterDuringDelivery) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();
  sim::Transport* st = fixture_->server_transport();

  int a_deliveries = 0;
  int b_deliveries = 0;
  st->RegisterPort(server, 7001, [&](const sim::TransportDelivery& d) {
    if (d.transport_error) {
      return;
    }
    ++a_deliveries;
    // Mid-delivery, tear down the neighbour port AND this very port. Frames
    // already in flight to either must be dropped, not crash.
    st->UnregisterPort(server, 7002);
    st->UnregisterPort(server, 7001);
  });
  st->RegisterPort(server, 7002, [&](const sim::TransportDelivery& d) {
    if (!d.transport_error) {
      ++b_deliveries;
    }
  });

  sim::Transport* ct = fixture_->client_transport();
  ct->Send({client, 41000}, {server, 7001}, Bytes{1});
  ct->Send({client, 41000}, {server, 7001}, Bytes{2});  // self-unregistered
  ct->Send({client, 41000}, {server, 7002}, Bytes{3});  // neighbour-unregistered

  fixture_->RunUntil([&]() { return a_deliveries >= 1; }, 10 * sim::kSecond);
  fixture_->RunFor(200 * sim::kMillisecond);
  EXPECT_EQ(a_deliveries, 1);
  EXPECT_EQ(b_deliveries, 0);
}

TEST_P(TransportConformanceTest, OversizedFrameIsRefusedAtSend) {
  sim::NodeId client = fixture_->NewClientNode();
  sim::NodeId server = fixture_->NewServerNode();

  size_t deliveries = 0;
  size_t last_size = 0;
  fixture_->server_transport()->RegisterPort(
      server, 7003, [&](const sim::TransportDelivery& d) {
        if (!d.transport_error) {
          ++deliveries;
          last_size = d.payload.size();
        }
      });

  fixture_->client_transport()->Send({client, 41000}, {server, 7003},
                                     Bytes(sim::kMaxFrameBytes + 1, 0xAA));
  // The refusal must not poison the path: a legitimate frame still arrives.
  fixture_->client_transport()->Send({client, 41000}, {server, 7003}, Bytes{0x55});

  ASSERT_TRUE(
      fixture_->RunUntil([&]() { return deliveries >= 1; }, 10 * sim::kSecond));
  fixture_->RunFor(100 * sim::kMillisecond);
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(last_size, 1u);
  fixture_->server_transport()->UnregisterPort(server, 7003);
}

TEST_P(TransportConformanceTest, TypedRpcRoundTrip) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  sim::RpcServer server(fixture_->server_transport(), server_node, 7004);
  server.RegisterMethod("echo", [](const sim::RpcContext&, ByteSpan request) {
    return Bytes(request.begin(), request.end());
  });

  sim::Channel channel(fixture_->client_transport(), client_node);
  Result<Bytes> out = Unavailable("pending");
  bool done = false;
  channel.Call(server.endpoint(), "echo", Bytes{1, 2, 3, 4}, [&](Result<Bytes> r) {
    out = std::move(r);
    done = true;
  });
  ASSERT_TRUE(fixture_->RunUntil([&]() { return done; }, 10 * sim::kSecond));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, (Bytes{1, 2, 3, 4}));
}

TEST_P(TransportConformanceTest, DeadPeerSurfacesUnavailableAndRetriesEngage) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  auto server = std::make_unique<sim::RpcServer>(fixture_->server_transport(),
                                                 server_node, 7005);
  server->RegisterMethod("ping", [](const sim::RpcContext&, ByteSpan) {
    return Bytes{};
  });

  sim::Channel channel(fixture_->client_transport(), client_node);

  // Prove the path works, and (on the socket backend) establish the connection
  // whose reset the client must then observe.
  bool warm_done = false;
  channel.Call(server->endpoint(), "ping", Bytes{}, [&](Result<Bytes> r) {
    EXPECT_TRUE(r.ok()) << r.status();
    warm_done = true;
  });
  ASSERT_TRUE(fixture_->RunUntil([&]() { return warm_done; }, 10 * sim::kSecond));

  sim::Endpoint dead = server->endpoint();
  server.reset();  // destroy before the process dies so no dangling handler runs
  fixture_->KillServer();
  fixture_->RunFor(100 * sim::kMillisecond);  // let resets propagate

  sim::CallOptions options;
  options.deadline = 300 * sim::kMillisecond;
  options.retry.attempts = 2;
  options.retry.backoff = 100 * sim::kMillisecond;
  Result<Bytes> out = Unavailable("pending");
  bool done = false;
  channel.Call(
      dead, "ping", Bytes{},
      [&](Result<Bytes> r) {
        out = std::move(r);
        done = true;
      },
      options);
  ASSERT_TRUE(fixture_->RunUntil([&]() { return done; }, 30 * sim::kSecond));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable) << out.status();
  EXPECT_GE(channel.stats().retries, 1u);
}

// Regression for the retry-backoff timer lifecycle: cancelling a call while it
// waits out the backoff between attempts must cancel the pending resend. Before
// the timer split, a stale backoff timer could fire after Cancel() and launch
// another attempt at the server.
TEST_P(TransportConformanceTest, CancelledCallSchedulesNoFurtherAttempts) {
  sim::NodeId client_node = fixture_->NewClientNode();
  sim::NodeId server_node = fixture_->NewServerNode();

  int executions = 0;
  sim::RpcServer server(fixture_->server_transport(), server_node, 7006);
  server.RegisterMethod("flaky", [&](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
    ++executions;
    return Unavailable("try again");  // retriable: the client schedules a backoff
  });

  sim::Channel channel(fixture_->client_transport(), client_node);
  sim::CallOptions options;
  options.deadline = 5 * sim::kSecond;
  options.retry.attempts = 3;
  options.retry.backoff = 800 * sim::kMillisecond;

  bool callback_ran = false;
  sim::CallHandle call = channel.Call(
      {server_node, 7006}, "flaky", Bytes{},
      [&](Result<Bytes>) { callback_ran = true; }, options);

  // First attempt executes and its UNAVAILABLE answer lands; the call is now
  // sitting in the 800 ms backoff before attempt two.
  ASSERT_TRUE(fixture_->RunUntil([&]() { return executions == 1; }, 10 * sim::kSecond));
  fixture_->RunFor(100 * sim::kMillisecond);
  ASSERT_TRUE(call.active());

  call.Cancel();
  EXPECT_FALSE(call.active());

  // Ride well past where attempts two and three would have fired.
  fixture_->RunFor(3 * sim::kSecond);
  EXPECT_EQ(executions, 1) << "a cancelled call sent another attempt";
  EXPECT_FALSE(callback_ran);
  EXPECT_EQ(channel.stats().cancelled, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values(Backend::kSim, Backend::kNet),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kSim ? "sim" : "net";
                         });

// ---- Socket-only end to end: plain HTTP over a real TCP socket. ----

namespace {

// A minimal blocking HTTP/1.0 client, run on its own thread while the node's
// event loop turns on the test thread. Returns the raw response text.
std::string BlockingHttpGet(uint16_t port, const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  std::string request = "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

}  // namespace

TEST(SocketTransportEndToEnd, HttpGetFetchesPublishedPackage) {
  net::EventLoop loop;
  net::SocketTransport transport(&loop);

  gdn::StandaloneGdnNode node(&transport, {}, [&](sim::NodeId n) {
    auto port = transport.Listen(n);
    ASSERT_TRUE(port.ok()) << port.status();
  });
  auto http_port = transport.ListenHttp(node.httpd_node(), 0);
  ASSERT_TRUE(http_port.ok()) << http_port.status();

  gdn::StandaloneGdnNode::Pump pump = [&](const std::function<bool()>& done) {
    if (!done) {
      loop.RunFor(200 * sim::kMillisecond);
      return true;
    }
    return loop.RunUntil(done, 10 * sim::kSecond);
  };
  const std::string body_text = "conformance suite payload\n";
  auto oid = node.PublishPackage("/tests/Conformance",
                                 {{"data.txt", ToBytes(body_text)}}, pump);
  ASSERT_TRUE(oid.ok()) << oid.status();

  std::atomic<bool> fetched{false};
  std::string response;
  std::thread client([&]() {
    response = BlockingHttpGet(*http_port, "/packages/tests/Conformance/files/data.txt");
    fetched = true;
  });
  EXPECT_TRUE(loop.RunUntil([&]() { return fetched.load(); }, 30 * sim::kSecond));
  client.join();

  ASSERT_FALSE(response.empty()) << "no HTTP response over the socket";
  EXPECT_NE(response.find("200"), std::string::npos) << response.substr(0, 200);
  EXPECT_NE(response.find(body_text), std::string::npos);
  EXPECT_GE(transport.stats().http_requests, 1u);
}

}  // namespace
}  // namespace globe
