// Shared helpers for the Globe test suites: a simple replicable semantics object and
// synchronous wrappers around the async APIs.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <map>
#include <memory>
#include <string>

#include "src/dso/subobjects.h"

namespace globe::testutil {

// A key -> string map object; the minimal stand-in for a package DSO.
//   put(key, value)    write
//   get(key) -> value  read-only
class KvObject : public dso::SemanticsObject {
 public:
  static constexpr uint16_t kTypeId = 7;

  Result<Bytes> Invoke(const dso::Invocation& invocation) override {
    ByteReader r(invocation.args);
    if (invocation.method == "put") {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(std::string value, r.ReadString());
      entries_[key] = value;
      return Bytes{};
    }
    if (invocation.method == "get") {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        return NotFound("no such key: " + key);
      }
      ByteWriter w;
      w.WriteString(it->second);
      return w.Take();
    }
    return NotFound("no such method: " + invocation.method);
  }

  Bytes GetState() const override {
    ByteWriter w;
    w.WriteVarint(entries_.size());
    for (const auto& [key, value] : entries_) {
      w.WriteString(key);
      w.WriteString(value);
    }
    return w.Take();
  }

  Status SetState(ByteSpan state) override {
    ByteReader r(state);
    std::map<std::string, std::string> entries;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(std::string value, r.ReadString());
      entries[key] = value;
    }
    entries_ = std::move(entries);
    return OkStatus();
  }

  std::unique_ptr<dso::SemanticsObject> CloneEmpty() const override {
    return std::make_unique<KvObject>();
  }
  uint16_t type_id() const override { return kTypeId; }

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

inline dso::Invocation KvPut(const std::string& key, const std::string& value) {
  ByteWriter w;
  w.WriteString(key);
  w.WriteString(value);
  return dso::Invocation{"put", w.Take(), /*read_only=*/false};
}

inline dso::Invocation KvGet(const std::string& key) {
  ByteWriter w;
  w.WriteString(key);
  return dso::Invocation{"get", w.Take(), /*read_only=*/true};
}

}  // namespace globe::testutil

#endif  // TESTS_TEST_UTIL_H_
