// Robustness / fuzz tests for the availability requirement (paper §6.1): "People
// should not be able to crash our critical servers, nor render them inoperable using
// bogus protocol messages. The critical servers in the GDN are: Location Service
// directory nodes ..., Object Servers, GDN-enabled HTTPDs, DNS servers and auxiliary
// daemons."
//
// Strategy: build a full GdnWorld, blast every critical port with random garbage and
// structured-but-corrupt frames from user machines, then prove every service still
// answers legitimate requests correctly.

#include <gtest/gtest.h>

#include "src/gdn/world.h"

namespace globe::gdn {
namespace {

class RobustnessTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  RobustnessTest() {
    status_ = world_.PublishPackage("/apps/canary", {{"f", ToBytes("alive")}},
                                    dso::kProtoMasterSlave, 0, {1})
                  .ok()
                  ? OkStatus()
                  : InvalidArgument("publish failed");
  }

  // Targets: every well-known service port on every GDN host, plus the DSO replica
  // ports (which are ephemeral — sweep a band of them).
  std::vector<sim::Endpoint> CriticalEndpoints() {
    std::vector<sim::Endpoint> endpoints;
    for (const auto& country : world_.countries()) {
      endpoints.push_back({country.gos_host, sim::kPortGos});
      endpoints.push_back({country.gos_host, sim::kPortHttp});
      endpoints.push_back({country.resolver_host, sim::kPortDns});
    }
    endpoints.push_back({world_.dns_primary()->node(), sim::kPortDns});
    endpoints.push_back({world_.naming_authority()->endpoint().node,
                         sim::kPortGnsAuthority});
    for (const auto& subnode : world_.gls().subnodes()) {
      endpoints.push_back(subnode->endpoint());
    }
    // A band of ephemeral ports where replica communication objects live.
    for (uint16_t port = sim::kPortClientBase; port < sim::kPortClientBase + 40; ++port) {
      endpoints.push_back({world_.countries()[0].gos_host, port});
    }
    return endpoints;
  }

  // Everything still works end to end.
  void VerifyWorldStillWorks() {
    auto content = world_.DownloadFile(world_.user_hosts().back(), "/apps/canary", "f");
    ASSERT_TRUE(content.ok()) << content.status();
    EXPECT_EQ(ToString(*content), "alive");

    Status update = Unavailable("pending");
    world_.moderator()->AddFile("/apps/canary", "f2", ToBytes("updated"),
                                [&](Status s) { update = s; });
    world_.Run();
    EXPECT_TRUE(update.ok()) << update;
  }

  GdnWorld world_;
  Status status_;
};

TEST_P(RobustnessTest, RandomGarbageToEveryCriticalPort) {
  ASSERT_TRUE(status_.ok());
  Rng rng(GetParam());
  auto endpoints = CriticalEndpoints();
  for (const auto& endpoint : endpoints) {
    for (int i = 0; i < 8; ++i) {
      sim::NodeId attacker =
          world_.user_hosts()[rng.UniformInt(world_.user_hosts().size())];
      Bytes garbage = rng.RandomBytes(rng.UniformInt(300));
      world_.network().Send({attacker, 9999}, endpoint, std::move(garbage));
    }
  }
  world_.Run();
  VerifyWorldStillWorks();
}

TEST_P(RobustnessTest, TruncatedRealFramesToEveryCriticalPort) {
  ASSERT_TRUE(status_.ok());
  Rng rng(GetParam() + 100);

  // A plausible RPC request frame, truncated at every prefix length.
  ByteWriter w;
  w.WriteU8(0);  // request
  w.WriteU64(42);
  w.WriteString("gls.lookup");
  w.WriteLengthPrefixed(rng.RandomBytes(24));
  Bytes frame = w.Take();

  auto endpoints = CriticalEndpoints();
  for (const auto& endpoint : endpoints) {
    size_t cut = rng.UniformInt(frame.size());
    Bytes truncated(frame.begin(), frame.begin() + cut);
    world_.network().Send({world_.user_hosts()[0], 1234}, endpoint, std::move(truncated));
  }
  world_.Run();
  VerifyWorldStillWorks();
}

TEST_P(RobustnessTest, CorruptHttpRequests) {
  ASSERT_TRUE(status_.ok());
  Rng rng(GetParam() + 200);
  std::vector<std::string> nasties = {
      "",
      "GET",
      "GET / HTTP/1.0",                         // no header terminator
      "\r\n\r\n",
      "POST /packages/x HTTP/1.0\r\n\r\n",      // unsupported method
      "GET /packages/%zz HTTP/1.0\r\n\r\n",     // bad escape
      "GET /../../etc/passwd HTTP/1.0\r\n\r\n",
      std::string(100000, 'A'),
      "GET /search?q=%", // truncated escape in query
  };
  sim::NodeId httpd = world_.countries()[0].gos_host;
  for (const auto& nasty : nasties) {
    world_.network().Send({world_.user_hosts()[1], 2345}, {httpd, sim::kPortHttp},
                          ToBytes(nasty));
  }
  // Random binary junk too.
  for (int i = 0; i < 20; ++i) {
    world_.network().Send({world_.user_hosts()[1], 2345}, {httpd, sim::kPortHttp},
                          rng.RandomBytes(rng.UniformInt(2000)));
  }
  world_.Run();
  VerifyWorldStillWorks();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest, ::testing::Values(1, 2, 3));

// Secured world under the same abuse: the secure transport must additionally count
// (not crash on) malformed frames.
TEST(SecureRobustnessTest, GarbageAgainstSecuredWorld) {
  GdnWorldConfig config;
  config.fanouts = {2, 2};
  config.secure = true;
  GdnWorld world(config);
  ASSERT_TRUE(world
                  .PublishPackage("/apps/canary", {{"f", ToBytes("alive")}},
                                  dso::kProtoMasterSlave, 0)
                  .ok());

  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    sim::NodeId target = world.countries()[i % world.num_countries()].gos_host;
    uint16_t port = (i % 2 == 0) ? sim::kPortGos : sim::kPortHttp;
    world.network().Send({world.user_hosts()[0], 999}, {target, port},
                         rng.RandomBytes(rng.UniformInt(200)));
  }
  world.Run();

  auto content = world.DownloadFile(world.user_hosts()[2], "/apps/canary", "f");
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "alive");
  EXPECT_GT(world.secure_transport()->stats().malformed_frames, 0u);
}

// Directory-node crash mid-operation: inserts during the outage fail cleanly and
// succeed after recovery.
TEST(FailureRecoveryTest, GlsNodeCrashDuringInserts) {
  GdnWorld world;
  ASSERT_TRUE(world
                  .PublishPackage("/apps/base", {{"f", ToBytes("v")}},
                                  dso::kProtoMasterSlave, 0)
                  .ok());

  // Crash the leaf directory node serving country 1's GOS.
  sim::NodeId gos_host = world.countries()[1].gos_host;
  sim::DomainId leaf_domain = world.topology().NodeDomain(gos_host);
  auto subnodes = world.gls().SubnodesOf(leaf_domain);
  ASSERT_FALSE(subnodes.empty());
  sim::NodeId directory_host = subnodes[0]->host();
  Bytes checkpoint = subnodes[0]->SaveState();
  world.network().SetNodeUp(directory_host, false);

  // Creating a replica in country 1 now fails (its GLS leaf is down).
  Status create_status = OkStatus();
  world.GosOf(1)->CreateFirstReplica(
      dso::kProtoMasterSlave, kPackageTypeId,
      [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
        create_status = r.ok() ? OkStatus() : r.status();
      });
  world.Run();
  EXPECT_FALSE(create_status.ok());

  // Recover the directory node; the same command now succeeds.
  world.network().SetNodeUp(directory_host, true);
  ASSERT_TRUE(const_cast<gls::DirectorySubnode*>(subnodes[0])->RestoreState(checkpoint).ok());
  create_status = Unavailable("pending");
  world.GosOf(1)->CreateFirstReplica(
      dso::kProtoMasterSlave, kPackageTypeId,
      [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
        create_status = r.ok() ? OkStatus() : r.status();
      });
  world.Run();
  EXPECT_TRUE(create_status.ok()) << create_status;
}

}  // namespace
}  // namespace globe::gdn
