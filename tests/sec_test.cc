// Tests for principals, the stream cipher and the TLS-style secure transport,
// including the attacker scenarios from paper §6: forged commands, tampering,
// replay, impersonation, and eavesdropping with and without encryption.

#include <gtest/gtest.h>

#include "src/sec/cipher.h"
#include "src/sec/principal.h"
#include "src/sec/secure_transport.h"
#include "src/sim/rpc.h"
#include "src/util/rng.h"
#include "src/sim/backend.h"

namespace globe::sec {
namespace {

using sim::BuildUniformWorld;
using sim::Endpoint;
using sim::kSecond;
using sim::NodeId;
using sim::Channel;
using sim::RpcContext;
using sim::RpcServer;
using sim::UniformWorld;

// ---------------------------------------------------------------- KeyRegistry

TEST(KeyRegistryTest, RegisterAndVerify) {
  KeyRegistry registry;
  Credential mod = registry.Register("alice", Role::kModerator);
  EXPECT_NE(mod.id, kAnonymous);
  EXPECT_EQ(mod.key.size(), 32u);
  EXPECT_TRUE(registry.Verify(mod));
}

TEST(KeyRegistryTest, WrongKeyFailsVerification) {
  KeyRegistry registry;
  Credential mod = registry.Register("alice", Role::kModerator);
  Credential forged = mod;
  forged.key[0] ^= 1;
  EXPECT_FALSE(registry.Verify(forged));
}

TEST(KeyRegistryTest, UnknownPrincipalFailsVerification) {
  KeyRegistry registry;
  Credential fake{999, Bytes(32, 0x42)};
  EXPECT_FALSE(registry.Verify(fake));
}

TEST(KeyRegistryTest, RolesAreRecorded) {
  KeyRegistry registry;
  Credential admin = registry.Register("root", Role::kAdministrator);
  Credential user = registry.Register("bob", Role::kUser);
  EXPECT_EQ(registry.RoleOf(admin.id).value(), Role::kAdministrator);
  EXPECT_EQ(registry.RoleOf(user.id).value(), Role::kUser);
  EXPECT_FALSE(registry.RoleOf(12345).ok());
}

TEST(KeyRegistryTest, FindReturnsName) {
  KeyRegistry registry;
  Credential c = registry.Register("gos-amsterdam", Role::kGdnHost);
  auto p = registry.Find(c.id);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->name, "gos-amsterdam");
  EXPECT_EQ(RoleName(p->role), "gdn-host");
}

TEST(KeyRegistryTest, DistinctKeysPerPrincipal) {
  KeyRegistry registry;
  Credential a = registry.Register("a", Role::kUser);
  Credential b = registry.Register("b", Role::kUser);
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.key, b.key);
}

// ---------------------------------------------------------------- Cipher

TEST(CipherTest, RoundTrip) {
  Bytes key = Bytes(32, 0x11);
  Bytes data = ToBytes("the GNU C compiler, Linux distributions and shareware");
  Bytes original = data;
  ApplyKeystream(key, 7, &data);
  EXPECT_NE(data, original);
  ApplyKeystream(key, 7, &data);
  EXPECT_EQ(data, original);
}

TEST(CipherTest, DifferentNoncesDifferentKeystreams) {
  Bytes key = Bytes(32, 0x11);
  Bytes a = Bytes(64, 0);
  Bytes b = Bytes(64, 0);
  ApplyKeystream(key, 1, &a);
  ApplyKeystream(key, 2, &b);
  EXPECT_NE(a, b);
}

TEST(CipherTest, EmptyDataIsFine) {
  Bytes key = Bytes(32, 0x11);
  Bytes empty;
  ApplyKeystream(key, 0, &empty);
  EXPECT_TRUE(empty.empty());
}

TEST(CipherTest, LongDataCrossesBlocks) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(1000);
  Bytes original = data;
  ApplyKeystream(key, 9, &data);
  ApplyKeystream(key, 9, &data);
  EXPECT_EQ(data, original);
}

// ---------------------------------------------------------------- SecureTransport

class SecureTransportTest : public ::testing::Test {
 protected:
  SecureTransportTest()
      : world_(BuildUniformWorld({2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        plain_(&network_),
        transport_(&plain_, &registry_) {
    host_a_ = world_.hosts[0];
    host_b_ = world_.hosts[5];  // different continent
    user_machine_ = world_.hosts[2];

    cred_a_ = registry_.Register("gos-a", Role::kGdnHost);
    cred_b_ = registry_.Register("httpd-b", Role::kGdnHost);
    transport_.SetNodeCredential(host_a_, cred_a_);
    transport_.SetNodeCredential(host_b_, cred_b_);

    // Figure 4 policy: host<->host mutual, user->host server-auth.
    transport_.SetChannelPolicy([this](NodeId src, NodeId dst) {
      bool src_host = (src == host_a_ || src == host_b_);
      bool dst_host = (dst == host_a_ || dst == host_b_);
      ChannelConfig config;
      if (src_host && dst_host) {
        config.auth = AuthMode::kMutualAuth;
      } else if (src_host || dst_host) {
        config.auth = AuthMode::kServerAuth;
      }
      config.encrypt = encrypt_;
      return config;
    });
  }

  // Runs an echo RPC from `from` to a server on `to`; returns the context the server
  // saw, or nullopt if the call failed.
  struct CallOutcome {
    bool ok = false;
    PrincipalId peer = kAnonymous;
    bool integrity = false;
    Bytes reply;
  };
  CallOutcome RunEcho(NodeId from, NodeId to) {
    RpcServer server(&transport_, to, 700);
    CallOutcome outcome;
    server.RegisterMethod(
        "echo", [&](const RpcContext& ctx, ByteSpan req) -> Result<Bytes> {
      outcome.peer = ctx.peer_principal;
      outcome.integrity = ctx.integrity_protected;
      return Bytes(req.begin(), req.end());
    });
    Channel client(&transport_, from);
    client.Call(server.endpoint(), "echo", ToBytes("payload"), [&](Result<sim::PayloadView> result) {
      outcome.ok = result.ok();
      if (result.ok()) {
        outcome.reply = result->Copy();
      }
    });
    simulator_.Run();
    return outcome;
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport plain_;
  KeyRegistry registry_;
  SecureTransport transport_;
  NodeId host_a_, host_b_, user_machine_;
  Credential cred_a_, cred_b_;
  bool encrypt_ = false;
};

TEST_F(SecureTransportTest, MutualAuthDeliversPeerPrincipal) {
  auto outcome = RunEcho(host_a_, host_b_);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.peer, cred_a_.id);  // server saw the authenticated client
  EXPECT_TRUE(outcome.integrity);
  EXPECT_EQ(ToString(outcome.reply), "payload");
  EXPECT_EQ(transport_.stats().handshakes, 1u);
}

TEST_F(SecureTransportTest, ServerAuthClientIsAnonymous) {
  auto outcome = RunEcho(user_machine_, host_b_);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.peer, kAnonymous);
  EXPECT_TRUE(outcome.integrity);
}

TEST_F(SecureTransportTest, PlainChannelHasNoIntegrity) {
  // user machine to user machine: policy yields plain.
  auto outcome = RunEcho(user_machine_, world_.hosts[3]);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.peer, kAnonymous);
  EXPECT_FALSE(outcome.integrity);
  EXPECT_EQ(transport_.stats().handshakes, 0u);
}

TEST_F(SecureTransportTest, HandshakeOnlyOnFirstUse) {
  RunEcho(host_a_, host_b_);
  EXPECT_EQ(transport_.stats().handshakes, 1u);
  RunEcho(host_a_, host_b_);
  EXPECT_EQ(transport_.stats().handshakes, 1u);  // session reused
  transport_.ResetChannel(host_a_, host_b_);
  RunEcho(host_a_, host_b_);
  EXPECT_EQ(transport_.stats().handshakes, 2u);
}

TEST_F(SecureTransportTest, ImpersonatorWithoutKeyCannotEstablishMutualChannel) {
  // The attacker controls a user machine and claims to be gos-a, but holds a junk key.
  Credential forged{cred_a_.id, Bytes(32, 0xee)};
  transport_.SetNodeCredential(user_machine_, forged);
  transport_.SetChannelPolicy([](NodeId, NodeId) {
    return ChannelConfig{AuthMode::kMutualAuth, false};
  });

  auto outcome = RunEcho(user_machine_, host_b_);
  EXPECT_FALSE(outcome.ok);  // call times out: handshake refused
  EXPECT_GE(transport_.stats().auth_failures, 1u);
}

TEST_F(SecureTransportTest, TamperedFrameIsDroppedByMac) {
  // Rebuild the network with in-flight tampering, then check that no corrupted
  // payload ever reaches the application.
  sim::NetworkOptions options;
  options.tamper_probability = 1.0;
  sim::Network lossy(&simulator_, &world_.topology, options);
  sim::PlainTransport lossy_plain(&lossy);
  SecureTransport secure(&lossy_plain, &registry_);
  secure.SetNodeCredential(host_a_, cred_a_);
  secure.SetNodeCredential(host_b_, cred_b_);
  secure.SetChannelPolicy([](NodeId, NodeId) {
    return ChannelConfig{AuthMode::kMutualAuth, false};
  });

  RpcServer server(&secure, host_b_, 700);
  int delivered = 0;
  server.RegisterMethod("echo", [&](const RpcContext&, ByteSpan req) -> Result<Bytes> {
    ++delivered;
    return Bytes(req.begin(), req.end());
  });
  Channel client(&secure, host_a_);
  bool ok = true;
  sim::CallOptions call_options;
  call_options.deadline = 5 * kSecond;
  client.Call(server.endpoint(), "echo", ToBytes("x"),
              [&](Result<sim::PayloadView> r) { ok = r.ok(); }, call_options);
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_FALSE(ok);
  EXPECT_GE(secure.stats().mac_failures, 1u);
}

TEST_F(SecureTransportTest, RawInjectionWithoutSessionIsRejected) {
  RpcServer server(&transport_, host_b_, 700);
  int delivered = 0;
  server.RegisterMethod("cmd", [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
    ++delivered;
    return Bytes{};
  });
  // Attacker bypasses the transport and injects raw bytes claiming a bogus session.
  ByteWriter w;
  w.WriteU8(1);   // version
  w.WriteU8(1);   // secure frame
  w.WriteU64(777);  // made-up session id
  w.WriteU64(0);
  w.WriteU8(0);
  w.WriteLengthPrefixed(ToBytes("evil"));
  w.WriteLengthPrefixed(Bytes(32, 0));
  network_.Send({user_machine_, 9999}, {host_b_, 700}, w.Take());
  simulator_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(transport_.stats().unknown_session, 1u);
}

TEST_F(SecureTransportTest, ReplayedFrameIsRejected) {
  // Capture legitimate frames off the wire, then re-inject them.
  std::vector<std::pair<std::pair<Endpoint, Endpoint>, Bytes>> captured;
  network_.SetEavesdropper(
      [&](const Endpoint& src, const Endpoint& dst, ByteSpan payload) {
    captured.push_back({{src, dst}, Bytes(payload.begin(), payload.end())});
  });

  RpcServer server(&transport_, host_b_, 700);
  int delivered = 0;
  server.RegisterMethod("cmd", [&](const RpcContext&, ByteSpan) -> Result<Bytes> {
    ++delivered;
    return Bytes{};
  });
  Channel client(&transport_, host_a_);
  client.Call(server.endpoint(), "cmd", ToBytes("once"), [](Result<sim::PayloadView>) {});
  simulator_.Run();
  ASSERT_EQ(delivered, 1);

  // Replay every captured frame verbatim.
  network_.SetEavesdropper(nullptr);
  for (const auto& [eps, payload] : captured) {
    network_.Send(eps.first, eps.second, payload);
  }
  simulator_.Run();
  EXPECT_EQ(delivered, 1);  // no duplicate execution
  EXPECT_GE(transport_.stats().replay_rejects, 1u);
}

TEST_F(SecureTransportTest, EavesdropperSeesPlaintextWithoutEncryption) {
  encrypt_ = false;
  std::string wire;
  network_.SetEavesdropper([&](const Endpoint&, const Endpoint&, ByteSpan payload) {
    wire += ToString(payload);
  });
  RunEcho(host_a_, host_b_);
  EXPECT_NE(wire.find("payload"), std::string::npos);
}

TEST_F(SecureTransportTest, EncryptionHidesPlaintextFromEavesdropper) {
  encrypt_ = true;
  std::string wire;
  network_.SetEavesdropper([&](const Endpoint&, const Endpoint&, ByteSpan payload) {
    wire += ToString(payload);
  });
  auto outcome = RunEcho(host_a_, host_b_);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(ToString(outcome.reply), "payload");  // decrypted correctly end-to-end
  EXPECT_EQ(wire.find("payload"), std::string::npos);
}

TEST_F(SecureTransportTest, EncryptionCostsMoreSimulatedCpu) {
  encrypt_ = false;
  RunEcho(host_a_, host_b_);
  double integrity_only = transport_.stats().crypto_us;

  transport_.mutable_stats()->Clear();
  transport_.ResetChannel(host_a_, host_b_);
  encrypt_ = true;
  RunEcho(host_a_, host_b_);
  double with_encryption = transport_.stats().crypto_us;
  EXPECT_GT(with_encryption, integrity_only);
}

TEST_F(SecureTransportTest, HandshakeBytesHitWideAreaTrafficAccounting) {
  uint64_t before = network_.stats().TotalBytes();
  RunEcho(host_a_, host_b_);
  // host_a_ and host_b_ are on different continents: handshake flight + frames all
  // cross the top level (ascent level 2 in this two-level world).
  EXPECT_GT(network_.stats().BytesAtOrAbove(2), 0u);
  EXPECT_GT(network_.stats().TotalBytes(), before + 2048);
}

TEST_F(SecureTransportTest, MalformedSecureFrameCounted) {
  RpcServer server(&transport_, host_b_, 700);
  network_.Send({user_machine_, 9}, {host_b_, 700}, Bytes{0x01, 0x01, 0x02});
  simulator_.Run();
  EXPECT_EQ(transport_.stats().malformed_frames, 1u);
}

}  // namespace
}  // namespace globe::sec
