// Tests for the distributed-shared-object model: invocation marshalling, the four
// replication protocols behind the standard replication interface, the
// implementation repository, and binding through the run-time system.

#include <gtest/gtest.h>

#include <map>

#include "src/dso/active_repl.h"
#include "src/dso/cache_inval.h"
#include "src/dso/client_server.h"
#include "src/dso/control.h"
#include "src/dso/master_slave.h"
#include "src/dso/protocols.h"
#include "src/dso/repository.h"
#include "src/dso/runtime.h"
#include "src/gls/deploy.h"
#include "src/sim/backend.h"

namespace globe::dso {
namespace {

using sim::BuildUniformWorld;
using sim::NodeId;
using sim::UniformWorld;

// A small key->string map object: the test stand-in for the package DSO. Methods:
//   put(key, value)      write
//   get(key) -> value    read-only
//   size() -> u64        read-only
class MapObject : public SemanticsObject {
 public:
  static constexpr uint16_t kTypeId = 7;

  Result<Bytes> Invoke(const Invocation& invocation) override {
    ByteReader r(invocation.args);
    if (invocation.method == "put") {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(std::string value, r.ReadString());
      entries_[key] = value;
      return Bytes{};
    }
    if (invocation.method == "get") {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        return NotFound("no such key: " + key);
      }
      ByteWriter w;
      w.WriteString(it->second);
      return w.Take();
    }
    if (invocation.method == "size") {
      ByteWriter w;
      w.WriteU64(entries_.size());
      return w.Take();
    }
    return NotFound("no such method: " + invocation.method);
  }

  Bytes GetState() const override {
    ByteWriter w;
    w.WriteVarint(entries_.size());
    for (const auto& [key, value] : entries_) {
      w.WriteString(key);
      w.WriteString(value);
    }
    return w.Take();
  }

  Status SetState(ByteSpan state) override {
    ByteReader r(state);
    std::map<std::string, std::string> entries;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(std::string value, r.ReadString());
      entries[key] = value;
    }
    entries_ = std::move(entries);
    return OkStatus();
  }

  std::unique_ptr<SemanticsObject> CloneEmpty() const override {
    return std::make_unique<MapObject>();
  }
  uint16_t type_id() const override { return kTypeId; }

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

Invocation Put(const std::string& key, const std::string& value) {
  ByteWriter w;
  w.WriteString(key);
  w.WriteString(value);
  return Invocation{"put", w.Take(), /*read_only=*/false};
}

Invocation Get(const std::string& key) {
  ByteWriter w;
  w.WriteString(key);
  return Invocation{"get", w.Take(), /*read_only=*/true};
}

// ---------------------------------------------------------------- Invocation

TEST(InvocationTest, SerializationRoundTrip) {
  Invocation invocation = Put("gimp", "1.1.29");
  auto restored = Invocation::Deserialize(invocation.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->method, "put");
  EXPECT_EQ(restored->args, invocation.args);
  EXPECT_FALSE(restored->read_only);
}

TEST(InvocationTest, MalformedRejected) {
  EXPECT_FALSE(Invocation::Deserialize(Bytes{0xff, 0xff, 0xff}).ok());
}

// ---------------------------------------------------------------- Fixture

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : world_(BuildUniformWorld({2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        transport_(&network_) {}

  // Synchronous invoke helper.
  Result<Bytes> InvokeSync(ReplicationObject* replication, const Invocation& invocation) {
    Result<Bytes> out = Unavailable("pending");
    replication->Invoke(invocation,
                        [&](Result<Bytes> result) { out = std::move(result); });
    simulator_.Run();
    return out;
  }

  void StartSync(ReplicationObject* replication) {
    Status status = InvalidArgument("pending");
    replication->Start([&](Status s) { status = s; });
    simulator_.Run();
    ASSERT_TRUE(status.ok()) << status;
  }

  std::string GetSync(ReplicationObject* replication, const std::string& key) {
    auto result = InvokeSync(replication, Get(key));
    if (!result.ok()) {
      return "<error: " + result.status().ToString() + ">";
    }
    ByteReader r(*result);
    return r.ReadString().value();
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport transport_;
};

// ---------------------------------------------------------------- Client/server

TEST_F(ProtocolTest, ClientServerBasicFlow) {
  ClientServerServer server(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  RemoteProxy proxy(&transport_, world_.hosts[5], *server.contact_address());

  ASSERT_TRUE(InvokeSync(&proxy, Put("gimp", "1.1.29")).ok());
  EXPECT_EQ(GetSync(&proxy, "gimp"), "1.1.29");
  EXPECT_EQ(server.version(), 1u);
  EXPECT_EQ(GetSync(&server, "gimp"), "1.1.29");  // local invoke on the server side
}

TEST_F(ProtocolTest, ClientServerErrorsPropagate) {
  ClientServerServer server(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  RemoteProxy proxy(&transport_, world_.hosts[5], *server.contact_address());
  auto result = InvokeSync(&proxy, Get("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ProtocolTest, ClientServerReadsDoNotBumpVersion) {
  ClientServerServer server(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  InvokeSync(&server, Put("a", "1"));
  uint64_t v = server.version();
  InvokeSync(&server, Get("a"));
  EXPECT_EQ(server.version(), v);
}

// ---------------------------------------------------------------- Master/slave

TEST_F(ProtocolTest, MasterSlaveReplicationFlow) {
  MasterSlaveMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  ASSERT_TRUE(InvokeSync(&master, Put("tetex", "1.0")).ok());

  MasterSlaveSlave slave(&transport_, world_.hosts[4], std::make_unique<MapObject>(),
                         master.contact_address()->endpoint);
  StartSync(&slave);
  // Snapshot transferred at registration.
  EXPECT_EQ(slave.version(), 1u);
  EXPECT_EQ(GetSync(&slave, "tetex"), "1.0");
  EXPECT_EQ(master.num_slaves(), 1u);

  // A write through the slave reaches the master and is pushed back.
  ASSERT_TRUE(InvokeSync(&slave, Put("gimp", "1.1")).ok());
  EXPECT_EQ(master.version(), 2u);
  EXPECT_EQ(slave.version(), 2u);
  EXPECT_EQ(GetSync(&slave, "gimp"), "1.1");

  // Reads at the slave stay local: no master traffic.
  uint64_t master_received_before = network_.per_node_received().count(world_.hosts[0])
                                        ? network_.per_node_received().at(world_.hosts[0])
                                        : 0;
  GetSync(&slave, "gimp");
  uint64_t master_received_after = network_.per_node_received().at(world_.hosts[0]);
  EXPECT_EQ(master_received_after, master_received_before);
}

TEST_F(ProtocolTest, MasterSlavePushReachesAllSlaves) {
  MasterSlaveMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  MasterSlaveSlave slave1(&transport_, world_.hosts[2], std::make_unique<MapObject>(),
                          master.contact_address()->endpoint);
  MasterSlaveSlave slave2(&transport_, world_.hosts[6], std::make_unique<MapObject>(),
                          master.contact_address()->endpoint);
  StartSync(&slave1);
  StartSync(&slave2);

  ASSERT_TRUE(InvokeSync(&master, Put("linux", "2.2.14")).ok());
  EXPECT_EQ(slave1.version(), 1u);
  EXPECT_EQ(slave2.version(), 1u);
  EXPECT_EQ(GetSync(&slave1, "linux"), "2.2.14");
  EXPECT_EQ(GetSync(&slave2, "linux"), "2.2.14");
}

TEST_F(ProtocolTest, MasterSlaveSurvivesDeadSlave) {
  MasterSlaveMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  MasterSlaveSlave slave(&transport_, world_.hosts[2], std::make_unique<MapObject>(),
                         master.contact_address()->endpoint);
  StartSync(&slave);
  network_.SetNodeUp(world_.hosts[2], false);

  // The write must still complete (after the push times out).
  auto result = InvokeSync(&master, Put("k", "v"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(master.version(), 1u);
}

TEST_F(ProtocolTest, MasterSlaveUnregisterStopsPushes) {
  MasterSlaveMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  MasterSlaveSlave slave(&transport_, world_.hosts[2], std::make_unique<MapObject>(),
                         master.contact_address()->endpoint);
  StartSync(&slave);
  Status status = InvalidArgument("pending");
  slave.Shutdown([&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(master.num_slaves(), 0u);

  InvokeSync(&master, Put("k", "v"));
  EXPECT_EQ(slave.version(), 0u);  // no longer updated
}

TEST_F(ProtocolTest, StaleEpochPushIsFencedAndWriteNotAcked) {
  MasterSlaveMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  MasterSlaveSlave slave(&transport_, world_.hosts[2], std::make_unique<MapObject>(),
                         master.contact_address()->endpoint);
  StartSync(&slave);

  // The slave moved to a newer membership epoch (as it would after adopting an
  // elected master): the old master's push must be refused and — since an
  // unreplicated write must not be acknowledged — the write fails.
  slave.set_epoch(7);
  auto result = InvokeSync(&master, Put("k", "v"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(slave.version(), 0u);  // the fenced push was never applied
  EXPECT_EQ(master.group()->stats().pushes_fenced, 1u);
  EXPECT_EQ(slave.group()->stats().stale_rejected, 1u);
}

TEST_F(ProtocolTest, RoleTransitionTableIsEnforced) {
  EXPECT_TRUE(RoleTransitionAllowed(GroupRole::kSlave, GroupRole::kMaster));
  EXPECT_TRUE(RoleTransitionAllowed(GroupRole::kMaster, GroupRole::kSlave));
  EXPECT_FALSE(RoleTransitionAllowed(GroupRole::kCache, GroupRole::kMaster));
  EXPECT_FALSE(RoleTransitionAllowed(GroupRole::kMaster, GroupRole::kCache));
  EXPECT_FALSE(RoleTransitionAllowed(GroupRole::kPeer, GroupRole::kMaster));
  EXPECT_TRUE(RoleTransitionAllowed(GroupRole::kMaster, GroupRole::kMaster));
}

// ---------------------------------------------------------------- Active replication

TEST_F(ProtocolTest, ActiveReplicationAppliesWritesEverywhere) {
  ActiveReplMember sequencer(&transport_, world_.hosts[0], std::make_unique<MapObject>(),
                             sim::Endpoint{sim::kNoNode, 0});
  ActiveReplMember member1(&transport_, world_.hosts[2], std::make_unique<MapObject>(),
                           sequencer.contact_address()->endpoint);
  ActiveReplMember member2(&transport_, world_.hosts[6], std::make_unique<MapObject>(),
                           sequencer.contact_address()->endpoint);
  StartSync(&member1);
  StartSync(&member2);
  EXPECT_EQ(sequencer.num_members(), 2u);

  // Write through a non-sequencer member.
  ASSERT_TRUE(InvokeSync(&member1, Put("gcc", "2.95")).ok());
  EXPECT_EQ(sequencer.version(), 1u);
  EXPECT_EQ(member1.version(), 1u);
  EXPECT_EQ(member2.version(), 1u);
  EXPECT_EQ(GetSync(&member2, "gcc"), "2.95");
}

TEST_F(ProtocolTest, ActiveReplicationOrdersConcurrentWrites) {
  ActiveReplMember sequencer(&transport_, world_.hosts[0], std::make_unique<MapObject>(),
                             sim::Endpoint{sim::kNoNode, 0});
  ActiveReplMember member1(&transport_, world_.hosts[2], std::make_unique<MapObject>(),
                           sequencer.contact_address()->endpoint);
  ActiveReplMember member2(&transport_, world_.hosts[6], std::make_unique<MapObject>(),
                           sequencer.contact_address()->endpoint);
  StartSync(&member1);
  StartSync(&member2);

  // Two concurrent writes to the same key from different members: all replicas must
  // converge on the same final value.
  member1.Invoke(Put("k", "from1"), [](Result<Bytes>) {});
  member2.Invoke(Put("k", "from2"), [](Result<Bytes>) {});
  simulator_.Run();

  EXPECT_EQ(sequencer.version(), 2u);
  EXPECT_EQ(member1.version(), 2u);
  EXPECT_EQ(member2.version(), 2u);
  std::string v0 = GetSync(&sequencer, "k");
  EXPECT_EQ(GetSync(&member1, "k"), v0);
  EXPECT_EQ(GetSync(&member2, "k"), v0);
}

TEST_F(ProtocolTest, ActiveReplicationLateJoinerGetsSnapshot) {
  ActiveReplMember sequencer(&transport_, world_.hosts[0], std::make_unique<MapObject>(),
                             sim::Endpoint{sim::kNoNode, 0});
  InvokeSync(&sequencer, Put("a", "1"));
  InvokeSync(&sequencer, Put("b", "2"));

  ActiveReplMember late(&transport_, world_.hosts[7], std::make_unique<MapObject>(),
                        sequencer.contact_address()->endpoint);
  StartSync(&late);
  EXPECT_EQ(late.version(), 2u);
  EXPECT_EQ(GetSync(&late, "b"), "2");
}

TEST_F(ProtocolTest, StaleEpochApplyIsFencedAtActiveMembers) {
  ActiveReplMember sequencer(&transport_, world_.hosts[0], std::make_unique<MapObject>(),
                             sim::Endpoint{sim::kNoNode, 0});
  ActiveReplMember member(&transport_, world_.hosts[2], std::make_unique<MapObject>(),
                          sequencer.contact_address()->endpoint);
  StartSync(&member);

  member.set_epoch(3);
  auto result = InvokeSync(&sequencer, Put("k", "v"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(member.version(), 0u);
  EXPECT_EQ(sequencer.group()->stats().pushes_fenced, 1u);
}

// ---------------------------------------------------------------- Cache/invalidate

TEST_F(ProtocolTest, CacheFetchesLazilyAndServesReads) {
  CacheInvalMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  InvokeSync(&master, Put("gimp", "1.0"));

  CacheInvalCache cache(&transport_, world_.hosts[6], std::make_unique<MapObject>(),
                        master.contact_address()->endpoint);
  StartSync(&cache);
  EXPECT_FALSE(cache.valid());  // registration transfers no state
  EXPECT_EQ(cache.fetches(), 0u);

  // First read faults the state in; the second is local.
  EXPECT_EQ(GetSync(&cache, "gimp"), "1.0");
  EXPECT_EQ(cache.fetches(), 1u);
  EXPECT_EQ(GetSync(&cache, "gimp"), "1.0");
  EXPECT_EQ(cache.fetches(), 1u);
  EXPECT_EQ(master.fetches_served(), 1u);
}

TEST_F(ProtocolTest, WriteInvalidatesCaches) {
  CacheInvalMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  CacheInvalCache cache(&transport_, world_.hosts[6], std::make_unique<MapObject>(),
                        master.contact_address()->endpoint);
  StartSync(&cache);
  InvokeSync(&master, Put("gimp", "1.0"));
  EXPECT_EQ(GetSync(&cache, "gimp"), "1.0");
  ASSERT_TRUE(cache.valid());

  // A write through the master invalidates; the next read re-fetches the new value.
  InvokeSync(&master, Put("gimp", "1.1"));
  EXPECT_FALSE(cache.valid());
  EXPECT_EQ(GetSync(&cache, "gimp"), "1.1");
  EXPECT_EQ(cache.fetches(), 2u);
}

TEST_F(ProtocolTest, CacheForwardsWritesToMaster) {
  CacheInvalMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  CacheInvalCache cache(&transport_, world_.hosts[6], std::make_unique<MapObject>(),
                        master.contact_address()->endpoint);
  StartSync(&cache);

  ASSERT_TRUE(InvokeSync(&cache, Put("k", "v")).ok());
  EXPECT_EQ(master.version(), 1u);
  EXPECT_EQ(GetSync(&master, "k"), "v");
}

TEST_F(ProtocolTest, CacheUnregisterStopsInvalidations) {
  CacheInvalMaster master(&transport_, world_.hosts[0], std::make_unique<MapObject>());
  CacheInvalCache cache(&transport_, world_.hosts[6], std::make_unique<MapObject>(),
                        master.contact_address()->endpoint);
  StartSync(&cache);
  GetSync(&cache, "nokey");  // faults in (empty) state
  Status status;
  cache.Shutdown([&](Status s) { status = s; });
  simulator_.Run();
  EXPECT_EQ(master.num_caches(), 0u);
}

// ---------------------------------------------------------------- Factories

TEST_F(ProtocolTest, MakeReplicaRejectsUnknownProtocol) {
  ReplicaSetup setup;
  setup.transport = &transport_;
  setup.host = world_.hosts[0];
  setup.semantics = std::make_unique<MapObject>();
  auto result = MakeReplica(99, std::move(setup));
  EXPECT_FALSE(result.ok());
}

TEST_F(ProtocolTest, MakeReplicaRequiresSemantics) {
  ReplicaSetup setup;
  setup.transport = &transport_;
  setup.host = world_.hosts[0];
  auto result = MakeReplica(kProtoClientServer, std::move(setup));
  EXPECT_FALSE(result.ok());
}

TEST_F(ProtocolTest, SlaveSetupRequiresKnownMaster) {
  ReplicaSetup setup;
  setup.transport = &transport_;
  setup.host = world_.hosts[0];
  setup.semantics = std::make_unique<MapObject>();
  setup.role = gls::ReplicaRole::kSlave;
  auto result = MakeReplica(kProtoMasterSlave, std::move(setup));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ProtocolTest, NearestAddressPicksClosest) {
  std::vector<gls::ContactAddress> addresses = {
      {{world_.hosts[7], 100}, kProtoClientServer, gls::ReplicaRole::kSlave},
      {{world_.hosts[1], 100}, kProtoClientServer, gls::ReplicaRole::kSlave},
  };
  auto nearest = NearestAddress(&transport_, world_.hosts[0], addresses);
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest->endpoint.node, world_.hosts[1]);
}

// ---------------------------------------------------------------- Repository

TEST(RepositoryTest, RegisterAndInstantiate) {
  ImplementationRepository repository;
  repository.RegisterSemantics(std::make_unique<MapObject>());
  ASSERT_TRUE(repository.Has(MapObject::kTypeId));
  auto instance = repository.Instantiate(MapObject::kTypeId);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ((*instance)->type_id(), MapObject::kTypeId);
}

TEST(RepositoryTest, UnknownTypeFails) {
  ImplementationRepository repository;
  EXPECT_FALSE(repository.Instantiate(42).ok());
}

// ---------------------------------------------------------------- Runtime binding

class RuntimeTest : public ProtocolTest {
 protected:
  RuntimeTest() : deployment_(&transport_, &world_.topology, nullptr) {
    repository_.RegisterSemantics(std::make_unique<MapObject>());
  }

  // Creates a master replica on `host`, registers it in the GLS, returns its OID.
  gls::ObjectId CreateObject(NodeId host, gls::ProtocolId protocol) {
    ReplicaSetup setup;
    setup.transport = &transport_;
    setup.host = host;
    setup.semantics = std::make_unique<MapObject>();
    setup.role = gls::ReplicaRole::kMaster;
    auto replica = MakeReplica(protocol, std::move(setup));
    EXPECT_TRUE(replica.ok());
    masters_.push_back(std::move(*replica));

    Rng rng(masters_.size());
    gls::ObjectId oid = gls::ObjectId::Generate(&rng);
    auto client = deployment_.MakeClient(host);
    Status status = InvalidArgument("pending");
    client->Insert(oid, *masters_.back()->contact_address(),
                   [&](Status s) { status = s; });
    simulator_.Run();
    EXPECT_TRUE(status.ok()) << status;
    return oid;
  }

  std::unique_ptr<BoundObject> BindSync(RuntimeSystem* runtime, const gls::ObjectId& oid,
                                        BindOptions options = {}) {
    std::unique_ptr<BoundObject> bound;
    Status status = InvalidArgument("pending");
    runtime->Bind(oid, std::move(options),
                  [&](Result<std::unique_ptr<BoundObject>> result) {
                    if (result.ok()) {
                      bound = std::move(*result);
                      status = OkStatus();
                    } else {
                      status = result.status();
                    }
                  });
    simulator_.Run();
    EXPECT_TRUE(status.ok()) << status;
    return bound;
  }

  gls::GlsDeployment deployment_;
  ImplementationRepository repository_;
  std::vector<std::unique_ptr<ReplicationObject>> masters_;
};

TEST_F(RuntimeTest, BindProxyAndInvoke) {
  gls::ObjectId oid = CreateObject(world_.hosts[0], kProtoClientServer);
  RuntimeSystem runtime(&transport_, world_.hosts[5],
                        deployment_.LeafDirectoryFor(world_.hosts[5]), &repository_);

  auto bound = BindSync(&runtime, oid);
  ASSERT_NE(bound, nullptr);

  Result<Bytes> result = Unavailable("pending");
  bound->Invoke("put", Put("a", "1").args, false,
                [&](Result<Bytes> r) { result = std::move(r); });
  simulator_.Run();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(runtime.stats().binds, 1u);
}

TEST_F(RuntimeTest, BindUnknownOidFails) {
  RuntimeSystem runtime(&transport_, world_.hosts[5],
                        deployment_.LeafDirectoryFor(world_.hosts[5]), &repository_);
  Rng rng(77);
  Status status = OkStatus();
  runtime.Bind(gls::ObjectId::Generate(&rng), {},
               [&](Result<std::unique_ptr<BoundObject>> result) {
                 status = result.status();
               });
  simulator_.Run();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(runtime.stats().bind_failures, 1u);
}

TEST_F(RuntimeTest, BindAsCacheReplicaRegistersInGls) {
  gls::ObjectId oid = CreateObject(world_.hosts[0], kProtoCacheInval);

  RuntimeSystem httpd(&transport_, world_.hosts[6],
                      deployment_.LeafDirectoryFor(world_.hosts[6]), &repository_);
  BindOptions options;
  options.as_replica = gls::ReplicaRole::kCache;
  options.semantics_type = MapObject::kTypeId;
  options.register_in_gls = true;
  auto bound = BindSync(&httpd, oid, options);
  ASSERT_NE(bound, nullptr);
  EXPECT_TRUE(bound->registered_in_gls);
  EXPECT_EQ(httpd.stats().replicas_installed, 1u);

  // A second client near the HTTPD now finds the cache replica, not the master.
  RuntimeSystem nearby(&transport_, world_.hosts[7],
                       deployment_.LeafDirectoryFor(world_.hosts[7]), &repository_);
  auto second = BindSync(&nearby, oid);
  ASSERT_NE(second, nullptr);
  auto* proxy = dynamic_cast<RemoteProxy*>(second->replication.get());
  ASSERT_NE(proxy, nullptr);
  EXPECT_EQ(proxy->peer().endpoint.node, world_.hosts[6]);
  EXPECT_EQ(proxy->peer().role, gls::ReplicaRole::kCache);

  // Unbind deregisters from the GLS again.
  Status unbind_status = InvalidArgument("pending");
  httpd.Unbind(std::move(bound), [&](Status s) { unbind_status = s; });
  simulator_.Run();
  EXPECT_TRUE(unbind_status.ok()) << unbind_status;

  auto third = BindSync(&nearby, oid);
  ASSERT_NE(third, nullptr);
  auto* proxy3 = dynamic_cast<RemoteProxy*>(third->replication.get());
  ASSERT_NE(proxy3, nullptr);
  EXPECT_EQ(proxy3->peer().endpoint.node, world_.hosts[0]);  // back to the master
}

TEST_F(RuntimeTest, BindAsReplicaWithoutImplementationFails) {
  gls::ObjectId oid = CreateObject(world_.hosts[0], kProtoCacheInval);
  RuntimeSystem runtime(&transport_, world_.hosts[6],
                        deployment_.LeafDirectoryFor(world_.hosts[6]), &repository_);
  BindOptions options;
  options.as_replica = gls::ReplicaRole::kCache;
  options.semantics_type = 999;  // not registered
  Status status = OkStatus();
  runtime.Bind(oid, options, [&](Result<std::unique_ptr<BoundObject>> result) {
    status = result.status();
  });
  simulator_.Run();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

// Parameterized across protocols: a master + a client proxy always gives
// read-your-writes through the proxy.
class AllProtocolsTest : public RuntimeTest,
                         public ::testing::WithParamInterface<gls::ProtocolId> {};

TEST_P(AllProtocolsTest, ProxyReadYourWrites) {
  gls::ObjectId oid = CreateObject(world_.hosts[0], GetParam());
  RuntimeSystem runtime(&transport_, world_.hosts[3],
                        deployment_.LeafDirectoryFor(world_.hosts[3]), &repository_);
  auto bound = BindSync(&runtime, oid);
  ASSERT_NE(bound, nullptr);

  Invocation put = Put("key", "value");
  Result<Bytes> write_result = Unavailable("pending");
  bound->Invoke(put.method, put.args, put.read_only,
                [&](Result<Bytes> r) { write_result = std::move(r); });
  simulator_.Run();
  ASSERT_TRUE(write_result.ok()) << write_result.status();

  Invocation get = Get("key");
  Result<Bytes> read_result = Unavailable("pending");
  bound->Invoke(get.method, get.args, get.read_only,
                [&](Result<Bytes> r) { read_result = std::move(r); });
  simulator_.Run();
  ASSERT_TRUE(read_result.ok()) << read_result.status();
  ByteReader r(*read_result);
  EXPECT_EQ(r.ReadString().value(), "value");
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocolsTest,
                         ::testing::Values(kProtoClientServer, kProtoMasterSlave,
                                           kProtoActiveRepl, kProtoCacheInval));

}  // namespace
}  // namespace globe::dso
