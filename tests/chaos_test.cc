// Chaos suite (CTest label `chaos`): randomized fault schedules over fixed
// seeds, asserting end-state invariants rather than step-by-step behaviour.
//
// Everything here rides on the deterministic fault-injection API of
// sim::Network (per-link loss, timed bidirectional partitions, crash/restart)
// and the at-most-once execution layer in sim::RpcServer: a write delivered
// twice — because a retry repeated it after its response was lost — must mutate
// state exactly once, the GOS replica set must converge to one owner view once
// the faults heal, and no OID may resolve to a decommissioned address.
//
// Seeds: the suite runs the three pinned seeds 1337, 4242 and 9001 (the same
// set the CI chaos job documents); setting GLOBE_CHAOS_SEED replaces the set
// with a single seed for reproduction. Every failure schedule is generated from
// the seed and executed on the virtual clock, so a run replays byte-identically
// — which the determinism test proves by running each scenario twice and
// comparing simulator event counts and final state hashes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dso/master_slave.h"
#include "src/dso/wire.h"
#include "src/gls/deploy.h"
#include "src/gos/object_server.h"
#include "src/util/sha256.h"
#include "src/sim/backend.h"

namespace globe {
namespace {

using gls::ObjectId;
using sim::kMillisecond;
using sim::kSecond;
using sim::NodeId;
using sim::SimTime;

std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("GLOBE_CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  return {1337, 4242, 9001};
}

// A deliberately non-idempotent semantics object: add(key, delta) increments.
// A KV put would mask duplicate execution (setting twice equals setting once);
// a counter makes every double-execution visible in the final state.
class CounterObject : public dso::SemanticsObject {
 public:
  static constexpr uint16_t kTypeId = 21;

  Result<Bytes> Invoke(const dso::Invocation& invocation) override {
    ByteReader r(invocation.args);
    if (invocation.method == "add") {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(uint64_t delta, r.ReadU64());
      counters_[key] += delta;
      ByteWriter w;
      w.WriteU64(counters_[key]);
      return w.Take();
    }
    if (invocation.method == "get") {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ByteWriter w;
      w.WriteU64(counters_.count(key) > 0 ? counters_.at(key) : 0);
      return w.Take();
    }
    return NotFound("no such method: " + invocation.method);
  }

  Bytes GetState() const override {
    ByteWriter w;
    w.WriteVarint(counters_.size());
    for (const auto& [key, value] : counters_) {
      w.WriteString(key);
      w.WriteU64(value);
    }
    return w.Take();
  }

  Status SetState(ByteSpan state) override {
    ByteReader r(state);
    std::map<std::string, uint64_t> counters;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(uint64_t value, r.ReadU64());
      counters[key] = value;
    }
    counters_ = std::move(counters);
    return OkStatus();
  }

  std::unique_ptr<dso::SemanticsObject> CloneEmpty() const override {
    return std::make_unique<CounterObject>();
  }
  uint16_t type_id() const override { return kTypeId; }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }

 private:
  std::map<std::string, uint64_t> counters_;
};

dso::Invocation CounterAdd(const std::string& key, uint64_t delta) {
  ByteWriter w;
  w.WriteString(key);
  w.WriteU64(delta);
  return dso::Invocation{"add", w.Take(), /*read_only=*/false};
}

std::map<std::string, uint64_t> ParseCounterState(ByteSpan state) {
  CounterObject counter;
  EXPECT_TRUE(counter.SetState(state).ok());
  return counter.counters();
}

// One small GDN-ish world: a 2x2 topology, a GLS with caching on, and two
// object servers on different continents.
struct ChaosWorld {
  explicit ChaosWorld(uint64_t seed) : world(sim::BuildUniformWorld({2, 2}, 2)) {
    // The deployment adds the directory hosts to the topology; the network only
    // reads the topology at send time, so construction order is free.
    sim::NetworkOptions network_options;
    network_options.rng_seed = seed;
    network = std::make_unique<sim::Network>(&simulator, &world.topology,
                                             network_options);
    transport = std::make_unique<sim::PlainTransport>(network.get());
    gls::GlsDeploymentOptions deployment_options;
    deployment_options.node_options.enable_cache = true;
    deployment_options.rng_seed = seed;
    deployment = std::make_unique<gls::GlsDeployment>(
        transport.get(), &world.topology, nullptr, deployment_options);
    repository.RegisterSemantics(std::make_unique<CounterObject>());
    gos_a = std::make_unique<gos::ObjectServer>(
        transport.get(), world.hosts[0], &repository,
        deployment->LeafDirectoryFor(world.hosts[0]), nullptr);
    gos_b = std::make_unique<gos::ObjectServer>(
        transport.get(), world.hosts[6], &repository,
        deployment->LeafDirectoryFor(world.hosts[6]), nullptr);
  }

  std::pair<ObjectId, gls::ContactAddress> CreateMaster(
      gls::ProtocolId protocol = dso::kProtoMasterSlave) {
    ObjectId oid;
    gls::ContactAddress address;
    Status status = Unavailable("pending");
    gos_a->CreateFirstReplica(
        protocol, CounterObject::kTypeId,
        [&](Result<std::pair<ObjectId, gls::ContactAddress>> r) {
          if (r.ok()) {
            oid = r->first;
            address = r->second;
            status = OkStatus();
          } else {
            status = r.status();
          }
        });
    simulator.Run();
    EXPECT_TRUE(status.ok()) << status;
    return {oid, address};
  }

  gls::ContactAddress CreateSlave(const ObjectId& oid) {
    gls::ContactAddress address;
    Status status = Unavailable("pending");
    gos_b->CreateReplica(oid, CounterObject::kTypeId, gls::ReplicaRole::kSlave,
                         [&](Result<std::pair<ObjectId, gls::ContactAddress>> r) {
                           if (r.ok()) {
                             address = r->second;
                             status = OkStatus();
                           } else {
                             status = r.status();
                           }
                         });
    simulator.Run();
    EXPECT_TRUE(status.ok()) << status;
    return address;
  }

  sim::Simulator simulator;
  sim::UniformWorld world;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<sim::PlainTransport> transport;
  std::unique_ptr<gls::GlsDeployment> deployment;
  dso::ImplementationRepository repository;
  std::unique_ptr<gos::ObjectServer> gos_a, gos_b;
};

// ------------------------------------------------------------- exactly once

// The acceptance scenario: a GOS-hosted write whose response is lost is
// retried, the duplicate delivery hits the master's dedup table, and the state
// mutates exactly once.
TEST(ChaosExactlyOnceTest, DuplicateDeliveredGosWriteMutatesStateOnce) {
  ChaosWorld w(0xC4A05);
  auto [oid, master_address] = w.CreateMaster();
  w.CreateSlave(oid);

  NodeId master_host = master_address.endpoint.node;
  NodeId client_host = w.world.hosts[3];
  sim::Channel client(w.transport.get(), client_host);

  // Lose every master -> client response until t = 1.1 s: attempt 1 executes
  // the write but its response vanishes; the retry at ~1.2 s (1 s deadline +
  // 200 ms backoff) delivers a duplicate that must be answered from the dedup
  // table, not re-executed.
  w.network->SetLinkDropProbability(master_host, client_host, 1.0);
  w.simulator.ScheduleAt(1100 * kMillisecond, [&] {
    w.network->ClearLinkDropProbability(master_host, client_host);
  });

  Result<Bytes> written = Unavailable("pending");
  sim::CallOptions options;
  options.deadline = 1 * kSecond;
  options.retry.attempts = 3;
  options.retry.backoff = 200 * kMillisecond;
  dso::kDsoInvoke.Call(&client, master_address.endpoint, CounterAdd("k", 5),
                       [&](Result<Bytes> r) { written = std::move(r); }, options);
  w.simulator.Run();

  ASSERT_TRUE(written.ok()) << written.status();
  ByteReader r(*written);
  EXPECT_EQ(r.ReadU64().value(), 5u);
  EXPECT_GE(client.stats().retries, 1u);  // the duplicate really went out

  // Exactly one mutation: the counter holds one delta and the master executed
  // exactly one write. The slave saw exactly one push.
  dso::ReplicationObject* master = w.gos_a->FindReplica(oid);
  dso::ReplicationObject* slave = w.gos_b->FindReplica(oid);
  ASSERT_NE(master, nullptr);
  ASSERT_NE(slave, nullptr);
  EXPECT_EQ(master->version(), 1u);
  EXPECT_EQ(slave->version(), 1u);
  EXPECT_EQ(ParseCounterState(master->semantics()->GetState()).at("k"), 5u);
  EXPECT_EQ(ParseCounterState(slave->semantics()->GetState()).at("k"), 5u);

  // The per-link counters name the link that lost the response.
  EXPECT_GE(w.network->stats().dropped_per_link.at({master_host, client_host}), 1u);
}

// Same story one layer down: a duplicate-delivered gls.insert_batch must
// register its addresses and install its pointer chain exactly once.
TEST(ChaosExactlyOnceTest, DuplicateDeliveredGlsInsertBatchMutatesStateOnce) {
  ChaosWorld w(0x615);
  NodeId client_host = w.world.hosts[5];
  std::unique_ptr<gls::GlsClient> client = w.deployment->MakeClient(client_host);

  Rng rng(7);
  ObjectId oid = ObjectId::Generate(&rng);
  gls::ContactAddress address{{client_host, 4242}, dso::kProtoMasterSlave,
                              gls::ReplicaRole::kMaster};
  sim::Endpoint leaf = client->leaf_directory().Route(oid);

  // Lose the leaf subnode's responses past the client's 30 s attempt deadline,
  // so the default write retry (3 attempts, 200 ms backoff) repeats the batch.
  w.network->SetLinkDropProbability(leaf.node, client_host, 1.0);
  w.simulator.ScheduleAt(31 * kSecond, [&] {
    w.network->ClearLinkDropProbability(leaf.node, client_host);
  });

  Status status = Unavailable("pending");
  client->InsertBatch({{oid, address}}, [&](Status s) { status = s; });
  w.simulator.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_GE(client->channel().stats().retries, 1u);

  // Find the leaf subnode the batch was executed on.
  const gls::DirectorySubnode* leaf_subnode = nullptr;
  int leaf_depth = 0;
  uint64_t total_pointer_installs = 0;
  for (const auto& subnode : w.deployment->subnodes()) {
    total_pointer_installs += subnode->stats().pointer_installs;
    if (subnode->endpoint() == leaf) {
      leaf_subnode = subnode.get();
      leaf_depth = subnode->depth();
    }
  }
  ASSERT_NE(leaf_subnode, nullptr);
  // One execution: one batch served, one insert applied, one address stored.
  EXPECT_EQ(leaf_subnode->stats().batch_inserts, 1u);
  EXPECT_EQ(leaf_subnode->stats().inserts, 1u);
  EXPECT_EQ(leaf_subnode->NumAddresses(oid), 1u);
  // The pointer chain above was installed exactly once per ancestor level — a
  // re-executed duplicate would have doubled these counters.
  EXPECT_EQ(total_pointer_installs, static_cast<uint64_t>(leaf_depth));
}

// ---------------------------------------------------------- crash/restart

// The rebuild-from-checkpoint flavour of crash/restart: the GOS host powers
// off mid-service, the dead process's objects are torn down, a fresh server is
// built from the last checkpoint while the node is still dark (ports
// registered during the outage win over the stash at reboot), and Restore
// re-registers the replica in the GLS. Volatile writes since the checkpoint
// are gone; checkpointed state and directory coherence survive.
TEST(ChaosCrashRestartTest, RebuildFromCheckpointWipesVolatileStateAndRebinds) {
  ChaosWorld w(0xB007);
  auto [oid, old_address] = w.CreateMaster();
  NodeId gos_host = w.gos_a->host();
  sim::Channel client(w.transport.get(), w.world.hosts[3]);

  auto write = [&](const std::string& key, uint64_t delta, sim::Endpoint target) {
    Result<Bytes> result = Unavailable("pending");
    dso::kDsoInvoke.Call(&client, target, CounterAdd(key, delta),
                         [&](Result<Bytes> r) { result = std::move(r); },
                         sim::WriteCallOptions());
    w.simulator.Run();
    return result;
  };
  ASSERT_TRUE(write("k", 3, old_address.endpoint).ok());
  Bytes checkpoint = w.gos_a->Checkpoint();
  // Acknowledged, but newer than the checkpoint: the crash must wipe it.
  ASSERT_TRUE(write("volatile", 2, old_address.endpoint).ok());

  // Power-cut, rebuild from the checkpoint, reboot, restore.
  w.network->CrashNode(gos_host);
  w.gos_a.reset();
  w.gos_a = std::make_unique<gos::ObjectServer>(
      w.transport.get(), gos_host, &w.repository,
      w.deployment->LeafDirectoryFor(gos_host), nullptr);
  w.network->RestartNode(gos_host);
  Status restored = Unavailable("pending");
  w.gos_a->Restore(checkpoint, [&](Status s) { restored = s; });
  w.simulator.Run();
  ASSERT_TRUE(restored.ok()) << restored;

  // The GLS serves exactly the rebuilt replica's fresh address; the stale
  // pre-crash registration is gone.
  std::unique_ptr<gls::GlsClient> gls = w.deployment->MakeClient(w.world.hosts[3]);
  Result<gls::LookupResult> lookup = Unavailable("pending");
  gls->Lookup(oid, [&](Result<gls::LookupResult> r) { lookup = std::move(r); });
  w.simulator.Run();
  ASSERT_TRUE(lookup.ok()) << lookup.status();
  ASSERT_EQ(lookup->addresses.size(), 1u);
  sim::Endpoint new_endpoint = lookup->addresses[0].endpoint;
  EXPECT_NE(new_endpoint, old_address.endpoint);

  // Checkpointed state survived, the newer write did not, and the rebuilt
  // replica serves writes at its new address.
  ASSERT_TRUE(write("k", 4, new_endpoint).ok());
  dso::ReplicationObject* master = w.gos_a->FindReplica(oid);
  ASSERT_NE(master, nullptr);
  std::map<std::string, uint64_t> state =
      ParseCounterState(master->semantics()->GetState());
  EXPECT_EQ(state.at("k"), 7u);            // 3 from the checkpoint + 4 after reboot
  EXPECT_EQ(state.count("volatile"), 0u);  // wiped with the process
}

// --------------------------------------------------- randomized fault sweeps

struct ScenarioSummary {
  uint64_t executed_events = 0;
  uint64_t master_version = 0;
  uint64_t slave_version = 0;
  std::string state_hash;
  uint64_t total_messages = 0;
  uint64_t dropped = 0;
  uint64_t partitioned = 0;
  size_t acked_writes = 0;

  bool operator==(const ScenarioSummary&) const = default;
};

// Runs one full randomized scenario: a master/slave replica set under a
// seed-generated schedule of writes, per-link loss episodes, client<->master
// partitions and slave crash/restarts; heals everything; then checks the
// end-state invariants.
ScenarioSummary RunScenario(uint64_t seed) {
  ChaosWorld w(seed);
  auto [oid, master_address] = w.CreateMaster();
  gls::ContactAddress slave_address = w.CreateSlave(oid);

  NodeId master_host = master_address.endpoint.node;
  NodeId slave_host = w.gos_b->host();
  NodeId client_host = w.world.hosts[3];
  sim::Channel client(w.transport.get(), client_host);

  std::map<std::string, uint64_t> issued;  // upper bound on every counter
  std::map<std::string, uint64_t> acked;   // lower bound on every counter
  size_t acked_writes = 0;

  // The whole schedule — writes and faults alike — is generated up front from
  // the seed and pinned to virtual times, so it replays identically.
  Rng schedule(seed ^ 0x5eed5c4aULL);
  constexpr int kTicks = 40;
  constexpr SimTime kTickSpacing = 500 * kMillisecond;
  for (int tick = 1; tick <= kTicks; ++tick) {
    SimTime at = tick * kTickSpacing;
    switch (schedule.UniformInt(6)) {
      case 0:
      case 1:
      case 2: {  // a write
        std::string key{'k', static_cast<char>('0' + schedule.UniformInt(4))};
        uint64_t delta = 1 + schedule.UniformInt(3);
        issued[key] += delta;
        w.simulator.ScheduleAt(at, [&w, &client, &acked, &acked_writes,
                                    master_endpoint = master_address.endpoint, key,
                                    delta] {
          sim::CallOptions options;
          options.deadline = 1 * kSecond;
          options.retry.attempts = 3;
          options.retry.backoff = 150 * kMillisecond;
          dso::kDsoInvoke.Call(&client, master_endpoint, CounterAdd(key, delta),
                               [&acked, &acked_writes, key, delta](Result<Bytes> r) {
                                 if (r.ok()) {
                                   acked[key] += delta;
                                   ++acked_writes;
                                 }
                               },
                               options);
        });
        break;
      }
      case 3: {  // a timed client <-> master partition
        SimTime duration = (200 + schedule.UniformInt(800)) * kMillisecond;
        w.simulator.ScheduleAt(at, [&w, master_host, client_host, duration] {
          w.network->PartitionPair(master_host, client_host, duration);
        });
        break;
      }
      case 4: {  // a per-link loss episode on the write path
        double loss = 0.2 + 0.1 * static_cast<double>(schedule.UniformInt(4));
        w.simulator.ScheduleAt(at, [&w, master_host, client_host, loss] {
          w.network->SetLinkDropProbability(master_host, client_host, loss);
          w.network->SetLinkDropProbability(client_host, master_host, loss);
        });
        w.simulator.ScheduleAt(at + 700 * kMillisecond, [&w, master_host,
                                                         client_host] {
          w.network->ClearLinkDropProbability(master_host, client_host);
          w.network->ClearLinkDropProbability(client_host, master_host);
        });
        break;
      }
      case 5: {  // crash the slave's host, reboot it shortly after
        w.simulator.ScheduleAt(at, [&w, slave_host] {
          if (!w.network->IsCrashed(slave_host)) {
            w.network->CrashNode(slave_host);
          }
        });
        w.simulator.ScheduleAt(at + 600 * kMillisecond, [&w, slave_host] {
          if (w.network->IsCrashed(slave_host)) {
            w.network->RestartNode(slave_host);
          }
        });
        break;
      }
    }
  }

  // Heal everything, then push one final sync write so the slave converges.
  SimTime heal_at = (kTicks + 1) * kTickSpacing + 5 * kSecond;
  w.simulator.ScheduleAt(heal_at, [&w, master_host, slave_host, client_host] {
    w.network->ClearLinkDropProbability(master_host, client_host);
    w.network->ClearLinkDropProbability(client_host, master_host);
    w.network->HealPartition(master_host, client_host);
    if (w.network->IsCrashed(slave_host)) {
      w.network->RestartNode(slave_host);
    }
  });
  issued["sync"] += 1;
  w.simulator.ScheduleAt(heal_at + kSecond, [&w, &client, &acked, &acked_writes,
                                             master_endpoint =
                                                 master_address.endpoint] {
    sim::CallOptions options;
    options.deadline = 2 * kSecond;
    options.retry.attempts = 5;
    options.retry.backoff = 200 * kMillisecond;
    dso::kDsoInvoke.Call(&client, master_endpoint, CounterAdd("sync", 1),
                         [&acked, &acked_writes](Result<Bytes> r) {
                           if (r.ok()) {
                             acked["sync"] += 1;
                             ++acked_writes;
                           }
                         },
                         options);
  });
  w.simulator.Run();

  // ---- End-state invariants ----
  dso::ReplicationObject* master = w.gos_a->FindReplica(oid);
  dso::ReplicationObject* slave = w.gos_b->FindReplica(oid);
  EXPECT_NE(master, nullptr);
  EXPECT_NE(slave, nullptr);
  if (master == nullptr || slave == nullptr) {
    return {};
  }

  // Converged: one owner view, identical state, identical version.
  Bytes master_state = master->semantics()->GetState();
  Bytes slave_state = slave->semantics()->GetState();
  EXPECT_EQ(master_state, slave_state);
  EXPECT_EQ(master->version(), slave->version());

  // Both replicas name the same master endpoint.
  sim::Endpoint owner_seen_by_master, owner_seen_by_slave;
  dso::kDsoMasterEndpoint.Call(&client, master_address.endpoint, {},
                               [&](Result<dso::EndpointMessage> r) {
                                 ASSERT_TRUE(r.ok());
                                 owner_seen_by_master = r->endpoint;
                               });
  dso::kDsoMasterEndpoint.Call(&client, slave_address.endpoint, {},
                               [&](Result<dso::EndpointMessage> r) {
                                 ASSERT_TRUE(r.ok());
                                 owner_seen_by_slave = r->endpoint;
                               });
  w.simulator.Run();
  EXPECT_EQ(owner_seen_by_master, owner_seen_by_slave);

  // At-most-once + retries bound every counter: acked writes are a floor (an
  // acknowledged write definitely executed, exactly once), issued writes a
  // ceiling (an unacknowledged write may or may not have landed; a duplicate
  // delivery never counts twice).
  std::map<std::string, uint64_t> state = ParseCounterState(master_state);
  for (const auto& [key, value] : state) {
    EXPECT_LE(value, issued[key]) << key << ": a write executed more than once";
  }
  for (const auto& [key, value] : acked) {
    EXPECT_GE(state[key], value) << key << ": an acknowledged write is missing";
  }
  EXPECT_EQ(state.at("sync"), 1u);  // the healed world really converged

  ScenarioSummary summary;
  summary.executed_events = w.simulator.executed_events();
  summary.master_version = master->version();
  summary.slave_version = slave->version();
  summary.state_hash =
      Sha256::HexDigest(master_state) + Sha256::HexDigest(slave_state);
  summary.total_messages = w.network->stats().TotalMessages();
  summary.dropped = w.network->stats().dropped_messages;
  summary.partitioned = w.network->stats().partitioned_messages;
  summary.acked_writes = acked_writes;
  return summary;
}

class ChaosSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweepTest, RandomizedFaultScheduleConvergesAndReplaysIdentically) {
  ScenarioSummary first = RunScenario(GetParam());
  // The schedule really exercised the system: writes got through and the
  // injected faults really cost traffic.
  EXPECT_GT(first.acked_writes, 0u);
  EXPECT_GT(first.dropped + first.partitioned, 0u);
  EXPECT_GT(first.master_version, 0u);
  // Determinism: the same seed replays the identical failure schedule — same
  // number of simulator events, same message/drop counts, same final state.
  ScenarioSummary second = RunScenario(GetParam());
  EXPECT_EQ(first.executed_events, second.executed_events);
  EXPECT_EQ(first.state_hash, second.state_hash);
  EXPECT_EQ(first.total_messages, second.total_messages);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.partitioned, second.partitioned);
  EXPECT_TRUE(first == second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweepTest, ::testing::ValuesIn(ChaosSeeds()));

// ------------------------------------------ policy migration under chaos

struct MigrationSummary {
  uint64_t executed_events = 0;
  std::string state_hash;
  uint64_t protocol_switches = 0;
  uint64_t tombstones = 0;
  uint64_t total_messages = 0;
  uint64_t dropped = 0;
  uint64_t partitioned = 0;
  size_t acked_writes = 0;

  bool operator==(const MigrationSummary&) const = default;
};

// A live object migrates client_server -> master_slave -> cache_inval (the
// controller's actuation path, driven here directly) while a seed-generated
// schedule throws writes, loss episodes, client<->server partitions and
// directory-host crashes at it. The client keeps writing to the endpoint it
// last learned, so writes scheduled before a switch but fired after it hit the
// retired port — the tombstone must fail them fast instead of letting them
// wait out deadlines against a silently closed port. Acked writes are the
// floor (each must survive both rebuilds), issued writes the ceiling (the
// dedup table keeps retried duplicates from landing twice), and the whole run
// must replay byte-identically.
MigrationSummary RunMigrationScenario(uint64_t seed) {
  ChaosWorld w(seed);
  auto [oid, initial_address] = w.CreateMaster(dso::kProtoClientServer);
  NodeId gos_host = w.gos_a->host();
  NodeId client_host = w.world.hosts[3];
  NodeId dir_host = w.deployment->LeafDirectoryFor(gos_host).subnodes[0].node;
  sim::Channel client(w.transport.get(), client_host);

  // The endpoint the client believes in. Migration completions update it, so
  // in-between writes target whatever incarnation the client last saw.
  sim::Endpoint believed = initial_address.endpoint;

  std::map<std::string, uint64_t> issued, acked;
  size_t acked_writes = 0;
  auto write_at = [&](SimTime at, const std::string& key, uint64_t delta) {
    issued[key] += delta;
    w.simulator.ScheduleAt(at, [&, key, delta] {
      sim::CallOptions options;
      options.deadline = 1 * kSecond;
      options.retry.attempts = 3;
      options.retry.backoff = 150 * kMillisecond;
      dso::kDsoInvoke.Call(&client, believed, CounterAdd(key, delta),
                           [&, key, delta](Result<Bytes> r) {
                             if (r.ok()) {
                               acked[key] += delta;
                               ++acked_writes;
                             }
                           },
                           options);
    });
  };

  // One guaranteed duplicate delivery: lose every server -> client response
  // around a pinned write, so every seed exercises the dedup table at least
  // once (and the drop counter below is never trivially zero).
  w.simulator.ScheduleAt(1900 * kMillisecond, [&] {
    w.network->SetLinkDropProbability(gos_host, client_host, 1.0);
  });
  w.simulator.ScheduleAt(2600 * kMillisecond, [&] {
    w.network->ClearLinkDropProbability(gos_host, client_host);
  });
  write_at(2000 * kMillisecond, "dup", 7);

  // The random schedule, generated up front and pinned to virtual times.
  Rng schedule(seed ^ 0x6D16121EULL);
  constexpr int kTicks = 36;
  constexpr SimTime kTickSpacing = 400 * kMillisecond;
  for (int tick = 1; tick <= kTicks; ++tick) {
    SimTime at = tick * kTickSpacing;
    switch (schedule.UniformInt(6)) {
      case 0:
      case 1:
      case 2: {  // a write to the currently-believed endpoint
        std::string key{'k', static_cast<char>('0' + schedule.UniformInt(4))};
        write_at(at, key, 1 + schedule.UniformInt(3));
        break;
      }
      case 3: {  // a per-link loss episode on the write path
        double loss = 0.2 + 0.1 * static_cast<double>(schedule.UniformInt(4));
        w.simulator.ScheduleAt(at, [&, loss] {
          w.network->SetLinkDropProbability(gos_host, client_host, loss);
          w.network->SetLinkDropProbability(client_host, gos_host, loss);
        });
        w.simulator.ScheduleAt(at + 700 * kMillisecond, [&] {
          w.network->ClearLinkDropProbability(gos_host, client_host);
          w.network->ClearLinkDropProbability(client_host, gos_host);
        });
        break;
      }
      case 4: {  // a timed client <-> server partition
        SimTime duration = (200 + schedule.UniformInt(800)) * kMillisecond;
        w.simulator.ScheduleAt(at, [&, duration] {
          w.network->PartitionPair(gos_host, client_host, duration);
        });
        break;
      }
      case 5: {  // crash the GOS host's leaf directory, reboot shortly after —
                 // the migration's GLS delete/insert swap must retry through it
        w.simulator.ScheduleAt(at, [&] {
          if (!w.network->IsCrashed(dir_host)) {
            w.network->CrashNode(dir_host);
          }
        });
        w.simulator.ScheduleAt(at + 600 * kMillisecond, [&] {
          if (w.network->IsCrashed(dir_host)) {
            w.network->RestartNode(dir_host);
          }
        });
        break;
      }
    }
  }

  // Two live migrations mid-schedule. The second waits for the first to
  // complete (a directory crash can stretch the GLS swap past its nominal
  // time), and the final sync write rebinds through an uncached lookup — the
  // registration swap must have made the fresh address visible.
  Status first_switch = Unavailable("pending");
  Status second_switch = Unavailable("pending");
  auto adopt_fresh_endpoint = [&] {
    dso::ReplicationObject* master = w.gos_a->FindReplica(oid);
    if (master != nullptr && master->contact_address().has_value()) {
      believed = master->contact_address()->endpoint;
    }
  };
  auto do_sync = [&] {
    issued["sync"] += 1;
    std::shared_ptr<gls::GlsClient> gls = w.deployment->MakeClient(client_host);
    gls->set_allow_cached(false);
    gls->Lookup(oid, [&, gls](Result<gls::LookupResult> r) {
      EXPECT_TRUE(r.ok()) << r.status();
      if (!r.ok() || r->addresses.empty()) {
        return;
      }
      believed = r->addresses[0].endpoint;
      dso::kDsoInvoke.Call(&client, believed, CounterAdd("sync", 1),
                           [&](Result<Bytes> rr) {
                             if (rr.ok()) {
                               acked["sync"] += 1;
                               ++acked_writes;
                             }
                           },
                           sim::WriteCallOptions());
    });
  };
  w.simulator.ScheduleAt(5 * kSecond, [&] {
    w.gos_a->SwitchProtocol(oid, dso::kProtoMasterSlave, [&](Status s) {
      first_switch = s;
      adopt_fresh_endpoint();
      w.simulator.ScheduleAt(
          std::max(w.simulator.Now(), 10 * kSecond) + kMillisecond, [&] {
            w.gos_a->SwitchProtocol(oid, dso::kProtoCacheInval, [&](Status s2) {
              second_switch = s2;
              adopt_fresh_endpoint();
              w.simulator.ScheduleAt(w.simulator.Now() + kSecond, do_sync);
            });
          });
    });
  });

  // Heal everything left over once the schedule has played out.
  w.simulator.ScheduleAt((kTicks + 4) * kTickSpacing, [&] {
    w.network->ClearLinkDropProbability(gos_host, client_host);
    w.network->ClearLinkDropProbability(client_host, gos_host);
    w.network->HealPartition(gos_host, client_host);
    if (w.network->IsCrashed(dir_host)) {
      w.network->RestartNode(dir_host);
    }
  });
  w.simulator.Run();

  // ---- End-state invariants ----
  EXPECT_TRUE(first_switch.ok()) << first_switch;
  EXPECT_TRUE(second_switch.ok()) << second_switch;
  dso::ReplicationObject* master = w.gos_a->FindReplica(oid);
  EXPECT_NE(master, nullptr);
  if (master == nullptr) {
    return {};
  }
  EXPECT_GE(client.stats().retries, 1u);  // the forced duplicate really went out

  // At-most-once across both rebuilds: acked writes are a floor (they
  // executed exactly once and the state snapshot carried them through every
  // incarnation), issued writes a ceiling (a duplicate delivery — whether
  // absorbed by the dedup table or refused by a tombstone — never lands
  // twice). The post-migration sync write proves the rebound address serves.
  Bytes final_state = master->semantics()->GetState();
  std::map<std::string, uint64_t> state = ParseCounterState(final_state);
  for (const auto& [key, value] : state) {
    EXPECT_LE(value, issued[key]) << key << ": a write executed more than once";
  }
  for (const auto& [key, value] : acked) {
    EXPECT_GE(state.count(key) > 0 ? state.at(key) : 0, value)
        << key << ": an acknowledged write was dropped by a migration";
  }
  EXPECT_EQ(state.count("sync") > 0 ? state.at("sync") : 0, 1u);
  EXPECT_EQ(w.gos_a->stats().protocol_switches, 2u);
  EXPECT_EQ(w.gos_a->stats().tombstones, 2u);

  MigrationSummary summary;
  summary.executed_events = w.simulator.executed_events();
  summary.state_hash = Sha256::HexDigest(final_state);
  summary.protocol_switches = w.gos_a->stats().protocol_switches;
  summary.tombstones = w.gos_a->stats().tombstones;
  summary.total_messages = w.network->stats().TotalMessages();
  summary.dropped = w.network->stats().dropped_messages;
  summary.partitioned = w.network->stats().partitioned_messages;
  summary.acked_writes = acked_writes;
  return summary;
}

class ChaosMigrationSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosMigrationSweepTest, LiveMigrationKeepsAckedWritesAndReplaysIdentically) {
  MigrationSummary first = RunMigrationScenario(GetParam());
  EXPECT_GT(first.acked_writes, 0u);
  EXPECT_EQ(first.protocol_switches, 2u);
  EXPECT_EQ(first.tombstones, 2u);
  EXPECT_GT(first.dropped + first.partitioned, 0u);
  // Determinism: the same seed replays the identical migration race — same
  // event count, same fault toll, same state bytes. (Endpoint port numbers are
  // process-wide monotonic, so they are the one thing two in-process runs
  // cannot share.)
  MigrationSummary second = RunMigrationScenario(GetParam());
  EXPECT_EQ(first.executed_events, second.executed_events);
  EXPECT_EQ(first.state_hash, second.state_hash);
  EXPECT_TRUE(first == second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosMigrationSweepTest,
                         ::testing::ValuesIn(ChaosSeeds()));

// ------------------------------------------------------- master fail-over

// ChaosWorld with the GOS fail-over machinery switched on. The lease timers
// keep the simulator queue non-empty, so everything here drives virtual time
// with RunUntil instead of draining with Run().
struct FailoverWorld {
  explicit FailoverWorld(uint64_t seed, bool quorum = false)
      : world(sim::BuildUniformWorld({2, 2}, 2)) {
    sim::NetworkOptions network_options;
    network_options.rng_seed = seed;
    network = std::make_unique<sim::Network>(&simulator, &world.topology,
                                             network_options);
    transport = std::make_unique<sim::PlainTransport>(network.get());
    gls::GlsDeploymentOptions deployment_options;
    deployment_options.node_options.enable_cache = true;
    deployment_options.rng_seed = seed;
    deployment = std::make_unique<gls::GlsDeployment>(
        transport.get(), &world.topology, nullptr, deployment_options);
    repository.RegisterSemantics(std::make_unique<CounterObject>());
    gos::GosOptions gos_options;
    gos_options.enable_failover = true;
    gos_options.failover_quorum = quorum;
    gos_a = std::make_unique<gos::ObjectServer>(
        transport.get(), world.hosts[0], &repository,
        deployment->LeafDirectoryFor(world.hosts[0]), nullptr, gos_options);
    gos_b = std::make_unique<gos::ObjectServer>(
        transport.get(), world.hosts[6], &repository,
        deployment->LeafDirectoryFor(world.hosts[6]), nullptr, gos_options);
    gos_c = std::make_unique<gos::ObjectServer>(
        transport.get(), world.hosts[2], &repository,
        deployment->LeafDirectoryFor(world.hosts[2]), nullptr, gos_options);
  }

  void RunFor(SimTime duration) { simulator.RunUntil(simulator.Now() + duration); }

  std::pair<ObjectId, gls::ContactAddress> CreateMaster(
      gls::ProtocolId protocol = dso::kProtoMasterSlave) {
    ObjectId oid;
    gls::ContactAddress address;
    Status status = Unavailable("pending");
    gos_a->CreateFirstReplica(
        protocol, CounterObject::kTypeId,
        [&](Result<std::pair<ObjectId, gls::ContactAddress>> r) {
          if (r.ok()) {
            oid = r->first;
            address = r->second;
            status = OkStatus();
          } else {
            status = r.status();
          }
        });
    RunFor(10 * kSecond);
    EXPECT_TRUE(status.ok()) << status;
    return {oid, address};
  }

  gls::ContactAddress CreateSlave(gos::ObjectServer* gos, const ObjectId& oid) {
    gls::ContactAddress address;
    Status status = Unavailable("pending");
    gos->CreateReplica(oid, CounterObject::kTypeId, gls::ReplicaRole::kSlave,
                       [&](Result<std::pair<ObjectId, gls::ContactAddress>> r) {
                         if (r.ok()) {
                           address = r->second;
                           status = OkStatus();
                         } else {
                           status = r.status();
                         }
                       });
    RunFor(10 * kSecond);
    EXPECT_TRUE(status.ok()) << status;
    return address;
  }

  // The root home subnode arbitrating `oid` (where the OwnerRecord lives).
  const gls::DirectorySubnode* RootArbiter(const ObjectId& oid) {
    const gls::DirectorySubnode* root = nullptr;
    for (const auto& subnode : deployment->subnodes()) {
      if (subnode->depth() == 0 && subnode->OwnerEpoch(oid) > 0) {
        root = subnode.get();
      }
    }
    return root;
  }

  sim::Simulator simulator;
  sim::UniformWorld world;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<sim::PlainTransport> transport;
  std::unique_ptr<gls::GlsDeployment> deployment;
  dso::ImplementationRepository repository;
  std::unique_ptr<gos::ObjectServer> gos_a, gos_b, gos_c;
};

// The headline scenario: the master crashes mid-push. The slave detects the
// missed lease renewals, wins gls.claim_master for epoch 2, re-registers as
// the master-role contact address, and serves writes — with every previously
// acknowledged write intact (the acked-write floor).
TEST(ChaosFailoverTest, MasterCrashMidPushElectsSlaveWithoutLosingAckedWrites) {
  FailoverWorld w(0xFA11);
  auto [oid, master_address] = w.CreateMaster();
  gls::ContactAddress slave_address = w.CreateSlave(w.gos_b.get(), oid);
  NodeId master_host = master_address.endpoint.node;
  sim::Channel client(w.transport.get(), w.world.hosts[3]);

  // An acknowledged write: pushed to the slave before the master acks, so it
  // must survive the fail-over no matter what.
  Result<Bytes> acked = Unavailable("pending");
  dso::kDsoInvoke.Call(&client, master_address.endpoint, CounterAdd("k", 5),
                       [&](Result<Bytes> r) { acked = std::move(r); },
                       sim::WriteCallOptions());
  w.RunFor(5 * kSecond);
  ASSERT_TRUE(acked.ok()) << acked.status();

  // Mid-push crash: issue a write and power the master off while it is in
  // flight. Whether the push reached the slave is irrelevant — the master died
  // before acknowledging, so the write is outside the floor.
  SimTime crash_at = w.simulator.Now() + 50 * kMillisecond;
  dso::kDsoInvoke.Call(&client, master_address.endpoint, CounterAdd("mid", 3),
                       [](Result<Bytes>) {}, sim::WriteCallOptions());
  w.simulator.ScheduleAt(crash_at, [&w, master_host = master_host] {
    w.network->CrashNode(master_host);
  });

  // Election: the slave misses renewals, claims, and wins epoch 2.
  w.RunFor(20 * kSecond);
  dso::ReplicationObject* new_master = w.gos_b->FindReplica(oid);
  ASSERT_NE(new_master, nullptr);
  EXPECT_EQ(new_master->contact_address()->role, gls::ReplicaRole::kMaster);
  EXPECT_EQ(new_master->epoch(), 2u);
  ASSERT_NE(new_master->group(), nullptr);
  EXPECT_EQ(new_master->group()->stats().claims_won, 1u);
  // Time to new master: bounded by lease timeout + watch cadence + one claim
  // round trip (plus one spurious-rejection cycle at worst).
  EXPECT_LE(new_master->group()->stats().elected_at,
            crash_at + 15 * kSecond);

  // The arbiter granted exactly one takeover: epoch 2, held by the old slave.
  const gls::DirectorySubnode* arbiter = w.RootArbiter(oid);
  ASSERT_NE(arbiter, nullptr);
  EXPECT_EQ(arbiter->OwnerEpoch(oid), 2u);

  // The GLS now serves a master-role contact address at the new master. (Ask
  // from the new master's continent: lookups resolve the nearest subtree, and
  // the crashed master's stale registration still sits in the other one until
  // it restarts or is decommissioned.)
  std::unique_ptr<gls::GlsClient> gls = w.deployment->MakeClient(w.world.hosts[7]);
  Result<gls::LookupResult> lookup = Unavailable("pending");
  gls->Lookup(oid, [&](Result<gls::LookupResult> r) { lookup = std::move(r); });
  w.RunFor(5 * kSecond);
  ASSERT_TRUE(lookup.ok()) << lookup.status();
  bool new_master_registered = false;
  for (const gls::ContactAddress& address : lookup->addresses) {
    if (address.endpoint == slave_address.endpoint) {
      EXPECT_EQ(address.role, gls::ReplicaRole::kMaster);
      new_master_registered = true;
    }
  }
  EXPECT_TRUE(new_master_registered);

  // The acked floor holds, the unacked mid-push write executed at most once,
  // and the new master serves writes.
  Result<Bytes> after = Unavailable("pending");
  dso::kDsoInvoke.Call(&client, slave_address.endpoint, CounterAdd("after", 2),
                       [&](Result<Bytes> r) { after = std::move(r); },
                       sim::WriteCallOptions());
  w.RunFor(5 * kSecond);
  ASSERT_TRUE(after.ok()) << after.status();
  std::map<std::string, uint64_t> state =
      ParseCounterState(new_master->semantics()->GetState());
  EXPECT_EQ(state.at("k"), 5u);
  EXPECT_EQ(state.at("after"), 2u);
  EXPECT_LE(state.count("mid") > 0 ? state.at("mid") : 0, 3u);
}

// A timed partition produces a stale master: the group elects a successor
// behind its back, and once the partition heals the old master's epoch-fenced
// traffic is refused, it demotes itself, adopts the winner and re-syncs.
TEST(ChaosFailoverTest, PartitionedStaleMasterIsEpochFencedAndDemotes) {
  FailoverWorld w(0x9A57);
  auto [oid, master_address] = w.CreateMaster();
  gls::ContactAddress slave_address = w.CreateSlave(w.gos_b.get(), oid);
  NodeId master_host = master_address.endpoint.node;
  NodeId slave_host = w.gos_b->host();
  NodeId client_host = w.world.hosts[3];
  sim::Channel client(w.transport.get(), client_host);

  std::map<std::string, uint64_t> issued;
  std::map<std::string, uint64_t> acked;
  auto write = [&](const std::string& key, uint64_t delta, sim::Endpoint target,
                   SimTime at) {
    issued[key] += delta;
    w.simulator.ScheduleAt(at, [&w, &client, &acked, key, delta, target] {
      sim::CallOptions options = sim::WriteCallOptions(2 * kSecond);
      dso::kDsoInvoke.Call(&client, target, CounterAdd(key, delta),
                           [&acked, key, delta](Result<Bytes> r) {
                             if (r.ok()) {
                               acked[key] += delta;
                             }
                           },
                           options);
    });
  };

  // Acked before the trouble starts.
  write("k", 5, master_address.endpoint, w.simulator.Now() + 100 * kMillisecond);
  w.RunFor(5 * kSecond);
  ASSERT_EQ(acked.at("k"), 5u);

  // Cut the master off from the slave, the client AND every directory host for
  // 20 s: it can neither renew its GLS lease nor reach its group.
  SimTime partition_start = w.simulator.Now();
  constexpr SimTime kPartition = 20 * kSecond;
  w.network->PartitionPair(master_host, slave_host, kPartition);
  w.network->PartitionPair(master_host, client_host, kPartition);
  for (const auto& subnode : w.deployment->subnodes()) {
    w.network->PartitionPair(master_host, subnode->host(), kPartition);
  }

  // A write aimed at the stale master during the partition cannot execute (the
  // client is cut off from it) — issued, never acked, never landed.
  write("during", 1, master_address.endpoint, partition_start + 8 * kSecond);
  // Writes keep flowing once the slave has been elected.
  write("elected", 4, slave_address.endpoint, partition_start + 15 * kSecond);

  // Shortly after the heal, a write still aimed at the old master: either its
  // push is epoch-fenced (write refused, master demotes) or the master already
  // demoted and forwards it to the new master (write acked).
  write("late", 2, master_address.endpoint,
        partition_start + kPartition + 100 * kMillisecond);

  w.RunFor(kPartition + 25 * kSecond);

  dso::ReplicationObject* old_master = w.gos_a->FindReplica(oid);
  dso::ReplicationObject* new_master = w.gos_b->FindReplica(oid);
  ASSERT_NE(old_master, nullptr);
  ASSERT_NE(new_master, nullptr);

  // The group re-elected behind the partition and fenced the stale master out:
  // the old master was refused under the new epoch at least once, demoted
  // itself exactly once, and both replicas agree on epoch 2 with the old
  // master now a slave of the new one.
  EXPECT_EQ(new_master->contact_address()->role, gls::ReplicaRole::kMaster);
  EXPECT_EQ(old_master->contact_address()->role, gls::ReplicaRole::kSlave);
  EXPECT_EQ(new_master->epoch(), 2u);
  EXPECT_EQ(old_master->epoch(), 2u);
  EXPECT_GE(new_master->group()->stats().stale_rejected, 1u);
  EXPECT_EQ(old_master->group()->stats().demotions, 1u);
  EXPECT_EQ(new_master->group()->stats().claims_won, 1u);

  // Converged: the demoted master re-registered and adopted the winner's
  // state; a final write through the NEW master reaches both.
  write("sync", 1, slave_address.endpoint, w.simulator.Now() + kSecond);
  w.RunFor(10 * kSecond);
  Bytes new_state = new_master->semantics()->GetState();
  Bytes old_state = old_master->semantics()->GetState();
  EXPECT_EQ(new_state, old_state);
  EXPECT_EQ(new_master->version(), old_master->version());

  // Acked floor and issued ceiling hold across the whole schedule.
  std::map<std::string, uint64_t> state = ParseCounterState(new_state);
  for (const auto& [key, value] : state) {
    EXPECT_LE(value, issued[key]) << key;
  }
  for (const auto& [key, value] : acked) {
    EXPECT_GE(state.count(key) > 0 ? state.at(key) : 0, value) << key;
  }
  EXPECT_EQ(state.count("during"), 0u);  // never reached the stale master
  EXPECT_EQ(state.at("sync"), 1u);
}

// -------------------------------------- fail-over under loss + determinism

struct FailoverSummary {
  uint64_t executed_events = 0;
  std::string state_hash;
  uint64_t winner_epoch = 0;
  int masters = 0;
  uint64_t claims_won_total = 0;
  size_t acked_writes = 0;

  bool operator==(const FailoverSummary&) const = default;
};

// Two slaves race a re-election through 10% per-link loss on every slave <->
// directory link: exactly one must win, the loser adopts it, and the healed
// group converges — byte-identically across replays of the same seed.
FailoverSummary RunFailoverScenario(uint64_t seed) {
  FailoverWorld w(seed);
  auto [oid, master_address] = w.CreateMaster();
  w.CreateSlave(w.gos_b.get(), oid);
  w.CreateSlave(w.gos_c.get(), oid);
  NodeId master_host = master_address.endpoint.node;
  sim::Channel client(w.transport.get(), w.world.hosts[3]);

  std::map<std::string, uint64_t> issued, acked;
  size_t acked_writes = 0;
  auto write = [&](const std::string& key, uint64_t delta, sim::Endpoint target,
                   SimTime at) {
    issued[key] += delta;
    w.simulator.ScheduleAt(at, [&w, &client, &acked, &acked_writes, key, delta,
                                target] {
      dso::kDsoInvoke.Call(&client, target, CounterAdd(key, delta),
                           [&acked, &acked_writes, key, delta](Result<Bytes> r) {
                             if (r.ok()) {
                               acked[key] += delta;
                               ++acked_writes;
                             }
                           },
                           sim::WriteCallOptions(2 * kSecond));
    });
  };

  for (int i = 0; i < 4; ++i) {
    std::string key{'k', static_cast<char>('0' + i)};
    write(key, i + 1, master_address.endpoint,
          w.simulator.Now() + (i + 1) * 300 * kMillisecond);
  }
  w.RunFor(5 * kSecond);

  // 10% loss on every slave <-> directory link, both directions: claims,
  // registrations and GLS re-registrations must retry through it.
  std::vector<NodeId> slave_hosts = {w.gos_b->host(), w.gos_c->host()};
  for (NodeId slave : slave_hosts) {
    for (const auto& subnode : w.deployment->subnodes()) {
      w.network->SetLinkDropProbability(slave, subnode->host(), 0.10);
      w.network->SetLinkDropProbability(subnode->host(), slave, 0.10);
    }
  }
  w.network->CrashNode(master_host);
  w.RunFor(30 * kSecond);

  dso::ReplicationObject* replica_b = w.gos_b->FindReplica(oid);
  dso::ReplicationObject* replica_c = w.gos_c->FindReplica(oid);
  EXPECT_NE(replica_b, nullptr);
  EXPECT_NE(replica_c, nullptr);
  if (replica_b == nullptr || replica_c == nullptr) {
    return {};
  }

  // Exactly one winner; the loser follows it.
  int masters = 0;
  dso::ReplicationObject* winner = nullptr;
  for (dso::ReplicationObject* replica : {replica_b, replica_c}) {
    if (replica->contact_address()->role == gls::ReplicaRole::kMaster) {
      ++masters;
      winner = replica;
    }
  }
  EXPECT_EQ(masters, 1);
  if (winner == nullptr) {
    return {};
  }
  uint64_t claims_won_total = replica_b->group()->stats().claims_won +
                              replica_c->group()->stats().claims_won;
  EXPECT_EQ(claims_won_total, 1u);

  // Heal the loss and push one final write through the winner: the group must
  // converge on identical state.
  for (NodeId slave : slave_hosts) {
    for (const auto& subnode : w.deployment->subnodes()) {
      w.network->ClearLinkDropProbability(slave, subnode->host());
      w.network->ClearLinkDropProbability(subnode->host(), slave);
    }
  }
  write("sync", 1, winner->contact_address()->endpoint,
        w.simulator.Now() + kSecond);
  w.RunFor(15 * kSecond);

  Bytes state_b = replica_b->semantics()->GetState();
  Bytes state_c = replica_c->semantics()->GetState();
  EXPECT_EQ(state_b, state_c);
  EXPECT_EQ(replica_b->version(), replica_c->version());

  std::map<std::string, uint64_t> state = ParseCounterState(state_b);
  for (const auto& [key, value] : state) {
    EXPECT_LE(value, issued[key]) << key;
  }
  for (const auto& [key, value] : acked) {
    EXPECT_GE(state.count(key) > 0 ? state.at(key) : 0, value) << key;
  }
  EXPECT_EQ(state.at("sync"), 1u);

  FailoverSummary summary;
  summary.executed_events = w.simulator.executed_events();
  summary.state_hash = Sha256::HexDigest(state_b) + Sha256::HexDigest(state_c);
  summary.winner_epoch = winner->epoch();
  summary.masters = masters;
  summary.claims_won_total = claims_won_total;
  summary.acked_writes = acked_writes;
  return summary;
}

class ChaosFailoverSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosFailoverSweepTest, ReElectionUnderLossConvergesAndReplaysIdentically) {
  FailoverSummary first = RunFailoverScenario(GetParam());
  EXPECT_EQ(first.masters, 1);
  EXPECT_GE(first.winner_epoch, 2u);
  EXPECT_GT(first.acked_writes, 0u);
  // Determinism: the same seed replays the identical election — same event
  // count, same winner, same converged state bytes.
  FailoverSummary second = RunFailoverScenario(GetParam());
  EXPECT_EQ(first.executed_events, second.executed_events);
  EXPECT_EQ(first.state_hash, second.state_hash);
  EXPECT_TRUE(first == second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFailoverSweepTest,
                         ::testing::ValuesIn(ChaosSeeds()));

// ------------------------------------------------- quorum-acknowledged writes
//
// The three documented fail-over loss windows, each replayed under quorum mode
// (gos_options.failover_quorum): a write is acked only once a strict majority
// of the group durably holds it and its commit floor reached the GLS arbiter.
// Shared invariants: zero acked writes lost, a definitively refused write
// never resurfaces, and every scenario replays byte-identically per seed.

struct QuorumSummary {
  uint64_t executed_events = 0;
  std::string state_hash;
  uint64_t winner_epoch = 0;
  int masters = 0;
  uint64_t arbiter_floor = 0;
  size_t acked_writes = 0;
  uint64_t quorum_commits = 0;
  uint64_t quorum_refusals = 0;
  uint64_t total_messages = 0;

  bool operator==(const QuorumSummary&) const = default;
};

// Helper state shared by the quorum scenarios: seed-pinned writes with
// acked-floor / issued-ceiling accounting.
struct QuorumHarness {
  explicit QuorumHarness(FailoverWorld* w)
      : world(w), client(w->transport.get(), w->world.hosts[3]) {}

  void WriteAt(SimTime at, const std::string& key, uint64_t delta,
               sim::Endpoint target, SimTime deadline = 10 * kSecond) {
    issued[key] += delta;
    world->simulator.ScheduleAt(at, [this, key, delta, target, deadline] {
      dso::kDsoInvoke.Call(&client, target, CounterAdd(key, delta),
                           [this, key, delta](Result<Bytes> r) {
                             if (r.ok()) {
                               acked[key] += delta;
                               ++acked_writes;
                             } else {
                               ++refused_writes;
                             }
                           },
                           sim::WriteCallOptions(deadline));
    });
  }

  // The elected master among the given replicas (nullptr unless exactly one).
  static dso::ReplicationObject* WinnerOf(
      std::vector<dso::ReplicationObject*> replicas, int* masters) {
    *masters = 0;
    dso::ReplicationObject* winner = nullptr;
    for (dso::ReplicationObject* replica : replicas) {
      if (replica != nullptr &&
          replica->contact_address()->role == gls::ReplicaRole::kMaster) {
        ++*masters;
        winner = replica;
      }
    }
    return *masters == 1 ? winner : nullptr;
  }

  // Acked writes are a floor, issued writes a ceiling, on every counter.
  void CheckBounds(const std::map<std::string, uint64_t>& state) {
    for (const auto& [key, value] : state) {
      EXPECT_LE(value, issued[key]) << key << ": executed more than once";
    }
    for (const auto& [key, value] : acked) {
      EXPECT_GE(state.count(key) > 0 ? state.at(key) : 0, value)
          << key << ": an acknowledged write was lost";
    }
  }

  FailoverWorld* world;
  sim::Channel client;
  std::map<std::string, uint64_t> issued, acked;
  size_t acked_writes = 0;
  size_t refused_writes = 0;
};

// Loss window 1: the master crashes mid-commit — after executing a write and
// fanning it out, before (or while) publishing its commit floor. The write was
// never acked, so it may land (a majority staged it) or vanish (the pushes
// died with the master); what it must never do is cost an *acked* write. The
// elected slave resumes at exactly the arbiter's floor.
QuorumSummary RunQuorumCrashScenario(uint64_t seed) {
  FailoverWorld w(seed, /*quorum=*/true);
  auto [oid, master_address] = w.CreateMaster();
  w.CreateSlave(w.gos_b.get(), oid);
  w.CreateSlave(w.gos_c.get(), oid);
  QuorumHarness h(&w);

  // Quorum-acked: 2-of-3 held it and the floor reached the arbiter before the
  // client saw the ack. This write must survive anything that follows.
  h.WriteAt(w.simulator.Now() + 100 * kMillisecond, "k", 5,
            master_address.endpoint);
  w.RunFor(5 * kSecond);
  EXPECT_EQ(h.acked["k"], 5u);

  // Mid-commit crash: the write is in its fan-out/floor-publication window
  // when the master's host powers off.
  h.WriteAt(w.simulator.Now(), "mid", 3, master_address.endpoint, 2 * kSecond);
  w.simulator.ScheduleAt(w.simulator.Now() + 50 * kMillisecond,
                         [&w, host = master_address.endpoint.node] {
                           w.network->CrashNode(host);
                         });
  w.RunFor(25 * kSecond);

  dso::ReplicationObject* replica_b = w.gos_b->FindReplica(oid);
  dso::ReplicationObject* replica_c = w.gos_c->FindReplica(oid);
  EXPECT_NE(replica_b, nullptr);
  EXPECT_NE(replica_c, nullptr);
  if (replica_b == nullptr || replica_c == nullptr) {
    return {};
  }
  int masters = 0;
  dso::ReplicationObject* winner =
      QuorumHarness::WinnerOf({replica_b, replica_c}, &masters);
  EXPECT_EQ(masters, 1);
  if (winner == nullptr) {
    return {};
  }
  EXPECT_EQ(winner->epoch(), 2u);

  // The new master serves quorum writes (itself + the surviving slave).
  h.WriteAt(w.simulator.Now() + kSecond, "after", 2,
            winner->contact_address()->endpoint);
  w.RunFor(10 * kSecond);
  EXPECT_EQ(h.acked["after"], 2u);

  // Converged survivors, acked floor intact, unacked mid-commit write at most
  // once, and the arbiter's floor names the new master's committed version.
  Bytes state_b = replica_b->semantics()->GetState();
  Bytes state_c = replica_c->semantics()->GetState();
  EXPECT_EQ(state_b, state_c);
  EXPECT_EQ(replica_b->version(), replica_c->version());
  std::map<std::string, uint64_t> state = ParseCounterState(state_b);
  h.CheckBounds(state);
  EXPECT_EQ(state.at("k"), 5u);
  EXPECT_EQ(state.at("after"), 2u);
  const gls::DirectorySubnode* arbiter = w.RootArbiter(oid);
  EXPECT_NE(arbiter, nullptr);
  uint64_t arbiter_floor = arbiter != nullptr ? arbiter->OwnerVersionFloor(oid) : 0;
  EXPECT_EQ(arbiter_floor, winner->group()->committed_version());
  EXPECT_EQ(winner->version(), winner->group()->committed_version());

  QuorumSummary summary;
  summary.executed_events = w.simulator.executed_events();
  summary.state_hash = Sha256::HexDigest(state_b) + Sha256::HexDigest(state_c);
  summary.winner_epoch = winner->epoch();
  summary.masters = masters;
  summary.arbiter_floor = arbiter_floor;
  summary.acked_writes = h.acked_writes;
  summary.quorum_commits = winner->group()->stats().quorum_commits;
  summary.quorum_refusals = winner->group()->stats().quorum_refusals;
  summary.total_messages = w.network->stats().TotalMessages();
  return summary;
}

class ChaosQuorumCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosQuorumCrashTest, MasterCrashMidCommitLosesNoAckedWriteAndReplays) {
  QuorumSummary first = RunQuorumCrashScenario(GetParam());
  EXPECT_EQ(first.masters, 1);
  EXPECT_EQ(first.winner_epoch, 2u);
  EXPECT_GE(first.acked_writes, 2u);
  QuorumSummary second = RunQuorumCrashScenario(GetParam());
  EXPECT_EQ(first.executed_events, second.executed_events);
  EXPECT_EQ(first.state_hash, second.state_hash);
  EXPECT_TRUE(first == second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosQuorumCrashTest,
                         ::testing::ValuesIn(ChaosSeeds()));

// Loss window 2: the master is partitioned from every member (and the
// directory) while a client it can still reach keeps writing. Lease-only mode
// would execute those writes locally and ack them — then lose them all to the
// election happening behind the partition. Quorum mode refuses the burst: the
// first write rolls back when its fan-out cannot assemble a majority, the
// rest are refused up front, and nothing the isolated master did survives.
QuorumSummary RunQuorumIsolationScenario(uint64_t seed) {
  FailoverWorld w(seed, /*quorum=*/true);
  auto [oid, master_address] = w.CreateMaster();
  w.CreateSlave(w.gos_b.get(), oid);
  w.CreateSlave(w.gos_c.get(), oid);
  QuorumHarness h(&w);
  NodeId master_host = master_address.endpoint.node;

  h.WriteAt(w.simulator.Now() + 100 * kMillisecond, "k", 5,
            master_address.endpoint);
  w.RunFor(5 * kSecond);
  EXPECT_EQ(h.acked["k"], 5u);

  // Isolate the master from both slaves and every directory host for 30 s —
  // the client's link stays up, so its writes really reach the master.
  SimTime t0 = w.simulator.Now();
  constexpr SimTime kIsolation = 30 * kSecond;
  w.network->PartitionPair(master_host, w.gos_b->host(), kIsolation);
  w.network->PartitionPair(master_host, w.gos_c->host(), kIsolation);
  for (const auto& subnode : w.deployment->subnodes()) {
    w.network->PartitionPair(master_host, subnode->host(), kIsolation);
  }

  // The write burst during isolation. The first write executes and rolls back
  // (its fan-out dies at the partition); once the unreachable members are
  // evicted the remaining writes are refused instantly, nothing applied.
  h.WriteAt(t0 + 1 * kSecond, "iso0", 1, master_address.endpoint);
  h.WriteAt(t0 + 8 * kSecond, "iso1", 1, master_address.endpoint);
  h.WriteAt(t0 + 10 * kSecond, "iso2", 1, master_address.endpoint);

  w.RunFor(kIsolation + 20 * kSecond);

  dso::ReplicationObject* old_master = w.gos_a->FindReplica(oid);
  dso::ReplicationObject* replica_b = w.gos_b->FindReplica(oid);
  dso::ReplicationObject* replica_c = w.gos_c->FindReplica(oid);
  EXPECT_NE(old_master, nullptr);
  EXPECT_NE(replica_b, nullptr);
  EXPECT_NE(replica_c, nullptr);
  if (old_master == nullptr || replica_b == nullptr || replica_c == nullptr) {
    return {};
  }

  // Zero acked writes during isolation; every burst write got a definitive
  // refusal; at least one rolled back after executing.
  EXPECT_EQ(h.acked.count("iso0") + h.acked.count("iso1") + h.acked.count("iso2"),
            0u);
  EXPECT_EQ(h.refused_writes, 3u);
  EXPECT_GE(old_master->group()->stats().quorum_refusals, 3u);
  EXPECT_EQ(old_master->group()->stats().quorum_commits, 1u);  // just "k"

  // The group elected a new master behind the partition; the healed old
  // master was fenced, demoted exactly once, and follows the winner.
  int masters = 0;
  dso::ReplicationObject* winner =
      QuorumHarness::WinnerOf({old_master, replica_b, replica_c}, &masters);
  EXPECT_EQ(masters, 1);
  if (winner == nullptr) {
    return {};
  }
  EXPECT_NE(winner, old_master);
  EXPECT_EQ(old_master->contact_address()->role, gls::ReplicaRole::kSlave);
  EXPECT_EQ(old_master->group()->stats().demotions, 1u);
  EXPECT_EQ(winner->epoch(), 2u);

  // Convergence sweep: one quorum write through the winner reaches everyone.
  h.WriteAt(w.simulator.Now() + kSecond, "sync", 1,
            winner->contact_address()->endpoint);
  w.RunFor(15 * kSecond);
  EXPECT_EQ(h.acked["sync"], 1u);

  Bytes state_a = old_master->semantics()->GetState();
  Bytes state_b = replica_b->semantics()->GetState();
  Bytes state_c = replica_c->semantics()->GetState();
  EXPECT_EQ(state_b, state_c);
  EXPECT_EQ(state_a, state_b);
  std::map<std::string, uint64_t> state = ParseCounterState(state_b);
  h.CheckBounds(state);
  // "Nothing was applied": the refused burst left no trace anywhere — not even
  // on the master that executed (and rolled back) the first burst write.
  EXPECT_EQ(state.count("iso0"), 0u);
  EXPECT_EQ(state.count("iso1"), 0u);
  EXPECT_EQ(state.count("iso2"), 0u);
  EXPECT_EQ(state.at("k"), 5u);
  EXPECT_EQ(state.at("sync"), 1u);

  const gls::DirectorySubnode* arbiter = w.RootArbiter(oid);
  EXPECT_NE(arbiter, nullptr);
  QuorumSummary summary;
  summary.executed_events = w.simulator.executed_events();
  summary.state_hash = Sha256::HexDigest(state_a) + Sha256::HexDigest(state_b) +
                       Sha256::HexDigest(state_c);
  summary.winner_epoch = winner->epoch();
  summary.masters = masters;
  summary.arbiter_floor = arbiter != nullptr ? arbiter->OwnerVersionFloor(oid) : 0;
  summary.acked_writes = h.acked_writes;
  summary.quorum_commits = old_master->group()->stats().quorum_commits;
  summary.quorum_refusals = old_master->group()->stats().quorum_refusals;
  summary.total_messages = w.network->stats().TotalMessages();
  return summary;
}

class ChaosQuorumIsolationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosQuorumIsolationTest, IsolatedMasterRefusesWritesAndReplays) {
  QuorumSummary first = RunQuorumIsolationScenario(GetParam());
  EXPECT_EQ(first.masters, 1);
  EXPECT_EQ(first.winner_epoch, 2u);
  QuorumSummary second = RunQuorumIsolationScenario(GetParam());
  EXPECT_EQ(first.executed_events, second.executed_events);
  EXPECT_EQ(first.state_hash, second.state_hash);
  EXPECT_TRUE(first == second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosQuorumIsolationTest,
                         ::testing::ValuesIn(ChaosSeeds()));

// Loss window 3: partition healing with a divergent deposed master — on the
// active-replication protocol, so both quorum write paths face the chaos
// suite. The partitioned sequencer executes a write the group never saw
// (transient divergence), rolls it back when the quorum round fails, and is
// deposed behind the partition; the new sequencer meanwhile commits a write
// REUSING the same version slot. Healing must fence the deposed sequencer,
// converge all three members on the winner's history, and never resurrect the
// rolled-back write.
QuorumSummary RunQuorumDivergenceScenario(uint64_t seed) {
  FailoverWorld w(seed, /*quorum=*/true);
  auto [oid, master_address] = w.CreateMaster(dso::kProtoActiveRepl);
  w.CreateSlave(w.gos_b.get(), oid);
  w.CreateSlave(w.gos_c.get(), oid);
  QuorumHarness h(&w);
  NodeId master_host = master_address.endpoint.node;

  h.WriteAt(w.simulator.Now() + 100 * kMillisecond, "k", 5,
            master_address.endpoint);
  w.RunFor(5 * kSecond);
  EXPECT_EQ(h.acked["k"], 5u);

  // 20 s partition: sequencer cut off from both members and the directory.
  SimTime t0 = w.simulator.Now();
  constexpr SimTime kPartition = 20 * kSecond;
  w.network->PartitionPair(master_host, w.gos_b->host(), kPartition);
  w.network->PartitionPair(master_host, w.gos_c->host(), kPartition);
  for (const auto& subnode : w.deployment->subnodes()) {
    w.network->PartitionPair(master_host, subnode->host(), kPartition);
  }

  // The divergent write: executed locally at the stale sequencer, never seen
  // by the group, rolled back when its quorum round cannot assemble a
  // majority. Its version slot is up for grabs by the new sequencer.
  h.WriteAt(t0 + 500 * kMillisecond, "div", 7, master_address.endpoint);

  // Election behind the partition, then a committed write through the winner
  // — reusing the version slot the divergent write briefly occupied.
  w.RunFor(14 * kSecond);
  dso::ReplicationObject* replica_b = w.gos_b->FindReplica(oid);
  dso::ReplicationObject* replica_c = w.gos_c->FindReplica(oid);
  EXPECT_NE(replica_b, nullptr);
  EXPECT_NE(replica_c, nullptr);
  if (replica_b == nullptr || replica_c == nullptr) {
    return {};
  }
  int masters = 0;
  dso::ReplicationObject* winner =
      QuorumHarness::WinnerOf({replica_b, replica_c}, &masters);
  EXPECT_EQ(masters, 1);
  if (winner == nullptr) {
    return {};
  }
  h.WriteAt(w.simulator.Now() + kSecond, "win", 4,
            winner->contact_address()->endpoint);

  // Heal (the timed partitions lapse on their own) and let the deposed
  // sequencer discover the new epoch, demote and re-register.
  w.RunFor((t0 + kPartition - w.simulator.Now()) + 20 * kSecond);
  EXPECT_EQ(h.acked["win"], 4u);
  EXPECT_EQ(h.acked.count("div"), 0u);  // refused, definitively

  dso::ReplicationObject* old_master = w.gos_a->FindReplica(oid);
  EXPECT_NE(old_master, nullptr);
  if (old_master == nullptr) {
    return {};
  }
  EXPECT_EQ(old_master->contact_address()->role, gls::ReplicaRole::kSlave);
  EXPECT_EQ(old_master->group()->stats().demotions, 1u);
  EXPECT_GE(old_master->group()->stats().quorum_refusals, 1u);
  EXPECT_EQ(winner->epoch(), 2u);
  EXPECT_EQ(old_master->epoch(), 2u);

  // Convergence sweep through the winner.
  h.WriteAt(w.simulator.Now() + kSecond, "sync", 1,
            winner->contact_address()->endpoint);
  w.RunFor(15 * kSecond);
  EXPECT_EQ(h.acked["sync"], 1u);

  Bytes state_a = old_master->semantics()->GetState();
  Bytes state_b = replica_b->semantics()->GetState();
  Bytes state_c = replica_c->semantics()->GetState();
  EXPECT_EQ(state_b, state_c);
  EXPECT_EQ(state_a, state_b);
  EXPECT_EQ(old_master->version(), winner->version());
  std::map<std::string, uint64_t> state = ParseCounterState(state_b);
  h.CheckBounds(state);
  EXPECT_EQ(state.count("div"), 0u);  // the divergence never resurrects
  EXPECT_EQ(state.at("k"), 5u);
  EXPECT_EQ(state.at("win"), 4u);
  EXPECT_EQ(state.at("sync"), 1u);

  const gls::DirectorySubnode* arbiter = w.RootArbiter(oid);
  EXPECT_NE(arbiter, nullptr);
  uint64_t arbiter_floor = arbiter != nullptr ? arbiter->OwnerVersionFloor(oid) : 0;
  EXPECT_EQ(arbiter_floor, winner->group()->committed_version());

  QuorumSummary summary;
  summary.executed_events = w.simulator.executed_events();
  summary.state_hash = Sha256::HexDigest(state_a) + Sha256::HexDigest(state_b) +
                       Sha256::HexDigest(state_c);
  summary.winner_epoch = winner->epoch();
  summary.masters = masters;
  summary.arbiter_floor = arbiter_floor;
  summary.acked_writes = h.acked_writes;
  summary.quorum_commits = winner->group()->stats().quorum_commits;
  summary.quorum_refusals = old_master->group()->stats().quorum_refusals;
  summary.total_messages = w.network->stats().TotalMessages();
  return summary;
}

class ChaosQuorumDivergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosQuorumDivergenceTest, HealedDivergentDeposedMasterConvergesAndReplays) {
  QuorumSummary first = RunQuorumDivergenceScenario(GetParam());
  EXPECT_EQ(first.masters, 1);
  EXPECT_EQ(first.winner_epoch, 2u);
  QuorumSummary second = RunQuorumDivergenceScenario(GetParam());
  EXPECT_EQ(first.executed_events, second.executed_events);
  EXPECT_EQ(first.state_hash, second.state_hash);
  EXPECT_TRUE(first == second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosQuorumDivergenceTest,
                         ::testing::ValuesIn(ChaosSeeds()));

// ----------------------------------------------------------- decommissioning

class ChaosDecommissionTest : public ::testing::TestWithParam<uint64_t> {};

// After a lossy decommission completes, no lookup — cached or not — may ever
// return the decommissioned server's address.
TEST_P(ChaosDecommissionTest, NoOidResolvesToADecommissionedAddress) {
  ChaosWorld w(GetParam());
  auto [oid, master_address] = w.CreateMaster();
  gls::ContactAddress slave_address = w.CreateSlave(oid);

  // Warm the directory caches with lookups from a third country, so a stale
  // cached answer containing the slave's address would survive if the delete
  // fan-out missed any subnode.
  NodeId user = w.world.hosts[5];
  std::unique_ptr<gls::GlsClient> client = w.deployment->MakeClient(user);
  client->set_allow_cached(true);
  for (int i = 0; i < 4; ++i) {
    Result<gls::LookupResult> warm = Unavailable("pending");
    client->Lookup(oid, [&](Result<gls::LookupResult> r) { warm = std::move(r); });
    w.simulator.Run();
    ASSERT_TRUE(warm.ok()) << warm.status();
    ASSERT_FALSE(warm->addresses.empty());
  }

  // Decommission the slave's server over a lossy GLS path: the delete batch and
  // its invalidation chain must retry through 5% loss in both directions.
  const gls::DirectoryRef& slave_leaf =
      w.deployment->LeafDirectoryFor(w.gos_b->host());
  for (const sim::Endpoint& subnode : slave_leaf.subnodes) {
    w.network->SetLinkDropProbability(w.gos_b->host(), subnode.node, 0.05);
    w.network->SetLinkDropProbability(subnode.node, w.gos_b->host(), 0.05);
  }
  Status decommissioned = Unavailable("pending");
  w.gos_b->Decommission([&](Status s) { decommissioned = s; });
  w.simulator.Run();
  ASSERT_TRUE(decommissioned.ok()) << decommissioned;
  EXPECT_EQ(w.gos_b->num_replicas(), 0u);

  // Every post-decommission lookup — all cache-permitted — must resolve to the
  // master only, never to the decommissioned slave.
  for (int i = 0; i < 8; ++i) {
    Result<gls::LookupResult> lookup = Unavailable("pending");
    client->Lookup(oid, [&](Result<gls::LookupResult> r) { lookup = std::move(r); });
    w.simulator.Run();
    ASSERT_TRUE(lookup.ok()) << lookup.status();
    ASSERT_FALSE(lookup->addresses.empty());
    for (const gls::ContactAddress& address : lookup->addresses) {
      EXPECT_NE(address.endpoint, slave_address.endpoint)
          << "lookup " << i << " resolved to the decommissioned replica";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosDecommissionTest,
                         ::testing::ValuesIn(ChaosSeeds()));

}  // namespace
}  // namespace globe
