// Tests for the Globe Object Server: replica creation commands, authorization,
// checkpoint/restore across reboots, and GLS bookkeeping.

#include <gtest/gtest.h>

#include "src/gdn/world.h"
#include "src/gls/deploy.h"
#include "src/gos/object_server.h"
#include "src/sec/secure_transport.h"
#include "tests/test_util.h"
#include "src/sim/backend.h"

namespace globe::gos {
namespace {

using sim::BuildUniformWorld;
using sim::NodeId;
using sim::UniformWorld;
using testutil::KvGet;
using testutil::KvObject;
using testutil::KvPut;

class GosTest : public ::testing::Test {
 protected:
  GosTest()
      : world_(BuildUniformWorld({2, 2}, 2)),
        network_(&simulator_, &world_.topology),
        transport_(&network_),
        deployment_(&transport_, &world_.topology, nullptr) {
    repository_.RegisterSemantics(std::make_unique<KvObject>());
    gos_a_ = std::make_unique<ObjectServer>(&transport_, world_.hosts[0], &repository_,
                                            deployment_.LeafDirectoryFor(world_.hosts[0]),
                                            nullptr);
    gos_b_ = std::make_unique<ObjectServer>(&transport_, world_.hosts[6], &repository_,
                                            deployment_.LeafDirectoryFor(world_.hosts[6]),
                                            nullptr);
  }

  gls::ObjectId CreateFirstSync(ObjectServer* gos, gls::ProtocolId protocol) {
    gls::ObjectId oid;
    Status status = InvalidArgument("pending");
    gos->CreateFirstReplica(protocol, KvObject::kTypeId,
                            [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
                              if (r.ok()) {
                                oid = r->first;
                                status = OkStatus();
                              } else {
                                status = r.status();
                              }
                            });
    simulator_.Run();
    EXPECT_TRUE(status.ok()) << status;
    return oid;
  }

  Status CreateReplicaSync(ObjectServer* gos, const gls::ObjectId& oid,
                           gls::ReplicaRole role) {
    Status status = InvalidArgument("pending");
    gos->CreateReplica(oid, KvObject::kTypeId, role,
                       [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
                         status = r.ok() ? OkStatus() : r.status();
                       });
    simulator_.Run();
    return status;
  }

  Result<Bytes> InvokeSync(dso::ReplicationObject* replication,
                           const dso::Invocation& invocation) {
    Result<Bytes> out = Unavailable("pending");
    replication->Invoke(invocation, [&](Result<Bytes> r) { out = std::move(r); });
    simulator_.Run();
    return out;
  }

  sim::Simulator simulator_;
  UniformWorld world_;
  sim::Network network_;
  sim::PlainTransport transport_;
  gls::GlsDeployment deployment_;
  dso::ImplementationRepository repository_;
  std::unique_ptr<ObjectServer> gos_a_, gos_b_;
};

TEST_F(GosTest, CreateFirstReplicaAllocatesOidAndRegisters) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoMasterSlave);
  EXPECT_FALSE(oid.IsNil());
  EXPECT_EQ(gos_a_->num_replicas(), 1u);

  // The contact address is findable worldwide.
  auto client = deployment_.MakeClient(world_.hosts[7]);
  bool found = false;
  client->Lookup(oid, [&](Result<gls::LookupResult> r) { found = r.ok(); });
  simulator_.Run();
  EXPECT_TRUE(found);
}

TEST_F(GosTest, SecondaryReplicaJoinsAndReplicates) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoMasterSlave);
  ASSERT_TRUE(CreateReplicaSync(gos_b_.get(), oid, gls::ReplicaRole::kSlave).ok());

  // Write at the master; the slave sees it.
  auto* master = gos_a_->FindReplica(oid);
  auto* slave = gos_b_->FindReplica(oid);
  ASSERT_NE(master, nullptr);
  ASSERT_NE(slave, nullptr);
  ASSERT_TRUE(InvokeSync(master, KvPut("gimp", "1.1.29")).ok());
  EXPECT_EQ(slave->version(), 1u);
  auto read = InvokeSync(slave, KvGet("gimp"));
  ASSERT_TRUE(read.ok());
}

TEST_F(GosTest, CreateReplicaForUnknownObjectFails) {
  Rng rng(5);
  Status status = CreateReplicaSync(gos_b_.get(), gls::ObjectId::Generate(&rng),
                                    gls::ReplicaRole::kSlave);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(GosTest, DuplicateReplicaOnSameServerFails) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoClientServer);
  Status status = InvalidArgument("pending");
  gos_a_->CreateReplica(oid, KvObject::kTypeId, gls::ReplicaRole::kSlave,
                        [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
                          status = r.ok() ? OkStatus() : r.status();
                        });
  simulator_.Run();
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST_F(GosTest, RemoveReplicaDeregistersFromGls) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoClientServer);
  Status status = InvalidArgument("pending");
  gos_a_->RemoveReplica(oid, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(gos_a_->num_replicas(), 0u);

  auto client = deployment_.MakeClient(world_.hosts[7]);
  Status lookup_status = OkStatus();
  client->Lookup(oid, [&](Result<gls::LookupResult> r) { lookup_status = r.status(); });
  simulator_.Run();
  EXPECT_EQ(lookup_status.code(), StatusCode::kNotFound);
}

TEST_F(GosTest, CheckpointAndRestoreRebuildsState) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoClientServer);
  auto* replica = gos_a_->FindReplica(oid);
  ASSERT_TRUE(InvokeSync(replica, KvPut("linux", "2.2.14")).ok());
  ASSERT_TRUE(InvokeSync(replica, KvPut("gcc", "2.95")).ok());
  uint64_t version_before = replica->version();

  Bytes checkpoint = gos_a_->Checkpoint();

  // "Reboot": take the node down, destroy the server, bring up a fresh one, restore.
  network_.SetNodeUp(world_.hosts[0], false);
  gos_a_.reset();
  network_.SetNodeUp(world_.hosts[0], true);
  gos_a_ = std::make_unique<ObjectServer>(&transport_, world_.hosts[0], &repository_,
                                          deployment_.LeafDirectoryFor(world_.hosts[0]),
                                          nullptr);
  Status restore_status = InvalidArgument("pending");
  gos_a_->Restore(checkpoint, [&](Status s) { restore_status = s; });
  simulator_.Run();
  ASSERT_TRUE(restore_status.ok()) << restore_status;
  ASSERT_EQ(gos_a_->num_replicas(), 1u);

  // State and version survived.
  auto* restored = gos_a_->FindReplica(oid);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->version(), version_before);
  auto read = InvokeSync(restored, KvGet("gcc"));
  ASSERT_TRUE(read.ok());
  ByteReader r(*read);
  EXPECT_EQ(r.ReadString().value(), "2.95");

  // And the GLS points at the *new* contact address: a fresh bind works end to end.
  auto client = deployment_.MakeClient(world_.hosts[7]);
  std::vector<gls::ContactAddress> addresses;
  client->Lookup(oid, [&](Result<gls::LookupResult> r2) {
    ASSERT_TRUE(r2.ok());
    addresses = r2->addresses;
  });
  simulator_.Run();
  ASSERT_EQ(addresses.size(), 1u);
  EXPECT_EQ(addresses[0], *restored->contact_address());
}

TEST_F(GosTest, RestoreReregistersAllReplicasInOneBatch) {
  std::vector<gls::ObjectId> oids;
  for (int i = 0; i < 4; ++i) {
    oids.push_back(CreateFirstSync(gos_a_.get(), dso::kProtoClientServer));
  }
  Bytes checkpoint = gos_a_->Checkpoint();

  network_.SetNodeUp(world_.hosts[0], false);
  gos_a_.reset();
  network_.SetNodeUp(world_.hosts[0], true);
  gos_a_ = std::make_unique<ObjectServer>(&transport_, world_.hosts[0], &repository_,
                                          deployment_.LeafDirectoryFor(world_.hosts[0]),
                                          nullptr);

  auto leaf_subnodes =
      deployment_.SubnodesOf(world_.topology.NodeDomain(world_.hosts[0]));
  ASSERT_EQ(leaf_subnodes.size(), 1u);
  uint64_t batches_before = leaf_subnodes[0]->stats().batch_inserts;
  uint64_t inserts_before = leaf_subnodes[0]->stats().inserts;

  Status restore_status = InvalidArgument("pending");
  gos_a_->Restore(checkpoint, [&](Status s) { restore_status = s; });
  simulator_.Run();
  ASSERT_TRUE(restore_status.ok()) << restore_status;
  ASSERT_EQ(gos_a_->num_replicas(), 4u);

  // All four fresh addresses went to the leaf directory in one insert_batch.
  EXPECT_EQ(leaf_subnodes[0]->stats().batch_inserts, batches_before + 1);
  EXPECT_EQ(leaf_subnodes[0]->stats().inserts, inserts_before + 4);

  // And every object resolves to exactly its new address.
  for (const auto& oid : oids) {
    auto client = deployment_.MakeClient(world_.hosts[7]);
    std::vector<gls::ContactAddress> addresses;
    client->Lookup(oid, [&](Result<gls::LookupResult> r) {
      ASSERT_TRUE(r.ok()) << r.status();
      addresses = r->addresses;
    });
    simulator_.Run();
    ASSERT_EQ(addresses.size(), 1u);
    EXPECT_EQ(addresses[0], *gos_a_->FindReplica(oid)->contact_address());
  }
}

TEST_F(GosTest, DecommissionRemovesAllReplicasInOneDeleteBatch) {
  std::vector<gls::ObjectId> oids;
  for (int i = 0; i < 4; ++i) {
    oids.push_back(CreateFirstSync(gos_a_.get(), dso::kProtoClientServer));
  }

  auto leaf_subnodes =
      deployment_.SubnodesOf(world_.topology.NodeDomain(world_.hosts[0]));
  ASSERT_EQ(leaf_subnodes.size(), 1u);
  uint64_t batches_before = leaf_subnodes[0]->stats().batch_deletes;
  uint64_t deletes_before = leaf_subnodes[0]->stats().deletes;

  Status status = InvalidArgument("pending");
  gos_a_->Decommission([&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(gos_a_->num_replicas(), 0u);
  EXPECT_EQ(gos_a_->stats().replicas_removed, 4u);

  // All four deregistrations went to the leaf directory in one delete_batch.
  EXPECT_EQ(leaf_subnodes[0]->stats().batch_deletes, batches_before + 1);
  EXPECT_EQ(leaf_subnodes[0]->stats().deletes, deletes_before + 4);

  // The objects are gone from the GLS worldwide.
  for (const auto& oid : oids) {
    auto client = deployment_.MakeClient(world_.hosts[7]);
    Status lookup_status = OkStatus();
    client->Lookup(oid, [&](Result<gls::LookupResult> r) { lookup_status = r.status(); });
    simulator_.Run();
    EXPECT_EQ(lookup_status.code(), StatusCode::kNotFound) << oid.ToHex();
  }
}

TEST_F(GosTest, DecommissionOfEmptyServerIsOk) {
  Status status = InvalidArgument("pending");
  gos_b_->Decommission([&](Status s) { status = s; });
  simulator_.Run();
  EXPECT_TRUE(status.ok()) << status;
}

TEST_F(GosTest, RestoreRejectsCorruptCheckpoint) {
  Status status = OkStatus();
  gos_a_->Restore(Bytes{0xff, 0xff, 0x03}, [&](Status s) { status = s; });
  simulator_.Run();
  EXPECT_FALSE(status.ok());
}

TEST_F(GosTest, RpcCommandsWork) {
  // Drive the server through its RPC surface, as the moderator tool does.
  sim::Channel rpc(&transport_, world_.hosts[3]);
  ByteWriter w;
  w.WriteU16(dso::kProtoClientServer);
  w.WriteU16(KvObject::kTypeId);
  gls::ObjectId oid;
  bool ok = false;
  rpc.Call(gos_a_->endpoint(), "gos.create_first_replica", w.Take(),
           [&](Result<sim::PayloadView> result) {
             ASSERT_TRUE(result.ok()) << result.status();
             ByteReader r(*result);
             oid = *gls::ObjectId::Deserialize(&r);
             ok = true;
           });
  simulator_.Run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(gos_a_->num_replicas(), 1u);

  // list_replicas sees it.
  size_t listed = 0;
  rpc.Call(gos_a_->endpoint(), "gos.list_replicas", {}, [&](Result<sim::PayloadView> result) {
    ASSERT_TRUE(result.ok());
    ByteReader r(*result);
    listed = static_cast<size_t>(*r.ReadVarint());
  });
  simulator_.Run();
  EXPECT_EQ(listed, 1u);

  // remove via RPC.
  ByteWriter rm;
  oid.Serialize(&rm);
  Status remove_status = InvalidArgument("pending");
  rpc.Call(gos_a_->endpoint(), "gos.remove_replica", rm.Take(),
           [&](Result<sim::PayloadView> result) {
    remove_status = result.ok() ? OkStatus() : result.status();
  });
  simulator_.Run();
  EXPECT_TRUE(remove_status.ok()) << remove_status;
  EXPECT_EQ(gos_a_->num_replicas(), 0u);
}

TEST_F(GosTest, SwitchProtocolPreservesStateAndFencesEpoch) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoMasterSlave);
  auto* master = gos_a_->FindReplica(oid);
  ASSERT_TRUE(InvokeSync(master, KvPut("emacs", "20.7")).ok());
  ASSERT_TRUE(InvokeSync(master, KvPut("vim", "5.6")).ok());
  uint64_t version_before = master->version();
  uint64_t epoch_before = master->epoch();
  gls::ContactAddress old_address = *master->contact_address();

  Status status = InvalidArgument("pending");
  gos_a_->SwitchProtocol(oid, dso::kProtoCacheInval, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(gos_a_->ProtocolOf(oid), dso::kProtoCacheInval);
  EXPECT_EQ(gos_a_->stats().protocol_switches, 1u);

  // Same state and version, one epoch up: stragglers fenced on the old epoch
  // cannot land on the new incarnation.
  auto* fresh = gos_a_->FindReplica(oid);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->version(), version_before);
  EXPECT_EQ(fresh->epoch(), epoch_before + 1);
  auto read = InvokeSync(fresh, KvGet("emacs"));
  ASSERT_TRUE(read.ok()) << read.status();
  ByteReader r(*read);
  EXPECT_EQ(r.ReadString().value(), "20.7");

  // The GLS now advertises exactly the new incarnation's address.
  auto client = deployment_.MakeClient(world_.hosts[7]);
  std::vector<gls::ContactAddress> addresses;
  client->Lookup(oid, [&](Result<gls::LookupResult> r2) {
    ASSERT_TRUE(r2.ok()) << r2.status();
    addresses = r2->addresses;
  });
  simulator_.Run();
  ASSERT_EQ(addresses.size(), 1u);
  EXPECT_EQ(addresses[0], *fresh->contact_address());
  EXPECT_EQ(addresses[0].protocol, dso::kProtoCacheInval);
  EXPECT_NE(addresses[0].endpoint, old_address.endpoint);
}

TEST_F(GosTest, SwitchProtocolTombstonesTheRetiredEndpoint) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoClientServer);
  gls::ContactAddress old_address = *gos_a_->FindReplica(oid)->contact_address();

  Status status = InvalidArgument("pending");
  gos_a_->SwitchProtocol(oid, dso::kProtoMasterSlave, [&](Status s) { status = s; });
  simulator_.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(gos_a_->stats().tombstones, 1u);

  // A client still bound to the retired endpoint fails immediately (and with
  // a rebind-worthy error), instead of waiting out the 30 s call deadline.
  sim::Channel stale(&transport_, world_.hosts[7]);
  Status call_status = OkStatus();
  stale.Call(old_address.endpoint, "dso.get_state", {},
             [&](Result<sim::PayloadView> result) { call_status = result.status(); });
  sim::SimTime before = simulator_.Now();
  simulator_.Run();
  EXPECT_EQ(call_status.code(), StatusCode::kFailedPrecondition) << call_status;
  EXPECT_LT(simulator_.Now() - before, sim::kSecond);
}

TEST_F(GosTest, SwitchProtocolGuardsRolesAndNoOps) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoMasterSlave);
  ASSERT_TRUE(CreateReplicaSync(gos_b_.get(), oid, gls::ReplicaRole::kSlave).ok());

  // Same protocol: a no-op success, not a rebuild.
  Status same = InvalidArgument("pending");
  gos_a_->SwitchProtocol(oid, dso::kProtoMasterSlave, [&](Status s) { same = s; });
  simulator_.Run();
  EXPECT_TRUE(same.ok());
  EXPECT_EQ(gos_a_->stats().protocol_switches, 0u);

  // Only the master may switch.
  Status at_slave = OkStatus();
  gos_b_->SwitchProtocol(oid, dso::kProtoCacheInval, [&](Status s) { at_slave = s; });
  simulator_.Run();
  EXPECT_EQ(at_slave.code(), StatusCode::kFailedPrecondition);

  // Unknown objects are reported as such.
  Rng rng(11);
  Status unknown = OkStatus();
  gos_a_->SwitchProtocol(gls::ObjectId::Generate(&rng), dso::kProtoCacheInval,
                         [&](Status s) { unknown = s; });
  simulator_.Run();
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
}

TEST_F(GosTest, AccessTelemetryFollowsReplicasAcrossRestore) {
  gls::ObjectId oid = CreateFirstSync(gos_a_.get(), dso::kProtoClientServer);
  auto* replica = gos_a_->FindReplica(oid);
  ASSERT_TRUE(InvokeSync(replica, KvPut("apache", "1.3.12")).ok());
  ASSERT_TRUE(InvokeSync(replica, KvGet("apache")).ok());
  ASSERT_TRUE(InvokeSync(replica, KvGet("apache")).ok());

  const ctl::AccessStats* stats = gos_a_->metrics()->Find(oid);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->total_writes(), 1u);
  EXPECT_EQ(stats->total_reads(), 2u);
  EXPECT_GT(stats->MeanReadBytes(), 0.0);

  // The telemetry rides the checkpoint: a restored server resumes with warm
  // rate estimates instead of re-learning the object from zero.
  Bytes checkpoint = gos_a_->Checkpoint();
  network_.SetNodeUp(world_.hosts[0], false);
  gos_a_.reset();
  network_.SetNodeUp(world_.hosts[0], true);
  gos_a_ = std::make_unique<ObjectServer>(&transport_, world_.hosts[0], &repository_,
                                          deployment_.LeafDirectoryFor(world_.hosts[0]),
                                          nullptr);
  Status restore_status = InvalidArgument("pending");
  gos_a_->Restore(checkpoint, [&](Status s) { restore_status = s; });
  simulator_.Run();
  ASSERT_TRUE(restore_status.ok()) << restore_status;

  const ctl::AccessStats* restored = gos_a_->metrics()->Find(oid);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->total_writes(), 1u);
  EXPECT_EQ(restored->total_reads(), 2u);

  // And the hook is re-installed: new traffic keeps counting.
  ASSERT_TRUE(InvokeSync(gos_a_->FindReplica(oid), KvGet("apache")).ok());
  EXPECT_EQ(gos_a_->metrics()->Find(oid)->total_reads(), 3u);
}

TEST(GosAuthTest, OnlyModeratorsMayCommand) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2}, 2);
  sec::KeyRegistry registry;
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport plain(&network);
  sec::SecureTransport secure(&plain, &registry);
  dso::ImplementationRepository repository;
  repository.RegisterSemantics(std::make_unique<KvObject>());
  gls::GlsDeployment deployment(&secure, &world.topology, &registry);

  NodeId gos_node = world.hosts[0];
  NodeId moderator_node = world.hosts[2];
  NodeId user_node = world.hosts[3];
  secure.SetNodeCredential(gos_node, registry.Register("gos", sec::Role::kGdnHost));
  secure.SetNodeCredential(moderator_node,
                           registry.Register("moderator", sec::Role::kModerator));
  secure.SetNodeCredential(user_node, registry.Register("user", sec::Role::kUser));
  secure.SetChannelPolicy([&](NodeId src, NodeId dst) {
    sec::ChannelConfig config;
    if (dst == gos_node && (src == moderator_node || src == user_node)) {
      config.auth = sec::AuthMode::kMutualAuth;
    }
    return config;
  });

  GosOptions options;
  options.enforce_authorization = true;
  ObjectServer gos(&secure, gos_node, &repository, deployment.LeafDirectoryFor(gos_node),
                   &registry, options);

  ByteWriter w;
  w.WriteU16(dso::kProtoClientServer);
  w.WriteU16(KvObject::kTypeId);
  Bytes request = w.Take();

  // User's command is refused; moderator's succeeds.
  sim::Channel user_rpc(&secure, user_node);
  Status user_status = OkStatus();
  user_rpc.Call(gos.endpoint(), "gos.create_first_replica", request,
                [&](Result<sim::PayloadView> result) { user_status = result.status(); });
  simulator.Run();
  EXPECT_EQ(user_status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(gos.stats().commands_denied, 1u);
  EXPECT_EQ(gos.num_replicas(), 0u);

  sim::Channel moderator_rpc(&secure, moderator_node);
  Status moderator_status = InvalidArgument("pending");
  moderator_rpc.Call(gos.endpoint(), "gos.create_first_replica", request,
                     [&](Result<sim::PayloadView> result) {
                       moderator_status = result.ok() ? OkStatus() : result.status();
                     });
  simulator.Run();
  EXPECT_TRUE(moderator_status.ok()) << moderator_status;
  EXPECT_EQ(gos.num_replicas(), 1u);
}

// PR 8 migration hole, closed: a protocol switch must also tear down replicas
// the GOS never created — the HTTPD-side representatives installed via
// bind_as_replica. Before the fix, such a replica kept serving the retired
// incarnation indefinitely and its GLS registration leaked when the HTTPD
// eventually dropped the binding.
TEST(GosMigrationTest, SwitchProtocolRetiresHttpdSideReplicas) {
  gdn::GdnWorldConfig config;
  config.fanouts = {2, 2};
  config.user_hosts_per_site = 2;
  gdn::GdnWorld world(config);

  std::map<std::string, Bytes> files = {{"VERSION", ToBytes("1.0")}};
  auto oid = world.PublishPackage("/apps/live", files, dso::kProtoMasterSlave, 0);
  ASSERT_TRUE(oid.ok()) << oid.status();

  // A user far from the master downloads through their HTTPD; with
  // bind_as_replica the HTTPD joins as a slave and registers in the GLS.
  sim::NodeId user = world.user_hosts().back();
  gdn::GdnHttpd* httpd = world.NearestHttpd(user);
  ASSERT_NE(world.CountryOf(user), 0);
  auto v1 = world.DownloadFile(user, "/apps/live", "VERSION");
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(ToString(*v1), "1.0");
  EXPECT_EQ(httpd->bound_objects(), 1u);

  // The nearest advertised address from the user's country is now the
  // HTTPD-side replica itself (GLS lookups stop at the closest registration).
  auto client = world.gls().MakeClient(user);
  std::vector<gls::ContactAddress> before;
  client->Lookup(*oid, [&](Result<gls::LookupResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    before = r->addresses;
  });
  world.Run();
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0].endpoint.node, httpd->node());
  EXPECT_NE(before[0].role, gls::ReplicaRole::kMaster);

  // The master's GOS switches protocols. The epoch bump must reach the
  // HTTPD-side replica too: the retire fan-out fences it.
  ObjectServer* gos = world.GosOf(0);
  Status status = InvalidArgument("pending");
  gos->SwitchProtocol(*oid, dso::kProtoCacheInval, [&](Status s) { status = s; });
  world.Run();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(gos->stats().protocol_switches, 1u);
  EXPECT_GE(gos->stats().foreign_retires, 1u);

  // A write lands on the fresh incarnation.
  auto* fresh = gos->FindReplica(*oid);
  ASSERT_NE(fresh, nullptr);
  Result<Bytes> wrote = Unavailable("pending");
  fresh->Invoke(gdn::pkg::AddFile("VERSION", ToBytes("2.0")),
                [&](Result<Bytes> r) { wrote = std::move(r); });
  world.Run();
  ASSERT_TRUE(wrote.ok()) << wrote.status();

  // Re-download through the same HTTPD: its fenced replica refuses with a
  // rebind-worthy error, the stale binding is dropped through Unbind, and the
  // rebound proxy serves the update.
  auto v2 = world.DownloadFile(user, "/apps/live", "VERSION");
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(ToString(*v2), "2.0");
  EXPECT_GE(httpd->stats().rebinds, 1u);

  // And the retired HTTPD-side address is gone from the GLS — the binding was
  // unbound, not silently destroyed with its registration left behind.
  std::vector<gls::ContactAddress> after;
  client->Lookup(*oid, [&](Result<gls::LookupResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    after = r->addresses;
  });
  world.Run();
  for (const gls::ContactAddress& stale : before) {
    for (const gls::ContactAddress& address : after) {
      EXPECT_NE(address.endpoint, stale.endpoint)
          << "retired incarnation still advertised";
    }
  }
}

}  // namespace
}  // namespace globe::gos
