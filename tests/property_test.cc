// Cross-cutting property tests: invariants that must hold for arbitrary inputs —
// deserializers never crash on random bytes, the GLS agrees with a reference model
// under random operation sequences, replicated objects converge to the reference
// state, the DNS cache never serves expired records.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/dns/message.h"
#include "src/dns/resolver.h"
#include "src/dns/server.h"
#include "src/dns/zone.h"
#include "src/dso/client_server.h"
#include "src/dso/master_slave.h"
#include "src/dso/wire.h"
#include "src/gls/deploy.h"
#include "src/http/http.h"
#include "tests/test_util.h"
#include "src/sim/backend.h"

namespace globe {
namespace {

using sim::BuildUniformWorld;
using sim::NodeId;
using sim::UniformWorld;

// ---------------------------------------------------------------- Decoder fuzz

// Every wire-format decoder must tolerate arbitrary bytes: return an error or a
// value, never crash or hang (paper §6.1 availability).
class DecoderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzzTest, AllDecodersSurviveRandomBytes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.RandomBytes(rng.UniformInt(200));
    { auto r = dso::Invocation::Deserialize(junk); (void)r; }
    { auto r = dso::VersionedState::Deserialize(junk); (void)r; }
    { auto r = dns::QueryRequest::Deserialize(junk); (void)r; }
    { auto r = dns::QueryResponse::Deserialize(junk); (void)r; }
    { auto r = dns::UpdateRequest::Deserialize(junk); (void)r; }
    { auto r = dns::ZoneTransfer::Deserialize(junk); (void)r; }
    { auto r = dns::Zone::Deserialize(junk); (void)r; }
    { auto r = gls::LookupResponse::Deserialize(junk); (void)r; }
    { auto r = http::HttpRequest::Parse(junk); (void)r; }
    { auto r = http::HttpResponse::Parse(junk); (void)r; }
    {
      ByteReader reader(junk);
      auto r = gls::ObjectId::Deserialize(&reader);
      (void)r;
    }
    {
      ByteReader reader(junk);
      auto r = gls::ContactAddress::Deserialize(&reader);
      (void)r;
    }
  }
}

// Mutated valid frames: take a real message, flip bytes, decode.
TEST_P(DecoderFuzzTest, MutatedValidFramesSurvive) {
  Rng rng(GetParam() + 7);
  dns::UpdateRequest update;
  update.zone = "gdn.cs.vu.nl";
  update.additions.push_back({"pkg.gdn.cs.vu.nl", dns::RrType::kTxt, 3600, "aabb"});
  update.key_name = "k";
  update.sequence = 9;
  dns::TsigSign(&update, ToBytes("key"));
  Bytes wire = update.Serialize();

  for (int i = 0; i < 300; ++i) {
    Bytes mutated = wire;
    int flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] ^= static_cast<uint8_t>(rng.NextU64());
    }
    auto decoded = dns::UpdateRequest::Deserialize(mutated);
    if (decoded.ok()) {
      // If it still parses, TSIG must catch any semantic change.
      bool same_bytes = mutated == wire;
      EXPECT_EQ(dns::TsigVerify(*decoded, ToBytes("key")), same_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------- GLS vs reference

// Random insert/delete/lookup sequences checked against a trivial reference model.
class GlsModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlsModelTest, AgreesWithReferenceModel) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr);

  Rng rng(GetParam());
  // Reference: oid -> set of registered contact addresses.
  std::map<gls::ObjectId, std::set<gls::ContactAddress>> reference;
  std::vector<gls::ObjectId> oids;
  for (int i = 0; i < 6; ++i) {
    oids.push_back(gls::ObjectId::Generate(&rng));
  }

  for (int step = 0; step < 120; ++step) {
    const gls::ObjectId& oid = oids[rng.UniformInt(oids.size())];
    NodeId host = world.hosts[rng.UniformInt(world.hosts.size())];
    gls::ContactAddress address{{host, sim::kPortGos}, 1, gls::ReplicaRole::kMaster};
    auto client = deployment.MakeClient(host);

    int action = static_cast<int>(rng.UniformInt(3));
    if (action == 0) {
      // Insert.
      Status status = Unavailable("pending");
      client->Insert(oid, address, [&](Status s) { status = s; });
      simulator.Run();
      ASSERT_TRUE(status.ok()) << status;
      reference[oid].insert(address);
    } else if (action == 1) {
      // Delete (may or may not exist).
      Status status = Unavailable("pending");
      client->Delete(oid, address, [&](Status s) { status = s; });
      simulator.Run();
      bool existed = reference.count(oid) > 0 && reference[oid].count(address) > 0;
      EXPECT_EQ(status.ok(), existed) << "step " << step;
      if (existed) {
        reference[oid].erase(address);
        if (reference[oid].empty()) {
          reference.erase(oid);
        }
      }
    } else {
      // Lookup from a random host: found iff the reference has any address, and the
      // returned addresses are a subset of the registered ones.
      NodeId from = world.hosts[rng.UniformInt(world.hosts.size())];
      auto lookup_client = deployment.MakeClient(from);
      Result<gls::LookupResult> result = Unavailable("pending");
      lookup_client->Lookup(
          oid, [&](Result<gls::LookupResult> r) { result = std::move(r); });
      simulator.Run();
      bool expected = reference.count(oid) > 0 && !reference.at(oid).empty();
      ASSERT_EQ(result.ok(), expected) << "step " << step;
      if (result.ok()) {
        for (const auto& got : result->addresses) {
          EXPECT_TRUE(reference.at(oid).count(got) > 0)
              << "phantom address at step " << step;
        }
      }
    }
  }

  // Final sweep: every registered address reachable from everywhere.
  for (const auto& [oid, addresses] : reference) {
    auto client = deployment.MakeClient(world.hosts[0]);
    bool found = false;
    client->Lookup(oid, [&](Result<gls::LookupResult> r) { found = r.ok(); });
    simulator.Run();
    EXPECT_TRUE(found) << oid.ToHex();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlsModelTest, ::testing::Values(10, 20, 30));

// ---------------------------------------------------------------- Replication model

// Random write sequences through random entry points: all replicas converge to the
// reference map once quiescent.
class ReplicationModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationModelTest, MasterSlaveConvergesToReference) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  dso::MasterSlaveMaster master(&transport, world.hosts[0],
                                std::make_unique<testutil::KvObject>());
  dso::MasterSlaveSlave slave1(&transport, world.hosts[2],
                               std::make_unique<testutil::KvObject>(),
                               master.contact_address()->endpoint);
  dso::MasterSlaveSlave slave2(&transport, world.hosts[6],
                               std::make_unique<testutil::KvObject>(),
                               master.contact_address()->endpoint);
  for (dso::ReplicationObject* replica :
       std::vector<dso::ReplicationObject*>{&slave1, &slave2}) {
    Status status = Unavailable("pending");
    replica->Start([&](Status s) { status = s; });
    simulator.Run();
    ASSERT_TRUE(status.ok());
  }

  Rng rng(GetParam());
  std::map<std::string, std::string> reference;
  std::vector<dso::ReplicationObject*> entry_points = {&master, &slave1, &slave2};
  for (int step = 0; step < 60; ++step) {
    std::string key = "k" + std::to_string(rng.UniformInt(8));
    std::string value = "v" + std::to_string(step);
    reference[key] = value;
    auto* entry = entry_points[rng.UniformInt(entry_points.size())];
    bool ok = false;
    entry->Invoke(testutil::KvPut(key, value), [&](Result<Bytes> r) { ok = r.ok(); });
    simulator.Run();
    ASSERT_TRUE(ok) << "step " << step;
  }

  // Quiescent: every replica agrees with the reference on every key.
  for (auto* replica : entry_points) {
    for (const auto& [key, value] : reference) {
      Result<Bytes> result = Unavailable("pending");
      replica->Invoke(testutil::KvGet(key),
                      [&](Result<Bytes> r) { result = std::move(r); });
      simulator.Run();
      ASSERT_TRUE(result.ok());
      ByteReader r(*result);
      EXPECT_EQ(r.ReadString().value(), value) << key;
    }
  }
  EXPECT_EQ(master.version(), 60u);
  EXPECT_EQ(slave1.version(), 60u);
  EXPECT_EQ(slave2.version(), 60u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationModelTest, ::testing::Values(5, 6, 7));

// ---------------------------------------------------------------- DNS cache freshness

TEST(DnsCacheFreshnessTest, NeverServesExpiredRecords) {
  sim::Simulator simulator;
  UniformWorld world = BuildUniformWorld({2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);
  dns::TsigKeyTable keys{{"gdn-na", ToBytes("k")}, {"axfr", ToBytes("k2")}};

  dns::AuthoritativeServer server(&transport, world.hosts[0], keys);
  dns::Zone zone("z.nl", 60);
  ASSERT_TRUE(zone.Add({"a.z.nl", dns::RrType::kTxt, /*ttl=*/100, "version1"}).ok());
  server.AddZone(std::move(zone), true);

  dns::CachingResolver resolver(&transport, world.hosts[2]);
  resolver.AddUpstream("z.nl", server.endpoint());
  dns::DnsClient client(&transport, world.hosts[3], resolver.endpoint());

  auto resolve = [&]() {
    dns::QueryResponse out;
    client.Resolve("a.z.nl", dns::RrType::kTxt, [&](Result<dns::QueryResponse> r) {
      ASSERT_TRUE(r.ok());
      out = std::move(*r);
    });
    simulator.Run();
    return out;
  };

  // Warm the cache, then change the record upstream via TSIG update.
  EXPECT_EQ(resolve().answers[0].data, "version1");
  dns::UpdateRequest update;
  update.zone = "z.nl";
  update.deletions.push_back({"a.z.nl", dns::RrType::kTxt, false});
  update.additions.push_back({"a.z.nl", dns::RrType::kTxt, 100, "version2"});
  update.key_name = "gdn-na";
  update.sequence = 1;
  dns::TsigSign(&update, keys["gdn-na"]);
  sim::Channel rpc(&transport, world.hosts[3]);
  rpc.Call(server.endpoint(), "dns.update", update.Serialize(), [](Result<sim::PayloadView>) {});
  simulator.Run();

  // Within the TTL a stale cached answer is legal (that is DNS semantics); once the
  // TTL has certainly elapsed the resolver MUST serve the new record — a cache entry
  // may never outlive its TTL. The explicit RunUntil sleeps advance the clock past
  // the 100 s TTL (a drained resolve() itself now only costs round-trip time, since
  // answered calls erase their deadline events).
  simulator.RunUntil(simulator.Now() + 50 * sim::kSecond);
  (void)resolve();  // mid-TTL: either version is acceptable, must not crash
  simulator.RunUntil(simulator.Now() + 101 * sim::kSecond);
  dns::QueryResponse after = resolve();
  ASSERT_FALSE(after.answers.empty());
  EXPECT_EQ(after.answers[0].data, "version2");
}

}  // namespace
}  // namespace globe
