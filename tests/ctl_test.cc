// Tests for the adaptive-replication control plane (src/ctl): the decayed-rate
// telemetry layer, cross-server aggregation, the controller's cost model, and
// the safety knobs (hysteresis, dwell, budget, in-flight fencing) that keep a
// live migration from thrashing.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "src/ctl/access_stats.h"
#include "src/ctl/controller.h"
#include "src/ctl/metrics_registry.h"
#include "src/dso/protocols.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace globe::ctl {
namespace {

using sim::kSecond;
using sim::SimTime;

gls::ObjectId TestOid(uint64_t seed) {
  Rng rng(seed);
  return gls::ObjectId::Generate(&rng);
}

// Advances a simulator's virtual clock to `t` (an empty event moves "now").
void AdvanceTo(sim::Simulator* simulator, SimTime t) {
  simulator->ScheduleAt(t, [] {});
  simulator->Run();
}

// ---------------------------------------------------------------- telemetry

TEST(RateEstimator, ConvergesToEventRate) {
  RateEstimator est;
  // One event per second for two minutes: the decayed weight converges to
  // 1/(1 - e^(-1/tau_sec)) and the rate estimate to ~1 event/sec.
  SimTime now = 0;
  for (int i = 0; i < 120; ++i) {
    now = static_cast<SimTime>(i) * kSecond;
    est.Observe(now, 500);
  }
  EXPECT_NEAR(est.RatePerSec(now), 1.0, 0.05);
  EXPECT_EQ(est.count(), 120u);
  EXPECT_DOUBLE_EQ(est.MeanBytes(), 500.0);

  // Idle decay: after 3*tau the estimate has fallen to ~e^-3 of its value.
  double idle = est.RatePerSec(now + 3 * RateEstimator::kDefaultTau);
  EXPECT_LT(idle, 0.06);
  EXPECT_GT(idle, 0.0);
}

TEST(RateEstimator, MergeMatchesCombinedHistory) {
  // Decayed weights are sums of exp(-(T-t_i)/tau) over events, so merging two
  // estimators must reproduce exactly the estimator that saw every event.
  RateEstimator a;
  RateEstimator b;
  RateEstimator combined;
  for (int i = 0; i < 40; ++i) {
    SimTime t = static_cast<SimTime>(i) * 700 * sim::kMillisecond;
    if (i % 3 == 0) {
      a.Observe(t, 100);
    } else {
      b.Observe(t, 300);
    }
    combined.Observe(t, i % 3 == 0 ? 100 : 300);
  }
  a.MergeFrom(b);
  SimTime now = 40 * kSecond;
  EXPECT_NEAR(a.RatePerSec(now), combined.RatePerSec(now), 1e-9);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.total_bytes(), combined.total_bytes());
}

TEST(RateEstimator, MergeFromEmptyIsIdentity) {
  RateEstimator a;
  a.Observe(5 * kSecond, 64);
  double before = a.RatePerSec(10 * kSecond);
  RateEstimator empty;
  a.MergeFrom(empty);
  EXPECT_DOUBLE_EQ(a.RatePerSec(10 * kSecond), before);
  EXPECT_EQ(a.count(), 1u);
}

TEST(AccessStats, RegionReadSharesNormalize) {
  AccessStats stats;
  SimTime now = kSecond;
  stats.RecordRead(now, 1000, /*region=*/1);
  stats.RecordRead(now, 1000, 1);
  stats.RecordRead(now, 1000, 1);
  stats.RecordRead(now, 1000, 2);
  auto shares = stats.RegionReadShares(now);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[1], 0.75, 1e-9);
  EXPECT_NEAR(shares[2], 0.25, 1e-9);
}

TEST(AccessStats, SerializeRestoreRoundTrips) {
  AccessStats stats;
  for (int i = 0; i < 25; ++i) {
    SimTime t = static_cast<SimTime>(i) * kSecond;
    stats.RecordRead(t, 4096, static_cast<RegionId>(i % 3));
    if (i % 5 == 0) {
      stats.RecordWrite(t, 512, 0);
    }
  }
  ByteWriter w;
  stats.Serialize(&w);
  Bytes blob = w.Take();

  AccessStats restored;
  ByteReader r(blob);
  ASSERT_TRUE(restored.Restore(&r).ok());
  EXPECT_TRUE(r.AtEnd());

  SimTime now = 30 * kSecond;
  EXPECT_DOUBLE_EQ(restored.ReadRatePerSec(now), stats.ReadRatePerSec(now));
  EXPECT_DOUBLE_EQ(restored.WriteRatePerSec(now), stats.WriteRatePerSec(now));
  EXPECT_EQ(restored.total_reads(), stats.total_reads());
  EXPECT_EQ(restored.total_writes(), stats.total_writes());
  EXPECT_DOUBLE_EQ(restored.MeanReadBytes(), stats.MeanReadBytes());
  EXPECT_EQ(restored.RegionReadShares(now), stats.RegionReadShares(now));
}

TEST(MetricsRegistry, AggregatesAcrossServersAndForgets) {
  sim::Simulator simulator;
  AdvanceTo(&simulator, kSecond);

  // Two "servers", each with its own registry: reads served by a secondary
  // must count in the merged world view.
  MetricsRegistry master(&simulator, [](sim::NodeId node) {
    return static_cast<RegionId>(node / 100);
  });
  MetricsRegistry secondary(&simulator, [](sim::NodeId node) {
    return static_cast<RegionId>(node / 100);
  });
  gls::ObjectId oid = TestOid(1);

  dso::AccessHook master_hook = master.HookFor(oid);
  dso::AccessHook secondary_hook = secondary.HookFor(oid);
  master_hook({.is_write = true, .bytes = 200, .client = 10});
  master_hook({.is_write = false, .bytes = 1000, .client = 20});
  secondary_hook({.is_write = false, .bytes = 1000, .client = 150});
  secondary_hook({.is_write = false, .bytes = 1000, .client = 160});

  MetricsRegistry world(&simulator);
  world.Clear();
  world.MergeFrom(master);
  world.MergeFrom(secondary);

  const AccessStats* stats = world.Find(oid);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->total_reads(), 3u);
  EXPECT_EQ(stats->total_writes(), 1u);
  // Region 0 (nodes 10/20) carries one read, region 1 (nodes 150/160) two.
  auto shares = stats->RegionReadShares(simulator.Now());
  EXPECT_NEAR(shares[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(shares[1], 2.0 / 3.0, 1e-9);

  world.Forget(oid);
  EXPECT_EQ(world.Find(oid), nullptr);
  EXPECT_EQ(world.size(), 0u);
}

// ---------------------------------------------------------------- cost model

// Records Migrate calls; completes each immediately unless `defer` is set.
class FakeActuator : public PolicyActuator {
 public:
  struct Call {
    gls::ObjectId oid;
    PolicyDecision decision;
  };

  void Migrate(const gls::ObjectId& oid, const PolicyDecision& decision,
               std::function<void(Status)> done) override {
    calls.push_back({oid, decision});
    if (defer) {
      pending.push_back(std::move(done));
    } else {
      done(OkStatus());
    }
  }

  std::vector<Call> calls;
  std::vector<std::function<void(Status)>> pending;
  bool defer = false;
};

// A flash crowd: heavy reads spread evenly over `regions`, rare tiny writes
// from region 0. Cheapest policy by the model: active replication (writes
// broadcast only their small arguments).
AccessStats FlashCrowdStats(SimTime until, int regions, uint64_t read_bytes,
                            uint64_t write_bytes, int reads_per_sec = 8) {
  AccessStats stats;
  for (SimTime t = 0; t <= until; t += kSecond) {
    for (int r = 0; r < reads_per_sec; ++r) {
      stats.RecordRead(t, read_bytes, static_cast<RegionId>(r % regions));
    }
    if ((t / kSecond) % 2 == 0) {
      stats.RecordWrite(t, write_bytes, 0);
    }
  }
  return stats;
}

TEST(ReplicationController, DecidePicksActiveReplicationForFlashCrowd) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator);
  FakeActuator actuator;
  ReplicationController controller(&simulator, &metrics, &actuator);

  SimTime now = 30 * kSecond;
  // Reads: 8/s of 40 KB spread over 4 regions; writes: 0.5/s of 100 B. Central
  // pays ~R*Sr*(3/4) in WAN reads; active replication pays only W*Sw*3.
  AccessStats stats = FlashCrowdStats(now, 4, 40000, 100);
  PolicyDecision decision =
      controller.Decide(stats, dso::kProtoClientServer, now);
  EXPECT_EQ(decision.protocol, dso::kProtoActiveRepl);
  // Home region (heaviest reader, smallest id on ties) is 0; the other three
  // each carry 25% >= min_region_share and earn replicas.
  EXPECT_EQ(decision.replica_regions, (std::vector<RegionId>{1, 2, 3}));
}

TEST(ReplicationController, DecideKeepsHomeBoundObjectCentral) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator);
  FakeActuator actuator;
  ReplicationController controller(&simulator, &metrics, &actuator);

  SimTime now = 30 * kSecond;
  // Everything comes from one region: no WAN cost under client/server, and
  // every replicated policy only adds update traffic.
  AccessStats stats = FlashCrowdStats(now, /*regions=*/1, 40000, 2000);
  PolicyDecision decision =
      controller.Decide(stats, dso::kProtoClientServer, now);
  EXPECT_EQ(decision.protocol, dso::kProtoClientServer);
  EXPECT_TRUE(decision.replica_regions.empty());
}

TEST(ReplicationController, HysteresisHoldsNarrowWins) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator);
  FakeActuator actuator;

  // Reads 8/s of 10 KB over 4 regions; writes 0.5/s of 9 KB. Incumbent
  // master/slave pushes state (10 KB); challenger active replication pushes
  // arguments (9 KB) — a 10% win, under the default 25% hysteresis.
  SimTime now = 30 * kSecond;
  AccessStats stats = FlashCrowdStats(now, 4, 10000, 9000);

  ReplicationController holding(&simulator, &metrics, &actuator);
  PolicyDecision held = holding.Decide(stats, dso::kProtoMasterSlave, now);
  EXPECT_EQ(held.protocol, dso::kProtoMasterSlave);

  ControllerConfig eager;
  eager.hysteresis = 0.05;
  ReplicationController moving(&simulator, &metrics, &actuator, eager);
  PolicyDecision moved = moving.Decide(stats, dso::kProtoMasterSlave, now);
  EXPECT_EQ(moved.protocol, dso::kProtoActiveRepl);
}

TEST(ReplicationController, SingleRegionMaintenanceFloorBreaksCentralTie) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator);
  FakeActuator actuator;
  ReplicationController controller(&simulator, &metrics, &actuator);

  // Degenerate K=1 workload: every access from the home region. Without a
  // maintenance term the replicated policies deploy zero secondaries and score
  // exactly 0 — tied with central, so the winner used to depend on candidate
  // enumeration order and a replicated incumbent could hold on forever. The
  // per-replica maintenance floor makes central strictly cheapest, so the
  // controller must come home no matter which protocol it starts from.
  SimTime now = 30 * kSecond;
  AccessStats stats = FlashCrowdStats(now, /*regions=*/1, 40000, 2000);
  const gls::ProtocolId incumbents[] = {
      0, dso::kProtoClientServer, dso::kProtoMasterSlave,
      dso::kProtoActiveRepl, dso::kProtoCacheInval};
  for (gls::ProtocolId current : incumbents) {
    PolicyDecision decision = controller.Decide(stats, current, now);
    EXPECT_EQ(decision.protocol, dso::kProtoClientServer)
        << "incumbent protocol " << static_cast<int>(current);
    EXPECT_TRUE(decision.replica_regions.empty())
        << "incumbent protocol " << static_cast<int>(current);
  }
}

// ---------------------------------------------------------------- evaluation

// Schedules one second's worth of samples per second for one object, from the
// simulator's current time through `until`. Callers Run() the simulator after
// all feeds are scheduled, so several objects can share a time window.
void Feed(MetricsRegistry* registry, const gls::ObjectId& oid,
          sim::Simulator* simulator, SimTime until, int regions,
          uint64_t read_bytes, uint64_t write_bytes, int reads_per_sec = 8,
          int writes_per_sec = 1) {
  for (SimTime t = simulator->Now(); t <= until; t += kSecond) {
    simulator->ScheduleAt(t, [=] {
      for (int r = 0; r < reads_per_sec; ++r) {
        dso::AccessSample sample;
        sample.is_write = false;
        sample.bytes = read_bytes;
        sample.client = static_cast<sim::NodeId>(r % regions);
        registry->Record(oid, sample);
      }
      for (int w = 0; w < writes_per_sec; ++w) {
        dso::AccessSample write;
        write.is_write = true;
        write.bytes = write_bytes;
        write.client = 0;
        registry->Record(oid, write);
      }
    });
  }
}

ControllerConfig TestConfig() {
  ControllerConfig config;
  config.evaluate_interval = 0;  // ticks driven manually
  config.min_dwell = 60 * kSecond;
  return config;
}

TEST(ReplicationController, MigrationBudgetSpendsOnHottestFirst) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator, [](sim::NodeId node) {
    return static_cast<RegionId>(node);
  });
  FakeActuator actuator;
  ControllerConfig config = TestConfig();
  config.migration_budget_per_tick = 1;
  ReplicationController controller(&simulator, &metrics, &actuator, config);

  gls::ObjectId hot = TestOid(1);
  gls::ObjectId warm = TestOid(2);
  controller.Track(hot, dso::kProtoClientServer);
  controller.Track(warm, dso::kProtoClientServer);
  Feed(&metrics, hot, &simulator, 30 * kSecond, 4, 40000, 100,
       /*reads_per_sec=*/16);
  Feed(&metrics, warm, &simulator, 30 * kSecond, 4, 40000, 100,
       /*reads_per_sec=*/4);
  simulator.Run();

  controller.EvaluateNow();
  ASSERT_EQ(actuator.calls.size(), 1u);
  EXPECT_EQ(actuator.calls[0].oid, hot);  // bigger absolute savings
  EXPECT_EQ(controller.stats().held_by_budget, 1u);
  EXPECT_EQ(controller.CurrentProtocolOf(hot), dso::kProtoActiveRepl);
  EXPECT_EQ(controller.CurrentProtocolOf(warm), dso::kProtoClientServer);

  controller.EvaluateNow();
  ASSERT_EQ(actuator.calls.size(), 2u);
  EXPECT_EQ(actuator.calls[1].oid, warm);
  EXPECT_EQ(controller.CurrentProtocolOf(warm), dso::kProtoActiveRepl);

  // Converged: policies match decisions, nothing further to do.
  controller.EvaluateNow();
  EXPECT_EQ(actuator.calls.size(), 2u);
  EXPECT_EQ(controller.stats().migrations_succeeded, 2u);
}

TEST(ReplicationController, InFlightMigrationIsNotRedecided) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator, [](sim::NodeId node) {
    return static_cast<RegionId>(node);
  });
  FakeActuator actuator;
  actuator.defer = true;
  ReplicationController controller(&simulator, &metrics, &actuator, TestConfig());

  gls::ObjectId oid = TestOid(3);
  controller.Track(oid, dso::kProtoClientServer);
  Feed(&metrics, oid, &simulator, 30 * kSecond, 4, 40000, 100);
  simulator.Run();

  controller.EvaluateNow();
  ASSERT_EQ(actuator.calls.size(), 1u);
  // Still in flight: a second tick must not start a concurrent migration of
  // the same object.
  controller.EvaluateNow();
  EXPECT_EQ(actuator.calls.size(), 1u);
  EXPECT_EQ(controller.stats().migrations_started, 1u);
  EXPECT_EQ(controller.CurrentProtocolOf(oid), dso::kProtoClientServer);

  ASSERT_EQ(actuator.pending.size(), 1u);
  actuator.pending[0](OkStatus());
  EXPECT_EQ(controller.stats().migrations_succeeded, 1u);
  EXPECT_EQ(controller.CurrentProtocolOf(oid), dso::kProtoActiveRepl);
}

TEST(ReplicationController, FailedMigrationKeepsOldPolicyAndRetries) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator, [](sim::NodeId node) {
    return static_cast<RegionId>(node);
  });
  FakeActuator actuator;
  actuator.defer = true;
  ReplicationController controller(&simulator, &metrics, &actuator, TestConfig());

  gls::ObjectId oid = TestOid(4);
  controller.Track(oid, dso::kProtoClientServer);
  Feed(&metrics, oid, &simulator, 30 * kSecond, 4, 40000, 100);
  simulator.Run();

  controller.EvaluateNow();
  ASSERT_EQ(actuator.pending.size(), 1u);
  actuator.pending[0](Unavailable("partitioned"));
  EXPECT_EQ(controller.stats().migrations_failed, 1u);
  EXPECT_EQ(controller.CurrentProtocolOf(oid), dso::kProtoClientServer);

  // Failure does not start a dwell window: the next tick retries.
  controller.EvaluateNow();
  EXPECT_EQ(actuator.calls.size(), 2u);
}

TEST(ReplicationController, DwellWindowBlocksImmediateReMigration) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator, [](sim::NodeId node) {
    return static_cast<RegionId>(node);
  });
  FakeActuator actuator;
  ControllerConfig config = TestConfig();
  config.hysteresis = 0.0;  // isolate the dwell knob
  ReplicationController controller(&simulator, &metrics, &actuator, config);

  gls::ObjectId oid = TestOid(5);
  controller.Track(oid, dso::kProtoClientServer);
  Feed(&metrics, oid, &simulator, 30 * kSecond, 4, 40000, 100);
  simulator.Run();
  controller.EvaluateNow();
  ASSERT_EQ(controller.stats().migrations_succeeded, 1u);
  ASSERT_EQ(controller.CurrentProtocolOf(oid), dso::kProtoActiveRepl);

  // The workload flips to rare small reads and frequent huge writes: under
  // the model, cache/invalidate (refetch bounded by the read rate) now beats
  // broadcasting every write — but the object just migrated, so dwell holds.
  Feed(&metrics, oid, &simulator, 45 * kSecond, 4, 1000, 50000,
       /*reads_per_sec=*/2, /*writes_per_sec=*/5);
  simulator.Run();
  controller.EvaluateNow();
  EXPECT_EQ(controller.stats().migrations_succeeded, 1u);
  EXPECT_GE(controller.stats().held_by_dwell, 1u);
  EXPECT_EQ(controller.CurrentProtocolOf(oid), dso::kProtoActiveRepl);

  // Past the window (dwell = 60 s from the migration at t=30 s) the flip is
  // allowed. Keep feeding so the rates stay above min_rate_per_sec.
  Feed(&metrics, oid, &simulator, 95 * kSecond, 4, 1000, 50000,
       /*reads_per_sec=*/2, /*writes_per_sec=*/5);
  simulator.Run();
  controller.EvaluateNow();
  EXPECT_EQ(controller.stats().migrations_succeeded, 2u);
  EXPECT_EQ(controller.CurrentProtocolOf(oid), dso::kProtoCacheInval);
}

TEST(ReplicationController, SerializeRestoreKeepsDecisionMemory) {
  sim::Simulator simulator;
  MetricsRegistry metrics(&simulator, [](sim::NodeId node) {
    return static_cast<RegionId>(node);
  });
  FakeActuator actuator;
  ControllerConfig config = TestConfig();
  config.hysteresis = 0.0;  // the knob under test is dwell persistence
  ReplicationController controller(&simulator, &metrics, &actuator, config);

  gls::ObjectId migrated = TestOid(6);
  gls::ObjectId untouched = TestOid(7);
  controller.Track(migrated, dso::kProtoClientServer);
  controller.Track(untouched, dso::kProtoMasterSlave);
  Feed(&metrics, migrated, &simulator, 30 * kSecond, 4, 40000, 100);
  simulator.Run();
  controller.EvaluateNow();
  ASSERT_EQ(controller.CurrentProtocolOf(migrated), dso::kProtoActiveRepl);

  ByteWriter w;
  controller.Serialize(&w);
  Bytes blob = w.Take();

  ReplicationController restored(&simulator, &metrics, &actuator, config);
  ByteReader r(blob);
  ASSERT_TRUE(restored.Restore(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(restored.CurrentProtocolOf(migrated), dso::kProtoActiveRepl);
  EXPECT_EQ(restored.CurrentProtocolOf(untouched), dso::kProtoMasterSlave);

  // The dwell clock survives too: an immediate flip attempt is still held.
  Feed(&metrics, migrated, &simulator, 45 * kSecond, 4, 1000, 50000,
       /*reads_per_sec=*/2, /*writes_per_sec=*/5);
  simulator.Run();
  restored.EvaluateNow();
  EXPECT_GE(restored.stats().held_by_dwell, 1u);
  EXPECT_EQ(restored.CurrentProtocolOf(migrated), dso::kProtoActiveRepl);
}

}  // namespace
}  // namespace globe::ctl
