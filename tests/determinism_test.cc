// Determinism of the sharded event engine (src/sim/sharded_simulator.h).
//
// The engine's contract: for a pinned seed, a sharded run is byte-identical to
// a re-run with the same shard count, and — on tie-free workloads, where no two
// events share a (time, node) slot — identical to the sequential engine in
// executed-event count, final virtual time, per-request outcomes and final
// service state. The suite drives a real GLS deployment (with the
// memory-bounded subnode store exercising spill/fault-in under both engines)
// and compares checkpoint bytes, plus unit tests for the engine's window and
// boundary machinery.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "src/gls/deploy.h"
#include "src/sim/backend.h"

namespace globe {
namespace {

using sim::BuildUniformWorld;
using sim::DomainId;
using sim::EventEngine;
using sim::NodeId;
using sim::ShardedSimulator;
using sim::SimTime;
using sim::Simulator;
using sim::UniformWorld;

// ------------------------------------------------------------ engine units

TEST(ShardedSimulatorTest, RunsShardLocalEventsInTimeOrder) {
  ShardedSimulator engine(2, /*lookahead_us=*/100);
  engine.AssignNode(0, 0);
  engine.AssignNode(1, 1);
  std::vector<int> order;
  engine.ScheduleAtForNode(0, 30, [&] { order.push_back(3); });
  engine.ScheduleAtForNode(0, 10, [&] { order.push_back(1); });
  engine.ScheduleAtForNode(0, 20, [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.executed_events(), 3u);
}

TEST(ShardedSimulatorTest, CrossShardHandoffRunsOnTargetShard) {
  ShardedSimulator engine(2, /*lookahead_us=*/50);
  engine.AssignNode(0, 0);
  engine.AssignNode(1, 1);
  std::atomic<size_t> observed_shard{99};
  // Both shards get work so the window dispatches in parallel; the event on
  // node 0 sends one across to node 1 beyond the lookahead horizon.
  engine.ScheduleAtForNode(1, 10, [] {});
  engine.ScheduleAtForNode(0, 10, [&] {
    engine.ScheduleAtForNode(1, 100, [&] { observed_shard = engine.current_shard(); });
  });
  engine.Run();
  EXPECT_EQ(observed_shard.load(), 1u);
  EXPECT_EQ(engine.executed_events(), 3u);
  EXPECT_EQ(engine.lookahead_violations(), 0u);
}

TEST(ShardedSimulatorTest, LookaheadViolationIsClampedAndCounted) {
  ShardedSimulator engine(2, /*lookahead_us=*/1000);
  engine.AssignNode(0, 0);
  engine.AssignNode(1, 1);
  // Shard 1 has an event at 500 inside the same window as shard 0's event at
  // 100; the cross-shard message aimed at t=101 arrives after shard 1 already
  // advanced to 500, so it must clamp forward, never travel back.
  std::vector<SimTime> ran_at;
  engine.ScheduleAtForNode(1, 500, [&] { ran_at.push_back(engine.Now()); });
  engine.ScheduleAtForNode(0, 100, [&] {
    engine.ScheduleAtForNode(1, 101, [&] { ran_at.push_back(engine.Now()); });
  });
  engine.Run();
  ASSERT_EQ(ran_at.size(), 2u);
  EXPECT_EQ(ran_at[0], 500);
  EXPECT_GE(ran_at[1], 500);  // clamped to the target shard's clock
  EXPECT_EQ(engine.lookahead_violations(), 1u);
}

TEST(ShardedSimulatorTest, BarrierRunsWithShardsParkedAndInOrder) {
  ShardedSimulator engine(2, /*lookahead_us=*/10);
  engine.AssignNode(0, 0);
  engine.AssignNode(1, 1);
  std::vector<int> order;
  engine.ScheduleAtForNode(0, 5, [&] { order.push_back(0); });
  engine.ScheduleAtForNode(1, 15, [&] { order.push_back(2); });
  engine.ScheduleBarrier(10, [&] {
    EXPECT_FALSE(engine.InParallelRegion());
    order.push_back(1);
    // Barrier context may schedule onto any shard directly.
    engine.ScheduleAtForNode(1, 20, [&] { order.push_back(3); });
  });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ShardedSimulatorTest, CancelShardLocalEventSkipsIt) {
  ShardedSimulator engine(2, /*lookahead_us=*/100);
  engine.AssignNode(0, 0);
  bool cancelled_ran = false;
  bool fired = false;
  auto id = engine.ScheduleAtForNode(0, 50, [&] { cancelled_ran = true; });
  engine.ScheduleAtForNode(0, 10, [&] {
    EXPECT_TRUE(engine.Cancel(id));
    fired = true;
  });
  engine.Run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(cancelled_ran);
  EXPECT_EQ(engine.executed_events(), 1u);
}

// ------------------------------------------------- cross-engine replay

uint64_t Fnv1a(uint64_t hash, const Bytes& bytes) {
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

struct TraceResult {
  uint64_t executed = 0;
  SimTime end_time = 0;
  // Canonical directory state: every subnode's entries in sorted-OID order
  // (ExportEntries), serialized and hashed. RPC correlation ids (ephemeral
  // ports, request ids) are process-global counters excluded by design — they
  // never influence behaviour, so they are not part of the replay contract.
  uint64_t state_hash = 0;
  std::vector<uint8_t> outcomes;  // per lookup: address count (0xFF = failed)
  uint64_t evictions = 0;
  uint64_t fault_ins = 0;

  bool operator==(const TraceResult&) const = default;
};

// One deterministic GLS workload — staggered registrations, cached lookups and
// deletes with collision-free timestamps — on either engine. The subnode store
// is capacity-bounded so eviction/spill/fault-in runs under both engines too.
TraceResult RunGlsWorkload(bool use_sharded, uint64_t seed) {
  constexpr size_t kShards = 4;
  constexpr int kOids = 48;
  constexpr int kLookups = 96;

  UniformWorld world = BuildUniformWorld({4, 4}, 2);
  sim::NetworkOptions net_options;
  net_options.rng_seed = seed;

  std::unique_ptr<EventEngine> engine;
  ShardedSimulator* sharded = nullptr;
  if (use_sharded) {
    auto owned = std::make_unique<ShardedSimulator>(
        kShards, static_cast<SimTime>(net_options.profile.LatencyAt(1)));
    sharded = owned.get();
    engine = std::move(owned);
  } else {
    engine = std::make_unique<Simulator>();
  }

  // Continent homing; must run before a node's services register ports.
  auto assign_node = [&](NodeId node) {
    if (sharded == nullptr) {
      return;
    }
    DomainId d = world.topology.NodeDomain(node);
    while (world.topology.DomainDepth(d) > 1) {
      d = world.topology.DomainParent(d);
    }
    sharded->AssignNode(node, world.topology.DomainDepth(d) == 0
                                  ? 0
                                  : static_cast<size_t>(d - 1) % kShards);
  };
  for (NodeId node = 0; node < world.topology.num_nodes(); ++node) {
    assign_node(node);
  }

  sim::Network network(engine.get(), &world.topology, net_options);
  sim::PlainTransport transport(&network);
  gls::GlsDeploymentOptions options;
  options.rng_seed = seed;
  options.node_options.enable_cache = true;
  options.node_options.store_capacity = 8;
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr, options,
                                assign_node);

  Rng rng(seed);
  std::vector<gls::ObjectId> oids;
  for (int i = 0; i < kOids; ++i) {
    oids.push_back(gls::ObjectId::Generate(&rng));
  }

  std::vector<std::shared_ptr<gls::GlsClient>> clients;
  for (NodeId host : world.hosts) {
    auto client = std::make_shared<gls::GlsClient>(
        &transport, host, deployment.LeafDirectoryFor(host));
    client->set_allow_cached(true);
    clients.push_back(client);
  }
  auto host_of = [&](int i) { return world.hosts[i % world.hosts.size()]; };
  auto address_of = [&](int i) {
    return gls::ContactAddress{{host_of(i), sim::kPortGos}, 1,
                               gls::ReplicaRole::kMaster};
  };

  // Registrations: distinct times (prime stride), spread over every continent.
  for (int i = 0; i < kOids; ++i) {
    engine->ScheduleAtForNode(host_of(i), 1 + i * 937, [&, i] {
      clients[i % clients.size()]->Insert(oids[i], address_of(i), [](Status) {});
    });
  }
  engine->Run();

  // Cached lookups from everywhere; outcomes recorded positionally (each slot
  // written by exactly one callback, so shard threads never contend).
  TraceResult result;
  result.outcomes.assign(kLookups, 0);
  SimTime base = engine->Now() + 1;
  for (int j = 0; j < kLookups; ++j) {
    int reader = (j * 7 + 3) % static_cast<int>(clients.size());
    engine->ScheduleAtForNode(host_of(reader), base + j * 1331, [&, j, reader] {
      clients[reader]->Lookup(oids[(j * 5) % kOids],
                              [&, j](Result<gls::LookupResult> r) {
                                result.outcomes[j] =
                                    r.ok() ? static_cast<uint8_t>(r->addresses.size())
                                           : 0xFF;
                              });
    });
  }
  engine->Run();

  // Deregister a third of the objects, then checkpoint everything.
  for (int i = 0; i < kOids; i += 3) {
    engine->ScheduleAtForNode(host_of(i), engine->Now() + 1 + i * 739, [&, i] {
      clients[i % clients.size()]->Delete(oids[i], address_of(i), [](Status) {});
    });
  }
  engine->Run();

  result.executed = engine->executed_events();
  result.end_time = engine->Now();
  result.state_hash = 0xcbf29ce484222325ULL;
  for (const auto& subnode : deployment.subnodes()) {
    for (const auto& [oid, entry] : subnode->ExportEntries()) {
      ByteWriter w;
      oid.Serialize(&w);
      result.state_hash = Fnv1a(result.state_hash, w.Take());
      result.state_hash =
          Fnv1a(result.state_hash, gls::SubnodeStore::SerializeEntry(entry));
    }
  }
  gls::SubnodeStats totals = deployment.TotalStats();
  result.evictions = totals.store_evictions;
  result.fault_ins = totals.store_fault_ins;
  return result;
}

constexpr uint64_t kSeeds[] = {1337, 4242, 9001};

TEST(DeterminismTest, ShardedMatchesSequentialOnTieFreeWorkload) {
  for (uint64_t seed : kSeeds) {
    TraceResult sequential = RunGlsWorkload(false, seed);
    TraceResult sharded = RunGlsWorkload(true, seed);
    EXPECT_EQ(sequential.executed, sharded.executed) << "seed " << seed;
    EXPECT_EQ(sequential.end_time, sharded.end_time) << "seed " << seed;
    EXPECT_EQ(sequential.outcomes, sharded.outcomes) << "seed " << seed;
    EXPECT_EQ(sequential.state_hash, sharded.state_hash) << "seed " << seed;
    // The bounded store spilled and faulted identically under both engines.
    EXPECT_EQ(sequential.evictions, sharded.evictions) << "seed " << seed;
    EXPECT_EQ(sequential.fault_ins, sharded.fault_ins) << "seed " << seed;
    EXPECT_GT(sequential.evictions, 0u) << "seed " << seed;
  }
}

TEST(DeterminismTest, ShardedReplayIsByteIdentical) {
  for (uint64_t seed : kSeeds) {
    TraceResult first = RunGlsWorkload(true, seed);
    TraceResult second = RunGlsWorkload(true, seed);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(DeterminismTest, SequentialReplayIsByteIdentical) {
  for (uint64_t seed : kSeeds) {
    TraceResult first = RunGlsWorkload(false, seed);
    TraceResult second = RunGlsWorkload(false, seed);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

}  // namespace
}  // namespace globe
