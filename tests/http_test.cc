// Tests for the HTTP/1.0 message layer.

#include <gtest/gtest.h>

#include "src/http/http.h"

namespace globe::http {
namespace {

TEST(HttpRequestTest, SerializeParseRoundTrip) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/packages/apps/graphics/Gimp?x=1";
  request.headers["host"] = "gdn.cs.vu.nl";
  auto restored = HttpRequest::Parse(request.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->method, "GET");
  EXPECT_EQ(restored->target, "/packages/apps/graphics/Gimp?x=1");
  EXPECT_EQ(restored->Path(), "/packages/apps/graphics/Gimp");
  EXPECT_EQ(restored->Query(), "x=1");
  EXPECT_EQ(restored->headers.at("host"), "gdn.cs.vu.nl");
}

TEST(HttpRequestTest, ParsesRealWireText) {
  std::string wire =
      "GET /packages/apps/tetex HTTP/1.0\r\n"
      "Host: gdn-access.nl\r\n"
      "User-Agent: Mozilla/4.7\r\n"
      "\r\n";
  auto request = HttpRequest::Parse(ToBytes(wire));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/packages/apps/tetex");
  EXPECT_EQ(request->version, "HTTP/1.0");
  EXPECT_EQ(request->headers.at("user-agent"), "Mozilla/4.7");
}

TEST(HttpRequestTest, HeaderNamesAreCaseInsensitive) {
  std::string wire = "GET / HTTP/1.0\r\nCoNtEnT-TyPe: text/html\r\n\r\n";
  auto request = HttpRequest::Parse(ToBytes(wire));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->headers.at("content-type"), "text/html");
}

TEST(HttpRequestTest, ToleratesBareLf) {
  std::string wire = "GET / HTTP/1.0\nHost: x\n\nbody";
  auto request = HttpRequest::Parse(ToBytes(wire));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(ToString(request->body), "body");
}

TEST(HttpRequestTest, RejectsGarbage) {
  EXPECT_FALSE(HttpRequest::Parse(ToBytes("not http at all")).ok());
  EXPECT_FALSE(HttpRequest::Parse(ToBytes("GET /\r\n\r\n")).ok());  // missing version
  EXPECT_FALSE(HttpRequest::Parse(Bytes{}).ok());
}

TEST(HttpRequestTest, RejectsMalformedHeaderLine) {
  std::string wire = "GET / HTTP/1.0\r\nbroken header line\r\n\r\n";
  EXPECT_FALSE(HttpRequest::Parse(ToBytes(wire)).ok());
}

TEST(HttpRequestTest, BodyCarriedThrough) {
  HttpRequest request;
  request.method = "POST";
  request.body = ToBytes("payload-bytes");
  auto restored = HttpRequest::Parse(request.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(ToString(restored->body), "payload-bytes");
  EXPECT_EQ(restored->headers.at("content-length"), "13");
}

TEST(HttpResponseTest, SerializeParseRoundTrip) {
  HttpResponse response;
  response.status_code = 404;
  response.reason = "Not Found";
  response.SetHtml("<html>nope</html>");
  auto restored = HttpResponse::Parse(response.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->status_code, 404);
  EXPECT_EQ(restored->reason, "Not Found");
  EXPECT_EQ(restored->headers.at("content-type"), "text/html");
  EXPECT_EQ(ToString(restored->body), "<html>nope</html>");
}

TEST(HttpResponseTest, BinaryBodySurvives) {
  HttpResponse response;
  Bytes binary = {0x00, 0x01, 0xff, 0xfe, '\r', '\n', '\r', '\n', 0x42};
  response.SetBody(binary, "application/octet-stream");
  auto restored = HttpResponse::Parse(response.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->body, binary);
}

TEST(HttpResponseTest, RejectsBadStatusLine) {
  EXPECT_FALSE(HttpResponse::Parse(ToBytes("HTTP/1.0\r\n\r\n")).ok());
  EXPECT_FALSE(HttpResponse::Parse(ToBytes("HTTP/1.0 999999 X\r\n\r\n")).ok());
}

TEST(HttpResponseTest, ErrorHelperProducesHtml) {
  HttpResponse response = MakeErrorResponse(404, "Not Found", "no such package");
  EXPECT_EQ(response.status_code, 404);
  EXPECT_NE(ToString(response.body).find("no such package"), std::string::npos);
}

TEST(UrlCodecTest, EncodeDecodeRoundTrip) {
  std::string original = "/packages/apps/graphics/Gimp 1.0/files/bin/gimp";
  std::string encoded = UrlEncode(original);
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  auto decoded = UrlDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(UrlCodecTest, DecodeRejectsTruncatedEscape) {
  EXPECT_FALSE(UrlDecode("abc%2").ok());
  EXPECT_FALSE(UrlDecode("abc%zz").ok());
}

TEST(UrlCodecTest, PlusDecodesToSpace) {
  auto decoded = UrlDecode("a+b");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "a b");
}

TEST(ReasonPhraseTest, KnownCodes) {
  EXPECT_EQ(ReasonPhrase(200), "OK");
  EXPECT_EQ(ReasonPhrase(404), "Not Found");
  EXPECT_EQ(ReasonPhrase(299), "Unknown");
}

}  // namespace
}  // namespace globe::http
