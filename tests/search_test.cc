// Tests for the attribute-based search extension (paper §5/§8 future work): the
// search-index semantics object, its behaviour under replication (it is itself a
// DSO), and the HTTP /search endpoint.

#include <gtest/gtest.h>

#include "src/gdn/search.h"
#include "src/gdn/world.h"

namespace globe::gdn {
namespace {

// ---------------------------------------------------------------- Tokenizer

TEST(TokenizeTest, SplitsOnNonAlnum) {
  EXPECT_EQ(SearchIndexObject::Tokenize("/apps/graphics/Gimp"),
            (std::vector<std::string>{"apps", "graphics", "gimp"}));
  EXPECT_EQ(SearchIndexObject::Tokenize("GNU Image-Manipulation  Program!"),
            (std::vector<std::string>{"gnu", "image", "manipulation", "program"}));
  EXPECT_TRUE(SearchIndexObject::Tokenize("---").empty());
  EXPECT_TRUE(SearchIndexObject::Tokenize("").empty());
}

// ---------------------------------------------------------------- Index semantics

class SearchIndexTest : public ::testing::Test {
 protected:
  Status Register(const std::string& name, const std::string& description) {
    auto result = index_.Invoke(search::Register(name, description));
    return result.ok() ? OkStatus() : result.status();
  }

  std::vector<SearchMatch> Query(const std::string& query) {
    auto result = index_.Invoke(search::Query(query));
    EXPECT_TRUE(result.ok());
    auto matches = search::ParseMatches(*result);
    EXPECT_TRUE(matches.ok());
    return *matches;
  }

  SearchIndexObject index_;
};

TEST_F(SearchIndexTest, FindsByDescriptionWord) {
  ASSERT_TRUE(Register("/apps/graphics/Gimp", "GNU image manipulation program").ok());
  ASSERT_TRUE(Register("/apps/text/teTeX", "TeX typesetting distribution").ok());

  auto matches = Query("image");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].globe_name, "/apps/graphics/Gimp");
}

TEST_F(SearchIndexTest, FindsByNameComponent) {
  ASSERT_TRUE(Register("/apps/graphics/Gimp", "painting").ok());
  auto matches = Query("gimp");
  ASSERT_EQ(matches.size(), 1u);
}

TEST_F(SearchIndexTest, QueryIsCaseInsensitive) {
  ASSERT_TRUE(Register("/apps/devel/gcc", "GNU Compiler Collection").ok());
  EXPECT_EQ(Query("COMPILER").size(), 1u);
  EXPECT_EQ(Query("gnu compiler").size(), 1u);
}

TEST_F(SearchIndexTest, MultiTermQueryIsConjunctive) {
  ASSERT_TRUE(Register("/apps/graphics/Gimp", "GNU image editor").ok());
  ASSERT_TRUE(Register("/apps/devel/gcc", "GNU compiler").ok());
  EXPECT_EQ(Query("gnu").size(), 2u);
  auto matches = Query("gnu image");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].globe_name, "/apps/graphics/Gimp");
  EXPECT_TRUE(Query("gnu haskell").empty());
}

TEST_F(SearchIndexTest, NoMatchesForUnknownTerm) {
  ASSERT_TRUE(Register("/apps/x", "something").ok());
  EXPECT_TRUE(Query("nonexistent").empty());
}

TEST_F(SearchIndexTest, ReregisterReplacesEntry) {
  ASSERT_TRUE(Register("/apps/tool", "old words here").ok());
  ASSERT_TRUE(Register("/apps/tool", "new description").ok());
  EXPECT_TRUE(Query("old").empty());
  EXPECT_EQ(Query("new").size(), 1u);
  EXPECT_EQ(index_.num_entries(), 1u);
}

TEST_F(SearchIndexTest, UnregisterRemovesFromAllKeywords) {
  ASSERT_TRUE(Register("/apps/tool", "alpha beta gamma").ok());
  ASSERT_TRUE(index_.Invoke(search::Unregister("/apps/tool")).ok());
  EXPECT_TRUE(Query("alpha").empty());
  EXPECT_TRUE(Query("gamma").empty());
  EXPECT_EQ(index_.num_entries(), 0u);
}

TEST_F(SearchIndexTest, EmptyNameRejected) {
  EXPECT_FALSE(Register("", "whatever").ok());
}

TEST_F(SearchIndexTest, StateRoundTripPreservesIndex) {
  ASSERT_TRUE(Register("/apps/a", "first package").ok());
  ASSERT_TRUE(Register("/apps/b", "second package").ok());

  SearchIndexObject restored;
  ASSERT_TRUE(restored.SetState(index_.GetState()).ok());
  auto result = restored.Invoke(search::Query("second"));
  ASSERT_TRUE(result.ok());
  auto matches = search::ParseMatches(*result);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].globe_name, "/apps/b");
}

// ---------------------------------------------------------------- End to end

TEST(SearchWorldTest, SearchOverHttpFindsPublishedPackages) {
  GdnWorld world;
  ASSERT_FALSE(world.search_oid().IsNil());

  ASSERT_TRUE(world
                  .PublishPackage("/apps/graphics/Gimp", {{"bin", ToBytes("x")}},
                                  dso::kProtoMasterSlave, 0, {},
                                  "GNU image manipulation program")
                  .ok());
  ASSERT_TRUE(world
                  .PublishPackage("/apps/devel/gcc", {{"bin", ToBytes("y")}},
                                  dso::kProtoMasterSlave, 1, {},
                                  "GNU compiler collection")
                  .ok());

  // A user on the far continent searches via their local HTTPD.
  sim::NodeId user = world.user_hosts().back();
  auto html = world.SearchViaHttp(user, "image");
  ASSERT_TRUE(html.ok()) << html.status();
  EXPECT_NE(html->find("/apps/graphics/Gimp"), std::string::npos);
  EXPECT_EQ(html->find("/apps/devel/gcc"), std::string::npos);

  auto both = world.SearchViaHttp(user, "gnu");
  ASSERT_TRUE(both.ok());
  EXPECT_NE(both->find("Gimp"), std::string::npos);
  EXPECT_NE(both->find("gcc"), std::string::npos);
}

TEST(SearchWorldTest, IndexReplicaOnEveryGos) {
  GdnWorld world;
  for (size_t i = 0; i < world.num_countries(); ++i) {
    EXPECT_NE(world.GosOf(i)->FindReplica(world.search_oid()), nullptr) << "country " << i;
  }
}

TEST(SearchWorldTest, SearchUpdatesPropagateToSlaves) {
  GdnWorld world;
  ASSERT_TRUE(world.RegisterInSearchIndex("/apps/late", "freshly indexed package").ok());

  // The slave replica on the last country's GOS answers locally.
  auto* slave = world.GosOf(world.num_countries() - 1)->FindReplica(world.search_oid());
  ASSERT_NE(slave, nullptr);
  Result<Bytes> result = Unavailable("pending");
  auto query = search::Query("freshly");
  slave->Invoke(query, [&](Result<Bytes> r) { result = std::move(r); });
  world.Run();
  ASSERT_TRUE(result.ok());
  auto matches = search::ParseMatches(*result);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].globe_name, "/apps/late");
}

TEST(SearchWorldTest, UnregisterRemovesFromSearch) {
  GdnWorld world;
  ASSERT_TRUE(world.RegisterInSearchIndex("/apps/gone", "ephemeral entry").ok());
  ASSERT_TRUE(world.UnregisterFromSearchIndex("/apps/gone").ok());
  auto html = world.SearchViaHttp(world.user_hosts()[0], "ephemeral");
  ASSERT_TRUE(html.ok());
  EXPECT_NE(html->find("0 match(es)"), std::string::npos);
}

TEST(SearchWorldTest, BadSearchRequestIs400) {
  GdnWorld world;
  auto browser = world.MakeBrowser(world.user_hosts()[0]);
  Result<http::HttpResponse> out = Unavailable("pending");
  browser->Fetch(world.NearestHttpd(world.user_hosts()[0])->node(), "/search",
                 [&](Result<http::HttpResponse> r) { out = std::move(r); });
  world.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->status_code, 400);
}

}  // namespace
}  // namespace globe::gdn
