// Unit and property tests for src/util: status propagation, serialization round-trips,
// SHA-256 / HMAC against published vectors, PRNG and Zipf distribution sanity.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/util/bytes.h"
#include "src/util/hmac.h"
#include "src/util/rng.h"
#include "src/util/serial.h"
#include "src/util/sha256.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace globe {
namespace {

// ---------------------------------------------------------------- Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such object");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such object");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such object");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (uint8_t c = 0; c <= 9; ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgument("not positive");
  }
  return x;
}

Status UsePositive(int x, int* out) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return OkStatus();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsePositive(5, &out).ok());
  EXPECT_EQ(out, 10);
  Status s = UsePositive(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Bytes / hex

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  Bytes decoded;
  ASSERT_TRUE(HexDecode("0001abff", &decoded));
  EXPECT_EQ(decoded, b);
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  Bytes out;
  EXPECT_FALSE(HexDecode("abc", &out));
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  Bytes out;
  EXPECT_FALSE(HexDecode("zz", &out));
}

TEST(BytesTest, HexDecodeAcceptsUppercase) {
  Bytes out;
  ASSERT_TRUE(HexDecode("ABFF", &out));
  EXPECT_EQ(out, (Bytes{0xab, 0xff}));
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BytesTest, StringRoundTrip) {
  std::string s = "hello\0world";
  EXPECT_EQ(ToString(ToBytes(s)), s);
}

// ---------------------------------------------------------------- Serialization

TEST(SerialTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteBool(true);

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU16().value(), 0x1234);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, VarintBoundaries) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
                     0xffffffffffffffffULL}) {
    ByteWriter w;
    w.WriteVarint(v);
    ByteReader r(w.data());
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SerialTest, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.WriteString("globe");
  w.WriteLengthPrefixed(Bytes{9, 8, 7});
  w.WriteString("");

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadString().value(), "globe");
  EXPECT_EQ(r.ReadLengthPrefixed().value(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, TruncatedReadsFailCleanly) {
  ByteWriter w;
  w.WriteU32(7);
  Bytes data = w.Take();
  data.pop_back();
  ByteReader r(data);
  auto got = r.ReadU32();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(SerialTest, LengthPrefixBeyondDataFails) {
  ByteWriter w;
  w.WriteVarint(1000);  // claims 1000 bytes follow
  w.WriteU8(1);
  ByteReader r(w.data());
  auto got = r.ReadLengthPrefixed();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(SerialTest, BoolRejectsJunk) {
  Bytes data = {7};
  ByteReader r(data);
  EXPECT_FALSE(r.ReadBool().ok());
}

TEST(SerialTest, OverlongVarintFails) {
  Bytes data(11, 0xff);  // continuation forever
  ByteReader r(data);
  EXPECT_FALSE(r.ReadVarint().ok());
}

// Property test: random mixed payloads round-trip exactly.
class SerialPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerialPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<uint64_t> ints;
    std::vector<Bytes> blobs;
    ByteWriter w;
    int n = static_cast<int>(rng.UniformInt(20)) + 1;
    for (int i = 0; i < n; ++i) {
      uint64_t v = rng.NextU64() >> rng.UniformInt(64);
      ints.push_back(v);
      w.WriteVarint(v);
      Bytes blob = rng.RandomBytes(rng.UniformInt(100));
      blobs.push_back(blob);
      w.WriteLengthPrefixed(blob);
    }
    ByteReader r(w.data());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(r.ReadVarint().value(), ints[i]);
      EXPECT_EQ(r.ReadLengthPrefixed().value(), blobs[i]);
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialPropertyTest, ::testing::Values(1, 2, 3, 42, 1000));

// ---------------------------------------------------------------- SHA-256 vectors

// Vectors from FIPS 180-4 / NIST CAVS.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::HexDigest({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::HexDigest(ToBytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::HexDigest(ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  auto digest = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding goes entirely into a second block.
  Bytes data(64, 'x');
  Sha256 streaming;
  streaming.Update(ByteSpan(data.data(), 31));
  streaming.Update(ByteSpan(data.data() + 31, 33));
  auto a = streaming.Finish();
  auto b = Sha256::Digest(data);
  EXPECT_EQ(a, b);
}

TEST(Sha256Test, StreamingEqualsOneShotOnRandomChunks) {
  Rng rng(7);
  Bytes data = rng.RandomBytes(10000);
  Sha256 streaming;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t n = std::min<size_t>(rng.UniformInt(257), data.size() - pos);
    streaming.Update(ByteSpan(data.data() + pos, n));
    pos += n;
  }
  EXPECT_EQ(streaming.Finish(), Sha256::Digest(data));
}

// ---------------------------------------------------------------- HMAC vectors

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(HexEncode(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  Bytes mac = HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexEncode(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than block size.
TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);
  Bytes mac = HmacSha256(key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexEncode(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyDetectsTampering) {
  Bytes key = ToBytes("secret");
  Bytes msg = ToBytes("original message");
  Bytes mac = HmacSha256(key, msg);
  EXPECT_TRUE(VerifyHmacSha256(key, msg, mac));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(VerifyHmacSha256(key, tampered, mac));
  Bytes bad_mac = mac;
  bad_mac[5] ^= 1;
  EXPECT_FALSE(VerifyHmacSha256(key, msg, bad_mac));
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  Bytes msg = ToBytes("msg");
  EXPECT_NE(HmacSha256(ToBytes("k1"), msg), HmacSha256(ToBytes("k2"), msg));
}

// HmacKey (precomputed midstates) must produce byte-identical MACs to the
// one-shot functions, for short, block-size and over-block keys.
TEST(HmacKeyTest, MatchesOneShotHmac) {
  const Bytes keys[] = {ToBytes("Jefe"), Bytes(64, 0x0b), Bytes(131, 0xaa), Bytes{}};
  const Bytes msg = ToBytes("what do ya want for nothing?");
  for (const Bytes& key : keys) {
    HmacKey prepared(key);
    EXPECT_EQ(prepared.Mac(msg), HmacSha256(key, msg)) << "key size " << key.size();
  }
}

// The streaming interface over split parts equals the MAC of the concatenation
// — the property the secure transport's header+ciphertext MAC relies on.
TEST(HmacKeyTest, StreamingPartsEqualConcatenation) {
  HmacKey key(ToBytes("session-key"));
  const Bytes part1 = ToBytes("header fields|");
  const Bytes part2 = Bytes(300, 0x5c);  // "ciphertext", crosses a block boundary
  Bytes whole = part1;
  whole.insert(whole.end(), part2.begin(), part2.end());

  Sha256 inner = key.Start();
  inner.Update(part1);
  inner.Update(part2);
  EXPECT_EQ(key.Finish(std::move(inner)), key.Mac(whole));

  Sha256 verify_inner = key.Start();
  verify_inner.Update(part1);
  verify_inner.Update(part2);
  EXPECT_TRUE(key.Verify(std::move(verify_inner), key.Mac(whole)));

  Sha256 bad_inner = key.Start();
  bad_inner.Update(part2);  // wrong order
  bad_inner.Update(part1);
  EXPECT_FALSE(key.Verify(std::move(bad_inner), key.Mac(whole)));
}

// ---------------------------------------------------------------- RNG / Zipf

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(10);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 7000; ++i) {
    counts[rng.UniformInt(7)]++;
  }
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 700) << v;  // expected 1000, allow wide slack
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(12);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, RandomBytesLength) {
  Rng rng(13);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u}) {
    EXPECT_EQ(rng.RandomBytes(n).size(), n);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (size_t i = 0; i < 100; ++i) {
    sum += zipf.Pmf(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler zipf(50, 1.0);
  for (size_t i = 1; i < 50; ++i) {
    EXPECT_GE(zipf.Pmf(i - 1), zipf.Pmf(i));
  }
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(15);
  std::vector<int> counts(20, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    counts[zipf.Sample(&rng)]++;
  }
  for (size_t i = 0; i < 20; ++i) {
    double expected = zipf.Pmf(i) * kN;
    EXPECT_NEAR(counts[i], expected, expected * 0.15 + 30) << "rank " << i;
  }
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitSkipEmpty) {
  EXPECT_EQ(SplitSkipEmpty("/apps/graphics/Gimp", '/'),
            (std::vector<std::string>{"apps", "graphics", "Gimp"}));
  EXPECT_EQ(SplitSkipEmpty("///", '/'), std::vector<std::string>{});
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"apps", "graphics", "Gimp"}, "/"), "apps/graphics/Gimp");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"x"}, "."), "x");
}

TEST(StringsTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Gimp.GLOBE.cs.VU.nl"), "gimp.globe.cs.vu.nl");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/apps/gimp", "/apps"));
  EXPECT_FALSE(StartsWith("/apps", "/apps/gimp"));
  EXPECT_TRUE(EndsWith("pkg.globe.cs.vu.nl", ".vu.nl"));
  EXPECT_FALSE(EndsWith("nl", ".vu.nl"));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y\t\r\n"), "x y");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MB");
}

}  // namespace
}  // namespace globe
