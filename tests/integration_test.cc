// Cross-module integration tests: full GdnWorld scenarios exercising naming,
// location, replication, HTTP access, security and failure handling together.

#include <gtest/gtest.h>

#include "src/gdn/world.h"
#include "src/util/sha256.h"

namespace globe::gdn {
namespace {

// ---------------------------------------------------------------- Full lifecycle

TEST(IntegrationTest, CompletePackageLifecycle) {
  GdnWorldConfig config;
  config.fanouts = {2, 2, 2};
  GdnWorld world(config);

  // 1. Moderator publishes a three-file package replicated to two more countries.
  std::map<std::string, Bytes> files = {
      {"bin/gcc", Bytes(20000, 0x7f)},
      {"lib/libgcc.a", Bytes(8000, 0x11)},
      {"README", ToBytes("GNU Compiler Collection 2.95")},
  };
  auto oid = world.PublishPackage("/apps/devel/gcc", files, dso::kProtoMasterSlave, 0,
                                  {1, 3});
  ASSERT_TRUE(oid.ok()) << oid.status();

  // 2. Users in every country can list and download, each via their local HTTPD.
  for (size_t country = 0; country < world.num_countries(); ++country) {
    sim::NodeId user = sim::kNoNode;
    for (sim::NodeId candidate : world.user_hosts()) {
      if (world.CountryOf(candidate) == static_cast<int>(country)) {
        user = candidate;
        break;
      }
    }
    ASSERT_NE(user, sim::kNoNode);

    auto listing = world.FetchListing(user, "/apps/devel/gcc");
    ASSERT_TRUE(listing.ok()) << listing.status();
    EXPECT_NE(listing->find("bin/gcc"), std::string::npos);

    auto content = world.DownloadFile(user, "/apps/devel/gcc", "README");
    ASSERT_TRUE(content.ok()) << content.status();
    EXPECT_EQ(ToString(*content), "GNU Compiler Collection 2.95");
  }

  // 3. The moderator updates a file; all replicas converge.
  Status update = Unavailable("pending");
  world.moderator()->AddFile("/apps/devel/gcc", "README",
                             ToBytes("GNU Compiler Collection 2.95.2"),
                             [&](Status s) { update = s; });
  world.Run();
  ASSERT_TRUE(update.ok());

  auto fresh = world.DownloadFile(world.user_hosts().back(), "/apps/devel/gcc", "README");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(ToString(*fresh), "GNU Compiler Collection 2.95.2");

  // 4. Removal cleans up everywhere: GLS, GNS, object servers.
  Status removal = Unavailable("pending");
  world.moderator()->RemovePackage("/apps/devel/gcc", [&](Status s) { removal = s; });
  world.Run();
  world.naming_authority()->Flush();
  world.Run();
  ASSERT_TRUE(removal.ok()) << removal;
  for (size_t i = 0; i < world.num_countries(); ++i) {
    // Only the world's search-index replica remains on each object server.
    EXPECT_EQ(world.GosOf(i)->num_replicas(), 1u) << "country " << i;
    EXPECT_NE(world.GosOf(i)->FindReplica(world.search_oid()), nullptr);
  }
}

// ---------------------------------------------------------------- Download integrity

TEST(IntegrationTest, DownloadedBytesMatchPublishedDigest) {
  GdnWorld world;
  Rng rng(0xfeed);
  Bytes payload = rng.RandomBytes(30000);
  std::string digest = Sha256::HexDigest(payload);

  ASSERT_TRUE(world
                  .PublishPackage("/apps/data/blob", {{"blob.bin", payload}},
                                  dso::kProtoMasterSlave, 0, {2})
                  .ok());

  auto content = world.DownloadFile(world.user_hosts().back(), "/apps/data/blob",
                                    "blob.bin");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, payload);
  EXPECT_EQ(Sha256::HexDigest(*content), digest);

  // And the listing advertises exactly that digest.
  auto listing = world.FetchListing(world.user_hosts()[0], "/apps/data/blob");
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find(digest), std::string::npos);
}

// ---------------------------------------------------------------- Locality

TEST(IntegrationTest, LocalReplicaCutsWideAreaTraffic) {
  // Same download twice: once when only a faraway master exists, once after a replica
  // was placed in the user's own country. The WAN bytes must drop dramatically —
  // the core selective-replication claim of §3.1.
  Bytes payload(100000, 0x5a);

  // World A: master in country 0 only; user in the last country.
  GdnWorld world_central;
  ASSERT_TRUE(world_central
                  .PublishPackage("/apps/far", {{"f", payload}}, dso::kProtoMasterSlave, 0)
                  .ok());
  sim::NodeId user_a = world_central.user_hosts().back();
  world_central.network().mutable_stats()->Clear();
  ASSERT_TRUE(world_central.DownloadFile(user_a, "/apps/far", "f").ok());
  uint64_t wan_central = world_central.network().stats().BytesAtOrAbove(2);

  // World B: replica also in the user's country.
  GdnWorld world_replicated;
  size_t last_country = world_replicated.num_countries() - 1;
  ASSERT_TRUE(world_replicated
                  .PublishPackage("/apps/far", {{"f", payload}}, dso::kProtoMasterSlave, 0,
                                  {last_country})
                  .ok());
  sim::NodeId user_b = world_replicated.user_hosts().back();
  world_replicated.network().mutable_stats()->Clear();
  ASSERT_TRUE(world_replicated.DownloadFile(user_b, "/apps/far", "f").ok());
  uint64_t wan_replicated = world_replicated.network().stats().BytesAtOrAbove(2);

  EXPECT_LT(wan_replicated * 5, wan_central)
      << "local replica should cut wide-area bytes by >5x (got " << wan_central << " vs "
      << wan_replicated << ")";
}

TEST(IntegrationTest, LocalReplicaCutsLatency) {
  Bytes payload(100000, 0x5a);

  GdnWorld world;
  size_t last_country = world.num_countries() - 1;
  ASSERT_TRUE(world.PublishPackage("/apps/a", {{"f", payload}}, dso::kProtoMasterSlave, 0)
                  .ok());
  ASSERT_TRUE(world
                  .PublishPackage("/apps/b", {{"f", payload}}, dso::kProtoMasterSlave, 0,
                                  {last_country})
                  .ok());

  sim::NodeId user = world.user_hosts().back();

  ASSERT_TRUE(world.DownloadFile(user, "/apps/a", "f").ok());
  sim::SimTime far_latency = world.last_op_duration();

  ASSERT_TRUE(world.DownloadFile(user, "/apps/b", "f").ok());
  sim::SimTime near_latency = world.last_op_duration();

  EXPECT_LT(near_latency, far_latency);
}

// ---------------------------------------------------------------- Failure handling

TEST(IntegrationTest, SlaveServesReadsWhenMasterIsDown) {
  GdnWorld world;
  size_t last_country = world.num_countries() - 1;
  ASSERT_TRUE(world
                  .PublishPackage("/apps/ha", {{"f", ToBytes("available")}},
                                  dso::kProtoMasterSlave, 0, {last_country})
                  .ok());

  // Crash the master's host. Users near the slave still read.
  world.network().SetNodeUp(world.countries()[0].gos_host, false);
  sim::NodeId user = world.user_hosts().back();
  auto content = world.DownloadFile(user, "/apps/ha", "f");
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "available");
}

TEST(IntegrationTest, GosRestartKeepsPackageAvailable) {
  GdnWorld world;
  ASSERT_TRUE(world
                  .PublishPackage("/apps/persist", {{"f", ToBytes("durable")}},
                                  dso::kProtoClientServer, 1)
                  .ok());
  sim::NodeId user = world.user_hosts()[0];
  ASSERT_TRUE(world.DownloadFile(user, "/apps/persist", "f").ok());

  // Checkpoint, crash, restore — paper §4 reboot behaviour.
  gos::ObjectServer* gos = world.GosOf(1);
  Bytes checkpoint = gos->Checkpoint();
  Status restored = Unavailable("pending");
  // A real reboot would recreate the server process; restarting in place with fresh
  // replica ports models the address change.
  gos->Restore(checkpoint, [&](Status s) { restored = s; });
  world.Run();
  // Restore on a non-fresh server will refuse duplicates; remove first then restore.
  // (The GosTest covers the full crash path; here we assert availability afterwards.)
  auto content = world.DownloadFile(world.user_hosts()[5], "/apps/persist", "f");
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "durable");
}

TEST(IntegrationTest, LossyNetworkStillDelivers) {
  GdnWorld world;
  ASSERT_TRUE(world
                  .PublishPackage("/apps/lossy", {{"f", ToBytes("made it")}},
                                  dso::kProtoMasterSlave, 0, {1})
                  .ok());
  world.network().SetDropProbability(0.01);  // 1% loss from now on
  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    auto content = world.DownloadFile(world.user_hosts()[i % world.user_hosts().size()],
                                      "/apps/lossy", "f");
    if (content.ok()) {
      ++successes;
    }
  }
  // With 1% per-message loss most downloads go through (no retransmit layer; a lost
  // message surfaces as a failed request, which the user retries in reality).
  EXPECT_GE(successes, 6);
}

// ---------------------------------------------------------------- Multi-package

TEST(IntegrationTest, ManyPackagesCoexist) {
  GdnWorld world;
  constexpr int kPackages = 12;
  for (int i = 0; i < kPackages; ++i) {
    std::string name = "/apps/bulk/pkg" + std::to_string(i);
    std::map<std::string, Bytes> files = {
        {"payload", ToBytes("content of package " + std::to_string(i))}};
    ASSERT_TRUE(world
                    .PublishPackage(name, files, dso::kProtoMasterSlave,
                                    i % world.num_countries())
                    .ok())
        << name;
  }
  // Spot-check: every package resolves and downloads from a random user.
  Rng rng(4242);
  for (int i = 0; i < kPackages; ++i) {
    std::string name = "/apps/bulk/pkg" + std::to_string(i);
    sim::NodeId user = world.user_hosts()[rng.UniformInt(world.user_hosts().size())];
    auto content = world.DownloadFile(user, name, "payload");
    ASSERT_TRUE(content.ok()) << name << ": " << content.status();
    EXPECT_EQ(ToString(*content), "content of package " + std::to_string(i));
  }
  // The GDN Zone now holds one TXT record per package.
  EXPECT_EQ(world.dns_primary()->FindZone("pkg0.bulk.apps.gdn.cs.vu.nl")->record_count(),
            static_cast<size_t>(kPackages));
}

// ---------------------------------------------------------------- DNS caching effect

TEST(IntegrationTest, RepeatBindsHitResolverCache) {
  GdnWorld world;
  ASSERT_TRUE(world
                  .PublishPackage("/apps/cached", {{"f", ToBytes("x")}},
                                  dso::kProtoMasterSlave, 0)
                  .ok());

  // Two different users in the same country share a resolver; the second user's
  // name resolution is a cache hit.
  sim::NodeId user1 = world.user_hosts()[0];
  sim::NodeId user2 = world.user_hosts()[1];
  ASSERT_EQ(world.CountryOf(user1), world.CountryOf(user2));
  size_t country = static_cast<size_t>(world.CountryOf(user1));

  ASSERT_TRUE(world.DownloadFile(user1, "/apps/cached", "f").ok());
  uint64_t hits_before = world.ResolverOf(country)->stats().cache_hits;
  // New HTTPD binding is cached too, so force a second *name* lookup by asking for
  // the listing of the same package from the other user — the HTTPD reuses its
  // binding, so instead query the resolver directly.
  dns::DnsClient dns_client(world.transport(), user2,
                            world.ResolverOf(country)->endpoint());
  bool resolved = false;
  dns_client.Resolve("cached.apps.gdn.cs.vu.nl", dns::RrType::kTxt,
                     [&](Result<dns::QueryResponse> r) {
                       resolved = r.ok() && r->from_cache;
                     });
  world.Run();
  EXPECT_TRUE(resolved);
  EXPECT_GT(world.ResolverOf(country)->stats().cache_hits, hits_before);
}

}  // namespace
}  // namespace globe::gdn
