#include "src/ctl/metrics_registry.h"

namespace globe::ctl {

void MetricsRegistry::Serialize(ByteWriter* w) const {
  w->WriteVarint(stats_.size());
  for (const auto& [oid, stats] : stats_) {
    oid.Serialize(w);
    stats.Serialize(w);
  }
}

Status MetricsRegistry::Restore(ByteReader* r) {
  std::map<gls::ObjectId, AccessStats> stats;
  ASSIGN_OR_RETURN(uint64_t count, r->ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(gls::ObjectId oid, gls::ObjectId::Deserialize(r));
    RETURN_IF_ERROR(stats[oid].Restore(r));
  }
  stats_ = std::move(stats);
  return OkStatus();
}

}  // namespace globe::ctl
