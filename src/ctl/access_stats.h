// Per-object access telemetry (the input side of adaptive replication).
//
// The paper's placement argument (§3.1, following Pierre et al.) is that the
// right replication policy for an object is a function of its read/write ratio,
// its payload sizes, and *where* its clients are. AccessStats is exactly that
// triple, collected at the replicas that serve the traffic (dso::AccessHook)
// and read by ctl::ReplicationController's cost model.
//
// Rates are exponentially time-decayed event weights over the virtual clock:
// each observation decays the accumulated weight by exp(-dt/tau) and adds one,
// so weight/tau approximates the recent events-per-second without any timer —
// the same family of estimator as sim::PeerLoad's latency EWMA, generalized to
// rates and made checkpointable. Everything is deterministic: identical sample
// sequences at identical virtual times produce identical stats.

#ifndef SRC_CTL_ACCESS_STATS_H_
#define SRC_CTL_ACCESS_STATS_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>

#include "src/sim/clock.h"
#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::ctl {

// A region identifier — under the GDN world this is the continent/country index
// the client node belongs to; 0 is the catch-all when no region mapping exists.
using RegionId = uint32_t;

// Exponentially decayed event-rate estimator. `Observe` adds one event of
// `bytes` payload at `now`; `RatePerSec(now)` reads the decayed rate.
class RateEstimator {
 public:
  // tau is the decay time constant: after tau idle microseconds the estimated
  // rate has fallen to 1/e of its value. 30s reacts to a flash crowd within a
  // few evaluation ticks while riding out sub-second burstiness.
  static constexpr sim::SimTime kDefaultTau = 30 * sim::kSecond;

  void Observe(sim::SimTime now, uint64_t bytes) {
    weight_ = DecayedWeight(now) + 1.0;
    last_update_ = now;
    ++count_;
    total_bytes_ += bytes;
  }

  double RatePerSec(sim::SimTime now) const {
    return DecayedWeight(now) / sim::ToSeconds(kDefaultTau);
  }

  // Folds another estimator's history in (for aggregating per-server stats
  // into a global view). Sound because decayed weights are additive: both
  // sides decay to the same instant, then sum.
  void MergeFrom(const RateEstimator& other) {
    if (other.count_ == 0) {
      return;
    }
    sim::SimTime now = std::max(last_update_, other.last_update_);
    weight_ = DecayedWeight(now) + other.DecayedWeight(now);
    last_update_ = now;
    count_ += other.count_;
    total_bytes_ += other.total_bytes_;
  }

  uint64_t count() const { return count_; }
  uint64_t total_bytes() const { return total_bytes_; }
  double MeanBytes() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_bytes_) /
                             static_cast<double>(count_);
  }

  void Serialize(ByteWriter* w) const {
    w->WriteU64(std::bit_cast<uint64_t>(weight_));
    w->WriteU64(last_update_);
    w->WriteU64(count_);
    w->WriteU64(total_bytes_);
  }
  Status Restore(ByteReader* r) {
    ASSIGN_OR_RETURN(uint64_t weight_bits, r->ReadU64());
    weight_ = std::bit_cast<double>(weight_bits);
    ASSIGN_OR_RETURN(last_update_, r->ReadU64());
    ASSIGN_OR_RETURN(count_, r->ReadU64());
    ASSIGN_OR_RETURN(total_bytes_, r->ReadU64());
    return OkStatus();
  }

 private:
  double DecayedWeight(sim::SimTime now) const {
    if (count_ == 0) {
      return 0.0;
    }
    sim::SimTime dt = now > last_update_ ? now - last_update_ : 0;
    return weight_ * std::exp(-sim::ToSeconds(dt) / sim::ToSeconds(kDefaultTau));
  }

  double weight_ = 0.0;
  sim::SimTime last_update_ = 0;
  uint64_t count_ = 0;
  uint64_t total_bytes_ = 0;
};

// Everything the controller's cost model needs to know about one object.
class AccessStats {
 public:
  void RecordRead(sim::SimTime now, uint64_t bytes, RegionId region) {
    reads_.Observe(now, bytes);
    region_reads_[region].Observe(now, bytes);
  }
  void RecordWrite(sim::SimTime now, uint64_t bytes, RegionId region) {
    writes_.Observe(now, bytes);
    region_writes_[region].Observe(now, bytes);
  }

  double ReadRatePerSec(sim::SimTime now) const { return reads_.RatePerSec(now); }
  double WriteRatePerSec(sim::SimTime now) const { return writes_.RatePerSec(now); }
  uint64_t total_reads() const { return reads_.count(); }
  uint64_t total_writes() const { return writes_.count(); }
  double MeanReadBytes() const { return reads_.MeanBytes(); }
  double MeanWriteBytes() const { return writes_.MeanBytes(); }

  // Normalized share of the recent read rate per region (sums to ~1 when any
  // region is active). The controller places replicas where this is heavy.
  std::map<RegionId, double> RegionReadShares(sim::SimTime now) const {
    std::map<RegionId, double> shares;
    double total = 0.0;
    for (const auto& [region, est] : region_reads_) {
      double rate = est.RatePerSec(now);
      if (rate > 0.0) {
        shares[region] = rate;
        total += rate;
      }
    }
    if (total > 0.0) {
      for (auto& [region, share] : shares) {
        share /= total;
      }
    }
    return shares;
  }

  // Folds another object's-worth of samples in, region by region. Used to
  // aggregate the registries of every server hosting a replica of the same
  // object into the one global view the controller decides from.
  void MergeFrom(const AccessStats& other) {
    reads_.MergeFrom(other.reads_);
    writes_.MergeFrom(other.writes_);
    for (const auto& [region, est] : other.region_reads_) {
      region_reads_[region].MergeFrom(est);
    }
    for (const auto& [region, est] : other.region_writes_) {
      region_writes_[region].MergeFrom(est);
    }
  }

  const std::map<RegionId, RateEstimator>& region_reads() const {
    return region_reads_;
  }
  const std::map<RegionId, RateEstimator>& region_writes() const {
    return region_writes_;
  }

  void Serialize(ByteWriter* w) const {
    reads_.Serialize(w);
    writes_.Serialize(w);
    w->WriteVarint(region_reads_.size());
    for (const auto& [region, est] : region_reads_) {
      w->WriteU32(region);
      est.Serialize(w);
    }
    w->WriteVarint(region_writes_.size());
    for (const auto& [region, est] : region_writes_) {
      w->WriteU32(region);
      est.Serialize(w);
    }
  }
  Status Restore(ByteReader* r) {
    RETURN_IF_ERROR(reads_.Restore(r));
    RETURN_IF_ERROR(writes_.Restore(r));
    ASSIGN_OR_RETURN(uint64_t num_read_regions, r->ReadVarint());
    for (uint64_t i = 0; i < num_read_regions; ++i) {
      ASSIGN_OR_RETURN(RegionId region, r->ReadU32());
      RETURN_IF_ERROR(region_reads_[region].Restore(r));
    }
    ASSIGN_OR_RETURN(uint64_t num_write_regions, r->ReadVarint());
    for (uint64_t i = 0; i < num_write_regions; ++i) {
      ASSIGN_OR_RETURN(RegionId region, r->ReadU32());
      RETURN_IF_ERROR(region_writes_[region].Restore(r));
    }
    return OkStatus();
  }

 private:
  RateEstimator reads_;
  RateEstimator writes_;
  std::map<RegionId, RateEstimator> region_reads_;
  std::map<RegionId, RateEstimator> region_writes_;
};

}  // namespace globe::ctl

#endif  // SRC_CTL_ACCESS_STATS_H_
