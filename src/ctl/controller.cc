#include "src/ctl/controller.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/log.h"

namespace globe::ctl {

namespace {

// Candidate policies the cost model ranks, in tie-break preference order:
// staying simple (single replica) beats replicating when costs are equal.
constexpr gls::ProtocolId kCandidates[] = {
    dso::kProtoClientServer, dso::kProtoCacheInval, dso::kProtoMasterSlave,
    dso::kProtoActiveRepl};

}  // namespace

ReplicationController::ReplicationController(sim::Clock* clock,
                                             MetricsRegistry* metrics,
                                             PolicyActuator* actuator,
                                             ControllerConfig config)
    : clock_(clock), metrics_(metrics), actuator_(actuator), config_(config) {}

ReplicationController::~ReplicationController() { Stop(); }

void ReplicationController::Track(const gls::ObjectId& oid,
                                  gls::ProtocolId current_protocol) {
  objects_[oid].protocol = current_protocol;
}

void ReplicationController::Untrack(const gls::ObjectId& oid) {
  objects_.erase(oid);
}

void ReplicationController::Start() {
  if (running_ || config_.evaluate_interval == 0) {
    return;
  }
  running_ = true;
  timer_ = clock_->ScheduleAfter(config_.evaluate_interval, [this] { Tick(); });
}

void ReplicationController::Stop() {
  running_ = false;
  if (timer_ != sim::Clock::kNoTimer) {
    clock_->CancelTimer(timer_);
    timer_ = sim::Clock::kNoTimer;
  }
}

void ReplicationController::Tick() {
  timer_ = sim::Clock::kNoTimer;
  EvaluateNow();
  if (running_) {
    timer_ = clock_->ScheduleAfter(config_.evaluate_interval, [this] { Tick(); });
  }
}

gls::ProtocolId ReplicationController::CurrentProtocolOf(
    const gls::ObjectId& oid) const {
  auto it = objects_.find(oid);
  return it == objects_.end() ? 0 : it->second.protocol;
}

double ReplicationController::EstimateCost(gls::ProtocolId protocol,
                                           const AccessStats& stats,
                                           const std::map<RegionId, double>& shares,
                                           RegionId home_region, size_t num_regions,
                                           sim::SimTime now) const {
  double read_rate = stats.ReadRatePerSec(now);
  double write_rate = stats.WriteRatePerSec(now);
  double read_bytes = stats.MeanReadBytes();
  double write_bytes = stats.MeanWriteBytes();
  // State-size proxy: a full read returns the object's content, so the mean
  // read payload is the best measurable stand-in for a state transfer. Never
  // smaller than a write's arguments (state contains what writes put there).
  double state_bytes = std::max(read_bytes, write_bytes);

  auto home_it = shares.find(home_region);
  double home_share = home_it == shares.end() ? 0.0 : home_it->second;
  double secondaries = num_regions > 0 ? static_cast<double>(num_regions - 1) : 0.0;
  // Replicated policies maintain a group (lease renewals, membership upkeep)
  // even when the region selector found no secondary region worth a replica:
  // charge at least one secondary's standing cost so K = 1 never scores 0 and
  // ties central on enumeration order.
  double maintenance =
      config_.replica_maintenance_bytes_per_sec * std::max(secondaries, 1.0);

  switch (protocol) {
    case dso::kProtoClientServer:
      // One replica at home: every remote read and write crosses the WAN.
      // Writes are home-biased the same way reads are (the telemetry tracks
      // write geography too, but reads dominate the GDN's workloads; using the
      // read shares for both keeps the model monotone in the one signal that
      // is always present).
      return read_rate * read_bytes * (1.0 - home_share) +
             write_rate * write_bytes * (1.0 - home_share);
    case dso::kProtoMasterSlave:
      // Reads local everywhere; each write pushes full state to each
      // secondary region.
      return write_rate * state_bytes * secondaries + maintenance;
    case dso::kProtoActiveRepl:
      // Reads local; writes broadcast the invocation (args, not state).
      return write_rate * write_bytes * secondaries + maintenance;
    case dso::kProtoCacheInval: {
      // Each write sends a tiny invalidation per secondary; a secondary
      // region then refetches state on its next read — at most once per
      // write, at most once per read it actually serves.
      double refetch = 0.0;
      for (const auto& [region, share] : shares) {
        if (region == home_region) {
          continue;
        }
        refetch += std::min(share * read_rate, write_rate) * state_bytes;
      }
      return refetch + write_rate * config_.invalidation_bytes * secondaries +
             maintenance;
    }
    default:
      return std::numeric_limits<double>::infinity();
  }
}

PolicyDecision ReplicationController::Decide(const AccessStats& stats,
                                             gls::ProtocolId current,
                                             sim::SimTime now) const {
  std::map<RegionId, double> shares = stats.RegionReadShares(now);

  // Home region: where the heaviest read share lives (deterministic tie-break
  // on the smaller region id via map order).
  RegionId home_region = 0;
  double best_share = -1.0;
  for (const auto& [region, share] : shares) {
    if (share > best_share) {
      best_share = share;
      home_region = region;
    }
  }

  // Replica regions for the replicated policies: every region pulling at
  // least min_region_share of the reads, capped, home always included.
  std::vector<RegionId> replica_regions;
  for (const auto& [region, share] : shares) {
    if (region != home_region && share >= config_.min_region_share &&
        replica_regions.size() + 1 < config_.max_replica_regions) {
      replica_regions.push_back(region);
    }
  }
  size_t num_regions = 1 + replica_regions.size();

  gls::ProtocolId best = current == 0 ? dso::kProtoClientServer : current;
  double current_cost =
      EstimateCost(best, stats, shares, home_region, num_regions, now);
  double best_cost = current_cost;
  for (gls::ProtocolId candidate : kCandidates) {
    if (candidate == best) {
      continue;
    }
    double cost =
        EstimateCost(candidate, stats, shares, home_region, num_regions, now);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  }

  // Hysteresis: the challenger keeps the incumbency unless it wins by margin.
  if (current != 0 && best != current &&
      best_cost > current_cost * (1.0 - config_.hysteresis)) {
    best = current;
  }

  PolicyDecision decision;
  decision.protocol = best;
  if (best != dso::kProtoClientServer) {
    decision.replica_regions = std::move(replica_regions);
  }
  return decision;
}

void ReplicationController::EvaluateNow() {
  ++stats_.evaluations;
  sim::SimTime now = clock_->Now();

  // Rank migration-worthy objects by absolute estimated savings so the tick
  // budget goes to the hottest objects first.
  struct Planned {
    gls::ObjectId oid;
    PolicyDecision decision;
    double savings;
  };
  std::vector<Planned> planned;

  for (auto& [oid, tracked] : objects_) {
    if (tracked.in_flight) {
      continue;
    }
    const AccessStats* stats = metrics_->Find(oid);
    if (stats == nullptr) {
      continue;
    }
    double rate = stats->ReadRatePerSec(now) + stats->WriteRatePerSec(now);
    if (rate < config_.min_rate_per_sec) {
      continue;
    }
    PolicyDecision decision = Decide(*stats, tracked.protocol, now);
    if (decision.protocol == tracked.protocol) {
      continue;
    }
    // Decide() already applied hysteresis; a differing protocol that reaches
    // here is a real challenger. Dwell still protects fresh migrations.
    if (tracked.last_migration != 0 &&
        now < tracked.last_migration + config_.min_dwell) {
      ++stats_.held_by_dwell;
      continue;
    }
    std::map<RegionId, double> shares = stats->RegionReadShares(now);
    RegionId home = shares.empty() ? 0 : shares.begin()->first;
    double best_share = -1.0;
    for (const auto& [region, share] : shares) {
      if (share > best_share) {
        best_share = share;
        home = region;
      }
    }
    size_t num_regions = 1 + decision.replica_regions.size();
    double incumbent_cost = EstimateCost(tracked.protocol, *stats, shares, home,
                                         num_regions, now);
    double challenger_cost = EstimateCost(decision.protocol, *stats, shares, home,
                                          num_regions, now);
    planned.push_back(Planned{oid, std::move(decision),
                              incumbent_cost - challenger_cost});
  }

  std::sort(planned.begin(), planned.end(),
            [](const Planned& a, const Planned& b) { return a.savings > b.savings; });

  int budget = config_.migration_budget_per_tick;
  for (Planned& plan : planned) {
    if (budget <= 0) {
      ++stats_.held_by_budget;
      continue;
    }
    --budget;
    TrackedObject& tracked = objects_[plan.oid];
    tracked.in_flight = true;
    ++stats_.migrations_started;
    gls::ProtocolId target = plan.decision.protocol;
    GLOG_INFO << "ctl: migrating " << plan.oid.ToHex().substr(0, 8) << " "
              << dso::ProtocolName(tracked.protocol) << " -> "
              << dso::ProtocolName(target) << " (est. savings "
              << plan.savings << " B/s)";
    actuator_->Migrate(
        plan.oid, plan.decision, [this, oid = plan.oid, target](Status s) {
          auto it = objects_.find(oid);
          if (it == objects_.end()) {
            return;  // untracked while the migration was in flight
          }
          it->second.in_flight = false;
          if (s.ok()) {
            it->second.protocol = target;
            it->second.last_migration = clock_->Now();
            ++it->second.migrations;
            ++stats_.migrations_succeeded;
          } else {
            // Keep the old policy; dwell is NOT advanced, so the next tick
            // may retry once whatever failed (a partition, a busy GOS) heals.
            ++stats_.migrations_failed;
            GLOG_WARN << "ctl: migration of " << oid.ToHex().substr(0, 8)
                      << " failed: " << s;
          }
        });
  }
}

void ReplicationController::Serialize(ByteWriter* w) const {
  w->WriteVarint(objects_.size());
  for (const auto& [oid, tracked] : objects_) {
    oid.Serialize(w);
    w->WriteU16(tracked.protocol);
    w->WriteU64(tracked.last_migration);
    w->WriteU64(tracked.migrations);
    // in_flight is deliberately not persisted: a migration cannot survive the
    // process, so a restored controller starts with nothing in flight.
  }
}

Status ReplicationController::Restore(ByteReader* r) {
  std::map<gls::ObjectId, TrackedObject> objects;
  ASSIGN_OR_RETURN(uint64_t count, r->ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(gls::ObjectId oid, gls::ObjectId::Deserialize(r));
    TrackedObject tracked;
    ASSIGN_OR_RETURN(tracked.protocol, r->ReadU16());
    ASSIGN_OR_RETURN(tracked.last_migration, r->ReadU64());
    ASSIGN_OR_RETURN(tracked.migrations, r->ReadU64());
    objects[oid] = tracked;
  }
  objects_ = std::move(objects);
  return OkStatus();
}

}  // namespace globe::ctl
