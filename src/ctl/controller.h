// The online replication controller (ROADMAP item 4; paper §3.1).
//
// bench_replication_scenarios proves the paper's claim that per-object policy
// assignment beats every global policy — with an *offline oracle* doing the
// assigning. This controller is the online version: a periodic evaluator that
// reads each object's AccessStats, runs the read/write-ratio × geography cost
// model over the four protocols, and asks its PolicyActuator to migrate the
// object live when a different policy wins by enough.
//
// The cost model scores each candidate policy in estimated WAN bytes/second:
//
//   central (client/server)  remote reads and writes each cross the WAN:
//                            R·Sr·(1-share_home) + W·Sw·(1-wshare_home)
//   master/slave             reads local everywhere; each write pushes full
//                            state to the K-1 secondary regions: W·S·(K-1)
//   active replication      reads local; each write broadcasts the invocation
//                            (args, not state) to K-1 regions: W·Sw·(K-1)
//   cache/invalidate        reads local while valid; each write invalidates
//                            (tiny) and each remote region refetches state on
//                            its next read: sum_r min(R_r, W)·S  +  W·64·(K-1)
//
// with R/W the decayed read/write rates, Sr/Sw the mean read/write payloads,
// S the state-size estimate, K the number of replica regions, share_home the
// fraction of reads from the master's region. The model intentionally uses
// only quantities the telemetry layer actually measures. Every replicated
// policy additionally pays a standing maintenance term M·max(K-1, 1) (lease
// renewals, membership upkeep), so even with no secondary region worth a
// replica it never scores a flat 0 and ties central.
//
// Safety knobs, because a live migration is not free:
//   - hysteresis: the winner must beat the incumbent's cost by a margin
//     (default 25%) or the object stays put — a flapping object cannot thrash;
//   - min_dwell: a freshly migrated object is immune for a window;
//   - migration budget: at most N migrations per evaluation tick, hottest
//     (highest absolute savings) first.
//
// The actual switch is the actuator's job (the GOS executes it as an
// epoch-fenced ReplicaGroup transition; see gos::ObjectServer::SwitchProtocol).

#ifndef SRC_CTL_CONTROLLER_H_
#define SRC_CTL_CONTROLLER_H_

#include <functional>
#include <map>
#include <vector>

#include "src/ctl/metrics_registry.h"
#include "src/dso/protocols.h"
#include "src/gls/oid.h"
#include "src/sim/clock.h"

namespace globe::ctl {

struct ControllerConfig {
  // How often the evaluator runs (0 = never on a timer; call EvaluateNow()).
  sim::SimTime evaluate_interval = 5 * sim::kSecond;
  // A challenger policy must undercut the incumbent's estimated cost by this
  // fraction to trigger a migration.
  double hysteresis = 0.25;
  // A migrated object cannot migrate again within this window.
  sim::SimTime min_dwell = 15 * sim::kSecond;
  // Migrations allowed per evaluation tick (hottest savings first).
  int migration_budget_per_tick = 2;
  // Objects below this combined read+write rate (events/sec) are left alone —
  // there is no traffic to optimize and the estimates are noise.
  double min_rate_per_sec = 0.5;
  // A region must carry at least this share of the read rate to earn a
  // replica under a replicated policy.
  double min_region_share = 0.10;
  // Cap on replica regions (master's region included).
  size_t max_replica_regions = 8;
  // Bytes assumed per invalidation message in the cache/invalidate model.
  double invalidation_bytes = 64.0;
  // Standing per-secondary cost (lease renewals, membership upkeep) charged to
  // every replicated policy, with at least one secondary assumed: a replicated
  // policy maintains a group even when the region selector finds no secondary
  // region worth a replica (K = 1). Without this floor every replicated policy
  // scores a flat 0 in the degenerate K = 1 case and ties central — and which
  // policy wins the tie depends on candidate enumeration order.
  double replica_maintenance_bytes_per_sec = 16.0;
};

// What the controller decided an object's policy should be.
struct PolicyDecision {
  gls::ProtocolId protocol = 0;
  // Regions that should host a secondary replica (master's home region is
  // implicit and never listed). Empty for single-replica policies.
  std::vector<RegionId> replica_regions;
};

// Executes one live policy migration. Implementations must call `done`
// exactly once; until then the controller counts the object as in flight and
// will not re-decide it.
class PolicyActuator {
 public:
  virtual ~PolicyActuator() = default;
  virtual void Migrate(const gls::ObjectId& oid, const PolicyDecision& decision,
                       std::function<void(Status)> done) = 0;
};

struct ControllerStats {
  uint64_t evaluations = 0;        // ticks run
  uint64_t migrations_started = 0;
  uint64_t migrations_succeeded = 0;
  uint64_t migrations_failed = 0;
  uint64_t held_by_hysteresis = 0;  // challenger won but not by enough
  uint64_t held_by_dwell = 0;       // inside the post-migration window
  uint64_t held_by_budget = 0;      // tick budget exhausted
};

class ReplicationController {
 public:
  ReplicationController(sim::Clock* clock, MetricsRegistry* metrics,
                        PolicyActuator* actuator, ControllerConfig config = {});
  ~ReplicationController();

  // Objects are only ever migrated if tracked: the hosting server registers
  // each replica-holding object with its current protocol (and re-registers
  // after a restore). Tracking is idempotent; the newest protocol wins.
  void Track(const gls::ObjectId& oid, gls::ProtocolId current_protocol);
  void Untrack(const gls::ObjectId& oid);

  // Starts/stops the periodic evaluation timer.
  void Start();
  void Stop();

  // One evaluation tick, callable without the timer (tests, benches).
  void EvaluateNow();

  // The pure cost model, exposed for tests and the bench's oracle comparison:
  // decides the best policy for `stats` as seen at `now`, with `current` as
  // the incumbent (hysteresis applies; dwell/budget do not).
  PolicyDecision Decide(const AccessStats& stats, gls::ProtocolId current,
                        sim::SimTime now) const;

  gls::ProtocolId CurrentProtocolOf(const gls::ObjectId& oid) const;
  const ControllerStats& stats() const { return stats_; }

  // Decision memory (current protocol + last-migration time per object) rides
  // in the hosting server's checkpoint so a restart keeps dwell windows and
  // does not re-learn policies from scratch.
  void Serialize(ByteWriter* w) const;
  Status Restore(ByteReader* r);

 private:
  struct TrackedObject {
    gls::ProtocolId protocol = 0;
    sim::SimTime last_migration = 0;
    uint64_t migrations = 0;
    bool in_flight = false;
  };

  // Cost (estimated WAN bytes/sec) of running `protocol` for an object with
  // these stats; `regions` is the replica-region set a replicated policy uses.
  double EstimateCost(gls::ProtocolId protocol, const AccessStats& stats,
                      const std::map<RegionId, double>& shares,
                      RegionId home_region, size_t num_regions,
                      sim::SimTime now) const;

  void Tick();

  sim::Clock* clock_;
  MetricsRegistry* metrics_;
  PolicyActuator* actuator_;
  ControllerConfig config_;
  std::map<gls::ObjectId, TrackedObject> objects_;
  ControllerStats stats_;
  sim::Clock::TimerId timer_ = sim::Clock::kNoTimer;
  bool running_ = false;
};

}  // namespace globe::ctl

#endif  // SRC_CTL_CONTROLLER_H_
