// The access-telemetry layer: per-object AccessStats keyed by OID, fed by the
// dso::AccessHook a hosting server (GOS, GDN-HTTPD) installs on its replicas,
// and snapshotted by the ctl::ReplicationController, tests and benches.
//
// One registry per hosting server. The region function maps a client NodeId to
// the RegionId buckets the controller reasons in (under the GDN world: the
// country the node lives in); without one every sample lands in region 0 and
// the controller still sees rates and sizes, just no geography.

#ifndef SRC_CTL_METRICS_REGISTRY_H_
#define SRC_CTL_METRICS_REGISTRY_H_

#include <functional>
#include <map>

#include "src/ctl/access_stats.h"
#include "src/dso/subobjects.h"
#include "src/gls/oid.h"
#include "src/sim/clock.h"

namespace globe::ctl {

using RegionFn = std::function<RegionId(sim::NodeId)>;

class MetricsRegistry {
 public:
  explicit MetricsRegistry(sim::Clock* clock, RegionFn region_of = nullptr)
      : clock_(clock), region_of_(std::move(region_of)) {}

  // The hook a hosting server installs on a replica of `oid` (dso::ReplicaSetup
  // .access_hook). Cheap: one map lookup plus two EWMA updates per sample.
  // Outlives nothing — the returned closure holds `this`, so the registry must
  // outlive every replica it instruments (the hosting server owns both).
  dso::AccessHook HookFor(const gls::ObjectId& oid) {
    return [this, oid](const dso::AccessSample& sample) { Record(oid, sample); };
  }

  void Record(const gls::ObjectId& oid, const dso::AccessSample& sample) {
    RegionId region = region_of_ ? region_of_(sample.client) : 0;
    AccessStats& stats = stats_[oid];
    if (sample.is_write) {
      stats.RecordWrite(clock_->Now(), sample.bytes, region);
    } else {
      stats.RecordRead(clock_->Now(), sample.bytes, region);
    }
  }

  // nullptr when no sample for the OID was ever recorded.
  const AccessStats* Find(const gls::ObjectId& oid) const {
    auto it = stats_.find(oid);
    return it == stats_.end() ? nullptr : &it->second;
  }

  const std::map<gls::ObjectId, AccessStats>& all() const { return stats_; }
  size_t size() const { return stats_.size(); }

  // Decommissioned objects should not leak telemetry entries.
  void Forget(const gls::ObjectId& oid) { stats_.erase(oid); }

  // Aggregation across hosting servers: a world-level registry clears and
  // re-merges every server's registry before each controller evaluation, so
  // the controller sees reads served by secondaries, not just the master.
  void Clear() { stats_.clear(); }
  void MergeFrom(const MetricsRegistry& other) {
    for (const auto& [oid, stats] : other.stats_) {
      stats_[oid].MergeFrom(stats);
    }
  }

  // Rides in the hosting server's checkpoint so a restarted GOS resumes with
  // warm rate estimates instead of re-learning every object from zero.
  void Serialize(ByteWriter* w) const;
  Status Restore(ByteReader* r);

 private:
  sim::Clock* clock_;
  RegionFn region_of_;
  std::map<gls::ObjectId, AccessStats> stats_;
};

}  // namespace globe::ctl

#endif  // SRC_CTL_METRICS_REGISTRY_H_
