// The transport seam: pluggable message delivery between Globe endpoints.
//
// Everything above this interface — Channel, RpcServer, TypedMethod, the GLS
// directory tree, DNS, object servers, HTTPD — is written against Transport
// and Clock only. Backends below it decide what a frame physically is:
//   - sim::PlainTransport forwards to the simulated sim::Network (virtual
//     time, fault injection, per-level traffic accounting);
//   - sec::SecureTransport decorates any inner Transport with handshakes,
//     MACs and optional encryption;
//   - net::SocketTransport frames messages over non-blocking TCP driven by an
//     epoll event loop (real time, real bytes).
// The paper swaps TCP for TLS exactly this way (§6.3): "we have cleanly
// separated communication from functional layers".

#ifndef SRC_SIM_TRANSPORT_H_
#define SRC_SIM_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "src/sim/clock.h"
#include "src/sim/endpoint.h"
#include "src/util/bytes.h"

namespace globe::sim {

// Frames larger than this are refused at the send side by every backend (and
// at the decode side by the socket backend, where a corrupt length prefix must
// not trigger an unbounded allocation). Generously above the largest legitimate
// frame in the tree — 1 MB object-server file blocks plus headers.
constexpr size_t kMaxFrameBytes = 8 * 1024 * 1024;

// A pinned, zero-copy view of a delivered payload.
//
// The span aliases the backend's receive buffer (the socket transport's read
// buffer, the simulated network's event payload, a secure frame's ciphertext)
// and the shared_ptr keeps that buffer alive for as long as any view of it
// exists. Delivery handlers may therefore parse in place — and even stash the
// view past the delivery callback — without ever copying; the backend only
// reuses (or frees) the buffer once the last view drops. `Copy()` is the
// explicit escape hatch for the few fields that must outlive the view itself
// as owned bytes (dedup cache entries, checkpointed state, retained messages).
//
// Copying a PayloadView is a refcount bump, never a byte copy.
class PayloadView {
 public:
  PayloadView() = default;
  PayloadView(std::shared_ptr<const void> backing, ByteSpan view)
      : backing_(std::move(backing)), view_(view) {}

  // Wraps an owned buffer: the view pins exactly that allocation.
  static PayloadView Own(Bytes bytes) {
    auto owned = std::make_shared<Bytes>(std::move(bytes));
    ByteSpan view(owned->data(), owned->size());
    return PayloadView(std::move(owned), view);
  }

  // A different window onto the same backing buffer (e.g. the plaintext slice
  // of a parsed frame). `span` must lie within the backing allocation.
  PayloadView Share(ByteSpan span) const { return PayloadView(backing_, span); }

  ByteSpan span() const { return view_; }
  const uint8_t* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }

  // Reads compose with ByteReader and every span-taking API directly.
  operator ByteSpan() const { return view_; }  // NOLINT(google-explicit-constructor)

  // The explicit ownership boundary: materialises the bytes and releases the
  // pin. Everything long-lived must go through here (or ToBytes on a sub-span).
  Bytes Copy() const { return Bytes(view_.begin(), view_.end()); }

  // Drops the pin without waiting for destruction.
  void Reset() {
    backing_.reset();
    view_ = {};
  }

 private:
  std::shared_ptr<const void> backing_;
  ByteSpan view_;
};

// What the RPC layer sees after the transport has processed an incoming frame.
// `peer_principal` is filled in by authenticated transports (0 = unauthenticated);
// plain transports always deliver 0.
//
// The payload is a pinned view into the backend's receive buffer (see
// PayloadView): valid in place for as long as the handler — or anything the
// handler hands it to — holds the view.
//
// A delivery with `transport_error` set carries no payload: it tells the port
// that the transport lost its path to `src` (connection refused, peer reset,
// EOF mid-stream) and any requests in flight towards it should fail fast with
// UNAVAILABLE instead of waiting out their deadlines. The simulated network
// never emits these — lost datagrams simply vanish, and deadlines do the work.
struct TransportDelivery {
  Endpoint src;
  Endpoint dst;
  PayloadView payload;
  uint64_t peer_principal = 0;
  bool integrity_protected = false;
  bool transport_error = false;
};

using TransportHandler = std::function<void(const TransportDelivery&)>;

// Abstract message transport. Delivery is asynchronous (handlers run from the
// backend's clock/event loop, never from inside Send) and unreliable: a frame
// may be lost, and the RPC layer's deadlines + retries are the recovery story
// on every backend.
//
// Send takes a borrowed span: the transport consumes (copies or transmits) the
// bytes before returning, so callers keep ownership and may reuse a scratch
// buffer (ByteWriter::Reset) for the next frame immediately.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void Send(const Endpoint& src, const Endpoint& dst, ByteSpan payload) = 0;
  virtual void RegisterPort(NodeId node, uint16_t port, TransportHandler handler) = 0;
  virtual void UnregisterPort(NodeId node, uint16_t port) = 0;

  // The clock driving this transport. All timers code above the seam schedules
  // (deadlines, backoff, TTL eviction) run on it, interleaved with deliveries.
  virtual Clock* clock() = 0;

  // Estimated one-way delivery delay for a payload of the given size, in
  // microseconds. Purely advisory — used for nearest-replica ranking and the
  // secure transport's FIFO delivery floors, never for correctness. Backends
  // without a topology (real sockets) report 0: every peer looks equally near,
  // which is exactly true on loopback.
  virtual double EstimateDeliveryDelayUs(NodeId src, NodeId dst, size_t bytes) const {
    (void)src;
    (void)dst;
    (void)bytes;
    return 0;
  }
};

// Allocates process-wide unique ephemeral ports for RPC clients.
uint16_t AllocateEphemeralPort();

}  // namespace globe::sim

#endif  // SRC_SIM_TRANSPORT_H_
