// The transport seam: pluggable message delivery between Globe endpoints.
//
// Everything above this interface — Channel, RpcServer, TypedMethod, the GLS
// directory tree, DNS, object servers, HTTPD — is written against Transport
// and Clock only. Backends below it decide what a frame physically is:
//   - sim::PlainTransport forwards to the simulated sim::Network (virtual
//     time, fault injection, per-level traffic accounting);
//   - sec::SecureTransport decorates any inner Transport with handshakes,
//     MACs and optional encryption;
//   - net::SocketTransport frames messages over non-blocking TCP driven by an
//     epoll event loop (real time, real bytes).
// The paper swaps TCP for TLS exactly this way (§6.3): "we have cleanly
// separated communication from functional layers".

#ifndef SRC_SIM_TRANSPORT_H_
#define SRC_SIM_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/sim/clock.h"
#include "src/sim/endpoint.h"
#include "src/util/bytes.h"

namespace globe::sim {

// Frames larger than this are refused at the send side by every backend (and
// at the decode side by the socket backend, where a corrupt length prefix must
// not trigger an unbounded allocation). Generously above the largest legitimate
// frame in the tree — 1 MB object-server file blocks plus headers.
constexpr size_t kMaxFrameBytes = 8 * 1024 * 1024;

// What the RPC layer sees after the transport has processed an incoming frame.
// `peer_principal` is filled in by authenticated transports (0 = unauthenticated);
// plain transports always deliver 0.
//
// A delivery with `transport_error` set carries no payload: it tells the port
// that the transport lost its path to `src` (connection refused, peer reset,
// EOF mid-stream) and any requests in flight towards it should fail fast with
// UNAVAILABLE instead of waiting out their deadlines. The simulated network
// never emits these — lost datagrams simply vanish, and deadlines do the work.
struct TransportDelivery {
  Endpoint src;
  Endpoint dst;
  Bytes payload;
  uint64_t peer_principal = 0;
  bool integrity_protected = false;
  bool transport_error = false;
};

using TransportHandler = std::function<void(const TransportDelivery&)>;

// Abstract message transport. Delivery is asynchronous (handlers run from the
// backend's clock/event loop, never from inside Send) and unreliable: a frame
// may be lost, and the RPC layer's deadlines + retries are the recovery story
// on every backend.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void Send(const Endpoint& src, const Endpoint& dst, Bytes payload) = 0;
  virtual void RegisterPort(NodeId node, uint16_t port, TransportHandler handler) = 0;
  virtual void UnregisterPort(NodeId node, uint16_t port) = 0;

  // The clock driving this transport. All timers code above the seam schedules
  // (deadlines, backoff, TTL eviction) run on it, interleaved with deliveries.
  virtual Clock* clock() = 0;

  // Estimated one-way delivery delay for a payload of the given size, in
  // microseconds. Purely advisory — used for nearest-replica ranking and the
  // secure transport's FIFO delivery floors, never for correctness. Backends
  // without a topology (real sockets) report 0: every peer looks equally near,
  // which is exactly true on loopback.
  virtual double EstimateDeliveryDelayUs(NodeId src, NodeId dst, size_t bytes) const {
    (void)src;
    (void)dst;
    (void)bytes;
    return 0;
  }
};

// Allocates process-wide unique ephemeral ports for RPC clients.
uint16_t AllocateEphemeralPort();

}  // namespace globe::sim

#endif  // SRC_SIM_TRANSPORT_H_
