// Simulated message network over a hierarchical topology.
//
// Every byte a Globe service sends crosses this network, which charges propagation
// latency and serialization time according to the topology's link profile and accounts
// traffic per ascent level. "Wide-area bandwidth is a scarce resource" (paper §3.1) —
// the per-level byte counters are how the benchmarks quantify exactly that.
//
// Failure injection: nodes can be marked down (messages to/from them vanish), messages
// can be dropped with a configurable probability — uniformly or per link —, links can
// be partitioned for a bounded time, nodes can crash (ports detach) and restart, and
// payload bytes can be flipped to exercise the integrity machinery of the secure
// transport. Every probabilistic decision draws from the network's seeded RNG and
// every timed fault runs on the virtual clock, so a failure schedule replays
// byte-identically across runs — the property the chaos suite is built on.
//
// The network runs on any EventEngine. On the sequential Simulator nothing is
// concurrent and there is exactly one shard of internal state. On the
// ShardedSimulator the hot mutable state — RNG, traffic stats, per-node receive
// counts, port handler tables — is partitioned per shard: a send accounts to the
// sending shard, a delivery executes on (and touches only) the receiving node's
// shard. The fault tables (down nodes, partitions, drop probabilities) stay
// shared; they are read-only while shards run and may only be mutated with all
// shards parked (idle, or inside an engine barrier task) — asserted on every
// mutator. Aggregate accessors (stats(), per_node_received()) drain the
// per-shard counters into the aggregate view and are likewise idle-only.

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/topology.h"
#include "src/sim/transport.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace globe::sim {

// A delivered message as seen by the receiving handler. The payload is stored
// once, in the in-flight delivery event, and handed out as a pinned view:
// a handler that stashes the view keeps exactly that allocation alive.
struct Delivery {
  Endpoint src;
  Endpoint dst;
  PayloadView payload;
};

using PortHandler = std::function<void(const Delivery&)>;

// Counters per ascent level plus aggregate views.
struct TrafficStats {
  struct PerLevel {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };
  std::vector<PerLevel> per_level;  // indexed by ascent level (0 = same leaf domain)
  uint64_t loopback_messages = 0;
  uint64_t loopback_bytes = 0;
  uint64_t dropped_messages = 0;      // random loss (uniform or per-link probability)
  uint64_t partitioned_messages = 0;  // swallowed by an active partition
  uint64_t down_node_messages = 0;
  // Every message lost to random loss or a partition, keyed by the (src, dst)
  // node pair it was crossing — so a chaos test can assert *which* link lost
  // traffic. dropped_messages / partitioned_messages stay the aggregate views.
  std::map<std::pair<NodeId, NodeId>, uint64_t> dropped_per_link;

  uint64_t TotalMessages() const;
  uint64_t TotalBytes() const;
  // Bytes at or above the given ascent level; level 2 and up is "wide area" in the
  // default five-level world (country / continent / intercontinental).
  uint64_t BytesAtOrAbove(int level) const;

  void Clear();
  // Adds every counter of `other` into this and zeroes `other`.
  void DrainFrom(TrafficStats* other);
};

struct NetworkOptions {
  LinkProfile profile;
  double drop_probability = 0.0;    // uniform message loss
  double tamper_probability = 0.0;  // flip one payload byte in transit
  uint64_t rng_seed = 0x9e3779b97f4a7c15ULL;
};

class Network {
 public:
  Network(EventEngine* engine, const Topology* topology, NetworkOptions options = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers the handler for (node, port). Overwrites any previous registration.
  // Under a sharded engine this must run on the shard owning `node` (or idle).
  void RegisterPort(NodeId node, uint16_t port, PortHandler handler);
  void UnregisterPort(NodeId node, uint16_t port);

  // Sends a message. Delivery is scheduled after latency + transmit time (+ extra
  // processing delay, used by the secure transport to model crypto CPU cost) on the
  // shard owning the destination node. If the destination port has no handler at
  // delivery time the message is silently lost, like a UDP datagram to a closed port.
  void Send(const Endpoint& src, const Endpoint& dst, Bytes payload,
            double extra_delay_us = 0);

  // Failure injection. All of it is deterministic: probabilities draw from the
  // seeded RNG, timed faults expire on the virtual clock. The fault tables are
  // shared across shards, so mutation requires every shard parked: call these
  // from idle context or an EventEngine::ScheduleBarrier task, never from an
  // event running inside a parallel window.
  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;
  void SetDropProbability(double p);
  void SetTamperProbability(double p);

  // Per-link loss, overriding the uniform drop_probability for messages sent
  // src -> dst. Directed — set both directions for a symmetric lossy link.
  void SetLinkDropProbability(NodeId src, NodeId dst, double p);
  void ClearLinkDropProbability(NodeId src, NodeId dst);

  // Timed bidirectional partition: every message between a and b — in either
  // direction, including ones already in flight — vanishes until now + duration
  // (or HealPartition). Re-partitioning an active pair extends the window.
  void PartitionPair(NodeId a, NodeId b, SimTime duration);
  void HealPartition(NodeId a, NodeId b);
  bool IsPartitioned(NodeId a, NodeId b) const;

  // Crash/restart. CrashNode powers the host off: every port handler detaches
  // (stashed aside) and the node goes down, so traffic to and from it — and
  // anything already in flight — is lost. RestartNode reattaches the stashed
  // handlers and brings the node back up: services return with whatever state
  // their objects kept, which models the paper's §7 persistent directory state
  // (and the RPC layer's dedup tables) surviving a reboot. Tests that want
  // volatile-state loss rebuild services from checkpoints before restarting;
  // ports registered or unregistered while crashed take precedence over the
  // stash at reattach time.
  void CrashNode(NodeId node);
  void RestartNode(NodeId node);
  bool IsCrashed(NodeId node) const { return crashed_.count(node) > 0; }

  // Observation hook: sees every frame as it enters the network (before tampering or
  // drops). Used by tests to play the "attacker tapping the wire" role from §6.2.
  // Under a sharded engine the hook runs on whichever shard sends, so it must not
  // touch cross-shard mutable state; the tests that use it run sequentially.
  using Eavesdropper =
      std::function<void(const Endpoint& src, const Endpoint& dst, ByteSpan)>;
  void SetEavesdropper(Eavesdropper e);

  // Aggregate views; drain the per-shard counters first (idle-only).
  const TrafficStats& stats() const;
  TrafficStats* mutable_stats();

  // Messages received per node since the last clear; used for server-load measurements.
  const std::map<NodeId, uint64_t>& per_node_received() const;
  void ClearPerNodeReceived();

  EventEngine* engine() { return engine_; }
  const Topology& topology() const { return *topology_; }
  const NetworkOptions& options() const { return options_; }

  // One-way latency for a payload of the given size, as the network would charge it.
  double DeliveryDelayUs(NodeId src, NodeId dst, size_t bytes) const;

 private:
  // Mutable hot state owned by one shard: only that shard's thread touches it
  // while a parallel window runs. Shard 0's RNG is seeded with exactly
  // options.rng_seed so single-shard behaviour matches the historical network
  // byte for byte; shard i adds i golden-ratio increments.
  struct ShardState {
    explicit ShardState(uint64_t seed) : rng(seed) {}
    Rng rng;
    TrafficStats stats;
    std::map<NodeId, uint64_t> per_node_received;
    // Values are shared_ptr so Deliver() can pin the handler it is invoking
    // without copying the closure: a handler may close its own port mid-call.
    std::map<std::pair<NodeId, uint16_t>, std::shared_ptr<PortHandler>> handlers;
  };

  static std::pair<NodeId, NodeId> PairKey(NodeId a, NodeId b) {
    return {std::min(a, b), std::max(a, b)};
  }
  double EffectiveDropProbability(NodeId src, NodeId dst) const;
  void Deliver(Delivery delivery);
  ShardState& ShardOf(NodeId node) {
    return shards_[engine_->ShardOfNode(node)];
  }
  // The shard whose thread is executing (shard 0 when idle): where sends draw
  // randomness and account traffic.
  ShardState& CurrentShard() { return shards_[engine_->current_shard()]; }
  // Folds every shard's counters into the aggregate members. Idle-only.
  void DrainShardCounters() const;

  EventEngine* engine_;
  const Topology* topology_;
  NetworkOptions options_;
  mutable std::vector<ShardState> shards_;
  std::map<NodeId, bool> node_down_;  // absent = up
  std::map<std::pair<NodeId, NodeId>, double> link_drop_;    // directed (src, dst)
  std::map<std::pair<NodeId, NodeId>, SimTime> partitions_;  // PairKey -> heals at
  // Port handlers of crashed nodes, waiting for RestartNode. The outer map's
  // structure only changes with shards parked (CrashNode/RestartNode are
  // barrier-only); UnregisterPort may erase inside its own node's inner map.
  std::map<NodeId, std::map<uint16_t, std::shared_ptr<PortHandler>>> crashed_;
  mutable TrafficStats stats_;
  mutable std::map<NodeId, uint64_t> per_node_received_;
  Eavesdropper eavesdropper_;
};

// The simulation-backed Transport: forwards frames to the raw network and runs
// timers on the virtual clock. Mirrors the socket backend's frame-size limit so
// oversized sends fail identically in both worlds.
class PlainTransport : public Transport {
 public:
  explicit PlainTransport(Network* network) : network_(network) {}

  void Send(const Endpoint& src, const Endpoint& dst, ByteSpan payload) override;
  void RegisterPort(NodeId node, uint16_t port, TransportHandler handler) override;
  void UnregisterPort(NodeId node, uint16_t port) override;
  Clock* clock() override { return network_->engine(); }
  double EstimateDeliveryDelayUs(NodeId src, NodeId dst, size_t bytes) const override {
    return network_->DeliveryDelayUs(src, dst, bytes);
  }

  Network* network() { return network_; }

 private:
  Network* network_;
};

}  // namespace globe::sim

#endif  // SRC_SIM_NETWORK_H_
