// Discrete-event simulation core: a virtual clock and an event queue.
//
// The GDN paper deployed on real Internet hosts; this repository reproduces the
// system on a deterministic simulator so that "where does traffic flow" and "how far
// do messages travel" — the quantities behind every claim in the paper — are exactly
// measurable. All services (GLS directory nodes, DNS servers, object servers, HTTPDs)
// run as callbacks driven by one Simulator instance; there is no real concurrency.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace globe::sim {

// Simulated time in microseconds since simulation start.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

inline double ToMillis(SimTime t) { return static_cast<double>(t) / 1000.0; }
inline double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn to run at absolute time t (>= Now). Events scheduled for the same
  // time run in scheduling order (stable).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules fn to run after the given delay.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs a single event. Returns false if the queue is empty.
  bool Step();

  // Runs until the queue is empty.
  void Run();

  // Runs until the queue is empty or the clock would pass `deadline`.
  void RunUntil(SimTime deadline);

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-breaker for stable ordering
    std::function<void()> fn;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
};

}  // namespace globe::sim

#endif  // SRC_SIM_SIMULATOR_H_
