// Discrete-event simulation core: a virtual clock and an event queue.
//
// The GDN paper deployed on real Internet hosts; this repository reproduces the
// system on a deterministic simulator so that "where does traffic flow" and "how far
// do messages travel" — the quantities behind every claim in the paper — are exactly
// measurable. All services (GLS directory nodes, DNS servers, object servers, HTTPDs)
// run as callbacks driven by one Simulator instance; there is no real concurrency.
// (For planet-scale worlds there is also sim::ShardedSimulator, which runs
// per-continent event shards on a thread pool behind the same EventEngine seam.)
//
// Events are cancellable: ScheduleAt/ScheduleAfter return an EventId that Cancel()
// erases from the queue. A cancelled event neither runs nor advances the virtual
// clock — this is what lets the RPC layer drop a call's deadline event the moment
// its response arrives, so draining the queue costs the round-trip time rather than
// the full timeout. Tombstones are bounded: the queue compacts once cancelled
// entries outnumber live ones (see EventHeap), so long runs do not accumulate
// cancelled-event memory.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/sim/engine.h"
#include "src/sim/event_queue.h"

namespace globe::sim {

// The sequential virtual-time implementation of the EventEngine seam
// (src/sim/engine.h): one event queue whose head defines "now".
class Simulator : public EventEngine {
 public:
  using EventId = EventEngine::EventId;
  static constexpr EventId kNoEvent = EventEngine::kNoEvent;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const override { return now_; }

  // Schedules fn to run at absolute time t (>= Now). Events scheduled for the same
  // time run in scheduling order (stable).
  EventId ScheduleAt(SimTime t, std::function<void()> fn) override;

  // Schedules fn to run after the given delay.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Erases a pending event: it will neither run nor advance the clock. Returns
  // false if the event already ran, was already cancelled, or never existed.
  bool Cancel(EventId id) override;

  // Runs a single live event. Returns false if no live events remain.
  bool Step();

  // Runs until the queue is empty.
  void Run() override;

  // Runs until the queue is empty or the clock would pass `deadline`.
  void RunUntil(SimTime deadline) override;

  size_t pending_events() const override { return heap_.pending(); }
  uint64_t executed_events() const override { return executed_; }

 private:
  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  EventHeap heap_;
};

}  // namespace globe::sim

#endif  // SRC_SIM_SIMULATOR_H_
