// Discrete-event simulation core: a virtual clock and an event queue.
//
// The GDN paper deployed on real Internet hosts; this repository reproduces the
// system on a deterministic simulator so that "where does traffic flow" and "how far
// do messages travel" — the quantities behind every claim in the paper — are exactly
// measurable. All services (GLS directory nodes, DNS servers, object servers, HTTPDs)
// run as callbacks driven by one Simulator instance; there is no real concurrency.
//
// Events are cancellable: ScheduleAt/ScheduleAfter return an EventId that Cancel()
// erases from the queue. A cancelled event neither runs nor advances the virtual
// clock — this is what lets the RPC layer drop a call's deadline event the moment
// its response arrives, so draining the queue costs the round-trip time rather than
// the full timeout.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/clock.h"

namespace globe::sim {

// The virtual-time implementation of the Clock seam (src/sim/clock.h): an
// event queue whose head defines "now".
class Simulator : public Clock {
 public:
  // Handle to a scheduled event; kNoEvent is never a live event. Events are
  // Clock timers — EventId is the historical name for TimerId.
  using EventId = Clock::TimerId;
  static constexpr EventId kNoEvent = Clock::kNoTimer;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const override { return now_; }

  // Schedules fn to run at absolute time t (>= Now). Events scheduled for the same
  // time run in scheduling order (stable).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules fn to run after the given delay.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Erases a pending event: it will neither run nor advance the clock. Returns
  // false if the event already ran, was already cancelled, or never existed.
  bool Cancel(EventId id);
  bool CancelTimer(TimerId id) override { return Cancel(id); }

  // Runs a single live event. Returns false if no live events remain.
  bool Step();

  // Runs until the queue is empty.
  void Run();

  // Runs until the queue is empty or the clock would pass `deadline`.
  void RunUntil(SimTime deadline);

  size_t pending_events() const { return pending_ids_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    EventId id;  // also the tie-breaker for stable ordering
    std::function<void()> fn;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  // Pops cancelled events off the front of the queue without running them or
  // touching the clock.
  void DropCancelledPrefix();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
  std::unordered_set<EventId> pending_ids_;    // scheduled, not yet run or cancelled
  std::unordered_set<EventId> cancelled_ids_;  // cancelled but still physically queued
};

}  // namespace globe::sim

#endif  // SRC_SIM_SIMULATOR_H_
