// The time seam every Globe service is written against.
//
// Two backends implement it: sim::Simulator drives a virtual clock from a
// discrete event queue (deterministic, the default for tests and chaos runs),
// and net::EventLoop drives CLOCK_MONOTONIC from epoll (real sockets, real
// time). Channel deadlines, RetryPolicy backoff, dedup TTL eviction and
// RpcServer service-time modelling all schedule through this interface, which
// is what lets the same RPC stack run unmodified in both worlds.
//
// Timers are cancellable: ScheduleAfter returns a TimerId that CancelTimer
// erases. A cancelled timer never runs — the RPC layer relies on this to drop
// a call's deadline the moment its response lands.

#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cstdint>
#include <functional>

namespace globe::sim {

// Time in microseconds. Under the simulator this is virtual time since
// simulation start; under a socket backend it is monotonic wall time since the
// event loop was created. Code above the seam must only ever use it
// relatively (durations, deadlines) — absolute values mean different things
// per backend.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

inline double ToMillis(SimTime t) { return static_cast<double>(t) / 1000.0; }
inline double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

// Narrow timer-scheduling interface. Implementations are single-threaded: all
// callbacks run on the thread driving the clock, never concurrently.
class Clock {
 public:
  // Handle to a scheduled timer; kNoTimer is never a live timer.
  using TimerId = uint64_t;
  static constexpr TimerId kNoTimer = 0;

  virtual ~Clock() = default;

  virtual SimTime Now() const = 0;

  // Schedules fn to run once, `delay` microseconds from Now(). Timers due at
  // the same instant run in scheduling order (stable).
  virtual TimerId ScheduleAfter(SimTime delay, std::function<void()> fn) = 0;

  // Erases a pending timer: it will never run. Returns false if the timer
  // already fired, was already cancelled, or never existed.
  virtual bool CancelTimer(TimerId id) = 0;
};

}  // namespace globe::sim

#endif  // SRC_SIM_CLOCK_H_
