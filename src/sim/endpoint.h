// Node addressing shared by every transport backend.
//
// A Globe host is a NodeId; a service on it is a (node, port) Endpoint. Under
// the simulated network node ids index into a sim::Topology; under the socket
// backend they are logical labels that the transport maps to real listening
// sockets. The well-known ports are fixed so both backends route the same
// frames to the same services.

#ifndef SRC_SIM_ENDPOINT_H_
#define SRC_SIM_ENDPOINT_H_

#include <cstdint>
#include <string>

namespace globe::sim {

using NodeId = uint32_t;

constexpr NodeId kNoNode = static_cast<NodeId>(-1);

// Well-known ports for the Globe services (arbitrary but fixed).
constexpr uint16_t kPortDns = 53;
constexpr uint16_t kPortHttp = 80;
constexpr uint16_t kPortGls = 700;
constexpr uint16_t kPortGos = 701;
constexpr uint16_t kPortGnsAuthority = 530;
constexpr uint16_t kPortClientBase = 40000;  // ephemeral ports for clients

struct Endpoint {
  NodeId node = kNoNode;
  uint16_t port = 0;

  bool operator==(const Endpoint&) const = default;
  auto operator<=>(const Endpoint&) const = default;
};

inline std::string ToString(const Endpoint& ep) {
  return "node" + std::to_string(ep.node) + ":" + std::to_string(ep.port);
}

}  // namespace globe::sim

#endif  // SRC_SIM_ENDPOINT_H_
