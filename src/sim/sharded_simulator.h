// ShardedSimulator: a conservative parallel discrete-event engine.
//
// The world is partitioned into shards (one per continent in GdnWorld); each
// shard owns a private event queue, a private virtual clock, and the state of
// the nodes assigned to it. Shards advance in lockstep windows
//
//   [T0, min(T0 + lookahead, deadline + 1))
//
// where T0 is the earliest pending event across all shards and `lookahead` is
// the minimum cross-shard link latency: no event executed inside the window
// can schedule work on another shard earlier than the window's end, so every
// shard can run its slice of the window without seeing the others. Windows
// with more than one active shard run on a pool of per-shard worker threads;
// windows where only one shard has work run inline on the coordinator thread
// (the common case for sparse phases, and the whole run on a 1-core host).
//
// Determinism contract (what makes pinned-seed byte-identical replay survive
// sharding):
//   - Event ids encode (seq << kShardBits) | shard; per-shard seq counters
//     advance independently of other shards' activity.
//   - Cross-shard schedules buffer in the source shard's outbox during a
//     window. At the window boundary the coordinator merges all outboxes in
//     canonical (time, source shard, source seq) order and assigns fresh
//     target-shard ids in that order — so target-side ids, and therefore all
//     same-time tie-breaks, are independent of thread timing.
//   - An outbox event that targets a time the destination shard has already
//     passed is a lookahead violation: it is clamped to the destination's
//     clock and counted (lookahead_violations()), never dropped.
//   - Shared mutable state (the network's fault tables) must only change with
//     all shards parked; ScheduleBarrier runs a task with every shard
//     quiescent at the first window boundary at-or-after its time, and
//     InParallelRegion() lets mutators assert the discipline.
//
// Everything above src/sim/ talks to the EventEngine/Clock/Transport seams and
// does not know which engine is underneath.

#ifndef SRC_SIM_SHARDED_SIMULATOR_H_
#define SRC_SIM_SHARDED_SIMULATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/event_queue.h"

namespace globe::sim {

class ShardedSimulator : public EventEngine {
 public:
  static constexpr int kShardBits = 8;
  static constexpr uint64_t kShardMask = (1ULL << kShardBits) - 1;
  // Shard byte reserved for barrier-task ids (barriers are not cancellable).
  static constexpr uint64_t kBarrierShard = kShardMask;

  // `lookahead_us` must be at most the minimum latency of any message that can
  // cross shards; GdnWorld computes it from the topology.
  ShardedSimulator(size_t shard_count, SimTime lookahead_us);
  ~ShardedSimulator() override;
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  // ---- Node-to-shard assignment (fixed before the run starts) ----
  void AssignNode(NodeId node, size_t shard);
  void AssignNodes(const std::vector<NodeId>& nodes, size_t shard);
  size_t ShardOfNode(NodeId node) const override;

  // ---- EventEngine ----
  SimTime Now() const override;
  EventId ScheduleAt(SimTime t, std::function<void()> fn) override;
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    return ScheduleAt(Now() + delay, std::move(fn));
  }
  EventId ScheduleAtForNode(NodeId node, SimTime t,
                            std::function<void()> fn) override;
  EventId ScheduleBarrier(SimTime t, std::function<void()> fn) override;
  bool Cancel(EventId id) override;
  void Run() override;
  void RunUntil(SimTime deadline) override;

  size_t pending_events() const override;
  uint64_t executed_events() const override;

  size_t shard_count() const override { return shards_.size(); }
  size_t current_shard() const override;
  bool InParallelRegion() const override {
    return in_parallel_.load(std::memory_order_relaxed);
  }

  SimTime lookahead() const { return lookahead_; }
  uint64_t lookahead_violations() const { return lookahead_violations_; }
  uint64_t windows_run() const { return windows_run_; }
  uint64_t parallel_windows() const { return parallel_windows_; }

 private:
  // A cross-shard schedule buffered until the next window boundary. The
  // provisional id lives in the source shard's seq space and dies at the
  // merge, where the event gets a fresh id on the target shard.
  struct Outgoing {
    SimTime time;
    uint64_t provisional_id;
    size_t target;
    std::function<void()> fn;
  };

  struct Shard {
    EventHeap heap;
    SimTime now = 0;
    uint64_t next_seq = 1;
    uint64_t executed = 0;
    std::vector<Outgoing> outbox;
    // Cross-shard cancels issued by THIS shard during a window; applied in
    // canonical order at the boundary.
    std::vector<uint64_t> deferred_cancels;
  };

  uint64_t MakeId(Shard& shard, size_t index) {
    return (shard.next_seq++ << kShardBits) | static_cast<uint64_t>(index);
  }

  // Runs all of shard `index`'s events with time < t_end on the calling
  // thread.
  void RunShardWindow(size_t index, SimTime t_end);
  // Applies deferred cancels and merges every outbox, in canonical order.
  void MergeBoundary();
  // The coordinator loop shared by Run and RunUntil.
  void RunWindows(SimTime deadline, bool clamp_to_deadline);
  void DispatchWindow(const std::vector<size_t>& active, SimTime t_end);
  void StartWorkers();
  void WorkerMain(size_t index);

  SimTime lookahead_;
  std::vector<Shard> shards_;
  std::vector<uint8_t> node_shard_;

  // Barrier tasks, ordered by (time, insertion seq).
  std::map<std::pair<SimTime, uint64_t>, std::function<void()>> barriers_;
  uint64_t next_barrier_seq_ = 1;
  uint64_t barriers_executed_ = 0;

  SimTime now_ = 0;  // idle-context clock: max event time completed so far
  uint64_t lookahead_violations_ = 0;
  uint64_t windows_run_ = 0;
  uint64_t parallel_windows_ = 0;

  // Worker pool (started lazily on the first multi-shard window).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  size_t active_remaining_ = 0;
  SimTime window_end_ = 0;
  std::vector<uint8_t> shard_active_;
  bool shutdown_ = false;
  std::atomic<bool> in_parallel_{false};
};

}  // namespace globe::sim

#endif  // SRC_SIM_SHARDED_SIMULATOR_H_
