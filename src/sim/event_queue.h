// A cancellable min-heap of timed events, shared by the event engines.
//
// Both sim::Simulator (one queue) and sim::ShardedSimulator (one queue per
// shard) need the same structure: a (time, id)-ordered heap whose entries can
// be cancelled in O(1) and whose tombstones are bounded. Cancellation marks the
// id; the physical entry is dropped lazily when it surfaces, and Push/Cancel
// compact the heap outright once tombstones outnumber live events — so a
// week-long simulated run that schedules and cancels millions of RPC deadline
// timers holds memory proportional to the *live* event count, not the
// historical cancel count.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/sim/clock.h"

namespace globe::sim {

struct TimedEvent {
  SimTime time;
  uint64_t id;  // also the tie-breaker for stable ordering
  std::function<void()> fn;
};

class EventHeap {
 public:
  void Push(SimTime t, uint64_t id, std::function<void()> fn) {
    heap_.push_back(TimedEvent{t, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), After);
    pending_.insert(id);
  }

  // Marks a pending event cancelled: it will never run. Returns false if the
  // event already ran, was already cancelled, or never existed.
  bool Cancel(uint64_t id) {
    if (pending_.erase(id) == 0) {
      return false;
    }
    cancelled_.insert(id);
    // Tombstone bound: once cancelled entries exceed half of what is
    // physically queued, rebuild the heap from the live events only.
    if (cancelled_.size() > heap_.size() / 2) {
      Compact();
    }
    return true;
  }

  // The next live event, dropping any cancelled prefix; nullptr when empty.
  const TimedEvent* Peek() {
    DropCancelledPrefix();
    return heap_.empty() ? nullptr : &heap_.front();
  }

  // Pops the next live event. Peek() must have returned non-null.
  TimedEvent PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), After);
    TimedEvent event = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(event.id);
    return event;
  }

  size_t pending() const { return pending_.size(); }
  bool IsPending(uint64_t id) const { return pending_.count(id) > 0; }

  // Drains every live event (heap order not guaranteed); used by engines that
  // re-distribute events, never by the run loop.
  std::vector<TimedEvent> TakeAll() {
    std::vector<TimedEvent> live;
    live.reserve(pending_.size());
    for (TimedEvent& event : heap_) {
      if (cancelled_.erase(event.id) == 0) {
        live.push_back(std::move(event));
      }
    }
    heap_.clear();
    pending_.clear();
    cancelled_.clear();
    return live;
  }

 private:
  // Heap comparator: std:: heap algorithms build a max-heap, so "after" orders
  // the earliest (time, id) to the front.
  static bool After(const TimedEvent& a, const TimedEvent& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.id > b.id;
  }

  void DropCancelledPrefix() {
    while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
      std::pop_heap(heap_.begin(), heap_.end(), After);
      cancelled_.erase(heap_.back().id);
      heap_.pop_back();
    }
  }

  void Compact() {
    std::erase_if(heap_, [this](const TimedEvent& event) {
      return cancelled_.count(event.id) > 0;
    });
    cancelled_.clear();
    std::make_heap(heap_.begin(), heap_.end(), After);
  }

  std::vector<TimedEvent> heap_;
  std::unordered_set<uint64_t> pending_;    // scheduled, not yet run or cancelled
  std::unordered_set<uint64_t> cancelled_;  // cancelled but still physically queued
};

}  // namespace globe::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
