#include "src/sim/rpc.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "src/util/log.h"

namespace globe::sim {

namespace {
constexpr uint8_t kFrameRequest = 0;
constexpr uint8_t kFrameResponse = 1;
constexpr double kEwmaAlpha = 0.2;
}  // namespace

uint16_t AllocateEphemeralPort() {
  static std::atomic<uint32_t> next{kPortClientBase};
  uint32_t p = next.fetch_add(1);
  // Wrap within the 16-bit ephemeral range [kPortClientBase, 65535].
  return static_cast<uint16_t>(kPortClientBase +
                               (p - kPortClientBase) % (65536 - kPortClientBase));
}

RpcServer::RpcServer(Transport* transport, NodeId node, uint16_t port)
    : transport_(transport),
      node_(node),
      port_(port),
      alive_(std::make_shared<bool>(true)) {
  transport_->RegisterPort(node_, port_,
                           [this](const TransportDelivery& d) { OnDelivery(d); });
}

RpcServer::~RpcServer() {
  *alive_ = false;
  transport_->UnregisterPort(node_, port_);
}

void RpcServer::RegisterMethod(std::string method, SyncHandler handler,
                               MethodTraits traits) {
  method_traits_[method] = traits;
  sync_methods_[std::move(method)] = std::move(handler);
}

void RpcServer::RegisterAsyncMethod(std::string method, AsyncHandler handler,
                                    MethodTraits traits) {
  method_traits_[method] = traits;
  async_methods_[std::move(method)] = std::move(handler);
}

void RpcServer::OnDelivery(const TransportDelivery& delivery) {
  if (delivery.transport_error) {
    // A lost path to some client. Servers are passive: the client's retry
    // machinery owns recovery, and any response we owed it is simply dropped
    // on the floor exactly as if the frame had been lost in flight.
    return;
  }
  // The whole frame is parsed as views over the delivery buffer: no field is
  // copied unless it must outlive this callback (deferred dispatch below).
  ByteReader reader(delivery.payload);
  auto type = reader.ReadU8();
  auto request_id = reader.ReadU64();
  if (!type.ok() || !request_id.ok() || *type != kFrameRequest) {
    GLOG_WARN << "rpc server " << ToString(endpoint()) << ": malformed frame dropped";
    return;
  }
  auto call_id = reader.ReadU64();
  auto method = reader.ReadStringView();
  auto payload = reader.ReadLengthPrefixedView();
  if (!call_id.ok() || !method.ok() || !payload.ok()) {
    GLOG_WARN << "rpc server " << ToString(endpoint()) << ": truncated request dropped";
    return;
  }

  RpcContext context{delivery.src, delivery.peer_principal, delivery.integrity_protected};
  uint64_t id = *request_id;

  // At-most-once execution for non-idempotent methods: a duplicate delivery of
  // an already-accepted call never reaches the handler (and never pays the
  // service-time queue) — it is answered from the dedup table, immediately if
  // the first execution finished, or when it does.
  std::optional<DedupKey> dedup_key;
  if (auto traits = method_traits_.find(*method);
      traits != method_traits_.end() && !traits->second.idempotent) {
    EvictExpiredDedup();
    DedupKey key{delivery.src, *call_id};
    auto [entry, inserted] = dedup_.try_emplace(key);
    if (!inserted) {
      ++duplicates_suppressed_;
      if (entry->second.completed) {
        SendResponse(delivery.src, id, entry->second.response);
      } else {
        entry->second.waiting_attempts.push_back(id);
      }
      return;
    }
    entry->second.waiting_attempts.push_back(id);
    dedup_key = key;
  }

  ++requests_served_;

  if (service_time_ == 0) {
    Dispatch(*method, *payload, context, id, dedup_key);
    return;
  }
  // Requests queue FIFO behind whatever is already being served; with a pool
  // width above one, the earliest-free virtual CPU takes the next request.
  // The queued request pins the delivery buffer instead of copying: `pin` holds
  // the backing alive, and the method/payload views stay valid until the worker
  // gets to them.
  Clock* clock = transport_->clock();
  auto worker = std::min_element(worker_busy_until_.begin(), worker_busy_until_.end());
  SimTime now = clock->Now();
  SimTime start = std::max(now, *worker);
  *worker = start + service_time_;
  clock->ScheduleAfter(
      *worker - now, [this, alive = std::weak_ptr<bool>(alive_),
                      pin = delivery.payload, method = *method, payload = *payload,
                      context, id, dedup_key]() {
        auto a = alive.lock();
        if (!a || !*a) {
          return;
        }
        Dispatch(method, payload, context, id, dedup_key);
      });
}

void RpcServer::Dispatch(std::string_view method, ByteSpan payload,
                         const RpcContext& context, uint64_t request_id,
                         std::optional<DedupKey> dedup_key) {
  const Endpoint client = context.client;
  auto respond = [this, client, request_id, dedup_key](const Result<Bytes>& result) {
    if (dedup_key.has_value()) {
      CompleteDeduped(*dedup_key, result);
    } else {
      SendResponse(client, request_id, result);
    }
  };
  if (auto it = sync_methods_.find(method); it != sync_methods_.end()) {
    respond(it->second(context, payload));
    return;
  }
  if (auto it = async_methods_.find(method); it != async_methods_.end()) {
    it->second(context, payload,
               [respond](Result<Bytes> result) { respond(result); });
    return;
  }
  respond(NotFound("no such method: " + std::string(method)));
}

void RpcServer::CompleteDeduped(const DedupKey& key, const Result<Bytes>& result) {
  auto it = dedup_.find(key);
  if (it == dedup_.end()) {
    // Unreachable in practice: in-progress entries are never evicted. Dropping
    // the response is safe — the client's retry would simply execute afresh.
    return;
  }
  std::vector<uint64_t> waiting = std::move(it->second.waiting_attempts);
  // A transient failure must not be pinned: UNAVAILABLE is exactly the code
  // client retry policies repeat, and replaying a cached UNAVAILABLE would doom
  // every retry of the call for the whole TTL. The entry is dropped instead, so
  // a retry re-executes — which the handlers in this tree make safe: they
  // return UNAVAILABLE only from steps that are repeatable (chains whose
  // sub-calls are themselves deduped or idempotent) or after rolling back.
  // Definitive outcomes — success and application errors — are cached and
  // replayed verbatim.
  if (!result.ok() && result.status().code() == StatusCode::kUnavailable) {
    dedup_.erase(it);
  } else {
    DedupEntry& entry = it->second;
    entry.completed = true;
    entry.response = result;
    entry.expires_at = transport_->clock()->Now() + dedup_ttl_;
    dedup_expiry_.emplace_back(entry.expires_at, key);
  }
  for (uint64_t attempt : waiting) {
    SendResponse(key.first, attempt, result);
  }
}

void RpcServer::EvictExpiredDedup() {
  SimTime now = transport_->clock()->Now();
  while (!dedup_expiry_.empty() && dedup_expiry_.front().first <= now) {
    dedup_.erase(dedup_expiry_.front().second);
    dedup_expiry_.pop_front();
  }
  // Bounded memory: beyond the cap the oldest completed entries go first (their
  // clients have long since seen the response or exhausted their retries).
  while (dedup_.size() > dedup_max_entries_ && !dedup_expiry_.empty()) {
    dedup_.erase(dedup_expiry_.front().second);
    dedup_expiry_.pop_front();
  }
}

void RpcServer::SerializeDedup(ByteWriter* writer) const {
  // The expiry queue holds exactly the completed entries, in completion order
  // (in-flight executions are keyed in dedup_ but never queued); filter
  // defensively anyway so a checkpoint can never reference a missing entry.
  std::vector<std::pair<SimTime, DedupKey>> live;
  for (const auto& item : dedup_expiry_) {
    auto it = dedup_.find(item.second);
    if (it != dedup_.end() && it->second.completed) {
      live.push_back(item);
    }
  }
  writer->WriteVarint(live.size());
  for (const auto& [expires_at, key] : live) {
    const DedupEntry& entry = dedup_.at(key);
    writer->WriteU32(key.first.node);
    writer->WriteU16(key.first.port);
    writer->WriteU64(key.second);
    writer->WriteU64(expires_at);
    if (entry.response.ok()) {
      writer->WriteU8(static_cast<uint8_t>(StatusCode::kOk));
      writer->WriteLengthPrefixed(entry.response.value());
    } else {
      writer->WriteU8(static_cast<uint8_t>(entry.response.status().code()));
      writer->WriteString(entry.response.status().message());
    }
  }
}

Status RpcServer::RestoreDedup(ByteReader* reader) {
  constexpr uint64_t kMaxRestoredEntries = 1 << 20;
  std::map<DedupKey, DedupEntry> restored;
  std::deque<std::pair<SimTime, DedupKey>> expiry;
  ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
  if (count > kMaxRestoredEntries) {
    return InvalidArgument("implausible dedup entry count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    DedupKey key;
    ASSIGN_OR_RETURN(key.first.node, reader->ReadU32());
    ASSIGN_OR_RETURN(key.first.port, reader->ReadU16());
    ASSIGN_OR_RETURN(key.second, reader->ReadU64());
    DedupEntry entry;
    entry.completed = true;
    ASSIGN_OR_RETURN(entry.expires_at, reader->ReadU64());
    ASSIGN_OR_RETURN(uint8_t code, reader->ReadU8());
    if (code == static_cast<uint8_t>(StatusCode::kOk)) {
      // The dedup table owns its cached responses past this parse: a true
      // ownership boundary, copied explicitly.
      ASSIGN_OR_RETURN(ByteSpan payload, reader->ReadLengthPrefixedView());
      entry.response = ToBytes(payload);
    } else {
      if (code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
        return InvalidArgument("malformed dedup entry status");
      }
      ASSIGN_OR_RETURN(std::string_view message, reader->ReadStringView());
      entry.response = Status(static_cast<StatusCode>(code), std::string(message));
    }
    expiry.emplace_back(entry.expires_at, key);
    restored[key] = std::move(entry);
  }
  dedup_ = std::move(restored);
  dedup_expiry_ = std::move(expiry);
  return OkStatus();
}

void RpcServer::SendResponse(const Endpoint& client, uint64_t request_id,
                             const Result<Bytes>& result) {
  // The scratch writer keeps its capacity across responses; the transport
  // consumes the span before Send returns, so reuse is safe even when a
  // handler's response triggers another synchronous send downstream.
  send_scratch_.Reset();
  send_scratch_.WriteU8(kFrameResponse);
  send_scratch_.WriteU64(request_id);
  if (result.ok()) {
    send_scratch_.WriteU8(static_cast<uint8_t>(StatusCode::kOk));
    send_scratch_.WriteString("");
    send_scratch_.WriteLengthPrefixed(result.value());
  } else {
    send_scratch_.WriteU8(static_cast<uint8_t>(result.status().code()));
    send_scratch_.WriteString(result.status().message());
    send_scratch_.WriteLengthPrefixed({});
  }
  ++responses_sent_;
  transport_->Send(endpoint(), client, send_scratch_.span());
}

// ---------------------------------------------------------------- Channel

namespace {

struct PendingCall {
  Endpoint server;
  std::string method;
  Bytes request;  // kept for retries
  Channel::Callback done;
  CallOptions options;
  uint32_t attempt = 1;  // 1-based
  SimTime sent_at = 0;   // last attempt's send time
  // Timer lifecycle, one slot per role so no path can orphan one: exactly one
  // of these is live while the call is in flight — the deadline while an
  // attempt is on the wire, the backoff while waiting to resend — and every
  // exit (response, cancel, channel teardown, peer failure) clears both.
  Clock::TimerId deadline_timer = Clock::kNoTimer;
  Clock::TimerId backoff_timer = Clock::kNoTimer;
  // Every attempt goes on the wire under its own request id, so a late response
  // can always be attributed to the exact attempt that caused it (a stale OK
  // completes the call; a stale error was already charged when its deadline
  // fired and is dropped).
  uint64_t current_attempt_id = 0;
  std::vector<uint64_t> attempt_ids;  // all ids this call has used, for cleanup
};

struct PeerEntry {
  PeerLoad load;
};

}  // namespace

struct ChannelState {
  Transport* transport = nullptr;
  NodeId node = kNoNode;
  uint16_t port = 0;
  // Calls are keyed by their first attempt's id; attempt_to_call maps every
  // issued wire id (first attempt and retries) back to its call.
  std::map<uint64_t, PendingCall> pending;
  std::map<uint64_t, uint64_t> attempt_to_call;
  std::map<Endpoint, PeerEntry> peers;
  ChannelStats stats;
  // Scratch buffer for request frames, reused across attempts (the transport
  // consumes the span before Send returns).
  ByteWriter send_scratch;
};

namespace {

// Request ids are unique across every Channel in the process, not just within
// one: ephemeral ports wrap and can hand a new channel an endpoint a dead one
// used, and the server's (endpoint, call id) dedup key must never see the same
// pair twice within a TTL. A process-wide counter makes the ids collision-free
// without affecting determinism (id values never influence behaviour, only
// correlation).
uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1);
}

void SendAttempt(const std::shared_ptr<ChannelState>& state, uint64_t id);

void EraseAttemptIds(const std::shared_ptr<ChannelState>& state,
                     const PendingCall& call) {
  for (uint64_t attempt_id : call.attempt_ids) {
    state->attempt_to_call.erase(attempt_id);
  }
}

void CancelCallTimers(const std::shared_ptr<ChannelState>& state, PendingCall& call) {
  Clock* clock = state->transport->clock();
  if (call.deadline_timer != Clock::kNoTimer) {
    clock->CancelTimer(call.deadline_timer);
    call.deadline_timer = Clock::kNoTimer;
  }
  if (call.backoff_timer != Clock::kNoTimer) {
    clock->CancelTimer(call.backoff_timer);
    call.backoff_timer = Clock::kNoTimer;
  }
}

// Completes a call: drops its pending entry and load accounting, then runs the
// callback last — it may destroy the Channel (the caller's shared_ptr keeps the
// state alive through the call).
void Finalize(const std::shared_ptr<ChannelState>& state, uint64_t id,
              Result<PayloadView> result) {
  auto it = state->pending.find(id);
  assert(it != state->pending.end());
  assert(it->second.deadline_timer == Clock::kNoTimer &&
         it->second.backoff_timer == Clock::kNoTimer);
  Channel::Callback done = std::move(it->second.done);
  PeerEntry& peer = state->peers[it->second.server];
  assert(peer.load.outstanding > 0);
  --peer.load.outstanding;
  EraseAttemptIds(state, it->second);
  state->pending.erase(it);
  done(std::move(result));
}

// Charges one failed attempt against the call's retry budget. The caller must
// already have cleared the call's timers (the deadline fired, or the response
// that carried the error cancelled it).
void OnAttemptFailed(const std::shared_ptr<ChannelState>& state, uint64_t id,
                     Status failure) {
  auto it = state->pending.find(id);
  if (it == state->pending.end()) {
    return;
  }
  PendingCall& call = it->second;
  assert(call.deadline_timer == Clock::kNoTimer &&
         call.backoff_timer == Clock::kNoTimer);
  const RetryPolicy& retry = call.options.retry;
  if (call.attempt < retry.attempts && retry.ShouldRetry(failure)) {
    ++state->stats.retries;
    SimTime backoff = retry.BackoffFor(call.attempt);
    ++call.attempt;
    // The retry gets a fresh wire id now, so any response still in flight for
    // the failed attempt is recognisably stale from this point on.
    uint64_t attempt_id = NextRequestId();
    call.current_attempt_id = attempt_id;
    call.attempt_ids.push_back(attempt_id);
    state->attempt_to_call[attempt_id] = id;
    call.backoff_timer = state->transport->clock()->ScheduleAfter(
        backoff, [weak = std::weak_ptr<ChannelState>(state), id]() {
          if (auto s = weak.lock()) {
            SendAttempt(s, id);
          }
        });
    return;
  }
  state->peers[call.server].load.failed++;
  Finalize(state, id, std::move(failure));
}

void OnDeadline(const std::shared_ptr<ChannelState>& state, uint64_t id) {
  auto it = state->pending.find(id);
  if (it == state->pending.end()) {
    return;  // already answered (the deadline timer should have been cancelled)
  }
  ++state->stats.deadline_exceeded;
  it->second.deadline_timer = Clock::kNoTimer;
  OnAttemptFailed(state, id,
                  Unavailable("rpc deadline exceeded: " + it->second.method));
}

void SendAttempt(const std::shared_ptr<ChannelState>& state, uint64_t id) {
  auto it = state->pending.find(id);
  if (it == state->pending.end()) {
    return;
  }
  PendingCall& call = it->second;
  call.backoff_timer = Clock::kNoTimer;  // if we got here via backoff, it fired

  ByteWriter& writer = state->send_scratch;
  writer.Reset();
  writer.WriteU8(kFrameRequest);
  writer.WriteU64(call.current_attempt_id);
  // The stable call id: every retry repeats it, so the server can recognise a
  // duplicate delivery of this call and execute non-idempotent methods at most
  // once (call ids are unique across every channel in the process, so the key
  // stays unambiguous even if a later channel reuses this one's port).
  writer.WriteU64(id);
  writer.WriteString(call.method);
  writer.WriteLengthPrefixed(call.request);

  Clock* clock = state->transport->clock();
  call.sent_at = clock->Now();
  call.deadline_timer = clock->ScheduleAfter(
      call.options.deadline, [weak = std::weak_ptr<ChannelState>(state), id]() {
        if (auto s = weak.lock()) {
          OnDeadline(s, id);
        }
      });
  // The request copy exists only to be re-sent; once no retries remain (the
  // common case — attempts defaults to 1), release it rather than holding a
  // second copy of a possibly large payload for the call's whole lifetime.
  if (call.attempt >= call.options.retry.attempts) {
    call.request = Bytes{};
  }
  state->transport->Send({state->node, state->port}, call.server, writer.span());
}

// The transport lost its path to `peer` (socket backend: connection refused,
// reset, or EOF). Every call with an attempt on the wire towards that peer
// fails fast with UNAVAILABLE — exactly the code retry policies treat as
// transient, so budgets and backoff engage instead of waiting out deadlines.
// Calls already sitting in backoff are left alone: their resend will probe the
// peer again.
void OnPeerFailed(const std::shared_ptr<ChannelState>& state, const Endpoint& peer) {
  std::vector<uint64_t> affected;
  for (auto& [id, call] : state->pending) {
    if (call.server == peer && call.deadline_timer != Clock::kNoTimer) {
      affected.push_back(id);
    }
  }
  for (uint64_t id : affected) {
    auto it = state->pending.find(id);
    if (it == state->pending.end()) {
      continue;  // a previous failure's callback cancelled it
    }
    CancelCallTimers(state, it->second);
    OnAttemptFailed(state, id,
                    Unavailable("transport lost peer " + ToString(peer)));
  }
}

void OnChannelDelivery(const std::shared_ptr<ChannelState>& state,
                       const TransportDelivery& delivery) {
  if (delivery.transport_error) {
    OnPeerFailed(state, delivery.src);
    return;
  }
  ByteReader reader(delivery.payload);
  auto type = reader.ReadU8();
  auto request_id = reader.ReadU64();
  if (!type.ok() || !request_id.ok() || *type != kFrameResponse) {
    return;
  }
  auto alias = state->attempt_to_call.find(*request_id);
  if (alias == state->attempt_to_call.end()) {
    return;  // late response after completion or cancellation: ignore
  }
  uint64_t call_id = alias->second;
  auto it = state->pending.find(call_id);
  if (it == state->pending.end()) {
    return;
  }
  auto code = reader.ReadU8();
  auto message = reader.ReadStringView();
  auto payload = reader.ReadLengthPrefixedView();
  if (!code.ok() || !message.ok() || !payload.ok()) {
    return;
  }
  PendingCall& call = it->second;

  // A stale error response — from an attempt whose deadline already fired and
  // whose retry has been scheduled or sent: that attempt was charged against the
  // retry budget when it timed out, so processing its response too would burn the
  // budget twice (or fail the call while a live retry is still in flight). A
  // stale OK response, by contrast, completes the call and supersedes the retry.
  if (*request_id != call.current_attempt_id &&
      *code != static_cast<uint8_t>(StatusCode::kOk)) {
    return;
  }

  // The response landed: erase the deadline (or, for a stale OK that overtakes
  // a scheduled retry, the pending backoff) so the drained clock never replays
  // a timeout that did not happen.
  CancelCallTimers(state, call);

  PeerLoad& load = state->peers[call.server].load;
  ++load.completed;
  double latency =
      static_cast<double>(state->transport->clock()->Now() - call.sent_at);
  load.ewma_latency_us = load.ewma_latency_us == 0
                             ? latency
                             : (1 - kEwmaAlpha) * load.ewma_latency_us +
                                   kEwmaAlpha * latency;

  if (*code == static_cast<uint8_t>(StatusCode::kOk)) {
    // The callback receives a sub-view of the delivery buffer — the payload is
    // never copied on the response path; callers that retain it pin or copy.
    Finalize(state, call_id, delivery.payload.Share(*payload));
    return;
  }
  Status failure(static_cast<StatusCode>(*code), std::string(*message));
  OnAttemptFailed(state, call_id, std::move(failure));
}

}  // namespace

Channel::Channel(Transport* transport, NodeId node)
    : state_(std::make_shared<ChannelState>()) {
  state_->transport = transport;
  state_->node = node;
  state_->port = AllocateEphemeralPort();
  transport->RegisterPort(node, state_->port,
                          [weak = std::weak_ptr<ChannelState>(state_)](
                              const TransportDelivery& d) {
                            if (auto s = weak.lock()) {
                              OnChannelDelivery(s, d);
                            }
                          });
}

Channel::~Channel() {
  state_->transport->UnregisterPort(state_->node, state_->port);
  // Erase every in-flight deadline/backoff timer: a destroyed client must not
  // leave the clock holding 30 s of dead time.
  for (auto& [id, call] : state_->pending) {
    CancelCallTimers(state_, call);
  }
  state_->pending.clear();
  state_->attempt_to_call.clear();
}

CallHandle Channel::Call(const Endpoint& server, std::string_view method, Bytes request,
                         Callback done, CallOptions options) {
  uint64_t id = NextRequestId();
  PendingCall call;
  call.server = server;
  call.method = std::string(method);
  call.request = std::move(request);
  call.done = std::move(done);
  call.options = std::move(options);
  call.current_attempt_id = id;
  call.attempt_ids.push_back(id);
  state_->pending.emplace(id, std::move(call));
  state_->attempt_to_call[id] = id;
  ++state_->stats.calls;
  ++state_->peers[server].load.outstanding;
  SendAttempt(state_, id);
  return CallHandle(state_, id);
}

sim::PeerLoad Channel::PeerLoad(const Endpoint& peer) const {
  auto it = state_->peers.find(peer);
  return it == state_->peers.end() ? sim::PeerLoad{} : it->second.load;
}

const ChannelStats& Channel::stats() const { return state_->stats; }

NodeId Channel::node() const { return state_->node; }

Endpoint Channel::endpoint() const { return {state_->node, state_->port}; }

void CallHandle::Cancel() {
  auto state = state_.lock();
  if (!state) {
    return;
  }
  auto it = state->pending.find(id_);
  if (it == state->pending.end()) {
    return;  // already completed
  }
  // Both timer slots are cleared, so a call cancelled between attempts — while
  // its backoff timer (not a deadline) is the live one — schedules nothing
  // further on either backend.
  CancelCallTimers(state, it->second);
  PeerEntry& peer = state->peers[it->second.server];
  assert(peer.load.outstanding > 0);
  --peer.load.outstanding;
  EraseAttemptIds(state, it->second);
  state->pending.erase(it);
  ++state->stats.cancelled;
}

bool CallHandle::active() const {
  auto state = state_.lock();
  return state && state->pending.count(id_) > 0;
}

}  // namespace globe::sim
