#include "src/sim/rpc.h"

#include <atomic>
#include <cassert>

#include "src/util/log.h"

namespace globe::sim {

namespace {
constexpr uint8_t kFrameRequest = 0;
constexpr uint8_t kFrameResponse = 1;
}  // namespace

void PlainTransport::Send(const Endpoint& src, const Endpoint& dst, Bytes payload) {
  network_->Send(src, dst, std::move(payload));
}

void PlainTransport::RegisterPort(NodeId node, uint16_t port, TransportHandler handler) {
  network_->RegisterPort(node, port, [handler = std::move(handler)](const Delivery& d) {
    handler(TransportDelivery{d.src, d.dst, d.payload, /*peer_principal=*/0,
                              /*integrity_protected=*/false});
  });
}

void PlainTransport::UnregisterPort(NodeId node, uint16_t port) {
  network_->UnregisterPort(node, port);
}

uint16_t AllocateEphemeralPort() {
  static std::atomic<uint32_t> next{kPortClientBase};
  uint32_t p = next.fetch_add(1);
  // Wrap within the 16-bit ephemeral range [kPortClientBase, 65535].
  return static_cast<uint16_t>(kPortClientBase + (p - kPortClientBase) % (65536 - kPortClientBase));
}

RpcServer::RpcServer(Transport* transport, NodeId node, uint16_t port)
    : transport_(transport), node_(node), port_(port) {
  transport_->RegisterPort(node_, port_,
                           [this](const TransportDelivery& d) { OnDelivery(d); });
}

RpcServer::~RpcServer() { transport_->UnregisterPort(node_, port_); }

void RpcServer::RegisterMethod(std::string method, SyncHandler handler) {
  sync_methods_[std::move(method)] = std::move(handler);
}

void RpcServer::RegisterAsyncMethod(std::string method, AsyncHandler handler) {
  async_methods_[std::move(method)] = std::move(handler);
}

void RpcServer::OnDelivery(const TransportDelivery& delivery) {
  ByteReader reader(delivery.payload);
  auto type = reader.ReadU8();
  auto request_id = reader.ReadU64();
  if (!type.ok() || !request_id.ok() || *type != kFrameRequest) {
    GLOG_WARN << "rpc server " << ToString(endpoint()) << ": malformed frame dropped";
    return;
  }
  auto method = reader.ReadString();
  auto payload = reader.ReadLengthPrefixed();
  if (!method.ok() || !payload.ok()) {
    GLOG_WARN << "rpc server " << ToString(endpoint()) << ": truncated request dropped";
    return;
  }
  ++requests_served_;

  RpcContext context{delivery.src, delivery.peer_principal, delivery.integrity_protected};
  uint64_t id = *request_id;
  Endpoint client = delivery.src;

  if (auto it = sync_methods_.find(*method); it != sync_methods_.end()) {
    Result<Bytes> result = it->second(context, *payload);
    SendResponse(client, id, result);
    return;
  }
  if (auto it = async_methods_.find(*method); it != async_methods_.end()) {
    it->second(context, *payload, [this, client, id](Result<Bytes> result) {
      SendResponse(client, id, result);
    });
    return;
  }
  SendResponse(client, id, NotFound("no such method: " + *method));
}

void RpcServer::SendResponse(const Endpoint& client, uint64_t request_id,
                             const Result<Bytes>& result) {
  ByteWriter writer;
  writer.WriteU8(kFrameResponse);
  writer.WriteU64(request_id);
  if (result.ok()) {
    writer.WriteU8(static_cast<uint8_t>(StatusCode::kOk));
    writer.WriteString("");
    writer.WriteLengthPrefixed(result.value());
  } else {
    writer.WriteU8(static_cast<uint8_t>(result.status().code()));
    writer.WriteString(result.status().message());
    writer.WriteLengthPrefixed({});
  }
  transport_->Send(endpoint(), client, writer.Take());
}

RpcClient::RpcClient(Transport* transport, NodeId node)
    : transport_(transport),
      node_(node),
      port_(AllocateEphemeralPort()),
      alive_(std::make_shared<bool>(true)) {
  transport_->RegisterPort(node_, port_,
                           [this](const TransportDelivery& d) { OnDelivery(d); });
}

RpcClient::~RpcClient() {
  *alive_ = false;
  transport_->UnregisterPort(node_, port_);
}

void RpcClient::Call(const Endpoint& server, std::string_view method, Bytes request,
                     Callback done, SimTime timeout) {
  uint64_t id = next_request_id_++;
  pending_[id] = std::move(done);

  ByteWriter writer;
  writer.WriteU8(kFrameRequest);
  writer.WriteU64(id);
  writer.WriteString(method);
  writer.WriteLengthPrefixed(request);
  transport_->Send(endpoint(), server, writer.Take());

  transport_->simulator()->ScheduleAfter(
      timeout, [this, id, alive = std::weak_ptr<bool>(alive_)]() {
        auto a = alive.lock();
        if (!a || !*a) {
          return;
        }
        auto it = pending_.find(id);
        if (it == pending_.end()) {
          return;  // already answered
        }
        Callback cb = std::move(it->second);
        pending_.erase(it);
        cb(Unavailable("rpc timeout"));
      });
}

void RpcClient::OnDelivery(const TransportDelivery& delivery) {
  ByteReader reader(delivery.payload);
  auto type = reader.ReadU8();
  auto request_id = reader.ReadU64();
  if (!type.ok() || !request_id.ok() || *type != kFrameResponse) {
    return;
  }
  auto it = pending_.find(*request_id);
  if (it == pending_.end()) {
    return;  // late response after timeout: ignore
  }
  auto code = reader.ReadU8();
  auto message = reader.ReadString();
  auto payload = reader.ReadLengthPrefixed();
  if (!code.ok() || !message.ok() || !payload.ok()) {
    return;
  }
  Callback cb = std::move(it->second);
  pending_.erase(it);
  if (*code == static_cast<uint8_t>(StatusCode::kOk)) {
    cb(std::move(*payload));
  } else {
    cb(Status(static_cast<StatusCode>(*code), std::move(*message)));
  }
}

}  // namespace globe::sim
