// EventEngine: the discrete-event engine seam beneath sim::Network.
//
// Two implementations exist: sim::Simulator (one sequential queue — the
// default, and the only engine most tests ever see) and sim::ShardedSimulator
// (per-shard queues advancing in lockstep lookahead windows on a thread pool).
// Network talks to this interface only, which is what lets the same network,
// RPC and service stack run unchanged on either engine.
//
// The sharding-aware hooks all collapse to trivial defaults on a sequential
// engine:
//   - ScheduleAtForNode(node, ...) routes an event to the shard that owns
//     `node`'s state. Network uses it for deliveries, so a message handler
//     always runs on the receiving node's shard; drivers use it so a client
//     action runs on the client's shard. On a sequential engine it is
//     ScheduleAt.
//   - ScheduleBarrier(t, ...) runs a control-plane operation when every shard
//     is quiescent at a window boundary at-or-after t (fault injection,
//     subnode splitting, global controller ticks). On a sequential engine it
//     is ScheduleAt.
//   - InParallelRegion() is true while shard threads may be executing; shared
//     mutable state (network fault tables) must not change then.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>

#include "src/sim/clock.h"
#include "src/sim/endpoint.h"

namespace globe::sim {

class EventEngine : public Clock {
 public:
  // Handle to a scheduled event; kNoEvent is never a live event. Events are
  // Clock timers — EventId is the historical name for TimerId.
  using EventId = Clock::TimerId;
  static constexpr EventId kNoEvent = Clock::kNoTimer;

  // Schedules fn to run at absolute time t (>= Now). Events scheduled for the
  // same time run in scheduling order (stable within a shard).
  virtual EventId ScheduleAt(SimTime t, std::function<void()> fn) = 0;

  // Erases a pending event: it will neither run nor advance the clock. Returns
  // false if the event already ran, was already cancelled, or never existed.
  virtual bool Cancel(EventId id) = 0;
  bool CancelTimer(TimerId id) override { return Cancel(id); }

  // Runs until the queue is empty.
  virtual void Run() = 0;

  // Runs until the queue is empty or the clock would pass `deadline`.
  virtual void RunUntil(SimTime deadline) = 0;

  virtual size_t pending_events() const = 0;
  virtual uint64_t executed_events() const = 0;

  // ---- Sharding-aware hooks (sequential defaults) ----

  virtual size_t shard_count() const { return 1; }

  // The shard whose events the calling thread is executing; 0 when idle or in
  // a barrier task.
  virtual size_t current_shard() const { return 0; }

  virtual size_t ShardOfNode(NodeId /*node*/) const { return 0; }

  // True while shard threads may be running events concurrently. State shared
  // across shards must only change when this is false (idle, or inside a
  // barrier task).
  virtual bool InParallelRegion() const { return false; }

  // Schedules fn on the shard owning `node`'s state.
  virtual EventId ScheduleAtForNode(NodeId /*node*/, SimTime t,
                                    std::function<void()> fn) {
    return ScheduleAt(t, std::move(fn));
  }
  EventId ScheduleAfterForNode(NodeId node, SimTime delay,
                               std::function<void()> fn) {
    return ScheduleAtForNode(node, Now() + delay, std::move(fn));
  }

  // Schedules fn to run with every shard quiescent, at the first window
  // boundary at-or-after t. Not cancellable.
  virtual EventId ScheduleBarrier(SimTime t, std::function<void()> fn) {
    return ScheduleAt(t, std::move(fn));
  }
};

}  // namespace globe::sim

#endif  // SRC_SIM_ENGINE_H_
