#include "src/sim/simulator.h"

#include <cassert>

namespace globe::sim {

Simulator::EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  EventId id = next_id_++;
  heap_.Push(t, id, std::move(fn));
  return id;
}

bool Simulator::Cancel(EventId id) { return heap_.Cancel(id); }

bool Simulator::Step() {
  if (heap_.Peek() == nullptr) {
    return false;
  }
  TimedEvent event = heap_.PopTop();
  now_ = event.time;
  ++executed_;
  event.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    const TimedEvent* next = heap_.Peek();
    if (next == nullptr || next->time > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace globe::sim
