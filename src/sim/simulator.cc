#include "src/sim/simulator.h"

#include <cassert>

namespace globe::sim {

Simulator::EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) {
    return false;
  }
  cancelled_ids_.insert(id);
  return true;
}

void Simulator::DropCancelledPrefix() {
  while (!queue_.empty() && cancelled_ids_.count(queue_.top().id) > 0) {
    cancelled_ids_.erase(queue_.top().id);
    queue_.pop();
  }
}

bool Simulator::Step() {
  DropCancelledPrefix();
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the event must be copied out before pop.
  Event ev = queue_.top();
  queue_.pop();
  pending_ids_.erase(ev.id);
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    DropCancelledPrefix();
    if (queue_.empty() || queue_.top().time > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace globe::sim
