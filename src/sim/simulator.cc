#include "src/sim/simulator.h"

#include <cassert>

namespace globe::sim {

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the event must be copied out before pop.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace globe::sim
