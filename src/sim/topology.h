// Hierarchical Internet topology.
//
// The Globe Location Service "divides the Internet into a hierarchy of domains"
// (paper §3.5, Figure 2): sites combine into cities, cities into countries, countries
// into continents, continents into the world. This module models exactly that tree.
// Hosts attach to leaf domains; the communication cost between two hosts is a function
// of how far up the tree their lowest common ancestor lies, which is also the quantity
// the paper's locality claim is stated in.

#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/endpoint.h"  // NodeId lives with the transport seam
#include "src/util/status.h"

namespace globe::sim {

using DomainId = uint32_t;

constexpr DomainId kNoDomain = static_cast<DomainId>(-1);

// Communication cost parameters indexed by "ascent level": the number of tree levels
// one must climb from the leaf domains to reach the lowest common ancestor.
// Level 0 = both hosts in the same leaf domain (a LAN). Higher levels are wider-area
// links. Values beyond the vector's size clamp to the last entry.
struct LinkProfile {
  // One-way propagation latency in microseconds.
  std::vector<double> latency_us = {300, 2'000, 10'000, 40'000, 150'000};
  // Bottleneck throughput in bytes per microsecond (1 byte/us = 1 MB/s).
  std::vector<double> bytes_per_us = {12.5, 6.25, 2.5, 1.25, 0.625};
  // Latency for a node talking to itself (loopback).
  double loopback_us = 20;
  // Fixed per-message processing overhead at each end.
  double per_message_us = 50;

  double LatencyAt(int level) const;
  double ThroughputAt(int level) const;
};

class Topology {
 public:
  Topology() = default;

  // Adds a domain. parent == kNoDomain makes it a root. The tree may have any depth;
  // typical worlds use world > continent > country > city > site.
  DomainId AddDomain(std::string name, DomainId parent);

  // Adds a host attached to a leaf domain (no check that the domain stays leaf —
  // hosts at interior domains model e.g. a directory node at a country's exchange).
  NodeId AddNode(std::string name, DomainId domain);

  size_t num_domains() const { return domains_.size(); }
  size_t num_nodes() const { return nodes_.size(); }

  const std::string& DomainName(DomainId d) const { return domains_[d].name; }
  const std::string& NodeName(NodeId n) const { return nodes_[n].name; }
  DomainId DomainParent(DomainId d) const { return domains_[d].parent; }
  DomainId NodeDomain(NodeId n) const { return nodes_[n].domain; }
  const std::vector<DomainId>& DomainChildren(DomainId d) const {
    return domains_[d].children;
  }
  int DomainDepth(DomainId d) const { return domains_[d].depth; }

  // Lowest common ancestor of two domains. Both must belong to the same tree.
  DomainId Lca(DomainId a, DomainId b) const;

  // Whether `ancestor` is d or an ancestor of d.
  bool IsAncestorOrSelf(DomainId ancestor, DomainId d) const;

  // Ascent level between two nodes: max over both endpoints of the number of levels
  // from the node's domain up to the LCA. Level 0 means same leaf domain.
  int AscentLevel(NodeId a, NodeId b) const;

  // One-way latency (us) between two nodes under the given profile.
  double LatencyUs(NodeId a, NodeId b, const LinkProfile& profile) const;

  // Serialization time (us) for a message of `bytes` between two nodes.
  double TransmitUs(NodeId a, NodeId b, uint64_t bytes, const LinkProfile& profile) const;

  // All nodes attached at or below a domain.
  std::vector<NodeId> NodesUnder(DomainId d) const;

 private:
  struct Domain {
    std::string name;
    DomainId parent;
    int depth;
    std::vector<DomainId> children;
  };
  struct Node {
    std::string name;
    DomainId domain;
  };

  std::vector<Domain> domains_;
  std::vector<Node> nodes_;
};

// Convenience builder for the symmetric worlds used by tests and benches:
// `fanouts = {continents, countries, cities, sites}` and `hosts_per_site` hosts per
// leaf. Domain names are dotted paths ("world.c0.k1.t2.s3").
struct UniformWorld {
  Topology topology;
  DomainId root = kNoDomain;
  std::vector<DomainId> leaf_domains;
  std::vector<NodeId> hosts;  // hosts_per_site consecutive hosts per leaf domain
};
UniformWorld BuildUniformWorld(const std::vector<int>& fanouts, int hosts_per_site);

}  // namespace globe::sim

#endif  // SRC_SIM_TOPOLOGY_H_
