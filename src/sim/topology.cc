#include "src/sim/topology.h"

#include <algorithm>
#include <cassert>

namespace globe::sim {

double LinkProfile::LatencyAt(int level) const {
  if (latency_us.empty()) {
    return 0;
  }
  size_t idx = std::min(static_cast<size_t>(std::max(level, 0)), latency_us.size() - 1);
  return latency_us[idx];
}

double LinkProfile::ThroughputAt(int level) const {
  if (bytes_per_us.empty()) {
    return 1.0;
  }
  size_t idx = std::min(static_cast<size_t>(std::max(level, 0)), bytes_per_us.size() - 1);
  return bytes_per_us[idx];
}

DomainId Topology::AddDomain(std::string name, DomainId parent) {
  int depth = 0;
  if (parent != kNoDomain) {
    assert(parent < domains_.size());
    depth = domains_[parent].depth + 1;
    domains_[parent].children.push_back(static_cast<DomainId>(domains_.size()));
  }
  domains_.push_back(Domain{std::move(name), parent, depth, {}});
  return static_cast<DomainId>(domains_.size() - 1);
}

NodeId Topology::AddNode(std::string name, DomainId domain) {
  assert(domain < domains_.size());
  nodes_.push_back(Node{std::move(name), domain});
  return static_cast<NodeId>(nodes_.size() - 1);
}

DomainId Topology::Lca(DomainId a, DomainId b) const {
  while (a != b) {
    int da = domains_[a].depth;
    int db = domains_[b].depth;
    if (da >= db) {
      a = domains_[a].parent;
      assert(a != kNoDomain && "domains are in different trees");
    } else {
      b = domains_[b].parent;
      assert(b != kNoDomain && "domains are in different trees");
    }
  }
  return a;
}

bool Topology::IsAncestorOrSelf(DomainId ancestor, DomainId d) const {
  while (d != kNoDomain) {
    if (d == ancestor) {
      return true;
    }
    d = domains_[d].parent;
  }
  return false;
}

int Topology::AscentLevel(NodeId a, NodeId b) const {
  DomainId da = nodes_[a].domain;
  DomainId db = nodes_[b].domain;
  DomainId lca = Lca(da, db);
  int ascent_a = domains_[da].depth - domains_[lca].depth;
  int ascent_b = domains_[db].depth - domains_[lca].depth;
  return std::max(ascent_a, ascent_b);
}

double Topology::LatencyUs(NodeId a, NodeId b, const LinkProfile& profile) const {
  if (a == b) {
    return profile.loopback_us;
  }
  return profile.LatencyAt(AscentLevel(a, b));
}

double Topology::TransmitUs(NodeId a, NodeId b, uint64_t bytes, const LinkProfile& profile) const {
  if (a == b) {
    return 0;
  }
  double throughput = profile.ThroughputAt(AscentLevel(a, b));
  return static_cast<double>(bytes) / throughput;
}

std::vector<NodeId> Topology::NodesUnder(DomainId d) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (IsAncestorOrSelf(d, nodes_[n].domain)) {
      out.push_back(n);
    }
  }
  return out;
}

namespace {
void BuildSubtree(UniformWorld* world, DomainId parent, const std::vector<int>& fanouts,
                  size_t level, int hosts_per_site, const std::string& path) {
  if (level == fanouts.size()) {
    world->leaf_domains.push_back(parent);
    for (int h = 0; h < hosts_per_site; ++h) {
      world->hosts.push_back(
          world->topology.AddNode(path + ".h" + std::to_string(h), parent));
    }
    return;
  }
  for (int i = 0; i < fanouts[level]; ++i) {
    std::string child_path = path + "." + std::string(1, "ckts"[level % 4]) + std::to_string(i);
    DomainId child = world->topology.AddDomain(child_path, parent);
    BuildSubtree(world, child, fanouts, level + 1, hosts_per_site, child_path);
  }
}
}  // namespace

UniformWorld BuildUniformWorld(const std::vector<int>& fanouts, int hosts_per_site) {
  UniformWorld world;
  world.root = world.topology.AddDomain("world", kNoDomain);
  BuildSubtree(&world, world.root, fanouts, 0, hosts_per_site, "world");
  return world;
}

}  // namespace globe::sim
