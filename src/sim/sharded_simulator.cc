#include "src/sim/sharded_simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace globe::sim {
namespace {

constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();

// Which shard (of which engine) the calling thread is currently executing
// events for. Set for the duration of RunShardWindow only; everything else is
// idle context.
thread_local const ShardedSimulator* tls_engine = nullptr;
thread_local size_t tls_shard = 0;

}  // namespace

ShardedSimulator::ShardedSimulator(size_t shard_count, SimTime lookahead_us)
    : lookahead_(lookahead_us),
      shards_(shard_count),
      shard_active_(shard_count, 0) {
  assert(shard_count >= 1 && shard_count < kBarrierShard);
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

void ShardedSimulator::AssignNode(NodeId node, size_t shard) {
  assert(shard < shards_.size());
  assert(!InParallelRegion());
  if (node >= node_shard_.size()) {
    node_shard_.resize(node + 1, 0);
  }
  node_shard_[node] = static_cast<uint8_t>(shard);
}

void ShardedSimulator::AssignNodes(const std::vector<NodeId>& nodes,
                                   size_t shard) {
  for (NodeId node : nodes) {
    AssignNode(node, shard);
  }
}

size_t ShardedSimulator::ShardOfNode(NodeId node) const {
  return node < node_shard_.size() ? node_shard_[node] : 0;
}

size_t ShardedSimulator::current_shard() const {
  return tls_engine == this ? tls_shard : 0;
}

SimTime ShardedSimulator::Now() const {
  if (tls_engine == this) {
    return shards_[tls_shard].now;
  }
  return now_;
}

ShardedSimulator::EventId ShardedSimulator::ScheduleAt(
    SimTime t, std::function<void()> fn) {
  // From an event context this lands on the executing shard (the scheduler's
  // own state lives there); from idle context it lands on shard 0.
  size_t index = tls_engine == this ? tls_shard : 0;
  Shard& shard = shards_[index];
  assert(t >= (tls_engine == this ? shard.now : now_) &&
         "cannot schedule into the past");
  EventId id = MakeId(shard, index);
  shard.heap.Push(t, id, std::move(fn));
  return id;
}

ShardedSimulator::EventId ShardedSimulator::ScheduleAtForNode(
    NodeId node, SimTime t, std::function<void()> fn) {
  size_t target = ShardOfNode(node);
  if (!InParallelRegion()) {
    // Idle or barrier context: every shard is parked, push directly.
    Shard& shard = shards_[target];
    assert(t >= shard.now && "cannot schedule into the past");
    EventId id = MakeId(shard, target);
    shard.heap.Push(t, id, std::move(fn));
    return id;
  }
  assert(tls_engine == this);
  if (target == tls_shard) {
    return ScheduleAt(t, std::move(fn));
  }
  // Cross-shard while shards run: buffer in the source shard's outbox; the
  // event is merged — and gets its real target-shard id — at the boundary.
  Shard& source = shards_[tls_shard];
  EventId provisional = MakeId(source, tls_shard);
  source.outbox.push_back(Outgoing{t, provisional, target, std::move(fn)});
  return provisional;
}

ShardedSimulator::EventId ShardedSimulator::ScheduleBarrier(
    SimTime t, std::function<void()> fn) {
  assert(!InParallelRegion() &&
         "barrier tasks must be scheduled from idle or barrier context");
  uint64_t seq = next_barrier_seq_++;
  barriers_.emplace(std::make_pair(t, seq), std::move(fn));
  return (seq << kShardBits) | kBarrierShard;
}

bool ShardedSimulator::Cancel(EventId id) {
  size_t index = static_cast<size_t>(id & kShardMask);
  if (index >= shards_.size()) {
    return false;  // barrier ids and garbage are not cancellable
  }
  Shard& shard = shards_[index];
  if (!InParallelRegion()) {
    return shard.heap.Cancel(id);
  }
  assert(tls_engine == this);
  if (index == tls_shard) {
    if (shard.heap.Cancel(id)) {
      return true;
    }
    // The id may still be a provisional outbox entry from this window.
    auto& outbox = shard.outbox;
    for (auto it = outbox.begin(); it != outbox.end(); ++it) {
      if (it->provisional_id == id) {
        outbox.erase(it);
        return true;
      }
    }
    return false;
  }
  // Cross-shard cancel while the target shard may be running: defer to the
  // boundary, where it is applied in canonical order. Optimistically reported
  // as cancelled; in practice cancels are shard-local (RPC deadline timers
  // live on the caller's shard).
  shards_[tls_shard].deferred_cancels.push_back(id);
  return true;
}

void ShardedSimulator::RunShardWindow(size_t index, SimTime t_end) {
  tls_engine = this;
  tls_shard = index;
  Shard& shard = shards_[index];
  for (;;) {
    const TimedEvent* next = shard.heap.Peek();
    if (next == nullptr || next->time >= t_end) {
      break;
    }
    TimedEvent event = shard.heap.PopTop();
    shard.now = event.time;
    ++shard.executed;
    event.fn();
  }
  tls_engine = nullptr;
  tls_shard = 0;
}

void ShardedSimulator::MergeBoundary() {
  // Deferred cross-shard cancels first, in canonical (ascending id) order.
  std::vector<uint64_t> cancels;
  for (Shard& shard : shards_) {
    cancels.insert(cancels.end(), shard.deferred_cancels.begin(),
                   shard.deferred_cancels.end());
    shard.deferred_cancels.clear();
  }
  if (!cancels.empty()) {
    std::sort(cancels.begin(), cancels.end());
    for (uint64_t id : cancels) {
      shards_[id & kShardMask].heap.Cancel(id);
    }
  }

  // Merge every outbox in canonical (time, source shard, source seq) order,
  // assigning fresh target-shard ids in that order so tie-breaks downstream
  // are independent of which thread filled which outbox first.
  std::vector<Outgoing> all;
  for (Shard& shard : shards_) {
    all.insert(all.end(), std::make_move_iterator(shard.outbox.begin()),
               std::make_move_iterator(shard.outbox.end()));
    shard.outbox.clear();
  }
  if (all.empty()) {
    return;
  }
  std::sort(all.begin(), all.end(), [](const Outgoing& a, const Outgoing& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    uint64_t a_shard = a.provisional_id & kShardMask;
    uint64_t b_shard = b.provisional_id & kShardMask;
    if (a_shard != b_shard) {
      return a_shard < b_shard;
    }
    return (a.provisional_id >> kShardBits) < (b.provisional_id >> kShardBits);
  });
  for (Outgoing& out : all) {
    Shard& target = shards_[out.target];
    SimTime t = out.time;
    if (t < target.now) {
      // The source scheduled closer than the engine's lookahead: the target
      // already advanced past t. Clamp instead of travelling back in time.
      ++lookahead_violations_;
      t = target.now;
    }
    target.heap.Push(t, MakeId(target, out.target), std::move(out.fn));
  }
}

void ShardedSimulator::RunWindows(SimTime deadline, bool clamp_to_deadline) {
  for (;;) {
    MergeBoundary();

    SimTime t0 = kMaxTime;
    for (Shard& shard : shards_) {
      const TimedEvent* next = shard.heap.Peek();
      if (next != nullptr && next->time < t0) {
        t0 = next->time;
      }
    }
    SimTime tb = barriers_.empty() ? kMaxTime : barriers_.begin()->first.first;
    if (t0 == kMaxTime && tb == kMaxTime) {
      break;  // fully drained
    }

    if (tb <= t0) {
      // Barrier task runs before any event at-or-after its time, with every
      // shard parked. Run one task, then recompute (it may schedule more).
      if (tb > deadline) {
        break;
      }
      auto it = barriers_.begin();
      std::function<void()> fn = std::move(it->second);
      now_ = std::max(now_, tb);
      barriers_.erase(it);
      ++barriers_executed_;
      fn();
      continue;
    }

    if (t0 > deadline) {
      break;
    }

    SimTime window = std::max<SimTime>(lookahead_, 1);
    SimTime t_end = window > kMaxTime - t0 ? kMaxTime : t0 + window;
    if (deadline != kMaxTime && t_end > deadline) {
      t_end = deadline + 1;
    }
    if (tb < t_end) {
      t_end = tb;  // stop short so the barrier sees a quiescent world
    }

    std::vector<size_t> active;
    for (size_t i = 0; i < shards_.size(); ++i) {
      const TimedEvent* next = shards_[i].heap.Peek();
      if (next != nullptr && next->time < t_end) {
        active.push_back(i);
      }
    }
    ++windows_run_;
    if (active.size() == 1) {
      // Only one shard has work this window: run it inline, no thread
      // hand-off. On a single-core host this path keeps the sharded engine
      // within a few percent of the sequential one.
      in_parallel_.store(true, std::memory_order_relaxed);
      RunShardWindow(active.front(), t_end);
      in_parallel_.store(false, std::memory_order_relaxed);
    } else {
      ++parallel_windows_;
      DispatchWindow(active, t_end);
    }
    for (size_t i : active) {
      now_ = std::max(now_, shards_[i].now);
    }
  }
  if (clamp_to_deadline && now_ < deadline) {
    now_ = deadline;
  }
}

void ShardedSimulator::Run() { RunWindows(kMaxTime, /*clamp_to_deadline=*/false); }

void ShardedSimulator::RunUntil(SimTime deadline) {
  RunWindows(deadline, /*clamp_to_deadline=*/true);
}

void ShardedSimulator::DispatchWindow(const std::vector<size_t>& active,
                                      SimTime t_end) {
  StartWorkers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(shard_active_.begin(), shard_active_.end(), 0);
    for (size_t i : active) {
      shard_active_[i] = 1;
    }
    window_end_ = t_end;
    active_remaining_ = active.size();
    in_parallel_.store(true, std::memory_order_relaxed);
    ++generation_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return active_remaining_ == 0; });
    in_parallel_.store(false, std::memory_order_relaxed);
  }
}

void ShardedSimulator::StartWorkers() {
  if (!workers_.empty()) {
    return;
  }
  workers_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

void ShardedSimulator::WorkerMain(size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) {
      return;
    }
    seen = generation_;
    if (!shard_active_[index]) {
      continue;
    }
    SimTime t_end = window_end_;
    lock.unlock();
    RunShardWindow(index, t_end);
    lock.lock();
    if (--active_remaining_ == 0) {
      cv_done_.notify_one();
    }
  }
}

size_t ShardedSimulator::pending_events() const {
  size_t total = barriers_.size();
  for (const Shard& shard : shards_) {
    total += shard.heap.pending() + shard.outbox.size();
  }
  return total;
}

uint64_t ShardedSimulator::executed_events() const {
  uint64_t total = barriers_executed_;
  for (const Shard& shard : shards_) {
    total += shard.executed;
  }
  return total;
}

}  // namespace globe::sim
