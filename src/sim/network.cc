#include "src/sim/network.h"

#include <cassert>

namespace globe::sim {

uint64_t TrafficStats::TotalMessages() const {
  uint64_t total = loopback_messages;
  for (const auto& level : per_level) {
    total += level.messages;
  }
  return total;
}

uint64_t TrafficStats::TotalBytes() const {
  uint64_t total = loopback_bytes;
  for (const auto& level : per_level) {
    total += level.bytes;
  }
  return total;
}

uint64_t TrafficStats::BytesAtOrAbove(int level) const {
  uint64_t total = 0;
  for (size_t i = static_cast<size_t>(level); i < per_level.size(); ++i) {
    total += per_level[i].bytes;
  }
  return total;
}

void TrafficStats::Clear() {
  per_level.clear();
  loopback_messages = 0;
  loopback_bytes = 0;
  dropped_messages = 0;
  partitioned_messages = 0;
  down_node_messages = 0;
  dropped_per_link.clear();
}

Network::Network(Simulator* simulator, const Topology* topology, NetworkOptions options)
    : simulator_(simulator),
      topology_(topology),
      options_(std::move(options)),
      rng_(options_.rng_seed) {}

void Network::RegisterPort(NodeId node, uint16_t port, PortHandler handler) {
  handlers_[{node, port}] = std::make_shared<PortHandler>(std::move(handler));
}

void Network::UnregisterPort(NodeId node, uint16_t port) {
  handlers_.erase({node, port});
  // A service torn down while its host is crashed must not resurrect at restart.
  if (auto it = crashed_.find(node); it != crashed_.end()) {
    it->second.erase(port);
  }
}

double Network::DeliveryDelayUs(NodeId src, NodeId dst, size_t bytes) const {
  double latency = topology_->LatencyUs(src, dst, options_.profile);
  double transmit = topology_->TransmitUs(src, dst, bytes, options_.profile);
  return latency + transmit + options_.profile.per_message_us;
}

void Network::Send(const Endpoint& src, const Endpoint& dst, Bytes payload,
                   double extra_delay_us) {
  assert(src.node < topology_->num_nodes() && dst.node < topology_->num_nodes());

  if (eavesdropper_) {
    eavesdropper_(src, dst, payload);
  }

  if (!IsNodeUp(src.node) || !IsNodeUp(dst.node)) {
    ++stats_.down_node_messages;
    return;
  }
  if (IsPartitioned(src.node, dst.node)) {
    ++stats_.partitioned_messages;
    ++stats_.dropped_per_link[{src.node, dst.node}];
    return;
  }
  double drop = EffectiveDropProbability(src.node, dst.node);
  if (drop > 0 && rng_.Bernoulli(drop)) {
    ++stats_.dropped_messages;
    ++stats_.dropped_per_link[{src.node, dst.node}];
    return;
  }

  // Traffic accounting keyed by ascent level.
  if (src.node == dst.node) {
    ++stats_.loopback_messages;
    stats_.loopback_bytes += payload.size();
  } else {
    int level = topology_->AscentLevel(src.node, dst.node);
    if (stats_.per_level.size() <= static_cast<size_t>(level)) {
      stats_.per_level.resize(level + 1);
    }
    ++stats_.per_level[level].messages;
    stats_.per_level[level].bytes += payload.size();
  }

  if (options_.tamper_probability > 0 && !payload.empty() &&
      rng_.Bernoulli(options_.tamper_probability)) {
    size_t idx = static_cast<size_t>(rng_.UniformInt(payload.size()));
    payload[idx] ^= 0x55;
  }

  double delay = DeliveryDelayUs(src.node, dst.node, payload.size()) + extra_delay_us;
  // The payload is stored once, owned by the in-flight event; the handler (and
  // anything it hands the view to) pins that single allocation.
  Delivery delivery{src, dst, PayloadView::Own(std::move(payload))};
  simulator_->ScheduleAfter(
      static_cast<SimTime>(delay),
      [this, d = std::move(delivery)]() mutable { Deliver(std::move(d)); });
}

void Network::Deliver(Delivery delivery) {
  // Either endpoint going down while the message was in flight loses it: the
  // model charges the whole path as one hop, so a crashed sender's message is
  // still "on its wire" and dies with it.
  if (!IsNodeUp(delivery.dst.node) || !IsNodeUp(delivery.src.node)) {
    ++stats_.down_node_messages;
    return;
  }
  // A partition that started while the message was in flight cuts it too.
  if (IsPartitioned(delivery.src.node, delivery.dst.node)) {
    ++stats_.partitioned_messages;
    ++stats_.dropped_per_link[{delivery.src.node, delivery.dst.node}];
    return;
  }
  ++per_node_received_[delivery.dst.node];
  auto it = handlers_.find({delivery.dst.node, delivery.dst.port});
  if (it == handlers_.end()) {
    return;  // closed port: datagram lost
  }
  // Pin the handler: it may close (or replace) its own port mid-call, which
  // would destroy the std::function we are executing.
  std::shared_ptr<PortHandler> handler = it->second;
  (*handler)(delivery);
}

void Network::SetNodeUp(NodeId node, bool up) {
  if (up) {
    node_down_.erase(node);
  } else {
    node_down_[node] = true;
  }
}

bool Network::IsNodeUp(NodeId node) const {
  return node_down_.find(node) == node_down_.end();
}

double Network::EffectiveDropProbability(NodeId src, NodeId dst) const {
  auto it = link_drop_.find({src, dst});
  return it != link_drop_.end() ? it->second : options_.drop_probability;
}

void Network::SetLinkDropProbability(NodeId src, NodeId dst, double p) {
  link_drop_[{src, dst}] = p;
}

void Network::ClearLinkDropProbability(NodeId src, NodeId dst) {
  link_drop_.erase({src, dst});
}

void Network::PartitionPair(NodeId a, NodeId b, SimTime duration) {
  // Re-partitioning an active pair extends the window, never shortens it.
  SimTime& until = partitions_[PairKey(a, b)];
  until = std::max(until, simulator_->Now() + duration);
}

void Network::HealPartition(NodeId a, NodeId b) { partitions_.erase(PairKey(a, b)); }

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  auto it = partitions_.find(PairKey(a, b));
  return it != partitions_.end() && simulator_->Now() < it->second;
}

void Network::CrashNode(NodeId node) {
  if (IsCrashed(node)) {
    return;
  }
  auto& stash = crashed_[node];
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->first.first == node) {
      stash[it->first.second] = std::move(it->second);
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
  SetNodeUp(node, false);
}

void Network::RestartNode(NodeId node) {
  if (auto it = crashed_.find(node); it != crashed_.end()) {
    for (auto& [port, handler] : it->second) {
      // A port freshly registered while the node was crashed (a service rebuilt
      // from a checkpoint) wins over the stashed pre-crash handler.
      handlers_.try_emplace({node, port}, std::move(handler));
    }
    crashed_.erase(it);
  }
  SetNodeUp(node, true);
}

// ---------------------------------------------------------- PlainTransport

void PlainTransport::Send(const Endpoint& src, const Endpoint& dst, ByteSpan payload) {
  if (payload.size() > kMaxFrameBytes) {
    // Same refusal the socket backend's codec applies: the frame never leaves
    // the sender, and the caller's deadline/retry machinery observes the loss.
    return;
  }
  // The caller keeps ownership of its (scratch) buffer; the one copy here is
  // the payload entering the in-flight delivery event.
  network_->Send(src, dst, ToBytes(payload));
}

void PlainTransport::RegisterPort(NodeId node, uint16_t port, TransportHandler handler) {
  network_->RegisterPort(node, port, [handler = std::move(handler)](const Delivery& d) {
    handler(TransportDelivery{d.src, d.dst, d.payload, /*peer_principal=*/0,
                              /*integrity_protected=*/false});
  });
}

void PlainTransport::UnregisterPort(NodeId node, uint16_t port) {
  network_->UnregisterPort(node, port);
}

}  // namespace globe::sim
