#include "src/sim/network.h"

#include <cassert>

namespace globe::sim {

uint64_t TrafficStats::TotalMessages() const {
  uint64_t total = loopback_messages;
  for (const auto& level : per_level) {
    total += level.messages;
  }
  return total;
}

uint64_t TrafficStats::TotalBytes() const {
  uint64_t total = loopback_bytes;
  for (const auto& level : per_level) {
    total += level.bytes;
  }
  return total;
}

uint64_t TrafficStats::BytesAtOrAbove(int level) const {
  uint64_t total = 0;
  for (size_t i = static_cast<size_t>(level); i < per_level.size(); ++i) {
    total += per_level[i].bytes;
  }
  return total;
}

void TrafficStats::Clear() {
  per_level.clear();
  loopback_messages = 0;
  loopback_bytes = 0;
  dropped_messages = 0;
  partitioned_messages = 0;
  down_node_messages = 0;
  dropped_per_link.clear();
}

void TrafficStats::DrainFrom(TrafficStats* other) {
  if (per_level.size() < other->per_level.size()) {
    per_level.resize(other->per_level.size());
  }
  for (size_t i = 0; i < other->per_level.size(); ++i) {
    per_level[i].messages += other->per_level[i].messages;
    per_level[i].bytes += other->per_level[i].bytes;
  }
  loopback_messages += other->loopback_messages;
  loopback_bytes += other->loopback_bytes;
  dropped_messages += other->dropped_messages;
  partitioned_messages += other->partitioned_messages;
  down_node_messages += other->down_node_messages;
  for (const auto& [link, count] : other->dropped_per_link) {
    dropped_per_link[link] += count;
  }
  other->Clear();
}

Network::Network(EventEngine* engine, const Topology* topology, NetworkOptions options)
    : engine_(engine), topology_(topology), options_(std::move(options)) {
  // One state slice per engine shard. Shard 0 gets exactly the configured
  // seed, so a single-shard (sequential) network draws the identical random
  // stream the pre-sharding implementation drew.
  size_t count = engine_->shard_count();
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.emplace_back(options_.rng_seed + i * 0x9E3779B97F4A7C15ULL);
  }
}

void Network::RegisterPort(NodeId node, uint16_t port, PortHandler handler) {
  assert(!engine_->InParallelRegion() ||
         engine_->current_shard() == engine_->ShardOfNode(node));
  ShardOf(node).handlers[{node, port}] =
      std::make_shared<PortHandler>(std::move(handler));
}

void Network::UnregisterPort(NodeId node, uint16_t port) {
  assert(!engine_->InParallelRegion() ||
         engine_->current_shard() == engine_->ShardOfNode(node));
  ShardOf(node).handlers.erase({node, port});
  // A service torn down while its host is crashed must not resurrect at restart.
  if (auto it = crashed_.find(node); it != crashed_.end()) {
    it->second.erase(port);
  }
}

double Network::DeliveryDelayUs(NodeId src, NodeId dst, size_t bytes) const {
  double latency = topology_->LatencyUs(src, dst, options_.profile);
  double transmit = topology_->TransmitUs(src, dst, bytes, options_.profile);
  return latency + transmit + options_.profile.per_message_us;
}

void Network::Send(const Endpoint& src, const Endpoint& dst, Bytes payload,
                   double extra_delay_us) {
  assert(src.node < topology_->num_nodes() && dst.node < topology_->num_nodes());

  // Randomness and accounting for a send belong to the sending context's
  // shard: deterministic, because event placement is deterministic.
  ShardState& shard = CurrentShard();

  if (eavesdropper_) {
    eavesdropper_(src, dst, payload);
  }

  if (!IsNodeUp(src.node) || !IsNodeUp(dst.node)) {
    ++shard.stats.down_node_messages;
    return;
  }
  if (IsPartitioned(src.node, dst.node)) {
    ++shard.stats.partitioned_messages;
    ++shard.stats.dropped_per_link[{src.node, dst.node}];
    return;
  }
  double drop = EffectiveDropProbability(src.node, dst.node);
  if (drop > 0 && shard.rng.Bernoulli(drop)) {
    ++shard.stats.dropped_messages;
    ++shard.stats.dropped_per_link[{src.node, dst.node}];
    return;
  }

  // Traffic accounting keyed by ascent level.
  if (src.node == dst.node) {
    ++shard.stats.loopback_messages;
    shard.stats.loopback_bytes += payload.size();
  } else {
    int level = topology_->AscentLevel(src.node, dst.node);
    if (shard.stats.per_level.size() <= static_cast<size_t>(level)) {
      shard.stats.per_level.resize(level + 1);
    }
    ++shard.stats.per_level[level].messages;
    shard.stats.per_level[level].bytes += payload.size();
  }

  if (options_.tamper_probability > 0 && !payload.empty() &&
      shard.rng.Bernoulli(options_.tamper_probability)) {
    size_t idx = static_cast<size_t>(shard.rng.UniformInt(payload.size()));
    payload[idx] ^= 0x55;
  }

  double delay = DeliveryDelayUs(src.node, dst.node, payload.size()) + extra_delay_us;
  // The payload is stored once, owned by the in-flight event; the handler (and
  // anything it hands the view to) pins that single allocation. The delivery
  // event is homed on the destination node's shard, so the handler runs where
  // the receiving service's state lives.
  Delivery delivery{src, dst, PayloadView::Own(std::move(payload))};
  engine_->ScheduleAfterForNode(
      dst.node, static_cast<SimTime>(delay),
      [this, d = std::move(delivery)]() mutable { Deliver(std::move(d)); });
}

void Network::Deliver(Delivery delivery) {
  // Either endpoint going down while the message was in flight loses it: the
  // model charges the whole path as one hop, so a crashed sender's message is
  // still "on its wire" and dies with it.
  ShardState& shard = ShardOf(delivery.dst.node);
  if (!IsNodeUp(delivery.dst.node) || !IsNodeUp(delivery.src.node)) {
    ++shard.stats.down_node_messages;
    return;
  }
  // A partition that started while the message was in flight cuts it too.
  if (IsPartitioned(delivery.src.node, delivery.dst.node)) {
    ++shard.stats.partitioned_messages;
    ++shard.stats.dropped_per_link[{delivery.src.node, delivery.dst.node}];
    return;
  }
  ++shard.per_node_received[delivery.dst.node];
  auto it = shard.handlers.find({delivery.dst.node, delivery.dst.port});
  if (it == shard.handlers.end()) {
    return;  // closed port: datagram lost
  }
  // Pin the handler: it may close (or replace) its own port mid-call, which
  // would destroy the std::function we are executing.
  std::shared_ptr<PortHandler> handler = it->second;
  (*handler)(delivery);
}

void Network::SetNodeUp(NodeId node, bool up) {
  assert(!engine_->InParallelRegion());
  if (up) {
    node_down_.erase(node);
  } else {
    node_down_[node] = true;
  }
}

bool Network::IsNodeUp(NodeId node) const {
  return node_down_.find(node) == node_down_.end();
}

void Network::SetDropProbability(double p) {
  assert(!engine_->InParallelRegion());
  options_.drop_probability = p;
}

void Network::SetTamperProbability(double p) {
  assert(!engine_->InParallelRegion());
  options_.tamper_probability = p;
}

double Network::EffectiveDropProbability(NodeId src, NodeId dst) const {
  auto it = link_drop_.find({src, dst});
  return it != link_drop_.end() ? it->second : options_.drop_probability;
}

void Network::SetLinkDropProbability(NodeId src, NodeId dst, double p) {
  assert(!engine_->InParallelRegion());
  link_drop_[{src, dst}] = p;
}

void Network::ClearLinkDropProbability(NodeId src, NodeId dst) {
  assert(!engine_->InParallelRegion());
  link_drop_.erase({src, dst});
}

void Network::PartitionPair(NodeId a, NodeId b, SimTime duration) {
  assert(!engine_->InParallelRegion());
  // Re-partitioning an active pair extends the window, never shortens it.
  SimTime& until = partitions_[PairKey(a, b)];
  until = std::max(until, engine_->Now() + duration);
}

void Network::HealPartition(NodeId a, NodeId b) {
  assert(!engine_->InParallelRegion());
  partitions_.erase(PairKey(a, b));
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  auto it = partitions_.find(PairKey(a, b));
  return it != partitions_.end() && engine_->Now() < it->second;
}

void Network::CrashNode(NodeId node) {
  assert(!engine_->InParallelRegion());
  if (IsCrashed(node)) {
    return;
  }
  auto& stash = crashed_[node];
  auto& handlers = ShardOf(node).handlers;
  for (auto it = handlers.begin(); it != handlers.end();) {
    if (it->first.first == node) {
      stash[it->first.second] = std::move(it->second);
      it = handlers.erase(it);
    } else {
      ++it;
    }
  }
  SetNodeUp(node, false);
}

void Network::RestartNode(NodeId node) {
  assert(!engine_->InParallelRegion());
  if (auto it = crashed_.find(node); it != crashed_.end()) {
    auto& handlers = ShardOf(node).handlers;
    for (auto& [port, handler] : it->second) {
      // A port freshly registered while the node was crashed (a service rebuilt
      // from a checkpoint) wins over the stashed pre-crash handler.
      handlers.try_emplace({node, port}, std::move(handler));
    }
    crashed_.erase(it);
  }
  SetNodeUp(node, true);
}

void Network::SetEavesdropper(Eavesdropper e) {
  assert(!engine_->InParallelRegion());
  eavesdropper_ = std::move(e);
}

void Network::DrainShardCounters() const {
  assert(!engine_->InParallelRegion());
  for (ShardState& shard : shards_) {
    stats_.DrainFrom(&shard.stats);
    for (auto& [node, count] : shard.per_node_received) {
      per_node_received_[node] += count;
    }
    shard.per_node_received.clear();
  }
}

const TrafficStats& Network::stats() const {
  DrainShardCounters();
  return stats_;
}

TrafficStats* Network::mutable_stats() {
  DrainShardCounters();
  return &stats_;
}

const std::map<NodeId, uint64_t>& Network::per_node_received() const {
  DrainShardCounters();
  return per_node_received_;
}

void Network::ClearPerNodeReceived() {
  DrainShardCounters();
  per_node_received_.clear();
}

// ---------------------------------------------------------- PlainTransport

void PlainTransport::Send(const Endpoint& src, const Endpoint& dst, ByteSpan payload) {
  if (payload.size() > kMaxFrameBytes) {
    // Same refusal the socket backend's codec applies: the frame never leaves
    // the sender, and the caller's deadline/retry machinery observes the loss.
    return;
  }
  // The caller keeps ownership of its (scratch) buffer; the one copy here is
  // the payload entering the in-flight delivery event.
  network_->Send(src, dst, ToBytes(payload));
}

void PlainTransport::RegisterPort(NodeId node, uint16_t port, TransportHandler handler) {
  network_->RegisterPort(node, port, [handler = std::move(handler)](const Delivery& d) {
    handler(TransportDelivery{d.src, d.dst, d.payload, /*peer_principal=*/0,
                              /*integrity_protected=*/false});
  });
}

void PlainTransport::UnregisterPort(NodeId node, uint16_t port) {
  network_->UnregisterPort(node, port);
}

}  // namespace globe::sim
