// Request/response RPC over the transport seam.
//
// Globe services talk to each other in request/response style (GLS lookups, GOS
// commands, DNS queries, HTTP). This layer provides correlation, deadlines, retries
// and a pluggable Transport so the secure channel wrapper in src/sec can interpose
// without the services knowing (the paper §6.3 swaps TCP for TLS exactly this way:
// "we have cleanly separated communication from functional layers"). Everything
// here is written against sim::Transport and sim::Clock only, so the same stack
// runs over the simulated network and over real TCP (src/net).
//
// Client API, in three layers:
//   - Channel: the per-process client half. Channel::Call issues a call and returns
//     a movable CallHandle supporting Cancel(). Every call carries a deadline whose
//     simulator event is erased the moment the response lands (so draining a
//     synchronous test step costs the round-trip time, not the timeout), and an
//     optional declarative RetryPolicy replacing ad-hoc caller retry loops.
//   - Channel::PeerLoad: per-endpoint outstanding-request depth and an EWMA of
//     response latency, the load-feedback signal behind power-of-two-choices
//     routing (DirectoryRef::TryRoute).
//   - TypedMethod<Req, Resp>: a named method with typed request/response messages
//     (anything exposing Bytes Serialize() const / static Result<T> Deserialize),
//     removing the serialize -> Call -> deserialize -> status-check boilerplate
//     from every call site. Registers server handlers from the same definition, so
//     a wire message has exactly one description both sides share.
//
// Wire format of an RPC frame (all fields via src/util/serial.h):
//   u8 type (0 = request, 1 = response)
//   u64 request id (per attempt: retries go out under fresh ids)
//   request:  u64 call id (stable across retries; the at-most-once dedup key),
//             string method, length-prefixed payload
//   response: u8 status code, string status message, length-prefixed payload

#ifndef SRC_SIM_RPC_H_
#define SRC_SIM_RPC_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/endpoint.h"
#include "src/sim/transport.h"
#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::sim {

// Per-call metadata passed to server handlers.
struct RpcContext {
  Endpoint client;
  uint64_t peer_principal = 0;
  bool integrity_protected = false;
};

// Execution semantics of one server method. Idempotent methods (the default)
// may run once per delivered attempt — repeating them cannot corrupt state.
// Non-idempotent methods get at-most-once execution: the server remembers, per
// (client endpoint, call id), the response of the first execution and replays
// it on duplicate delivery — a retry whose original response was lost — instead
// of running the handler again. This is what makes writes safe to retry.
struct MethodTraits {
  bool idempotent = true;
};

inline constexpr MethodTraits kNonIdempotent{/*idempotent=*/false};

// Dedup entries are kept for this long after a call completes. Sized to the
// maximum retry horizon of any client policy in the tree: with the default 30 s
// per-attempt deadline and 3-attempt write budgets (geometric backoff from
// 200 ms), the last duplicate can trail the first execution by ~95 s.
inline constexpr SimTime kDefaultDedupTtl = 120 * kSecond;

class RpcServer {
 public:
  // Methods that can answer immediately.
  using SyncHandler = std::function<Result<Bytes>(const RpcContext&, ByteSpan request)>;
  // Methods that must issue their own RPCs before answering (e.g. a GLS directory
  // node forwarding a lookup to its parent). `respond` may be called from any later
  // simulator event, exactly once.
  using Responder = std::function<void(Result<Bytes>)>;
  using AsyncHandler =
      std::function<void(const RpcContext&, ByteSpan request, Responder respond)>;

  RpcServer(Transport* transport, NodeId node, uint16_t port);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void RegisterMethod(std::string method, SyncHandler handler, MethodTraits traits = {});
  void RegisterAsyncMethod(std::string method, AsyncHandler handler,
                           MethodTraits traits = {});

  // At-most-once bookkeeping for non-idempotent methods. The TTL must cover the
  // longest retry horizon of any client calling this server; entries also evict
  // oldest-first beyond `max_entries`. Both only bound completed calls — a call
  // whose handler is still running is never forgotten.
  void set_dedup_ttl(SimTime ttl) { dedup_ttl_ = ttl; }
  SimTime dedup_ttl() const { return dedup_ttl_; }
  void set_dedup_max_entries(size_t n) { dedup_max_entries_ = n; }
  // Duplicate deliveries answered from the dedup table (replayed or joined to
  // the in-flight execution) instead of re-running the handler.
  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  size_t dedup_entries() const { return dedup_.size(); }

  // Models request-processing cost: with a non-zero per-request service time,
  // requests are dispatched FIFO from a pool of virtual CPUs (one by default), so
  // a hot server builds a queue and its observed latency grows with load. 0 (the
  // default) dispatches inline with no delay, exactly as before.
  void set_service_time(SimTime per_request) { service_time_ = per_request; }
  SimTime service_time() const { return service_time_; }

  // Width of the virtual CPU pool behind set_service_time: with N workers up to N
  // requests are served concurrently and the FIFO queue drains N-wide — the
  // multi-core subnode model. Width 1 (the default) is the single-CPU behaviour.
  void set_worker_pool_width(size_t width) {
    worker_busy_until_.assign(width == 0 ? 1 : width, 0);
  }
  size_t worker_pool_width() const { return worker_busy_until_.size(); }

  // Persistence of the at-most-once table: completed entries ride along in a
  // host's checkpoint (mirroring how the GLS lookup cache rides in
  // DirectorySubnode::SaveState), so a server rebuilt from a checkpoint across a
  // crash still replays — instead of re-executing — duplicates of writes it
  // already ran. In-flight executions are deliberately not persisted: they died
  // with the process, and their retries should execute afresh on the rebuilt
  // server.
  void SerializeDedup(ByteWriter* writer) const;
  Status RestoreDedup(ByteReader* reader);

  NodeId node() const { return node_; }
  uint16_t port() const { return port_; }
  Endpoint endpoint() const { return {node_, port_}; }
  uint64_t requests_served() const { return requests_served_; }
  // Response frames serialized through the reusable scratch writer instead of a
  // fresh allocation per response.
  uint64_t responses_sent() const { return responses_sent_; }

 private:
  // One accepted non-idempotent call, identified by the issuing client endpoint
  // and the call id that stays stable across its retries.
  using DedupKey = std::pair<Endpoint, uint64_t>;
  struct DedupEntry {
    bool completed = false;
    Result<Bytes> response{Bytes{}};
    // Attempt ids whose response is owed once the (single) execution finishes.
    std::vector<uint64_t> waiting_attempts;
    SimTime expires_at = 0;  // set at completion
  };

  void OnDelivery(const TransportDelivery& delivery);
  void Dispatch(std::string_view method, ByteSpan payload,
                const RpcContext& context, uint64_t request_id,
                std::optional<DedupKey> dedup_key);
  void SendResponse(const Endpoint& client, uint64_t request_id,
                    const Result<Bytes>& result);
  // Records the execution's response and answers every attempt waiting on it.
  void CompleteDeduped(const DedupKey& key, const Result<Bytes>& result);
  void EvictExpiredDedup();

  Transport* transport_;
  NodeId node_;
  uint16_t port_;
  // Transparent comparators: lookups run on string_views into the receive
  // buffer without materialising a std::string per request.
  std::map<std::string, SyncHandler, std::less<>> sync_methods_;
  std::map<std::string, AsyncHandler, std::less<>> async_methods_;
  std::map<std::string, MethodTraits, std::less<>> method_traits_;
  uint64_t requests_served_ = 0;
  uint64_t responses_sent_ = 0;
  // Scratch buffer for response frames, reused across responses (Transport::Send
  // consumes the span before returning).
  ByteWriter send_scratch_;
  SimTime service_time_ = 0;
  std::vector<SimTime> worker_busy_until_{0};  // one slot per virtual CPU
  std::map<DedupKey, DedupEntry> dedup_;
  std::deque<std::pair<SimTime, DedupKey>> dedup_expiry_;  // completion order
  SimTime dedup_ttl_ = kDefaultDedupTtl;
  size_t dedup_max_entries_ = 65536;
  uint64_t duplicates_suppressed_ = 0;
  // Guards scheduled dispatches against a server destroyed while they queue.
  std::shared_ptr<bool> alive_;
};

// Which failures are worth repeating and how. `attempts` counts every try, so 1
// means no retries; backoff grows geometrically between attempts. Application
// errors (NotFound, PermissionDenied, ...) are never retried unless `retry_on`
// says so explicitly — by default only transport-level unavailability (deadline
// expiry, dead or unreachable servers) is considered transient.
struct RetryPolicy {
  uint32_t attempts = 1;
  SimTime backoff = 200 * kMillisecond;
  double backoff_multiplier = 2.0;
  std::function<bool(const Status&)> retry_on;

  bool ShouldRetry(const Status& status) const {
    if (retry_on) {
      return retry_on(status);
    }
    return status.code() == StatusCode::kUnavailable;
  }

  SimTime BackoffFor(uint32_t completed_attempts) const {
    double delay = static_cast<double>(backoff);
    for (uint32_t i = 1; i < completed_attempts; ++i) {
      delay *= backoff_multiplier;
    }
    return static_cast<SimTime>(delay);
  }
};

// Default per-attempt deadline for Channel calls.
inline constexpr SimTime kDefaultCallDeadline = 30 * kSecond;

struct CallOptions {
  // Per-attempt deadline. The deadline's simulator event is erased when the
  // response arrives, so the virtual clock only ever pays it on actual expiry.
  SimTime deadline = kDefaultCallDeadline;
  RetryPolicy retry;
};

// The default retry budget for state-modifying calls. Writes are safe to
// repeat because RpcServer executes non-idempotent methods at most once per
// call and replays the cached response on duplicate delivery; reads keep the
// layer's single-attempt default. Callers override the deadline where a dead
// peer must not wedge them (the replication fan-outs use 5 s per attempt).
inline CallOptions WriteCallOptions(SimTime deadline = kDefaultCallDeadline,
                                    uint32_t attempts = 3) {
  CallOptions options;
  options.deadline = deadline;
  options.retry.attempts = attempts;
  options.retry.backoff = 200 * kMillisecond;
  return options;
}

// Load feedback for one remote endpoint, as observed by one Channel.
struct PeerLoad {
  uint32_t outstanding = 0;     // calls in flight (including attempts being retried)
  double ewma_latency_us = 0;   // exponentially weighted response latency, 0 = no data
  uint64_t completed = 0;       // responses received (any status)
  uint64_t failed = 0;          // calls that exhausted their deadline and retries
};

// Strict weak ordering for power-of-two-choices picks: fewer in-flight requests
// wins; observed latency breaks ties.
inline bool LessLoaded(const PeerLoad& a, const PeerLoad& b) {
  if (a.outstanding != b.outstanding) {
    return a.outstanding < b.outstanding;
  }
  return a.ewma_latency_us < b.ewma_latency_us;
}

struct ChannelStats {
  uint64_t calls = 0;
  uint64_t retries = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;  // attempts that expired (before any retry)
};

// Shared between a Channel, its in-flight calls' simulator events and the
// CallHandles it hands out; defined in rpc.cc.
struct ChannelState;

// Handle to one in-flight call. Movable; destroying a handle does NOT cancel the
// call (fire-and-forget callers may simply drop it).
class CallHandle {
 public:
  CallHandle() = default;
  CallHandle(CallHandle&&) = default;
  CallHandle& operator=(CallHandle&&) = default;
  CallHandle(const CallHandle&) = delete;
  CallHandle& operator=(const CallHandle&) = delete;

  // Abandons the call: the callback never runs, the pending entry and its deadline
  // event are erased, and scheduled retries are dropped. No-op once the call has
  // completed (or on a default-constructed handle).
  void Cancel();

  // True while the call is still in flight.
  bool active() const;

 private:
  friend class Channel;
  CallHandle(std::weak_ptr<ChannelState> state, uint64_t id)
      : state_(std::move(state)), id_(id) {}

  std::weak_ptr<ChannelState> state_;
  uint64_t id_ = 0;
};

// The client half of the RPC layer: one ephemeral port on one node, any number of
// concurrent calls to any servers.
class Channel {
 public:
  // The response payload is a pinned view into the transport's delivery buffer:
  // reading it inside the callback is free; a callback that stashes it keeps the
  // backing buffer alive (copy the view, or `result->Copy()` for owned bytes).
  using Callback = std::function<void(Result<PayloadView>)>;

  // Binds to an ephemeral port on `node`.
  Channel(Transport* transport, NodeId node);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Issues a call; `done` runs at most once, with the response payload or an error
  // (UNAVAILABLE when the deadline and all retries are exhausted; whatever status
  // the server returned otherwise). It never runs after Cancel() on the returned
  // handle, nor after this Channel is destroyed.
  CallHandle Call(const Endpoint& server, std::string_view method, Bytes request,
                  Callback done, CallOptions options = {});

  // Load observed towards one endpoint; zeroes for peers never called.
  sim::PeerLoad PeerLoad(const Endpoint& peer) const;

  const ChannelStats& stats() const;

  NodeId node() const;
  Endpoint endpoint() const;

 private:
  std::shared_ptr<ChannelState> state_;
};

// Marker for methods whose request or response carries no payload.
struct EmptyMessage {
  Bytes Serialize() const { return {}; }
  static Result<EmptyMessage> Deserialize(ByteSpan) { return EmptyMessage{}; }
};

namespace wire_internal {

template <typename T>
Bytes SerializeMessage(const T& value) {
  if constexpr (std::is_same_v<T, Bytes>) {
    return value;
  } else {
    return value.Serialize();
  }
}

template <typename T>
Result<T> DeserializeMessage(ByteSpan data) {
  if constexpr (std::is_same_v<T, Bytes>) {
    return Bytes(data.begin(), data.end());
  } else {
    return T::Deserialize(data);
  }
}

}  // namespace wire_internal

// A named RPC method with typed request/response messages. Both must either be
// Bytes (passed through verbatim) or expose
//   Bytes Serialize() const;
//   static Result<T> Deserialize(ByteSpan);
// One constant describes the method for both sides of the wire:
//
//   inline const TypedMethod<LookupWireRequest, LookupResponse> kGlsLookup{"gls.lookup"};
//   kGlsLookup.Call(&channel, server, request, [](Result<LookupResponse> r) { ... });
//   kGlsLookup.Register(&server, [](const RpcContext&, const LookupWireRequest& req) {
//     ...
//   });
//
// Methods that mutate state declare it in the same constant
// (`kGlsInsert{"gls.insert", kNonIdempotent}`), so every server registering the
// method automatically executes it at most once per call.
template <typename Req, typename Resp>
class TypedMethod {
 public:
  using Callback = std::function<void(Result<Resp>)>;
  using SyncHandler = std::function<Result<Resp>(const RpcContext&, const Req&)>;
  using AsyncResponder = std::function<void(Result<Resp>)>;
  using AsyncHandler = std::function<void(const RpcContext&, Req, AsyncResponder)>;

  constexpr explicit TypedMethod(const char* name, MethodTraits traits = {})
      : name_(name), traits_(traits) {}

  const char* name() const { return name_; }
  const MethodTraits& traits() const { return traits_; }

  CallHandle Call(Channel* channel, const Endpoint& server, const Req& request,
                  Callback done, CallOptions options = {}) const {
    return channel->Call(server, name_, wire_internal::SerializeMessage(request),
                         [done = std::move(done)](Result<PayloadView> result) {
                           if (!result.ok()) {
                             done(result.status());
                             return;
                           }
                           // Deserialization is the ownership boundary: the typed
                           // response copies exactly the fields it keeps.
                           done(wire_internal::DeserializeMessage<Resp>(result->span()));
                         },
                         options);
  }

  void Register(RpcServer* server, SyncHandler handler) const {
    server->RegisterMethod(
        name_, [handler = std::move(handler)](const RpcContext& context,
                                              ByteSpan payload) -> Result<Bytes> {
          ASSIGN_OR_RETURN(Req request, wire_internal::DeserializeMessage<Req>(payload));
          ASSIGN_OR_RETURN(Resp response, handler(context, request));
          return wire_internal::SerializeMessage(response);
        },
        traits_);
  }

  void RegisterAsync(RpcServer* server, AsyncHandler handler) const {
    server->RegisterAsyncMethod(
        name_, [handler = std::move(handler)](const RpcContext& context, ByteSpan payload,
                                              RpcServer::Responder respond) {
          auto request = wire_internal::DeserializeMessage<Req>(payload);
          if (!request.ok()) {
            respond(request.status());
            return;
          }
          handler(context, std::move(*request),
                  [respond = std::move(respond)](Result<Resp> result) {
                    if (!result.ok()) {
                      respond(result.status());
                      return;
                    }
                    respond(wire_internal::SerializeMessage(*result));
                  });
        },
        traits_);
  }

 private:
  const char* name_;
  MethodTraits traits_;
};

}  // namespace globe::sim

#endif  // SRC_SIM_RPC_H_
