// Request/response RPC over the simulated network.
//
// Globe services talk to each other in request/response style (GLS lookups, GOS
// commands, DNS queries, HTTP). This layer provides correlation, timeouts and a
// pluggable Transport so the secure channel wrapper in src/sec can interpose without
// the services knowing (the paper §6.3 swaps TCP for TLS exactly this way: "we have
// cleanly separated communication from functional layers").
//
// Wire format of an RPC frame (all fields via src/util/serial.h):
//   u8 type (0 = request, 1 = response)
//   u64 request id
//   request:  string method, length-prefixed payload
//   response: u8 status code, string status message, length-prefixed payload

#ifndef SRC_SIM_RPC_H_
#define SRC_SIM_RPC_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::sim {

// What the RPC layer sees after the transport has processed an incoming frame.
// `peer_principal` is filled in by authenticated transports (0 = unauthenticated);
// plain transports always deliver 0.
struct TransportDelivery {
  Endpoint src;
  Endpoint dst;
  Bytes payload;
  uint64_t peer_principal = 0;
  bool integrity_protected = false;
};

using TransportHandler = std::function<void(const TransportDelivery&)>;

// Abstract message transport. PlainTransport forwards to the raw network;
// sec::SecureTransport adds handshakes, MACs and optional encryption.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void Send(const Endpoint& src, const Endpoint& dst, Bytes payload) = 0;
  virtual void RegisterPort(NodeId node, uint16_t port, TransportHandler handler) = 0;
  virtual void UnregisterPort(NodeId node, uint16_t port) = 0;
  virtual Simulator* simulator() = 0;
  // The underlying network, for topology-aware decisions (nearest-replica picks) and
  // traffic statistics. Never used to bypass the transport for sending.
  virtual Network* network() = 0;
};

class PlainTransport : public Transport {
 public:
  explicit PlainTransport(Network* network) : network_(network) {}

  void Send(const Endpoint& src, const Endpoint& dst, Bytes payload) override;
  void RegisterPort(NodeId node, uint16_t port, TransportHandler handler) override;
  void UnregisterPort(NodeId node, uint16_t port) override;
  Simulator* simulator() override { return network_->simulator(); }
  Network* network() override { return network_; }

 private:
  Network* network_;
};

// Allocates process-wide unique ephemeral ports for RPC clients.
uint16_t AllocateEphemeralPort();

// Per-call metadata passed to server handlers.
struct RpcContext {
  Endpoint client;
  uint64_t peer_principal = 0;
  bool integrity_protected = false;
};

class RpcServer {
 public:
  // Methods that can answer immediately.
  using SyncHandler = std::function<Result<Bytes>(const RpcContext&, ByteSpan request)>;
  // Methods that must issue their own RPCs before answering (e.g. a GLS directory
  // node forwarding a lookup to its parent). `respond` may be called from any later
  // simulator event, exactly once.
  using Responder = std::function<void(Result<Bytes>)>;
  using AsyncHandler = std::function<void(const RpcContext&, ByteSpan request, Responder respond)>;

  RpcServer(Transport* transport, NodeId node, uint16_t port);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void RegisterMethod(std::string method, SyncHandler handler);
  void RegisterAsyncMethod(std::string method, AsyncHandler handler);

  NodeId node() const { return node_; }
  uint16_t port() const { return port_; }
  Endpoint endpoint() const { return {node_, port_}; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  void OnDelivery(const TransportDelivery& delivery);
  void SendResponse(const Endpoint& client, uint64_t request_id, const Result<Bytes>& result);

  Transport* transport_;
  NodeId node_;
  uint16_t port_;
  std::map<std::string, SyncHandler> sync_methods_;
  std::map<std::string, AsyncHandler> async_methods_;
  uint64_t requests_served_ = 0;
};

class RpcClient {
 public:
  using Callback = std::function<void(Result<Bytes>)>;

  static constexpr SimTime kDefaultTimeout = 30 * kSecond;

  // Binds to an ephemeral port on `node`.
  RpcClient(Transport* transport, NodeId node);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Issues a call; `done` runs exactly once, with the response payload or an error
  // (UNAVAILABLE on timeout; whatever status the server returned otherwise).
  void Call(const Endpoint& server, std::string_view method, Bytes request, Callback done,
            SimTime timeout = kDefaultTimeout);

  NodeId node() const { return node_; }
  Endpoint endpoint() const { return {node_, port_}; }

 private:
  void OnDelivery(const TransportDelivery& delivery);

  Transport* transport_;
  NodeId node_;
  uint16_t port_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Callback> pending_;
  // Guards timeout callbacks against a client that has been destroyed: shared flag
  // owned by the client, captured weakly by scheduled timeouts.
  std::shared_ptr<bool> alive_;
};

}  // namespace globe::sim

#endif  // SRC_SIM_RPC_H_
