// Aggregation header for code that *instantiates* the simulation backend.
//
// Services compile against the seam alone (src/sim/transport.h, clock.h); only
// composition roots — gdn::GdnWorld, tests, benches — build the concrete
// Simulator/Topology/Network/PlainTransport stack, and they do it through this
// header. CI greps that nothing outside src/sim/ and src/net/ includes
// simulator.h or network.h directly, which is what keeps the seam honest.

#ifndef SRC_SIM_BACKEND_H_
#define SRC_SIM_BACKEND_H_

#include "src/sim/engine.h"             // IWYU pragma: export
#include "src/sim/network.h"            // IWYU pragma: export
#include "src/sim/sharded_simulator.h"  // IWYU pragma: export
#include "src/sim/simulator.h"          // IWYU pragma: export
#include "src/sim/topology.h"           // IWYU pragma: export

#endif  // SRC_SIM_BACKEND_H_
