// The Globe run-time system: binding to distributed shared objects (paper §3.4).
//
// "The client calls a special function in the run-time system, named bind, and
// passes it the object identifier. The run-time system takes the OID and asks the
// Globe Location Service to map this OID to one or more contact addresses. ... the
// local run-time system then creates a new local representative in the client's
// address space and integrates this new representative into the DSO."
//
// One RuntimeSystem per address space (per simulated host process). Binding can
// produce a thin proxy (default) or install a real replica — the GDN-HTTPD case where
// "the local representative that is installed ... may act as a replica for the DSO".

#ifndef SRC_DSO_RUNTIME_H_
#define SRC_DSO_RUNTIME_H_

#include <memory>
#include <optional>

#include "src/dns/gns.h"
#include "src/dso/control.h"
#include "src/dso/protocols.h"
#include "src/dso/repository.h"
#include "src/gls/directory.h"

namespace globe::dso {

struct BindOptions {
  // When set, install a local replica with this role (requires the semantics type to
  // be available in the implementation repository) instead of a thin proxy.
  std::optional<gls::ReplicaRole> as_replica;
  uint16_t semantics_type = 0;
  // Publish the new replica's contact address in the GLS so other clients can find
  // it. Only meaningful with as_replica.
  bool register_in_gls = false;
  // Fail-over wiring for the installed replica (set failover.enabled plus the
  // lease timings; oid, leaf directory and protocol are filled in by the
  // runtime). Only meaningful with as_replica on a protocol that re-elects
  // (master/slave, active); needs register_in_gls to be useful.
  FailoverConfig failover;
};

// A bound local representative plus its metadata.
struct BoundObject {
  gls::ObjectId oid;
  std::unique_ptr<ReplicationObject> replication;
  std::unique_ptr<ControlObject> control;
  gls::LookupResult lookup;           // GLS metrics for this bind
  bool registered_in_gls = false;

  void Invoke(std::string method, Bytes args, bool read_only, InvokeCallback done) {
    control->Invoke(std::move(method), std::move(args), read_only, std::move(done));
  }
};

struct BindStats {
  uint64_t binds = 0;
  uint64_t bind_failures = 0;
  uint64_t replicas_installed = 0;
};

class RuntimeSystem {
 public:
  // `gns` may be null if only OID-based binding is used on this host.
  RuntimeSystem(sim::Transport* transport, sim::NodeId host,
                gls::DirectoryRef leaf_directory,
                const ImplementationRepository* repository,
                dns::GnsClient* gns = nullptr);

  using BindCallback = std::function<void(Result<std::unique_ptr<BoundObject>>)>;

  // Binds by OID: GLS lookup, then proxy or replica installation.
  void Bind(const gls::ObjectId& oid, BindOptions options, BindCallback done);

  // Binds by symbolic name: GNS resolve, then Bind.
  void BindByName(std::string_view globe_name, BindOptions options, BindCallback done);

  // Gracefully releases a bound object: protocol shutdown plus GLS deregistration if
  // the bind registered a replica.
  void Unbind(std::unique_ptr<BoundObject> object, std::function<void(Status)> done);

  sim::NodeId host() const { return host_; }
  gls::GlsClient* gls() { return &gls_; }
  const BindStats& stats() const { return stats_; }

 private:
  void FinishBind(const gls::ObjectId& oid, BindOptions options, gls::LookupResult lookup,
                  BindCallback done);

  sim::Transport* transport_;
  sim::NodeId host_;
  gls::GlsClient gls_;
  const ImplementationRepository* repository_;
  dns::GnsClient* gns_;
  BindStats stats_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_RUNTIME_H_
