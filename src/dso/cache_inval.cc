#include "src/dso/cache_inval.h"

#include <algorithm>

#include "src/util/log.h"

namespace globe::dso {

namespace {

const sim::TypedMethod<EndpointMessage, VersionMessage> kCiRegister{"ci.register"};
const sim::TypedMethod<EndpointMessage, sim::EmptyMessage> kCiUnregister{
    "ci.unregister"};
const sim::TypedMethod<sim::EmptyMessage, VersionedState> kCiFetch{"ci.fetch"};
const sim::TypedMethod<VersionMessage, sim::EmptyMessage> kCiInvalidate{
    "ci.invalidate"};

}  // namespace

CacheInvalMaster::CacheInvalMaster(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)) {
  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    Invoke(invocation, [respond = std::move(respond)](Result<Bytes> result) {
      respond(std::move(result));
    });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{comm_.endpoint()};
                 });
  comm_.Register(kCiRegister,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionMessage> {
                   if (std::find(caches_.begin(), caches_.end(), request.endpoint) ==
                       caches_.end()) {
                     caches_.push_back(request.endpoint);
                   }
                   return VersionMessage{version_};
                 });
  comm_.Register(kCiUnregister,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<sim::EmptyMessage> {
                   caches_.erase(
                       std::remove(caches_.begin(), caches_.end(), request.endpoint),
                       caches_.end());
                   return sim::EmptyMessage{};
                 });
  comm_.Register(kCiFetch,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   ++fetches_served_;
                   return VersionedState{version_, semantics_->GetState()};
                 });
}

void CacheInvalMaster::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  ExecuteWrite(invocation, std::move(done));
}

void CacheInvalMaster::ExecuteWrite(const Invocation& invocation, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;

  if (caches_.empty()) {
    done(std::move(result));
    return;
  }
  // Invalidations retry on loss: the cache compares versions, so a duplicate
  // invalidation is harmless, and a lost one would leave a cache serving stale
  // reads for ever — exactly the message this protocol cannot afford to drop.
  VersionMessage invalidation{version_};
  sim::CallOptions invalidate_options = WriteCallOptions(5 * sim::kSecond);
  auto remaining = std::make_shared<size_t>(caches_.size());
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  for (const sim::Endpoint& cache : caches_) {
    comm_.Call(kCiInvalidate, cache, invalidation,
               [remaining, shared_done, shared_result,
                cache](Result<sim::EmptyMessage> ack) {
                 if (!ack.ok()) {
                   GLOG_WARN << "invalidation to " << sim::ToString(cache)
                             << " failed: " << ack.status();
                 }
                 if (--*remaining == 0) {
                   (*shared_done)(std::move(*shared_result));
                 }
               },
               invalidate_options);
  }
}

CacheInvalCache::CacheInvalCache(sim::Transport* transport, sim::NodeId host,
                                 std::unique_ptr<SemanticsObject> semantics,
                                 sim::Endpoint master, WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      master_(master) {
  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    Invoke(invocation, [respond = std::move(respond)](Result<Bytes> result) {
      respond(std::move(result));
    });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{master_};
                 });
  comm_.Register(kCiInvalidate,
                 [this](const sim::RpcContext& ctx,
                        const VersionMessage& msg) -> Result<sim::EmptyMessage> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   if (msg.version > version_) {
                     valid_ = false;
                   }
                   return sim::EmptyMessage{};
                 });
}

void CacheInvalCache::Start(std::function<void(Status)> done) {
  // Registration is find-before-insert on the master: safe to retry.
  comm_.Call(kCiRegister, master_, EndpointMessage{comm_.endpoint()},
             [done = std::move(done)](Result<VersionMessage> result) {
               done(result.ok() ? OkStatus() : result.status());
             },
             WriteCallOptions());
}

void CacheInvalCache::Shutdown(std::function<void(Status)> done) {
  comm_.Call(kCiUnregister, master_, EndpointMessage{comm_.endpoint()},
             [done = std::move(done)](Result<sim::EmptyMessage> result) {
               done(result.ok() ? OkStatus() : result.status());
             },
             WriteCallOptions());
}

void CacheInvalCache::WithValidState(std::function<void(Status)> fn) {
  if (valid_) {
    fn(OkStatus());
    return;
  }
  ++fetches_;
  comm_.Call(kCiFetch, master_, sim::EmptyMessage{},
             [this, fn = std::move(fn)](Result<VersionedState> result) {
               if (!result.ok()) {
                 fn(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
                 valid_ = true;
               }
               fn(s);
             });
}

void CacheInvalCache::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    WithValidState([this, invocation, done = std::move(done)](Status s) {
      if (!s.ok()) {
        done(s);
        return;
      }
      done(semantics_->Invoke(invocation));
    });
    return;
  }
  // Writes forward to the master, which dedups dso.invoke — retries are safe.
  comm_.Call(kDsoInvoke, master_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

}  // namespace globe::dso
