#include "src/dso/cache_inval.h"

#include <algorithm>

#include "src/util/log.h"

namespace globe::dso {

CacheInvalMaster::CacheInvalMaster(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)) {
  comm_.RegisterAsyncMethod(
      "dso.invoke", [this](const sim::RpcContext& ctx, ByteSpan request,
                           sim::RpcServer::Responder respond) {
        auto invocation = Invocation::Deserialize(request);
        if (!invocation.ok()) {
          respond(invocation.status());
          return;
        }
        if (!invocation->read_only && write_guard_) {
          if (Status s = write_guard_(ctx); !s.ok()) {
            respond(s);
            return;
          }
        }
        Invoke(*invocation, [respond = std::move(respond)](Result<Bytes> result) {
          respond(std::move(result));
        });
      });
  comm_.RegisterMethod("dso.get_state",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         return VersionedState{version_, semantics_->GetState()}.Serialize();
                       });
  comm_.RegisterMethod("dso.master_endpoint",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         ByteWriter w;
                         SerializeEndpoint(comm_.endpoint(), &w);
                         return w.Take();
                       });
  comm_.RegisterMethod(
      "ci.register", [this](const sim::RpcContext&, ByteSpan request) -> Result<Bytes> {
        ByteReader r(request);
        ASSIGN_OR_RETURN(sim::Endpoint cache, DeserializeEndpoint(&r));
        if (std::find(caches_.begin(), caches_.end(), cache) == caches_.end()) {
          caches_.push_back(cache);
        }
        ByteWriter w;
        w.WriteU64(version_);
        return w.Take();
      });
  comm_.RegisterMethod(
      "ci.unregister", [this](const sim::RpcContext&, ByteSpan request) -> Result<Bytes> {
        ByteReader r(request);
        ASSIGN_OR_RETURN(sim::Endpoint cache, DeserializeEndpoint(&r));
        caches_.erase(std::remove(caches_.begin(), caches_.end(), cache), caches_.end());
        return Bytes{};
      });
  comm_.RegisterMethod("ci.fetch",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         ++fetches_served_;
                         return VersionedState{version_, semantics_->GetState()}.Serialize();
                       });
}

void CacheInvalMaster::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  ExecuteWrite(invocation, std::move(done));
}

void CacheInvalMaster::ExecuteWrite(const Invocation& invocation, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;

  if (caches_.empty()) {
    done(std::move(result));
    return;
  }
  ByteWriter w;
  w.WriteU64(version_);
  Bytes invalidation = w.Take();
  auto remaining = std::make_shared<size_t>(caches_.size());
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  for (const sim::Endpoint& cache : caches_) {
    comm_.Call(cache, "ci.invalidate", invalidation,
               [remaining, shared_done, shared_result, cache](Result<Bytes> ack) {
                 if (!ack.ok()) {
                   GLOG_WARN << "invalidation to " << sim::ToString(cache)
                             << " failed: " << ack.status();
                 }
                 if (--*remaining == 0) {
                   (*shared_done)(std::move(*shared_result));
                 }
               },
               /*timeout=*/5 * sim::kSecond);
  }
}

CacheInvalCache::CacheInvalCache(sim::Transport* transport, sim::NodeId host,
                                 std::unique_ptr<SemanticsObject> semantics,
                                 sim::Endpoint master, WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      master_(master) {
  comm_.RegisterAsyncMethod(
      "dso.invoke", [this](const sim::RpcContext& ctx, ByteSpan request,
                           sim::RpcServer::Responder respond) {
        auto invocation = Invocation::Deserialize(request);
        if (!invocation.ok()) {
          respond(invocation.status());
          return;
        }
        if (!invocation->read_only && write_guard_) {
          if (Status s = write_guard_(ctx); !s.ok()) {
            respond(s);
            return;
          }
        }
        Invoke(*invocation, [respond = std::move(respond)](Result<Bytes> result) {
          respond(std::move(result));
        });
      });
  comm_.RegisterMethod("dso.get_state",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         return VersionedState{version_, semantics_->GetState()}.Serialize();
                       });
  comm_.RegisterMethod("dso.master_endpoint",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         ByteWriter w;
                         SerializeEndpoint(master_, &w);
                         return w.Take();
                       });
  comm_.RegisterMethod(
      "ci.invalidate", [this](const sim::RpcContext& ctx, ByteSpan request) -> Result<Bytes> {
        if (write_guard_) {
          RETURN_IF_ERROR(write_guard_(ctx));
        }
        ByteReader r(request);
        ASSIGN_OR_RETURN(uint64_t new_version, r.ReadU64());
        if (new_version > version_) {
          valid_ = false;
        }
        return Bytes{};
      });
}

void CacheInvalCache::Start(std::function<void(Status)> done) {
  ByteWriter w;
  SerializeEndpoint(comm_.endpoint(), &w);
  comm_.Call(master_, "ci.register", w.Take(),
             [done = std::move(done)](Result<Bytes> result) {
               done(result.ok() ? OkStatus() : result.status());
             });
}

void CacheInvalCache::Shutdown(std::function<void(Status)> done) {
  ByteWriter w;
  SerializeEndpoint(comm_.endpoint(), &w);
  comm_.Call(master_, "ci.unregister", w.Take(),
             [done = std::move(done)](Result<Bytes> result) {
               done(result.ok() ? OkStatus() : result.status());
             });
}

void CacheInvalCache::WithValidState(std::function<void(Status)> fn) {
  if (valid_) {
    fn(OkStatus());
    return;
  }
  ++fetches_;
  comm_.Call(master_, "ci.fetch", {}, [this, fn = std::move(fn)](Result<Bytes> result) {
    if (!result.ok()) {
      fn(result.status());
      return;
    }
    auto vs = VersionedState::Deserialize(*result);
    if (!vs.ok()) {
      fn(vs.status());
      return;
    }
    Status s = semantics_->SetState(vs->state);
    if (s.ok()) {
      version_ = vs->version;
      valid_ = true;
    }
    fn(s);
  });
}

void CacheInvalCache::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    WithValidState([this, invocation, done = std::move(done)](Status s) {
      if (!s.ok()) {
        done(s);
        return;
      }
      done(semantics_->Invoke(invocation));
    });
    return;
  }
  comm_.Call(master_, "dso.invoke", invocation.Serialize(),
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); });
}

}  // namespace globe::dso
