#include "src/dso/cache_inval.h"

#include <memory>

#include "src/util/log.h"

namespace globe::dso {

namespace {

const sim::TypedMethod<EndpointMessage, VersionMessage> kCiRegister{"ci.register"};
const sim::TypedMethod<EndpointMessage, sim::EmptyMessage> kCiUnregister{
    "ci.unregister"};
const sim::TypedMethod<sim::EmptyMessage, VersionedState> kCiFetch{"ci.fetch"};
const sim::TypedMethod<VersionMessage, PushAck> kCiInvalidate{"ci.invalidate"};

}  // namespace

CacheInvalMaster::CacheInvalMaster(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      group_(&comm_, GroupRole::kMaster) {
  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    InvokeFrom(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{comm_.endpoint()};
                 });
  comm_.Register(kCiRegister,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionMessage> {
                   group_.AddMember(request.endpoint);
                   return VersionMessage{version_, group_.epoch()};
                 });
  comm_.Register(kCiUnregister,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<sim::EmptyMessage> {
                   group_.RemoveMember(request.endpoint);
                   return sim::EmptyMessage{};
                 });
  comm_.Register(kCiFetch,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   ++fetches_served_;
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
}

void CacheInvalMaster::Invoke(const Invocation& invocation, InvokeCallback done) {
  InvokeFrom(invocation, comm_.endpoint().node, std::move(done));
}

void CacheInvalMaster::InvokeFrom(const Invocation& invocation, sim::NodeId client,
                                  InvokeCallback done) {
  if (group_.retired()) {
    group_.CountRetiredRefusal();
    done(FailedPrecondition("replica retired (object migrated); rebind"));
    return;
  }
  if (invocation.read_only) {
    Result<Bytes> result = semantics_->Invoke(invocation);
    if (access_hook_ && result.ok()) {
      access_hook_(AccessSample{false, result->size(), client});
    }
    done(std::move(result));
    return;
  }
  ExecuteWrite(invocation, client, std::move(done));
}

void CacheInvalMaster::ExecuteWrite(const Invocation& invocation, sim::NodeId client,
                                    InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;
  if (access_hook_) {
    access_hook_(AccessSample{true, invocation.args.size(), client});
  }

  // Invalidations through the group fan-out, retrying on loss: the cache
  // compares versions, so a duplicate invalidation is harmless, and a lost one
  // would leave a cache serving stale reads for ever — exactly the message this
  // protocol cannot afford to drop. Unreachable caches are kept in the set: a
  // cache that returns must still receive the next invalidation, or it would
  // serve its pre-outage copy indefinitely.
  VersionMessage invalidation{version_, group_.epoch()};
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  group_.FanOut(kCiInvalidate, invalidation, 5 * sim::kSecond,
                /*drop_unreachable=*/false, /*commit_point=*/0,
                [shared_done, shared_result](const FanOutResult&) {
                  (*shared_done)(std::move(*shared_result));
                });
}

CacheInvalCache::CacheInvalCache(sim::Transport* transport, sim::NodeId host,
                                 std::unique_ptr<SemanticsObject> semantics,
                                 sim::Endpoint master, WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      master_(master),
      group_(&comm_, GroupRole::kCache) {
  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    InvokeFrom(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{master_};
                 });
  comm_.Register(kCiInvalidate,
                 [this](const sim::RpcContext& ctx,
                        const VersionMessage& msg) -> Result<PushAck> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   PushAck ack = group_.FenceIncoming(msg.epoch);
                   if (ack.accepted == 0) {
                     return ack;  // stale-epoch master: keep our copy
                   }
                   if (msg.version > version_) {
                     valid_ = false;
                   }
                   return ack;
                 });
}

void CacheInvalCache::Start(std::function<void(Status)> done) {
  // Registration is find-before-insert on the master: safe to retry.
  comm_.Call(kCiRegister, master_, EndpointMessage{comm_.endpoint()},
             [this, done = std::move(done)](Result<VersionMessage> result) {
               if (result.ok() && result->epoch > group_.epoch()) {
                 group_.set_epoch(result->epoch);
               }
               done(result.ok() ? OkStatus() : result.status());
             },
             WriteCallOptions());
}

void CacheInvalCache::Shutdown(std::function<void(Status)> done) {
  group_.Stop();
  comm_.Call(kCiUnregister, master_, EndpointMessage{comm_.endpoint()},
             [done = std::move(done)](Result<sim::EmptyMessage> result) {
               done(result.ok() ? OkStatus() : result.status());
             },
             WriteCallOptions());
}

void CacheInvalCache::WithValidState(std::function<void(Status)> fn) {
  if (valid_) {
    fn(OkStatus());
    return;
  }
  ++fetches_;
  comm_.Call(kCiFetch, master_, sim::EmptyMessage{},
             [this, fn = std::move(fn)](Result<VersionedState> result) {
               if (!result.ok()) {
                 fn(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
                 if (result->epoch > group_.epoch()) {
                   group_.set_epoch(result->epoch);
                 }
                 valid_ = true;
               }
               fn(s);
             });
}

void CacheInvalCache::Invoke(const Invocation& invocation, InvokeCallback done) {
  InvokeFrom(invocation, comm_.endpoint().node, std::move(done));
}

void CacheInvalCache::InvokeFrom(const Invocation& invocation, sim::NodeId client,
                                 InvokeCallback done) {
  if (group_.retired()) {
    group_.CountRetiredRefusal();
    done(FailedPrecondition("replica retired (object migrated); rebind"));
    return;
  }
  if (invocation.read_only) {
    WithValidState([this, invocation, client, done = std::move(done)](Status s) {
      if (!s.ok()) {
        done(s);
        return;
      }
      Result<Bytes> result = semantics_->Invoke(invocation);
      if (access_hook_ && result.ok()) {
        access_hook_(AccessSample{false, result->size(), client});
      }
      done(std::move(result));
    });
    return;
  }
  // Writes forward to the master, which dedups dso.invoke — retries are safe.
  comm_.Call(kDsoInvoke, master_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

}  // namespace globe::dso
