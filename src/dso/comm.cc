#include "src/dso/comm.h"

namespace globe::dso {

CommunicationObject::CommunicationObject(sim::Transport* transport, sim::NodeId host)
    : transport_(transport),
      server_(std::make_unique<sim::RpcServer>(transport, host,
                                               sim::AllocateEphemeralPort())),
      channel_(std::make_unique<sim::Channel>(transport, host)) {}

}  // namespace globe::dso
