// Replication protocol identifiers and the protocol-independent factories.
//
// Paper §7: "There are currently two replication protocols an application programmer
// can choose from: client/(single) server and master/slave." We implement those two
// plus two of the protocols the object model is designed to make pluggable: active
// replication (paper §3.3: "one object may actively replicate all the state at all
// the local representatives") and lazy caching with invalidation ("while another may
// use lazy replication").

#ifndef SRC_DSO_PROTOCOLS_H_
#define SRC_DSO_PROTOCOLS_H_

#include <memory>
#include <vector>

#include "src/dso/replica_group.h"
#include "src/dso/subobjects.h"
#include "src/gls/oid.h"
#include "src/sec/principal.h"
#include "src/sim/rpc.h"

namespace globe::dso {

// Authorization hook for state-modifying traffic arriving over the network (paper
// §6.1, "Modifying Packages"): replicas "should not accept state-modifying method
// invocations and state update messages from unauthorized senders." Returns OK to
// admit the sender. A null guard admits everyone (the unsecured June-2000 GDN).
using WriteGuard = std::function<Status(const sim::RpcContext&)>;

// Builds the guard the GDN uses: the authenticated peer must hold one of the given
// roles (moderator tools and fellow GDN hosts, per §6.1).
WriteGuard RequireRoles(const sec::KeyRegistry* registry, std::vector<sec::Role> roles);

constexpr gls::ProtocolId kProtoClientServer = 1;
constexpr gls::ProtocolId kProtoMasterSlave = 2;
constexpr gls::ProtocolId kProtoActiveRepl = 3;
constexpr gls::ProtocolId kProtoCacheInval = 4;

std::string_view ProtocolName(gls::ProtocolId protocol);

// Everything needed to instantiate the hosting side of a replica on a Globe Object
// Server (or a GDN-HTTPD acting as a replica).
struct ReplicaSetup {
  sim::Transport* transport = nullptr;
  sim::NodeId host = sim::kNoNode;
  std::unique_ptr<SemanticsObject> semantics;
  gls::ReplicaRole role = gls::ReplicaRole::kMaster;
  // Existing contact addresses of the DSO (from the GLS); secondary replicas find
  // their master/sequencer here.
  std::vector<gls::ContactAddress> peers;
  // Write authorization (see WriteGuard above). Null = no checks.
  WriteGuard write_guard;
  // GLS-driven master fail-over (see dso::ReplicaGroup). Honoured by the
  // master/slave and active replication protocols; protocols that cannot
  // re-elect (client/server, cache/invalidate) ignore it. Disabled by default.
  FailoverConfig failover;
  // Telemetry hook the hosting server wants installed on the replica (see
  // dso::AccessHook). Null = no telemetry.
  AccessHook access_hook;
};

// Creates the replication subobject for a hosted replica. The caller must invoke
// Start() on the result (secondary replicas fetch their initial state there) before
// first use, and should register contact_address() in the GLS once started.
Result<std::unique_ptr<ReplicationObject>> MakeReplica(gls::ProtocolId protocol,
                                                       ReplicaSetup setup);

// Creates a thin client-side proxy that forwards every invocation to the nearest of
// the given contact addresses. Works against any protocol: replicas route reads
// locally and forward writes as their protocol requires.
Result<std::unique_ptr<ReplicationObject>> MakeProxy(
    sim::Transport* transport, sim::NodeId host,
    const std::vector<gls::ContactAddress>& addresses);

// Picks the contact address closest to `host` under the network's link profile.
Result<gls::ContactAddress> NearestAddress(sim::Transport* transport, sim::NodeId host,
                                           const std::vector<gls::ContactAddress>&
                                               addresses);

}  // namespace globe::dso

#endif  // SRC_DSO_PROTOCOLS_H_
