// Active replication: every member applies every write (paper §3.3: "one object may
// actively replicate all the state at all the local representatives").
//
// Writes are totally ordered by a sequencer (the member with the master role): any
// member receiving a write forwards the marshalled invocation to the sequencer, which
// assigns it a version, applies it locally, and broadcasts it to all members. Members
// buffer out-of-order deliveries and apply strictly in version order — invocations,
// not state, travel on the wire, which is what distinguishes this protocol from
// master/slave for large objects with small updates.
//
// Membership, epochs and sequencer fail-over ride on the shared dso::ReplicaGroup
// layer: applies are epoch-fenced (a deposed sequencer's broadcasts are refused),
// and with fail-over enabled a member that misses lease renewals races
// gls.claim_master and can be elected the new sequencer.
//
// Peer methods (beyond dso.invoke / dso.get_state / dso.lease):
//   ar.register : endpoint -> VersionedState      (member joins at the sequencer)
//   ar.order    : Invocation -> result bytes      (member -> sequencer)
//   ar.apply    : version, epoch, Invocation -> PushAck (sequencer -> members)

#ifndef SRC_DSO_ACTIVE_REPL_H_
#define SRC_DSO_ACTIVE_REPL_H_

#include <map>
#include <memory>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/replica_group.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class ActiveReplMember : public ReplicationObject {
 public:
  // Sequencer: pass an empty sequencer endpoint (node == kNoNode). Member: pass
  // the sequencer's contact endpoint.
  ActiveReplMember(sim::Transport* transport, sim::NodeId host,
                   std::unique_ptr<SemanticsObject> semantics, sim::Endpoint sequencer,
                   WriteGuard write_guard = nullptr, FailoverConfig failover = {});

  void Start(std::function<void(Status)> done) override;
  void Shutdown(std::function<void(Status)> done) override;

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  uint64_t epoch() const override { return group_.epoch(); }
  void set_epoch(uint64_t e) override { group_.set_epoch(e); }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoActiveRepl,
                               ToReplicaRole(group_.role())};
  }

  bool is_sequencer() const { return group_.is_master(); }
  size_t num_members() const { return group_.num_members(); }
  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }
  const ReplicaGroup* group() const override { return &group_; }
  void set_access_hook(AccessHook hook) override { access_hook_ = std::move(hook); }

 private:
  // Reads are recorded at the serving member; writes once, at the sequencer
  // that orders them (broadcast applies at other members are not accesses).
  void InvokeFrom(const Invocation& invocation, sim::NodeId client,
                  InvokeCallback done);
  // Sequencer side: orders a write, applies it, broadcasts it; responds with the
  // local execution result once every member acknowledged. A fenced broadcast
  // (a member moved to a newer epoch) fails the write unacknowledged.
  void OrderWrite(const Invocation& invocation, sim::NodeId client,
                  InvokeCallback done);
  // Member side: applies broadcast writes strictly in version order.
  Status ApplyOrdered(uint64_t write_version, const Invocation& invocation);
  // Registration handshake: join at the sequencer, adopt snapshot and epoch.
  void RegisterWithSequencer(std::function<void(Status)> done);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  sim::Endpoint sequencer_;                 // meaningful while not the sequencer
  ReplicaGroup group_;
  std::map<uint64_t, Invocation> pending_;  // out-of-order buffer (members)
  uint64_t version_ = 0;
  AccessHook access_hook_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_ACTIVE_REPL_H_
