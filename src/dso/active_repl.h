// Active replication: every member applies every write (paper §3.3: "one object may
// actively replicate all the state at all the local representatives").
//
// Writes are totally ordered by a sequencer (the member with the master role): any
// member receiving a write forwards the marshalled invocation to the sequencer, which
// assigns it a version, applies it locally, and broadcasts it to all members. Members
// buffer out-of-order deliveries and apply strictly in version order — invocations,
// not state, travel on the wire, which is what distinguishes this protocol from
// master/slave for large objects with small updates.
//
// Peer methods (beyond dso.invoke / dso.get_state):
//   ar.register : endpoint -> VersionedState   (member joins at the sequencer)
//   ar.order    : Invocation -> result bytes   (member -> sequencer)
//   ar.apply    : u64 version, Invocation -> empty (sequencer -> members)

#ifndef SRC_DSO_ACTIVE_REPL_H_
#define SRC_DSO_ACTIVE_REPL_H_

#include <map>
#include <memory>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class ActiveReplMember : public ReplicationObject {
 public:
  // Sequencer: pass an empty master endpoint (node == kNoNode). Member: pass the
  // sequencer's contact endpoint.
  ActiveReplMember(sim::Transport* transport, sim::NodeId host,
                   std::unique_ptr<SemanticsObject> semantics, sim::Endpoint sequencer,
                   WriteGuard write_guard = nullptr);

  void Start(std::function<void(Status)> done) override;

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoActiveRepl,
                               is_sequencer() ? gls::ReplicaRole::kMaster
                                              : gls::ReplicaRole::kSlave};
  }

  bool is_sequencer() const { return sequencer_.node == sim::kNoNode; }
  size_t num_members() const { return members_.size(); }
  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }

 private:
  // Sequencer side: orders a write, applies it, broadcasts it; responds with the
  // local execution result once every member acknowledged.
  void OrderWrite(const Invocation& invocation, InvokeCallback done);
  // Member side: applies broadcast writes strictly in version order.
  Status ApplyOrdered(uint64_t write_version, const Invocation& invocation);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  sim::Endpoint sequencer_;                // kNoNode when we are the sequencer
  std::vector<sim::Endpoint> members_;     // sequencer only
  std::map<uint64_t, Invocation> pending_; // out-of-order buffer (members)
  uint64_t version_ = 0;
};

}  // namespace globe::dso

#endif  // SRC_DSO_ACTIVE_REPL_H_
