// Active replication: every member applies every write (paper §3.3: "one object may
// actively replicate all the state at all the local representatives").
//
// Writes are totally ordered by a sequencer (the member with the master role): any
// member receiving a write forwards the marshalled invocation to the sequencer, which
// assigns it a version, applies it locally, and broadcasts it to all members. Members
// buffer out-of-order deliveries and apply strictly in version order — invocations,
// not state, travel on the wire, which is what distinguishes this protocol from
// master/slave for large objects with small updates.
//
// Membership, epochs and sequencer fail-over ride on the shared dso::ReplicaGroup
// layer: applies are epoch-fenced (a deposed sequencer's broadcasts are refused),
// and with fail-over enabled a member that misses lease renewals races
// gls.claim_master and can be elected the new sequencer.
//
// Peer methods (beyond dso.invoke / dso.get_state / dso.lease):
//   ar.register : endpoint -> VersionedState      (member joins at the sequencer)
//   ar.order    : Invocation -> result bytes      (member -> sequencer)
//   ar.apply    : version, epoch, Invocation -> PushAck (sequencer -> members)

#ifndef SRC_DSO_ACTIVE_REPL_H_
#define SRC_DSO_ACTIVE_REPL_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/replica_group.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class ActiveReplMember : public ReplicationObject {
 public:
  // Sequencer: pass an empty sequencer endpoint (node == kNoNode). Member: pass
  // the sequencer's contact endpoint.
  ActiveReplMember(sim::Transport* transport, sim::NodeId host,
                   std::unique_ptr<SemanticsObject> semantics, sim::Endpoint sequencer,
                   WriteGuard write_guard = nullptr, FailoverConfig failover = {});

  void Start(std::function<void(Status)> done) override;
  void Shutdown(std::function<void(Status)> done) override;

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  uint64_t epoch() const override { return group_.epoch(); }
  void set_epoch(uint64_t e) override { group_.set_epoch(e); }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoActiveRepl,
                               ToReplicaRole(group_.role())};
  }

  bool is_sequencer() const { return group_.is_master(); }
  size_t num_members() const { return group_.num_members(); }
  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }
  const ReplicaGroup* group() const override { return &group_; }
  void set_access_hook(AccessHook hook) override { access_hook_ = std::move(hook); }

 private:
  // A write waiting for the single in-flight quorum ordering round (quorum
  // mode serializes writes at the sequencer; see master_slave.h).
  struct QueuedWrite {
    Invocation invocation;
    sim::NodeId client;
    InvokeCallback done;
  };

  // Reads are recorded at the serving member; writes once, at the sequencer
  // that orders them (broadcast applies at other members are not accesses).
  void InvokeFrom(const Invocation& invocation, sim::NodeId client,
                  InvokeCallback done);
  // Sequencer side: orders a write, applies it, broadcasts it; responds with the
  // local execution result once every member acknowledged. A fenced broadcast
  // (a member moved to a newer epoch) fails the write unacknowledged.
  void OrderWrite(const Invocation& invocation, sim::NodeId client,
                  InvokeCallback done);
  // Quorum ordering pump: one write in flight, refused up front without a
  // reachable quorum, rolled back (state and version slot) unless a majority
  // durably holds it and the commit floor was published before the ack.
  void PumpQuorumOrders();
  void RollbackWrite();
  // Member side: applies broadcast writes strictly in version order. In quorum
  // mode a write executes only once the commit floor reaches it; above the
  // floor it stays buffered in pending_ — held durably, reported in
  // DurableVersion, executed when a later apply or lease raises the floor.
  Status ApplyOrdered(uint64_t write_version, const Invocation& invocation);
  // Executes every buffered consecutive write the commit floor has reached;
  // returns the first apply error (the write stays buffered for retry).
  Status DrainPending();
  // Applied version plus the contiguous buffered suffix (a member with a hole
  // cannot count anything past it — it could not materialize those if elected).
  uint64_t DurableVersion() const {
    uint64_t durable = version_;
    while (pending_.find(durable + 1) != pending_.end()) {
      ++durable;
    }
    return durable;
  }
  // A member that learns a commit floor past its contiguous suffix has a hole
  // it can never fill from broadcasts alone: resync from the sequencer.
  void MaybeResync();
  // Registration handshake: join at the sequencer, adopt snapshot and epoch.
  void RegisterWithSequencer(std::function<void(Status)> done);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  sim::Endpoint sequencer_;                 // meaningful while not the sequencer
  ReplicaGroup group_;
  std::map<uint64_t, Invocation> pending_;  // out-of-order buffer (members)
  uint64_t version_ = 0;
  AccessHook access_hook_;
  std::deque<QueuedWrite> write_queue_;  // sequencer side, quorum mode
  bool write_in_flight_ = false;
  bool resync_in_flight_ = false;
  // Rollback point of the in-flight quorum write; also what registration
  // snapshots hand out mid-write.
  Bytes pre_write_state_;
  uint64_t pre_write_version_ = 0;
};

}  // namespace globe::dso

#endif  // SRC_DSO_ACTIVE_REPL_H_
