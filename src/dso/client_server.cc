#include "src/dso/client_server.h"

namespace globe::dso {

ClientServerServer::ClientServerServer(sim::Transport* transport, sim::NodeId host,
                                       std::unique_ptr<SemanticsObject> semantics,
                                       WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)) {
  comm_.RegisterMethod(
      "dso.invoke", [this](const sim::RpcContext& ctx, ByteSpan request) -> Result<Bytes> {
        ASSIGN_OR_RETURN(Invocation invocation, Invocation::Deserialize(request));
        if (!invocation.read_only && write_guard_) {
          RETURN_IF_ERROR(write_guard_(ctx));
        }
        return Execute(invocation);
      });
  comm_.RegisterMethod("dso.get_state",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         return VersionedState{version_, semantics_->GetState()}.Serialize();
                       });
  comm_.RegisterMethod("dso.master_endpoint",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         ByteWriter w;
                         SerializeEndpoint(comm_.endpoint(), &w);
                         return w.Take();
                       });
}

Result<Bytes> ClientServerServer::Execute(const Invocation& invocation) {
  if (!invocation.read_only) {
    ++version_;
  }
  return semantics_->Invoke(invocation);
}

void ClientServerServer::Invoke(const Invocation& invocation, InvokeCallback done) {
  done(Execute(invocation));
}

RemoteProxy::RemoteProxy(sim::Transport* transport, sim::NodeId host,
                         gls::ContactAddress peer)
    : comm_(transport, host), peer_(peer) {}

void RemoteProxy::Invoke(const Invocation& invocation, InvokeCallback done) {
  comm_.Call(peer_.endpoint, "dso.invoke", invocation.Serialize(),
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); });
}

}  // namespace globe::dso
