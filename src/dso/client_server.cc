#include "src/dso/client_server.h"

namespace globe::dso {

ClientServerServer::ClientServerServer(sim::Transport* transport, sim::NodeId host,
                                       std::unique_ptr<SemanticsObject> semantics,
                                       WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      group_(&comm_, GroupRole::kMaster) {
  comm_.Register(kDsoInvoke,
                 [this](const sim::RpcContext& ctx,
                        const Invocation& invocation) -> Result<Bytes> {
                   if (group_.retired()) {
                     group_.CountRetiredRefusal();
                     return FailedPrecondition(
                         "replica retired (object migrated); rebind");
                   }
                   if (!invocation.read_only && write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   return Execute(invocation, ctx.client.node);
                 });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{comm_.endpoint()};
                 });
}

Result<Bytes> ClientServerServer::Execute(const Invocation& invocation,
                                          sim::NodeId client) {
  if (!invocation.read_only) {
    ++version_;
  }
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (access_hook_ && result.ok()) {
    access_hook_(AccessSample{!invocation.read_only,
                              invocation.read_only ? result->size()
                                                   : invocation.args.size(),
                              client});
  }
  return result;
}

void ClientServerServer::Invoke(const Invocation& invocation, InvokeCallback done) {
  done(Execute(invocation, comm_.endpoint().node));
}

RemoteProxy::RemoteProxy(sim::Transport* transport, sim::NodeId host,
                         gls::ContactAddress peer)
    : comm_(transport, host), peer_(peer) {}

void RemoteProxy::Invoke(const Invocation& invocation, InvokeCallback done) {
  // Writes carry the retry budget (the replica dedups dso.invoke, so a repeated
  // delivery cannot execute twice); reads keep the single-attempt default.
  comm_.Call(kDsoInvoke, peer_.endpoint, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             invocation.read_only ? sim::CallOptions{} : WriteCallOptions());
}

}  // namespace globe::dso
