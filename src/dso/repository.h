// Implementation repository (paper §3.4): "loading the implementation of the local
// representative (i.e., the appropriate set of subobjects) from a nearby
// implementation repository in a way similar to remote class loading in Java."
//
// In the Globe prototype this was a directory in the local file system; here it is a
// registry of semantics prototypes keyed by type id. Instantiation clones a fresh,
// empty semantics subobject of the requested type.

#ifndef SRC_DSO_REPOSITORY_H_
#define SRC_DSO_REPOSITORY_H_

#include <map>
#include <memory>

#include "src/dso/subobjects.h"

namespace globe::dso {

class ImplementationRepository {
 public:
  ImplementationRepository() = default;

  // Registers a prototype; later Instantiate(type_id) calls clone it.
  void RegisterSemantics(std::unique_ptr<SemanticsObject> prototype);

  Result<std::unique_ptr<SemanticsObject>> Instantiate(uint16_t type_id) const;

  bool Has(uint16_t type_id) const { return prototypes_.count(type_id) > 0; }

 private:
  std::map<uint16_t, std::unique_ptr<SemanticsObject>> prototypes_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_REPOSITORY_H_
