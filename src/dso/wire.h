// Small wire-format helpers shared by the replication protocols, plus the typed
// descriptors of the peer methods every replica speaks.

#ifndef SRC_DSO_WIRE_H_
#define SRC_DSO_WIRE_H_

#include "src/dso/invocation.h"
#include "src/sim/endpoint.h"
#include "src/sim/rpc.h"
#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::dso {

// A full state snapshot tagged with the master's write version and the replica
// group's membership epoch (see dso::ReplicaGroup): receivers reject snapshots
// pushed under an epoch older than their own, which is what fences a partitioned
// stale master out of a group that has re-elected.
//
// `committed` is the group's commit floor — the highest write version a quorum
// durably holds. A receiver applies a push only up to the floor: a push whose
// version lies above it is *staged* (held durably, acknowledged, but not
// executed) until a later message raises the floor past it. Masters running
// without quorum mode stamp committed == version, which applies immediately and
// preserves the original eager-push behaviour byte for byte.
struct VersionedState {
  uint64_t version = 0;
  uint64_t epoch = 0;
  uint64_t committed = 0;
  Bytes state;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteU64(epoch);
    w.WriteU64(committed);
    w.WriteLengthPrefixed(state);
    return w.Take();
  }
  static Result<VersionedState> Deserialize(ByteSpan data) {
    ByteReader r(data);
    VersionedState vs;
    ASSIGN_OR_RETURN(vs.version, r.ReadU64());
    ASSIGN_OR_RETURN(vs.epoch, r.ReadU64());
    ASSIGN_OR_RETURN(vs.committed, r.ReadU64());
    // The snapshot outlives the wire buffer (it becomes the replica's state):
    // a true ownership boundary, copied explicitly.
    ASSIGN_OR_RETURN(ByteSpan state, r.ReadLengthPrefixedView());
    vs.state = ToBytes(state);
    return vs;
  }
};

inline void SerializeEndpoint(const sim::Endpoint& ep, ByteWriter* w) {
  w->WriteU32(ep.node);
  w->WriteU16(ep.port);
}

inline Result<sim::Endpoint> DeserializeEndpoint(ByteReader* r) {
  sim::Endpoint ep;
  ASSIGN_OR_RETURN(ep.node, r->ReadU32());
  ASSIGN_OR_RETURN(ep.port, r->ReadU16());
  return ep;
}

// A bare peer endpoint (registration and master-discovery messages).
struct EndpointMessage {
  sim::Endpoint endpoint;

  Bytes Serialize() const {
    ByteWriter w;
    SerializeEndpoint(endpoint, &w);
    return w.Take();
  }
  static Result<EndpointMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    EndpointMessage message;
    ASSIGN_OR_RETURN(message.endpoint, DeserializeEndpoint(&r));
    return message;
  }
};

// A bare write version plus the sender's epoch (invalidations, registration
// acknowledgements).
struct VersionMessage {
  uint64_t version = 0;
  uint64_t epoch = 0;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteU64(epoch);
    return w.Take();
  }
  static Result<VersionMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    VersionMessage message;
    ASSIGN_OR_RETURN(message.version, r.ReadU64());
    ASSIGN_OR_RETURN(message.epoch, r.ReadU64());
    return message;
  }
};

// Outcome of one replica-to-replica push (state push, ordered apply,
// invalidation, lease): accepted, or refused because the sender's epoch is
// stale. A refusing replica reports its own (newer) epoch, so a fenced master
// can resolve the new ownership through the GLS instead of retrying for ever.
//
// `durable_version` is the per-write commit point of quorum-acknowledged
// writes: the highest write version the acking replica durably holds after
// this push (applied state, or a staged entry it can materialize if elected).
// A master in quorum mode counts an ack towards the write's quorum only when
// the reported durable version reaches the write — an ack from a replica that
// accepted the message but could not retain the write (e.g. an active replica
// with a gap below it) is an answer, not a vote.
struct PushAck {
  uint8_t accepted = 1;
  uint64_t epoch = 0;
  uint64_t durable_version = 0;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU8(accepted);
    w.WriteU64(epoch);
    w.WriteU64(durable_version);
    return w.Take();
  }
  static Result<PushAck> Deserialize(ByteSpan data) {
    ByteReader r(data);
    PushAck ack;
    ASSIGN_OR_RETURN(ack.accepted, r.ReadU8());
    ASSIGN_OR_RETURN(ack.epoch, r.ReadU64());
    ASSIGN_OR_RETURN(ack.durable_version, r.ReadU64());
    return ack;
  }
};

// Master -> members lease renewal (fail-over: a member that misses renewals
// past its lease timeout suspects the master and races gls.claim_master).
// `committed` piggybacks the commit floor so quorum-mode members apply staged
// writes within one lease interval even when no further write arrives.
struct LeaseMessage {
  uint64_t epoch = 0;
  uint64_t version = 0;
  uint64_t committed = 0;
  sim::Endpoint master;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(epoch);
    w.WriteU64(version);
    w.WriteU64(committed);
    SerializeEndpoint(master, &w);
    return w.Take();
  }
  static Result<LeaseMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    LeaseMessage message;
    ASSIGN_OR_RETURN(message.epoch, r.ReadU64());
    ASSIGN_OR_RETURN(message.version, r.ReadU64());
    ASSIGN_OR_RETURN(message.committed, r.ReadU64());
    ASSIGN_OR_RETURN(message.master, DeserializeEndpoint(&r));
    return message;
  }
};

// The protocol-agnostic peer methods: every replica of every protocol answers
// these, which is what lets RemoteProxy bind thinly to anything. dso.invoke
// carries writes (semantics mutations are arbitrary, so a duplicate delivery
// must never execute twice) and is therefore non-idempotent; that it also
// dedups read invocations costs a little response memory and nothing else.
inline constexpr sim::TypedMethod<Invocation, Bytes> kDsoInvoke{"dso.invoke",
                                                                sim::kNonIdempotent};
inline constexpr sim::TypedMethod<sim::EmptyMessage, VersionedState> kDsoGetState{
    "dso.get_state"};
inline constexpr sim::TypedMethod<sim::EmptyMessage, EndpointMessage>
    kDsoMasterEndpoint{"dso.master_endpoint"};
// Lease renewals are idempotent by construction (receivers only compare epochs
// and refresh a timestamp), so they skip the dedup table.
inline constexpr sim::TypedMethod<LeaseMessage, PushAck> kDsoLease{"dso.lease"};
// Epoch-fenced retirement (policy migration): a replica told that its object
// moved to a strictly newer epoch stops serving — reads included — so a
// formerly-bound representative (e.g. a master/slave slave inside a GDN-HTTPD)
// can never keep answering from dead state silently. Idempotent: receivers
// only compare epochs and latch a flag.
inline constexpr sim::TypedMethod<VersionMessage, PushAck> kDsoRetire{"dso.retire"};

// Every protocol retries its write-path calls with sim::WriteCallOptions
// instead of failing on the first lost message (the replication fan-outs keep
// their 5 s per-attempt deadlines so a dead peer cannot wedge a master); read
// paths keep the single-attempt default.
using sim::WriteCallOptions;

}  // namespace globe::dso

#endif  // SRC_DSO_WIRE_H_
