// Small wire-format helpers shared by the replication protocols.

#ifndef SRC_DSO_WIRE_H_
#define SRC_DSO_WIRE_H_

#include "src/sim/network.h"
#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::dso {

// A full state snapshot tagged with the master's write version.
struct VersionedState {
  uint64_t version = 0;
  Bytes state;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteLengthPrefixed(state);
    return w.Take();
  }
  static Result<VersionedState> Deserialize(ByteSpan data) {
    ByteReader r(data);
    VersionedState vs;
    ASSIGN_OR_RETURN(vs.version, r.ReadU64());
    ASSIGN_OR_RETURN(vs.state, r.ReadLengthPrefixed());
    return vs;
  }
};

inline void SerializeEndpoint(const sim::Endpoint& ep, ByteWriter* w) {
  w->WriteU32(ep.node);
  w->WriteU16(ep.port);
}

inline Result<sim::Endpoint> DeserializeEndpoint(ByteReader* r) {
  sim::Endpoint ep;
  ASSIGN_OR_RETURN(ep.node, r->ReadU32());
  ASSIGN_OR_RETURN(ep.port, r->ReadU16());
  return ep;
}

}  // namespace globe::dso

#endif  // SRC_DSO_WIRE_H_
