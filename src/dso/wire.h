// Small wire-format helpers shared by the replication protocols, plus the typed
// descriptors of the peer methods every replica speaks.

#ifndef SRC_DSO_WIRE_H_
#define SRC_DSO_WIRE_H_

#include "src/dso/invocation.h"
#include "src/sim/network.h"
#include "src/sim/rpc.h"
#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::dso {

// A full state snapshot tagged with the master's write version.
struct VersionedState {
  uint64_t version = 0;
  Bytes state;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteLengthPrefixed(state);
    return w.Take();
  }
  static Result<VersionedState> Deserialize(ByteSpan data) {
    ByteReader r(data);
    VersionedState vs;
    ASSIGN_OR_RETURN(vs.version, r.ReadU64());
    ASSIGN_OR_RETURN(vs.state, r.ReadLengthPrefixed());
    return vs;
  }
};

inline void SerializeEndpoint(const sim::Endpoint& ep, ByteWriter* w) {
  w->WriteU32(ep.node);
  w->WriteU16(ep.port);
}

inline Result<sim::Endpoint> DeserializeEndpoint(ByteReader* r) {
  sim::Endpoint ep;
  ASSIGN_OR_RETURN(ep.node, r->ReadU32());
  ASSIGN_OR_RETURN(ep.port, r->ReadU16());
  return ep;
}

// A bare peer endpoint (registration and master-discovery messages).
struct EndpointMessage {
  sim::Endpoint endpoint;

  Bytes Serialize() const {
    ByteWriter w;
    SerializeEndpoint(endpoint, &w);
    return w.Take();
  }
  static Result<EndpointMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    EndpointMessage message;
    ASSIGN_OR_RETURN(message.endpoint, DeserializeEndpoint(&r));
    return message;
  }
};

// A bare write version (invalidations, registration acknowledgements).
struct VersionMessage {
  uint64_t version = 0;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    return w.Take();
  }
  static Result<VersionMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    VersionMessage message;
    ASSIGN_OR_RETURN(message.version, r.ReadU64());
    return message;
  }
};

// The protocol-agnostic peer methods: every replica of every protocol answers
// these, which is what lets RemoteProxy bind thinly to anything. dso.invoke
// carries writes (semantics mutations are arbitrary, so a duplicate delivery
// must never execute twice) and is therefore non-idempotent; that it also
// dedups read invocations costs a little response memory and nothing else.
inline constexpr sim::TypedMethod<Invocation, Bytes> kDsoInvoke{"dso.invoke",
                                                                sim::kNonIdempotent};
inline constexpr sim::TypedMethod<sim::EmptyMessage, VersionedState> kDsoGetState{
    "dso.get_state"};
inline constexpr sim::TypedMethod<sim::EmptyMessage, EndpointMessage>
    kDsoMasterEndpoint{"dso.master_endpoint"};

// Every protocol retries its write-path calls with sim::WriteCallOptions
// instead of failing on the first lost message (the replication fan-outs keep
// their 5 s per-attempt deadlines so a dead peer cannot wedge a master); read
// paths keep the single-attempt default.
using sim::WriteCallOptions;

}  // namespace globe::dso

#endif  // SRC_DSO_WIRE_H_
