#include "src/dso/replica_group.h"

#include <algorithm>

namespace globe::dso {

std::string_view GroupRoleName(GroupRole role) {
  switch (role) {
    case GroupRole::kMaster:
      return "master";
    case GroupRole::kSlave:
      return "slave";
    case GroupRole::kPeer:
      return "peer";
    case GroupRole::kCache:
      return "cache";
  }
  return "unknown";
}

bool RoleTransitionAllowed(GroupRole from, GroupRole to) {
  if (from == to) {
    return true;
  }
  // The only legal moves are election and deposition. In particular a cache
  // can never become a master: it holds no authoritative state to serve from.
  return (from == GroupRole::kSlave && to == GroupRole::kMaster) ||
         (from == GroupRole::kMaster && to == GroupRole::kSlave);
}

gls::ReplicaRole ToReplicaRole(GroupRole role) {
  switch (role) {
    case GroupRole::kMaster:
      return gls::ReplicaRole::kMaster;
    case GroupRole::kSlave:
    case GroupRole::kPeer:
      return gls::ReplicaRole::kSlave;
    case GroupRole::kCache:
      return gls::ReplicaRole::kCache;
  }
  return gls::ReplicaRole::kSlave;
}

GroupRole FromReplicaRole(gls::ReplicaRole role) {
  switch (role) {
    case gls::ReplicaRole::kMaster:
      return GroupRole::kMaster;
    case gls::ReplicaRole::kSlave:
      return GroupRole::kSlave;
    case gls::ReplicaRole::kCache:
      return GroupRole::kCache;
  }
  return GroupRole::kSlave;
}

ReplicaGroup::ReplicaGroup(CommunicationObject* comm, GroupRole role)
    : comm_(comm), role_(role), alive_(std::make_shared<bool>(true)) {
  // Every replica of every protocol answers dso.retire: an epoch-fenced order
  // to stop serving because the object migrated away from this binding. The
  // epoch comparison is strict — a retire stamped with our own (or an older)
  // epoch is stale and refused, so a retire fan-out can never kill the very
  // group that issued the migration's new epoch.
  comm_->Register(kDsoRetire,
                  [this](const sim::RpcContext&,
                         const VersionMessage& msg) -> Result<PushAck> {
                    if (retired_) {
                      return PushAck{1, epoch_};
                    }
                    if (msg.epoch <= epoch_) {
                      ++stats_.stale_rejected;
                      return PushAck{0, epoch_};
                    }
                    GLOG_INFO << "replica " << sim::ToString(comm_->endpoint())
                              << " retired (object migrated, epoch "
                              << msg.epoch << ")";
                    retired_ = true;
                    epoch_ = msg.epoch;
                    CancelTimer();
                    return PushAck{1, epoch_};
                  });
}

ReplicaGroup::~ReplicaGroup() { Stop(); }

Status ReplicaGroup::TransitionTo(GroupRole to) {
  if (to == role_) {
    return OkStatus();
  }
  if (!RoleTransitionAllowed(role_, to)) {
    return FailedPrecondition(std::string("illegal role transition ") +
                              std::string(GroupRoleName(role_)) + " -> " +
                              std::string(GroupRoleName(to)));
  }
  GLOG_INFO << "replica " << sim::ToString(comm_->endpoint()) << ": "
            << GroupRoleName(role_) << " -> " << GroupRoleName(to) << " (epoch "
            << epoch_ << ")";
  role_ = to;
  ++stats_.role_transitions;
  return OkStatus();
}

bool ReplicaGroup::AddMember(const sim::Endpoint& peer) {
  // Re-registration is the sanctioned way back into the quorum count: the
  // member re-synced from the master's snapshot, so it holds the floor again.
  if (auto it = std::find(evicted_.begin(), evicted_.end(), peer);
      it != evicted_.end()) {
    evicted_.erase(it);
  }
  if (std::find(members_.begin(), members_.end(), peer) != members_.end()) {
    return false;
  }
  members_.push_back(peer);
  return true;
}

bool ReplicaGroup::RemoveMember(const sim::Endpoint& peer) {
  // Graceful removal (unregister/shutdown) forgets the peer entirely: it left
  // the group, so it must leave the quorum denominator too.
  if (auto it = std::find(evicted_.begin(), evicted_.end(), peer);
      it != evicted_.end()) {
    evicted_.erase(it);
  }
  auto it = std::find(members_.begin(), members_.end(), peer);
  if (it == members_.end()) {
    return false;
  }
  members_.erase(it);
  return true;
}

void ReplicaGroup::Evict(const sim::Endpoint& peer) {
  if (std::find(evicted_.begin(), evicted_.end(), peer) == evicted_.end()) {
    evicted_.push_back(peer);
  }
}

PushAck ReplicaGroup::FenceIncoming(uint64_t remote_epoch) {
  if (remote_epoch < epoch_) {
    ++stats_.stale_rejected;
    return PushAck{0, epoch_};
  }
  if (remote_epoch > epoch_) {
    if (is_master()) {
      // Newer-epoch traffic reaching a replica that still believes it is
      // master: refuse WITHOUT adopting the epoch — our own fan-outs must stay
      // stamped with the epoch we actually hold so peers can fence them — and
      // resolve the true ownership through the arbiter.
      ++stats_.stale_rejected;
      OnFencedSelf(remote_epoch);
      return PushAck{0, epoch_};
    }
    epoch_ = remote_epoch;
  }
  RecordLease();
  return PushAck{1, epoch_};
}

void ReplicaGroup::RecordLease() { last_renewal_ = comm_->clock()->Now(); }

void ReplicaGroup::EnableFailover(FailoverConfig config, Callbacks callbacks) {
  config_ = std::move(config);
  callbacks_ = std::move(callbacks);
  if (config_.enabled && gls_ == nullptr) {
    gls_ = std::make_unique<gls::GlsClient>(comm_->transport(), comm_->host(),
                                            config_.leaf_directory);
  }
}

gls::ContactAddress ReplicaGroup::self_address(GroupRole as) const {
  return gls::ContactAddress{comm_->endpoint(), config_.protocol,
                             ToReplicaRole(as)};
}

gls::MasterClaim ReplicaGroup::MakeClaim(uint64_t known_epoch) const {
  gls::MasterClaim claim;
  claim.oid = config_.oid;
  claim.claimant = self_address(GroupRole::kMaster);
  claim.known_epoch = known_epoch;
  uint64_t applied = callbacks_.version ? callbacks_.version() : 0;
  if (quorum_enabled()) {
    // Quorum mode reports the *committed* floor, never the applied version: a
    // master mid-write has applied a version that may yet roll back, and the
    // arbiter's floor must only ever name writes a quorum durably holds. A
    // follower claimant reports everything it could serve if elected — applied
    // state plus its staged suffix — so the floor check measures what the
    // claimant holds, not merely what it has executed.
    uint64_t durable =
        callbacks_.durable_version ? callbacks_.durable_version() : applied;
    claim.version = is_master() ? committed_version_
                                : std::max(durable, committed_version_);
    claim.strict_floor = true;
  } else {
    claim.version = applied;
  }
  claim.lease_duration = config_.lease_timeout;
  return claim;
}

void ReplicaGroup::StartMaster(std::function<void(Status)> done) {
  if (!config_.enabled) {
    done(OkStatus());
    return;
  }
  // Fresh master: claim epoch 1. Restarted master: resume at its checkpointed
  // epoch — a grant bumps the epoch (cleanly fencing anything the crash left in
  // flight), a rejection means an election happened while we were dark and the
  // Claim path demotes us onto the winner.
  Claim(epoch_, [done = std::move(done)] { done(OkStatus()); });
}

void ReplicaGroup::StartFollower() {
  if (!config_.enabled) {
    return;
  }
  if (role_ != GroupRole::kSlave && role_ != GroupRole::kPeer) {
    return;  // caches are not electable and never watch
  }
  RecordLease();
  ScheduleWatchTick();
}

void ReplicaGroup::Stop() {
  CancelTimer();
  *alive_ = false;
}

void ReplicaGroup::CancelTimer() {
  if (timer_ != sim::Clock::kNoTimer) {
    comm_->clock()->CancelTimer(timer_);
    timer_ = sim::Clock::kNoTimer;
  }
}

void ReplicaGroup::ScheduleMasterTick() {
  CancelTimer();
  timer_ = comm_->clock()->ScheduleAfter(
      config_.lease_interval, [this, alive = std::weak_ptr<bool>(alive_)] {
        if (auto a = alive.lock(); a && *a) {
          MasterTick();
        }
      });
}

void ReplicaGroup::MasterTick() {
  if (!is_master() || retired_) {
    return;  // demoted (or retired by a migration) since this tick was scheduled
  }
  // Epoch 0 means the bootstrap claim never landed (transport trouble reaching
  // the arbiter at StartMaster time): keep claiming, not renewing — a renewal
  // cannot create the ownership record. Claim reschedules this tick itself on
  // every outcome.
  if (epoch_ == 0) {
    Claim(0);
    return;
  }
  // (a) Extend the ownership lease at the GLS arbiter. A rejection under a
  // newer epoch names a newer master: demote onto it. A rejection under an
  // older-or-equal epoch means the arbiter's record is behind ours (restored
  // from an old checkpoint): re-claim with our epoch to re-seed it — a renewal
  // alone can never repair a rolled-back record. Transport failures keep
  // mastership optimistically — members still receiving dso.lease renewals
  // will not claim, and the next tick retries.
  gls_->RenewMasterLease(
      MakeClaim(epoch_),
      [this, alive = std::weak_ptr<bool>(alive_)](Result<gls::ClaimOutcome> r) {
        auto a = alive.lock();
        if (!a || !*a || !r.ok() || r->granted) {
          return;
        }
        if (r->epoch > epoch_) {
          Demote(r->master, r->epoch);
        } else if (is_master()) {
          Claim(epoch_);
        }
      });
  // (b) Broadcast the lease to members so their watches stay quiet. The lease
  // piggybacks the commit floor so quorum members apply staged writes within
  // one interval even when no further write arrives; without quorum the floor
  // equals the applied version, which is a no-op for receivers.
  if (!members_.empty()) {
    ++stats_.leases_sent;
    uint64_t applied = callbacks_.version ? callbacks_.version() : 0;
    LeaseMessage lease{epoch_, applied,
                       quorum_enabled() ? committed_version_ : applied,
                       comm_->endpoint()};
    FanOut(kDsoLease, lease, config_.lease_interval,
           /*drop_unreachable=*/false, /*commit_point=*/0,
           [](const FanOutResult&) {});
  }
  ScheduleMasterTick();
}

void ReplicaGroup::ScheduleWatchTick() {
  CancelTimer();
  // Deterministic per-host stagger so a whole group of slaves does not claim
  // in the same simulator instant. Keyed on the topology-stable host id, NOT
  // the ephemeral port: port allocation is process-global, and replayed runs
  // must schedule identically.
  sim::SimTime stagger = (comm_->host() % 7) * 29 * sim::kMillisecond;
  timer_ = comm_->clock()->ScheduleAfter(
      config_.watch_interval + stagger,
      [this, alive = std::weak_ptr<bool>(alive_)] {
        if (auto a = alive.lock(); a && *a) {
          WatchTick();
        }
      });
}

void ReplicaGroup::WatchTick() {
  if (is_master() || !config_.enabled || retired_) {
    return;
  }
  sim::SimTime now = comm_->clock()->Now();
  if (!claim_in_flight_ && now >= last_renewal_ + config_.lease_timeout) {
    // The master missed a whole timeout of renewals: race for its epoch.
    Claim(epoch_);
  }
  ScheduleWatchTick();
}

void ReplicaGroup::Claim(uint64_t known_epoch, std::function<void()> settled) {
  if (gls_ == nullptr || claim_in_flight_ || retired_) {
    if (settled) {
      settled();
    }
    return;
  }
  claim_in_flight_ = true;
  ++stats_.claims;
  gls_->ClaimMaster(
      MakeClaim(known_epoch),
      [this, alive = std::weak_ptr<bool>(alive_),
       settled = std::move(settled)](Result<gls::ClaimOutcome> outcome) {
        auto a = alive.lock();
        if (!a || !*a) {
          return;
        }
        claim_in_flight_ = false;
        if (!outcome.ok()) {
          // Transport trouble reaching the arbiter. Followers retry from their
          // (independently rescheduled) watch; a master must reschedule its own
          // tick here — the bootstrap claim path has no other timer yet.
          if (is_master()) {
            ScheduleMasterTick();
          }
          if (settled) {
            settled();
          }
          return;
        }
        if (outcome->granted) {
          Promote(outcome->epoch, outcome->version_floor);
        } else {
          ++stats_.claims_lost;
          if (is_master()) {
            Demote(outcome->master, outcome->epoch);
          } else {
            epoch_ = std::max(epoch_, outcome->epoch);
            // Fresh patience before suspecting the (possibly new) winner.
            RecordLease();
            if (outcome->master.endpoint.node != sim::kNoNode &&
                outcome->master.endpoint != comm_->endpoint() &&
                callbacks_.on_adopted_master) {
              callbacks_.on_adopted_master(outcome->master.endpoint, epoch_);
            }
          }
        }
        if (settled) {
          settled();
        }
      });
}

void ReplicaGroup::Promote(uint64_t new_epoch, uint64_t committed_floor) {
  ++stats_.claims_won;
  stats_.elected_at = comm_->clock()->Now();
  epoch_ = new_epoch;
  // The grant reports the arbiter's acked-write floor: everything at or below
  // it was acked to some client and must survive this election; everything
  // above it was refused at its master and must not resurrect.
  committed_version_ = std::max(committed_version_, committed_floor);
  if (!is_master()) {
    Status s = TransitionTo(GroupRole::kMaster);
    if (!s.ok()) {
      GLOG_ERROR << "won a claim but cannot assume mastership: " << s;
      return;
    }
    // The GLS still lists us as a slave; advertise the new role. The deposed
    // master's record is its own to fix (each replica only ever mutates the
    // registrations of its own leaf domain).
    FixRegistration(GroupRole::kSlave, GroupRole::kMaster);
  }
  ScheduleMasterTick();
  if (callbacks_.on_won_mastership) {
    callbacks_.on_won_mastership(committed_version_);
  }
}

void ReplicaGroup::Demote(const gls::ContactAddress& winner, uint64_t new_epoch) {
  epoch_ = std::max(epoch_, new_epoch);
  if (!is_master()) {
    return;
  }
  if (winner.endpoint == comm_->endpoint()) {
    // The record names US: we already own the recorded epoch (e.g. a granted
    // claim whose response was lost past the retry budget). Adopt it and keep
    // the renewal cadence running rather than silently stalling as an
    // unleased master.
    if (config_.enabled) {
      ScheduleMasterTick();
    }
    return;
  }
  ++stats_.demotions;
  Status s = TransitionTo(GroupRole::kSlave);
  if (!s.ok()) {
    GLOG_ERROR << "cannot demote: " << s;
    return;
  }
  // A deposed master's member list belongs to the winner now: the members'
  // own watches re-register them there. Stop pushing to them under our dead
  // epoch. The evicted set goes with it — quorum accounting restarts from
  // scratch if this replica is ever re-elected.
  members_.clear();
  evicted_.clear();
  FixRegistration(GroupRole::kMaster, GroupRole::kSlave);
  RecordLease();
  ScheduleWatchTick();
  if (callbacks_.on_adopted_master) {
    callbacks_.on_adopted_master(winner.endpoint, epoch_);
  }
}

void ReplicaGroup::OnFencedSelf(uint64_t fence_epoch) {
  (void)fence_epoch;  // the arbiter, not the fencing peer, names the winner
  ++stats_.pushes_fenced;
  if (!is_master() || !config_.enabled || resolving_) {
    return;
  }
  // Ask the arbiter who owns the group now. Claiming with our (stale) epoch is
  // refused and names the winner to adopt; if the fence was itself stale (the
  // newer master already died and its lease lapsed), the claim re-wins.
  resolving_ = true;
  Claim(epoch_, [this, alive = std::weak_ptr<bool>(alive_)] {
    if (auto a = alive.lock(); a && *a) {
      resolving_ = false;
    }
  });
}

void ReplicaGroup::PublishCommitFloor(uint64_t version,
                                      std::function<void(Status)> done) {
  if (gls_ == nullptr || !quorum_enabled()) {
    RecordCommit(version);
    done(OkStatus());
    return;
  }
  // The local floor advances only AFTER the arbiter accepted the publication:
  // if it advanced first, the master's next push would stamp a committed floor
  // covering a write that may yet be rolled back, and members would apply it.
  ++stats_.floor_publishes;
  gls::MasterClaim claim = MakeClaim(epoch_);
  claim.version = std::max(version, committed_version_);
  gls_->RenewMasterLease(
      claim, [this, alive = std::weak_ptr<bool>(alive_), version,
              done = std::move(done)](Result<gls::ClaimOutcome> r) {
        auto a = alive.lock();
        if (!a || !*a) {
          return;
        }
        if (!r.ok()) {
          done(r.status());
          return;
        }
        if (!r->granted) {
          // A newer master exists (or the arbiter's record is ahead of us):
          // this write must not be acked. Demotion first, then the refusal.
          if (r->epoch > epoch_) {
            Demote(r->master, r->epoch);
          }
          done(FailedPrecondition("commit-floor publication refused"));
          return;
        }
        RecordCommit(version);
        done(OkStatus());
      });
}

void ReplicaGroup::FixRegistration(GroupRole old_role, GroupRole new_role) {
  if (gls_ == nullptr) {
    return;
  }
  // Best-effort under the GLS write retry budget: a miss leaves a stale
  // advisory contact address that the next role change or decommission fixes.
  gls_->Delete(config_.oid, self_address(old_role), [](Status) {});
  gls_->Insert(config_.oid, self_address(new_role), [](Status) {});
}

}  // namespace globe::dso
