// The subobject interfaces of a Globe local representative (paper §3.3, Figure 1b).
//
// A local representative of a distributed shared object is composed of four
// subobjects:
//   - Semantics subobject: user-defined; implements the object's actual methods on
//     local state, ignorant of distribution and replication.
//   - Communication subobject: system-provided; moves opaque byte messages between
//     address spaces (src/dso/comm.h).
//   - Replication subobject: keeps replica state consistent under a per-object
//     protocol; has STANDARD interfaces so protocols are interchangeable per object.
//   - Control subobject: bridges user method calls to the replication subobject by
//     marshalling them into invocation messages (src/dso/control.h).

#ifndef SRC_DSO_SUBOBJECTS_H_
#define SRC_DSO_SUBOBJECTS_H_

#include <functional>
#include <memory>
#include <optional>

#include "src/dso/invocation.h"
#include "src/gls/oid.h"
#include "src/sim/endpoint.h"
#include "src/util/status.h"

namespace globe::dso {

class ReplicaGroup;

// One observed access at a serving replica, reported to the hosting server's
// telemetry layer (src/ctl). Reads are recorded where they are served, writes
// only where they execute (master/sequencer), so rates are never double-counted
// across a replica group. `client` is the node the invocation originated from —
// the controller's geography signal.
struct AccessSample {
  bool is_write = false;
  size_t bytes = 0;  // response bytes for reads, argument bytes for writes
  sim::NodeId client = sim::kNoNode;
};

// Installed by the hosting server (GOS) on replicas it wants telemetry from.
// Fired synchronously on the serving path — implementations must be cheap.
using AccessHook = std::function<void(const AccessSample&)>;

// User-defined primitive object implementing the DSO's methods. A package DSO's
// semantics subobject implements addFile / listContents / getFileContents etc.
// (src/gdn/package.h). Implementations must be deterministic: the active replication
// protocol applies the same invocation at every replica.
class SemanticsObject {
 public:
  virtual ~SemanticsObject() = default;

  // Executes one marshalled invocation against local state.
  virtual Result<Bytes> Invoke(const Invocation& invocation) = 0;

  // Full-state marshalling: used to initialize new replicas, to push state in the
  // master/slave protocol, and by the GOS persistence machinery.
  virtual Bytes GetState() const = 0;
  virtual Status SetState(ByteSpan state) = 0;

  // A fresh, empty instance of the same type (the "remote class loading" stand-in:
  // the implementation repository clones a registered prototype).
  virtual std::unique_ptr<SemanticsObject> CloneEmpty() const = 0;

  // Type identifier resolved through the implementation repository when binding.
  virtual uint16_t type_id() const = 0;
};

using InvokeCallback = std::function<void(Result<Bytes>)>;

// Standard interface of every replication subobject. The control subobject calls
// Invoke; the protocol decides whether to execute locally, forward to a master,
// broadcast, etc.
class ReplicationObject {
 public:
  virtual ~ReplicationObject() = default;

  virtual void Invoke(const Invocation& invocation, InvokeCallback done) = 0;

  // Protocol-visible version of the local state: how many writes the local replica
  // has applied (or, for stateless proxies, has observed). Benchmarks use the gap
  // between replica versions as the staleness metric.
  virtual uint64_t version() const = 0;

  // Asynchronous startup: replicas that must fetch initial state (slaves, caches)
  // complete their registration here. Must be called exactly once before Invoke.
  virtual void Start(std::function<void(Status)> done) { done(OkStatus()); }

  // Graceful teardown (deregistration with peers).
  virtual void Shutdown(std::function<void(Status)> done) { done(OkStatus()); }

  // The address other local representatives can contact this one on, if it accepts
  // peer traffic (replicas do; pure client proxies return nullopt).
  virtual std::optional<gls::ContactAddress> contact_address() const {
    return std::nullopt;
  }

  // The local semantics subobject, if this representative holds one (replicas do;
  // thin proxies return nullptr). Used by the GOS persistence machinery.
  virtual SemanticsObject* semantics() { return nullptr; }

  // Restores the version counter after a GOS restart so replica protocols resume
  // where the checkpoint left off.
  virtual void set_version(uint64_t) {}

  // The replica group's membership epoch (0 for protocols/proxies without one).
  // Checkpointed alongside the version so a restarted master resumes — or
  // discovers it lost — its mastership instead of forgetting it ever held it.
  virtual uint64_t epoch() const { return 0; }
  virtual void set_epoch(uint64_t) {}

  // The shared membership/epoch layer beneath this replica, if it has one
  // (src/dso/replica_group.h); thin proxies return nullptr. Exposes role, epoch
  // and fail-over statistics to the GOS, tests and benches.
  virtual const ReplicaGroup* group() const { return nullptr; }

  // Installs the hosting server's telemetry hook (see AccessHook above).
  // Protocols that serve traffic record reads where served and writes where
  // executed; thin proxies and protocols without telemetry ignore it.
  virtual void set_access_hook(AccessHook) {}
};

}  // namespace globe::dso

#endif  // SRC_DSO_SUBOBJECTS_H_
