// Marshalled method invocations.
//
// Paper §3.3: "both the replication subobject and the communication subobject operate
// only on opaque invocation messages in which method identifiers and parameters have
// been encoded." This is that message. The one property replication protocols are
// allowed to see is whether the invocation modifies state — that is what routes reads
// to local replicas and writes to masters.

#ifndef SRC_DSO_INVOCATION_H_
#define SRC_DSO_INVOCATION_H_

#include <string>

#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::dso {

struct Invocation {
  std::string method;
  Bytes args;
  bool read_only = false;

  Bytes Serialize() const;
  static Result<Invocation> Deserialize(ByteSpan data);
};

}  // namespace globe::dso

#endif  // SRC_DSO_INVOCATION_H_
