// Master/slave replication: the second protocol of the first Globe release (paper
// §7) and the one the GDN architecture leans on ("a Globe Object Server acting as
// master replica in a master/slave replication protocol", §6.1).
//
// The master holds the authoritative state and executes all writes; after each write
// it eagerly pushes the new state to every registered slave. Slaves execute reads on
// their local copy and forward writes to the master.
//
// One class serves both roles, driven by the shared dso::ReplicaGroup layer: the
// role state machine lets a slave be elected master (GLS-driven fail-over) and a
// partitioned stale master demote itself once its epoch-fenced pushes are refused.
// MasterSlaveMaster / MasterSlaveSlave remain as constructors for the two starting
// roles.
//
// Peer methods (beyond the common dso.invoke / dso.get_state / dso.lease):
//   ms.register_slave   : endpoint -> VersionedState   (slave joins, gets snapshot)
//   ms.unregister_slave : endpoint -> empty
//   ms.state_push       : VersionedState -> PushAck    (master -> slave; refused
//                                                       under a stale epoch)

#ifndef SRC_DSO_MASTER_SLAVE_H_
#define SRC_DSO_MASTER_SLAVE_H_

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/replica_group.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class MasterSlaveReplica : public ReplicationObject {
 public:
  // Master: pass master = {kNoNode, 0}. Slave: the master's peer endpoint.
  MasterSlaveReplica(sim::Transport* transport, sim::NodeId host,
                     std::unique_ptr<SemanticsObject> semantics, GroupRole role,
                     sim::Endpoint master, WriteGuard write_guard = nullptr,
                     FailoverConfig failover = {});

  // Masters claim/resume GLS mastership (with fail-over on); slaves register
  // with the master and install the state snapshot.
  void Start(std::function<void(Status)> done) override;
  void Shutdown(std::function<void(Status)> done) override;

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  uint64_t epoch() const override { return group_.epoch(); }
  void set_epoch(uint64_t e) override { group_.set_epoch(e); }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoMasterSlave,
                               ToReplicaRole(group_.role())};
  }

  size_t num_slaves() const { return group_.num_members(); }
  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }
  const ReplicaGroup* group() const override { return &group_; }
  void set_access_hook(AccessHook hook) override { access_hook_ = std::move(hook); }

 private:
  // A write held durably by a slave but not yet executed: it executes only once
  // the group's commit floor reaches its version (quorum mode). version == 0
  // means the slot is empty. The slot is overwritten by any newer push of the
  // same or a higher version — a rolled-back write's version slot is reused by
  // the next write, and the stale payload must not survive that reuse.
  struct Staged {
    uint64_t version = 0;
    uint64_t epoch = 0;
    Bytes state;
  };
  // A write waiting for the single in-flight quorum round to finish. Quorum
  // mode serializes writes: the commit floor must be published in version
  // order, and the pre-write snapshot (the rollback point) only exists for one
  // write at a time.
  struct QueuedWrite {
    Invocation invocation;
    sim::NodeId client;
    InvokeCallback done;
  };

  // Invoke with the originating client known: reads are recorded here (every
  // replica serves them), writes only where they execute, so a forwarded write
  // is counted once — at the master, attributed to the forwarding replica.
  void InvokeFrom(const Invocation& invocation, sim::NodeId client,
                  InvokeCallback done);
  // Executes a write locally, then pushes state to all slaves through the group
  // fan-out; responds once every remaining slave has acknowledged. A push
  // refused under a newer epoch means this master was deposed: the write is NOT
  // acknowledged (FailedPrecondition) and the group resolves the new owner.
  void ExecuteWrite(const Invocation& invocation, sim::NodeId client,
                    InvokeCallback done);
  // Quorum write pump: pops the next queued write, refuses it up front if the
  // reachable group cannot assemble a quorum, otherwise executes it, fans the
  // push out with the write as its commit point, publishes the commit floor on
  // quorum and only then acks — rolling back state AND version on any failure.
  void PumpQuorumWrites();
  // Restores the pre-write snapshot after a failed quorum round. Safe to reuse
  // the version slot afterwards: every push of the failed round either settled
  // or exhausted its per-attempt deadline before the fan-out completed, so no
  // stale same-version datagram is still in flight.
  void RollbackWrite();
  // Executes every staged write whose version the commit floor has reached.
  void ApplyStagedUpTo(uint64_t floor);
  // Applied version plus the staged suffix — what this replica could serve if
  // elected; reported in push acks and claims.
  uint64_t DurableVersion() const {
    return staged_.version > version_ ? staged_.version : version_;
  }
  // Registration handshake: join at master_, adopt its snapshot and epoch.
  void RegisterWithMaster(std::function<void(Status)> done);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  sim::Endpoint master_;  // meaningful while the role is slave
  ReplicaGroup group_;
  uint64_t version_ = 0;
  AccessHook access_hook_;
  Staged staged_;                        // slave side: held-not-applied write
  std::deque<QueuedWrite> write_queue_;  // master side, quorum mode
  bool write_in_flight_ = false;
  // Rollback point of the in-flight quorum write; also what registration
  // snapshots hand out mid-write, so a joining slave never adopts state that
  // may yet roll back.
  Bytes pre_write_state_;
  uint64_t pre_write_version_ = 0;
};

class MasterSlaveMaster : public MasterSlaveReplica {
 public:
  MasterSlaveMaster(sim::Transport* transport, sim::NodeId host,
                    std::unique_ptr<SemanticsObject> semantics,
                    WriteGuard write_guard = nullptr, FailoverConfig failover = {})
      : MasterSlaveReplica(transport, host, std::move(semantics),
                           GroupRole::kMaster, sim::Endpoint{},
                           std::move(write_guard), std::move(failover)) {}
};

class MasterSlaveSlave : public MasterSlaveReplica {
 public:
  MasterSlaveSlave(sim::Transport* transport, sim::NodeId host,
                   std::unique_ptr<SemanticsObject> semantics, sim::Endpoint master,
                   WriteGuard write_guard = nullptr, FailoverConfig failover = {})
      : MasterSlaveReplica(transport, host, std::move(semantics), GroupRole::kSlave,
                           master, std::move(write_guard), std::move(failover)) {}
};

}  // namespace globe::dso

#endif  // SRC_DSO_MASTER_SLAVE_H_
