// Master/slave replication: the second protocol of the first Globe release (paper
// §7) and the one the GDN architecture leans on ("a Globe Object Server acting as
// master replica in a master/slave replication protocol", §6.1).
//
// The master holds the authoritative state and executes all writes; after each write
// it eagerly pushes the new state to every registered slave. Slaves execute reads on
// their local copy and forward writes to the master.
//
// Peer methods (beyond the common dso.invoke / dso.get_state):
//   ms.register_slave   : endpoint -> VersionedState   (slave joins, gets snapshot)
//   ms.unregister_slave : endpoint -> empty
//   ms.state_push       : VersionedState -> empty      (master -> slave)

#ifndef SRC_DSO_MASTER_SLAVE_H_
#define SRC_DSO_MASTER_SLAVE_H_

#include <memory>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class MasterSlaveMaster : public ReplicationObject {
 public:
  MasterSlaveMaster(sim::Transport* transport, sim::NodeId host,
                    std::unique_ptr<SemanticsObject> semantics,
                    WriteGuard write_guard = nullptr);

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoMasterSlave,
                               gls::ReplicaRole::kMaster};
  }

  size_t num_slaves() const { return slaves_.size(); }
  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }

 private:
  // Executes a write locally, then pushes state to all slaves; responds once every
  // reachable slave has acknowledged (unreachable slaves are dropped from the set).
  void ExecuteWrite(const Invocation& invocation, InvokeCallback done);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  std::vector<sim::Endpoint> slaves_;
  uint64_t version_ = 0;
};

class MasterSlaveSlave : public ReplicationObject {
 public:
  MasterSlaveSlave(sim::Transport* transport, sim::NodeId host,
                   std::unique_ptr<SemanticsObject> semantics, sim::Endpoint master,
                   WriteGuard write_guard = nullptr);

  // Registers with the master and installs the state snapshot.
  void Start(std::function<void(Status)> done) override;
  void Shutdown(std::function<void(Status)> done) override;

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoMasterSlave,
                               gls::ReplicaRole::kSlave};
  }

  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }

 private:
  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  sim::Endpoint master_;
  uint64_t version_ = 0;
  bool started_ = false;
};

}  // namespace globe::dso

#endif  // SRC_DSO_MASTER_SLAVE_H_
