// Control subobject: bridges user-defined method calls and the standard replication
// interface (paper §3.3): "The control subobject takes care of invocations from
// client processes ... to bridge the gap between the user-defined interfaces of the
// semantics subobject, and the standard interfaces of the replication subobject."
//
// Application proxies (e.g. gdn::PackageProxy) marshal their typed methods into
// (method name, argument bytes, read-only flag) and call Invoke here.

#ifndef SRC_DSO_CONTROL_H_
#define SRC_DSO_CONTROL_H_

#include <string>

#include "src/dso/subobjects.h"

namespace globe::dso {

class ControlObject {
 public:
  explicit ControlObject(ReplicationObject* replication) : replication_(replication) {}

  void Invoke(std::string method, Bytes args, bool read_only, InvokeCallback done) {
    Invocation invocation{std::move(method), std::move(args), read_only};
    replication_->Invoke(invocation, std::move(done));
  }

  ReplicationObject* replication() { return replication_; }

 private:
  ReplicationObject* replication_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_CONTROL_H_
