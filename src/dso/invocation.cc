#include "src/dso/invocation.h"

namespace globe::dso {

Bytes Invocation::Serialize() const {
  ByteWriter w;
  w.WriteString(method);
  w.WriteLengthPrefixed(args);
  w.WriteBool(read_only);
  return w.Take();
}

Result<Invocation> Invocation::Deserialize(ByteSpan data) {
  ByteReader r(data);
  Invocation invocation;
  ASSIGN_OR_RETURN(invocation.method, r.ReadString());
  ASSIGN_OR_RETURN(invocation.args, r.ReadLengthPrefixed());
  ASSIGN_OR_RETURN(invocation.read_only, r.ReadBool());
  return invocation;
}

}  // namespace globe::dso
