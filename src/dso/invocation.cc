#include "src/dso/invocation.h"

namespace globe::dso {

Bytes Invocation::Serialize() const {
  ByteWriter w;
  w.WriteString(method);
  w.WriteLengthPrefixed(args);
  w.WriteBool(read_only);
  return w.Take();
}

Result<Invocation> Invocation::Deserialize(ByteSpan data) {
  ByteReader r(data);
  Invocation invocation;
  // Invocations are retained past the parse (queued, replicated, retried), so
  // the method and args fields own their bytes — copied here, at the boundary.
  ASSIGN_OR_RETURN(std::string_view method, r.ReadStringView());
  invocation.method = std::string(method);
  ASSIGN_OR_RETURN(ByteSpan args, r.ReadLengthPrefixedView());
  invocation.args = ToBytes(args);
  ASSIGN_OR_RETURN(invocation.read_only, r.ReadBool());
  return invocation;
}

}  // namespace globe::dso
