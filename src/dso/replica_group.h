// Shared membership/epoch layer beneath the replication protocols.
//
// Every replication subobject in src/dso used to hand-roll the same three
// mechanisms; this class owns them exactly once:
//   - membership: the peer endpoints a master pushes to (find-before-insert
//     registration, unregistration, drop-on-unreachable),
//   - an explicit role state machine: master / slave / peer / cache, with the
//     legal transitions declared in RoleTransitionAllowed — a slave may be
//     elected master, a master may be deposed back to slave, peer and cache
//     roles are terminal,
//   - the epoch-fenced state-transfer/fan-out engine: every state push, ordered
//     apply, invalidation and lease travels with the group's epoch and is
//     answered with a PushAck, so a partitioned stale master's traffic is
//     refused ("fenced") by replicas that moved to a newer epoch instead of
//     corrupting their state.
//
// On top sits GLS-driven master fail-over (optional, FailoverConfig::enabled):
//   - the master renews an ownership lease at the GLS arbiter (gls.renew_lease)
//     and broadcasts dso.lease renewals to its members on the virtual clock,
//   - members that miss renewals past lease_timeout race an epoch-fenced
//     conditional claim (gls.claim_master); the GLS grants exactly one claimant
//     the next epoch and losers adopt the winner,
//   - a master that learns of a newer epoch — a fenced push, a rejected
//     renewal, a lost claim — demotes itself, fixes its GLS registration and
//     adopts the winner.
//
// Guarantee class: primary-backup with external arbitration, not consensus.
// With fail-over enabled, a write is acknowledged only after every member
// confirmed the epoch-checked push — a push refused under a newer epoch, or
// one whose member stayed unreachable past the retry budget (and was evicted),
// fails the write instead of acking state a future master may lack. A master
// partitioned from all of its members therefore stops acking writes, and the
// GLS lease machinery eventually deposes it.
//
// Quorum-acknowledged writes (FailoverConfig::quorum) close the three residual
// loss windows of the lease-only mode:
//   - membership accounting: a member dropped as unreachable moves to an
//     *evicted* set instead of being forgotten, so the quorum denominator —
//     master + members + evicted — cannot shrink under a partition. A master
//     cut off from every member faces a denominator its lone vote can never
//     satisfy and refuses writes outright instead of executing alone;
//   - per-write commit point: each push carries the write version as its
//     commit point, and members answer with the durable version they hold
//     (PushAck::durable_version). The master acknowledges the client only once
//     a strict majority durably holds the write; an under-replicated write is
//     rolled back at the master (members only ever *staged* it) and refused
//     definitively, never left indeterminate;
//   - exact committed floor: the commit floor is published to the GLS arbiter
//     (gls.renew_lease with strict_floor) BEFORE the client ack, so an
//     election can never seat a claimant that is missing an acked write — the
//     floor at the arbiter is never behind an acknowledged version.

#ifndef SRC_DSO_REPLICA_GROUP_H_
#define SRC_DSO_REPLICA_GROUP_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/wire.h"
#include "src/gls/directory.h"
#include "src/util/log.h"

namespace globe::dso {

// Role of a local representative inside its replica group. kPeer is the
// symmetric-protocol role (every member equivalent); the current protocols map
// master/slave/cache onto gls::ReplicaRole for their contact addresses.
enum class GroupRole : uint8_t {
  kMaster = 0,
  kSlave = 1,
  kPeer = 2,
  kCache = 3,
};

std::string_view GroupRoleName(GroupRole role);

// The declared transition table: slave -> master (won an election), master ->
// slave (deposed by a newer epoch). Peers and caches never change role — a
// cache must not be electable, it may not even hold valid state.
bool RoleTransitionAllowed(GroupRole from, GroupRole to);

gls::ReplicaRole ToReplicaRole(GroupRole role);
GroupRole FromReplicaRole(gls::ReplicaRole role);

// Everything fail-over needs to know; disabled by default so directly
// constructed replicas (unit tests, benches) behave exactly as before — no
// timers, no GLS traffic, epochs pinned at 0.
struct FailoverConfig {
  bool enabled = false;
  gls::ObjectId oid;
  gls::DirectoryRef leaf_directory;  // GLS entry point for claims/renewals
  gls::ProtocolId protocol = 0;      // stamped into (re)registered addresses
  // Master cadence: one GLS renewal + one dso.lease broadcast per interval.
  sim::SimTime lease_interval = 2 * sim::kSecond;
  // Member patience: claim mastership after this long without a renewal. Also
  // the ownership lease duration recorded at the GLS arbiter.
  sim::SimTime lease_timeout = 5 * sim::kSecond;
  // Member check cadence (staggered per endpoint to split simultaneous claims).
  sim::SimTime watch_interval = 1 * sim::kSecond;
  // Quorum-acknowledged writes: a write is acked iff a strict majority of the
  // group (master + members + evicted members) durably holds it, the commit
  // floor is published to the arbiter before the ack, and an under-replicated
  // write is rolled back instead of surfacing as indeterminate. Costs one GLS
  // round trip per write batch (the floor publication) on top of the push
  // fan-out; see the README guarantee-class table.
  bool quorum = false;
};

struct GroupStats {
  uint64_t role_transitions = 0;
  uint64_t members_dropped = 0;  // peers dropped after an unreachable fan-out
  uint64_t pushes_fenced = 0;    // own fan-outs refused by a newer epoch
  uint64_t stale_rejected = 0;   // incoming pushes/leases we refused as stale
  uint64_t leases_sent = 0;      // dso.lease broadcasts issued as master
  uint64_t claims = 0;           // gls.claim_master attempts issued
  uint64_t claims_won = 0;
  uint64_t claims_lost = 0;
  uint64_t demotions = 0;           // master -> slave transitions taken
  sim::SimTime elected_at = 0;      // when this replica last won mastership
  uint64_t quorum_commits = 0;      // writes committed under quorum mode
  uint64_t quorum_refusals = 0;     // writes refused (rolled back/never applied)
  uint64_t floor_publishes = 0;     // commit-floor renewals sent to the arbiter
  uint64_t retired_refusals = 0;    // calls refused after dso.retire latched
};

// Aggregate outcome of one fan-out round.
struct FanOutResult {
  size_t peers = 0;     // members addressed
  size_t failures = 0;  // transport failures (peer possibly dropped)
  size_t acks = 0;      // accepted acks whose durable version reached the
                        // round's commit point (every accept when the point is 0)
  bool fenced = false;  // some peer refused under a newer epoch
  uint64_t fence_epoch = 0;
};

class ReplicaGroup {
 public:
  struct Callbacks {
    // The replica won (or resumed) mastership: role is kMaster, the epoch is
    // updated, the renewal cadence is running. Protocols reset master-pointer
    // state here. `committed_floor` is the arbiter's acked-write floor at the
    // moment of the grant: a quorum-mode protocol applies its staged writes up
    // to (exactly) the floor and discards anything above it — those writes
    // were refused at their master and must not resurrect.
    std::function<void(uint64_t committed_floor)> on_won_mastership;
    // A newer master exists — lost claim, fenced push, rejected renewal. Role
    // is kSlave (after a demotion) and the epoch is updated; protocols point
    // their forwarding at `master` and re-register with it here.
    std::function<void(sim::Endpoint master, uint64_t epoch)> on_adopted_master;
    // Current write version, stamped into lease broadcasts (optional).
    std::function<uint64_t()> version;
    // Highest write version this replica durably holds — applied state plus
    // any staged suffix it could materialize if elected (optional; defaults
    // to `version`). Claims report it so the arbiter's floor check sees what
    // the claimant could actually serve, not just what it has applied.
    std::function<uint64_t()> durable_version;
  };

  ReplicaGroup(CommunicationObject* comm, GroupRole role);
  ~ReplicaGroup();

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  GroupRole role() const { return role_; }
  bool is_master() const { return role_ == GroupRole::kMaster; }
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  // Applies a role change, enforcing the declared transition table.
  Status TransitionTo(GroupRole to);

  // Membership (master side). AddMember is find-before-insert, so registration
  // handshakes are safe to retry; it also clears the peer's evicted mark (a
  // re-registration is the one sanctioned way back into the quorum count).
  // RemoveMember is the graceful path (unregister/shutdown) and forgets the
  // peer entirely.
  bool AddMember(const sim::Endpoint& peer);
  bool RemoveMember(const sim::Endpoint& peer);
  const std::vector<sim::Endpoint>& members() const { return members_; }
  size_t num_members() const { return members_.size(); }

  // Quorum accounting (FailoverConfig::quorum). Group strength counts this
  // replica, its reachable members AND the members evicted as unreachable —
  // eviction must not shrink the write quorum's denominator, or a master
  // partitioned from everyone would happily reach "quorum" of itself.
  bool quorum_enabled() const { return config_.enabled && config_.quorum; }
  size_t group_strength() const { return 1 + members_.size() + evicted_.size(); }
  size_t quorum_size() const { return group_strength() / 2 + 1; }
  // Whether the reachable group can still assemble a quorum at all; a master
  // that cannot refuses writes up front instead of executing and rolling back.
  bool QuorumPossible() const { return 1 + members_.size() >= quorum_size(); }

  // The acked-write commit floor: the highest version known committed (held by
  // a quorum and published to the arbiter). Monotone.
  uint64_t committed_version() const { return committed_version_; }
  void RecordCommit(uint64_t version) {
    committed_version_ = std::max(committed_version_, version);
  }

  // Publishes the commit floor to the GLS arbiter (a strict-floor lease
  // renewal) and reports the outcome. Quorum masters call this BEFORE acking a
  // write: once it succeeds, no claimant below the floor can win an election,
  // so the acked write can never be lost to a fail-over. A rejection under a
  // newer epoch demotes this master first and then reports the error.
  void PublishCommitFloor(uint64_t version, std::function<void(Status)> done);

  // dso.retire latched (the object migrated away from this binding under a
  // newer epoch): the replica must refuse every invocation, reads included.
  bool retired() const { return retired_; }
  // Protocol bookkeeping hooks for the shared stats block.
  void CountRetiredRefusal() { ++stats_.retired_refusals; }
  void CountQuorumCommit() { ++stats_.quorum_commits; }
  void CountQuorumRefusal() { ++stats_.quorum_refusals; }

  // Epoch fence for incoming group traffic (pushes, applies, invalidations,
  // leases): refuses anything from an older epoch, adopts a newer one, and
  // counts accepted traffic as a lease renewal from the current master.
  PushAck FenceIncoming(uint64_t remote_epoch);

  // Explicit renewal (e.g. a registration handshake that just adopted the
  // master's snapshot).
  void RecordLease();

  // The common fan-out engine: one call per member under the write retry
  // budget with a per-attempt deadline (a dead peer must not wedge the
  // caller). Members whose call exhausts its retries are dropped from the set
  // when `drop_unreachable` is set AND fail-over is enabled — an evicted
  // member's own lease watch brings it back via re-registration; without
  // fail-over nothing could, so the member is kept and resynced by the next
  // successful push, as the protocols always did. In quorum mode an evicted
  // member is remembered in the evicted set so the quorum denominator holds.
  // Members that refuse under a newer epoch mark the round fenced, which (with
  // fail-over on) triggers this master's demotion. `commit_point` is the write
  // version this round must make durable: an accepted ack counts towards
  // FanOutResult::acks only when the peer's reported durable version reaches
  // it (pass 0 — e.g. leases, invalidations — to count every accept). `done`
  // runs once after every member answered or failed.
  template <typename Req>
  void FanOut(const sim::TypedMethod<Req, PushAck>& method, const Req& request,
              sim::SimTime per_attempt_deadline, bool drop_unreachable,
              uint64_t commit_point,
              std::function<void(const FanOutResult&)> done) {
    if (members_.empty()) {
      done(FanOutResult{});
      return;
    }
    struct Round {
      FanOutResult result;
      size_t remaining = 0;
      std::function<void(const FanOutResult&)> done;
    };
    auto round = std::make_shared<Round>();
    round->result.peers = members_.size();
    round->remaining = members_.size();
    round->done = std::move(done);
    sim::CallOptions options = WriteCallOptions(per_attempt_deadline);
    std::vector<sim::Endpoint> peers = members_;  // acks may mutate the set
    for (const sim::Endpoint& peer : peers) {
      comm_->Call(method, peer, request,
                  [this, round, peer, drop_unreachable,
                   commit_point](Result<PushAck> ack) {
                    if (!ack.ok()) {
                      ++round->result.failures;
                      GLOG_WARN << GroupRoleName(role_) << " push to "
                                << sim::ToString(peer)
                                << " failed: " << ack.status();
                      if (drop_unreachable && config_.enabled &&
                          RemoveMember(peer)) {
                        ++stats_.members_dropped;
                        if (quorum_enabled()) Evict(peer);
                      }
                    } else if (ack->accepted == 0) {
                      round->result.fenced = true;
                      round->result.fence_epoch =
                          std::max(round->result.fence_epoch, ack->epoch);
                    } else if (ack->durable_version >= commit_point) {
                      ++round->result.acks;
                    }
                    if (--round->remaining == 0) {
                      if (round->result.fenced) {
                        OnFencedSelf(round->result.fence_epoch);
                      }
                      round->done(round->result);
                    }
                  },
                  options);
    }
  }

  // Fail-over wiring. EnableFailover only stores the configuration and
  // callbacks; the timers start with StartMaster / StartFollower.
  void EnableFailover(FailoverConfig config, Callbacks callbacks);
  bool failover_enabled() const { return config_.enabled; }
  const FailoverConfig& failover_config() const { return config_; }

  // Master side: claims (epoch 0) or resumes (checkpointed epoch) mastership at
  // the GLS, then begins the renewal/broadcast cadence. `done` runs once
  // ownership is settled — a rejected resume demotes to slave and adopts the
  // winner first, and still completes OK (the replica serves, just not as
  // master). Without fail-over this is an immediate no-op.
  void StartMaster(std::function<void(Status)> done);
  // Member side: begins the lease watch (slaves and peers only; caches are not
  // electable and never watch). Call after registering with the master.
  void StartFollower();
  // Cancels every timer and mutes pending callbacks; the shutdown path.
  void Stop();

  // The contact address this replica would publish when holding `as`.
  gls::ContactAddress self_address(GroupRole as) const;

  const GroupStats& stats() const { return stats_; }

 private:
  void ScheduleMasterTick();
  void MasterTick();
  void ScheduleWatchTick();
  void WatchTick();
  // Races a conditional ownership update; `settled` (optional) runs after the
  // outcome — grant or loss — has been fully applied.
  void Claim(uint64_t known_epoch, std::function<void()> settled = nullptr);
  void Promote(uint64_t new_epoch, uint64_t committed_floor);
  void Demote(const gls::ContactAddress& winner, uint64_t new_epoch);
  // Marks a just-dropped member as evicted (find-before-insert): it stays in
  // the quorum denominator until it re-registers or is gracefully removed.
  void Evict(const sim::Endpoint& peer);
  // A newer epoch surfaced in our own fan-out: resolve ownership via the GLS.
  void OnFencedSelf(uint64_t fence_epoch);
  // Re-registers this replica's contact address under its new role.
  void FixRegistration(GroupRole old_role, GroupRole new_role);
  void CancelTimer();
  gls::MasterClaim MakeClaim(uint64_t known_epoch) const;

  CommunicationObject* comm_;
  GroupRole role_;
  uint64_t epoch_ = 0;
  std::vector<sim::Endpoint> members_;
  // Members dropped as unreachable (quorum mode only): still counted in
  // group_strength, cleared by re-registration, graceful removal or demotion.
  std::vector<sim::Endpoint> evicted_;
  uint64_t committed_version_ = 0;
  bool retired_ = false;
  FailoverConfig config_;
  Callbacks callbacks_;
  std::unique_ptr<gls::GlsClient> gls_;
  sim::SimTime last_renewal_ = 0;
  bool claim_in_flight_ = false;
  bool resolving_ = false;  // a fence-triggered ownership resolution is underway
  sim::Clock::TimerId timer_ = sim::Clock::kNoTimer;
  // Mutes timer events and GLS callbacks after Stop()/destruction.
  std::shared_ptr<bool> alive_;
  GroupStats stats_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_REPLICA_GROUP_H_
