#include "src/dso/runtime.h"

#include "src/util/log.h"

namespace globe::dso {

RuntimeSystem::RuntimeSystem(sim::Transport* transport, sim::NodeId host,
                             gls::DirectoryRef leaf_directory,
                             const ImplementationRepository* repository,
                             dns::GnsClient* gns)
    : transport_(transport),
      host_(host),
      gls_(transport, host, std::move(leaf_directory)),
      repository_(repository),
      gns_(gns) {}

void RuntimeSystem::Bind(const gls::ObjectId& oid, BindOptions options,
                         BindCallback done) {
  ++stats_.binds;
  gls_.Lookup(oid, [this, oid, options = std::move(options),
                    done = std::move(done)](Result<gls::LookupResult> lookup) mutable {
    if (!lookup.ok()) {
      ++stats_.bind_failures;
      done(lookup.status());
      return;
    }
    FinishBind(oid, std::move(options), std::move(*lookup), std::move(done));
  });
}

void RuntimeSystem::BindByName(std::string_view globe_name, BindOptions options,
                               BindCallback done) {
  if (gns_ == nullptr) {
    done(FailedPrecondition("no GNS client configured on this host"));
    return;
  }
  gns_->Resolve(globe_name, [this, options = std::move(options),
                             done =
                                 std::move(done)](Result<std::string> oid_hex) mutable {
    if (!oid_hex.ok()) {
      done(oid_hex.status());
      return;
    }
    auto oid = gls::ObjectId::FromHex(*oid_hex);
    if (!oid.ok()) {
      done(oid.status());
      return;
    }
    Bind(*oid, std::move(options), std::move(done));
  });
}

void RuntimeSystem::FinishBind(const gls::ObjectId& oid, BindOptions options,
                               gls::LookupResult lookup, BindCallback done) {
  auto object = std::make_unique<BoundObject>();
  object->oid = oid;
  object->lookup = lookup;

  if (!options.as_replica.has_value()) {
    auto proxy = MakeProxy(transport_, host_, lookup.addresses);
    if (!proxy.ok()) {
      ++stats_.bind_failures;
      done(proxy.status());
      return;
    }
    object->replication = std::move(*proxy);
    object->control = std::make_unique<ControlObject>(object->replication.get());
    done(std::move(object));
    return;
  }

  // Replica installation: instantiate the semantics subobject from the repository
  // ("remote class loading"), build the protocol replica, start it, optionally
  // register its contact address.
  if (lookup.addresses.empty()) {
    ++stats_.bind_failures;
    done(NotFound("object has no contact addresses"));
    return;
  }
  auto semantics = repository_->Instantiate(options.semantics_type);
  if (!semantics.ok()) {
    ++stats_.bind_failures;
    done(semantics.status());
    return;
  }
  ReplicaSetup setup;
  setup.transport = transport_;
  setup.host = host_;
  setup.semantics = std::move(*semantics);
  setup.role = *options.as_replica;
  setup.peers = lookup.addresses;
  setup.failover = options.failover;
  setup.failover.oid = oid;
  setup.failover.leaf_directory = gls_.leaf_directory();
  auto replica = MakeReplica(lookup.addresses.front().protocol, std::move(setup));
  if (!replica.ok()) {
    // Protocols that admit no further replicas (e.g. client/server) fall back to a
    // thin proxy — the GDN-HTTPD case: it *may* act as a replica, not must.
    auto proxy = MakeProxy(transport_, host_, lookup.addresses);
    if (!proxy.ok()) {
      ++stats_.bind_failures;
      done(replica.status());
      return;
    }
    object->replication = std::move(*proxy);
    object->control = std::make_unique<ControlObject>(object->replication.get());
    done(std::move(object));
    return;
  }
  object->replication = std::move(*replica);
  object->control = std::make_unique<ControlObject>(object->replication.get());

  // Start (fetch state), then optionally publish in the GLS.
  auto* replication = object->replication.get();
  auto shared_object = std::make_shared<std::unique_ptr<BoundObject>>(std::move(object));
  bool register_in_gls = options.register_in_gls;
  replication->Start([this, shared_object, register_in_gls,
                      done = std::move(done)](Status status) mutable {
    if (!status.ok()) {
      ++stats_.bind_failures;
      done(status);
      return;
    }
    ++stats_.replicas_installed;
    BoundObject* installed = shared_object->get();
    auto address = installed->replication->contact_address();
    if (!register_in_gls || !address.has_value()) {
      done(std::move(*shared_object));
      return;
    }
    gls_.Insert(installed->oid, *address,
                [shared_object, done = std::move(done)](Status insert_status) mutable {
                  if (!insert_status.ok()) {
                    done(insert_status);
                    return;
                  }
                  (*shared_object)->registered_in_gls = true;
                  done(std::move(*shared_object));
                });
  });
}

void RuntimeSystem::Unbind(std::unique_ptr<BoundObject> object,
                           std::function<void(Status)> done) {
  BoundObject* raw = object.get();
  auto shared_object = std::make_shared<std::unique_ptr<BoundObject>>(std::move(object));
  raw->replication->Shutdown([this, shared_object,
                              done = std::move(done)](Status status) mutable {
    BoundObject* released = shared_object->get();
    if (!released->registered_in_gls) {
      done(status);
      return;
    }
    auto address = released->replication->contact_address();
    if (!address.has_value()) {
      done(status);
      return;
    }
    gls_.Delete(released->oid, *address,
                [shared_object, done = std::move(done)](Status delete_status) {
                  done(delete_status);
                });
  });
}

}  // namespace globe::dso
