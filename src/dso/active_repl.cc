#include "src/dso/active_repl.h"

#include <algorithm>

#include "src/util/log.h"

namespace globe::dso {

namespace {
struct ApplyMessage {
  uint64_t version = 0;
  Invocation invocation;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteLengthPrefixed(invocation.Serialize());
    return w.Take();
  }
  static Result<ApplyMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    ApplyMessage msg;
    ASSIGN_OR_RETURN(msg.version, r.ReadU64());
    ASSIGN_OR_RETURN(Bytes inv, r.ReadLengthPrefixed());
    ASSIGN_OR_RETURN(msg.invocation, Invocation::Deserialize(inv));
    return msg;
  }
};
}  // namespace

ActiveReplMember::ActiveReplMember(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   sim::Endpoint sequencer, WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      sequencer_(sequencer) {
  comm_.RegisterAsyncMethod(
      "dso.invoke", [this](const sim::RpcContext& ctx, ByteSpan request,
                           sim::RpcServer::Responder respond) {
        auto invocation = Invocation::Deserialize(request);
        if (!invocation.ok()) {
          respond(invocation.status());
          return;
        }
        if (!invocation->read_only && write_guard_) {
          if (Status s = write_guard_(ctx); !s.ok()) {
            respond(s);
            return;
          }
        }
        Invoke(*invocation, [respond = std::move(respond)](Result<Bytes> result) {
          respond(std::move(result));
        });
      });
  comm_.RegisterMethod("dso.get_state",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         return VersionedState{version_, semantics_->GetState()}.Serialize();
                       });

  comm_.RegisterMethod("dso.master_endpoint",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         ByteWriter w;
                         SerializeEndpoint(is_sequencer() ? comm_.endpoint() : sequencer_, &w);
                         return w.Take();
                       });

  // Sequencer-only methods: harmless to register everywhere, they just fail politely
  // on non-sequencers.
  comm_.RegisterMethod(
      "ar.register", [this](const sim::RpcContext&, ByteSpan request) -> Result<Bytes> {
        if (!is_sequencer()) {
          return FailedPrecondition("not the sequencer");
        }
        ByteReader r(request);
        ASSIGN_OR_RETURN(sim::Endpoint member, DeserializeEndpoint(&r));
        if (std::find(members_.begin(), members_.end(), member) == members_.end()) {
          members_.push_back(member);
        }
        return VersionedState{version_, semantics_->GetState()}.Serialize();
      });
  comm_.RegisterAsyncMethod(
      "ar.order", [this](const sim::RpcContext& ctx, ByteSpan request,
                         sim::RpcServer::Responder respond) {
        if (!is_sequencer()) {
          respond(FailedPrecondition("not the sequencer"));
          return;
        }
        if (write_guard_) {
          if (Status s = write_guard_(ctx); !s.ok()) {
            respond(s);
            return;
          }
        }
        auto invocation = Invocation::Deserialize(request);
        if (!invocation.ok()) {
          respond(invocation.status());
          return;
        }
        OrderWrite(*invocation, [respond = std::move(respond)](Result<Bytes> result) {
          respond(std::move(result));
        });
      });
  comm_.RegisterMethod(
      "ar.apply", [this](const sim::RpcContext& ctx, ByteSpan request) -> Result<Bytes> {
        if (write_guard_) {
          RETURN_IF_ERROR(write_guard_(ctx));
        }
        ASSIGN_OR_RETURN(ApplyMessage msg, ApplyMessage::Deserialize(request));
        RETURN_IF_ERROR(ApplyOrdered(msg.version, msg.invocation));
        return Bytes{};
      });
}

void ActiveReplMember::Start(std::function<void(Status)> done) {
  if (is_sequencer()) {
    done(OkStatus());
    return;
  }
  ByteWriter w;
  SerializeEndpoint(comm_.endpoint(), &w);
  comm_.Call(sequencer_, "ar.register", w.Take(),
             [this, done = std::move(done)](Result<Bytes> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               auto vs = VersionedState::Deserialize(*result);
               if (!vs.ok()) {
                 done(vs.status());
                 return;
               }
               Status s = semantics_->SetState(vs->state);
               if (s.ok()) {
                 version_ = vs->version;
               }
               done(s);
             });
}

void ActiveReplMember::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  if (is_sequencer()) {
    OrderWrite(invocation, std::move(done));
    return;
  }
  comm_.Call(sequencer_, "ar.order", invocation.Serialize(),
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); });
}

void ActiveReplMember::OrderWrite(const Invocation& invocation, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;

  if (members_.empty()) {
    done(std::move(result));
    return;
  }
  Bytes broadcast = ApplyMessage{version_, invocation}.Serialize();
  auto remaining = std::make_shared<size_t>(members_.size());
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  for (const sim::Endpoint& member : members_) {
    comm_.Call(member, "ar.apply", broadcast,
               [remaining, shared_done, shared_result, member](Result<Bytes> ack) {
                 if (!ack.ok()) {
                   GLOG_WARN << "ar.apply to " << sim::ToString(member)
                             << " failed: " << ack.status();
                 }
                 if (--*remaining == 0) {
                   (*shared_done)(std::move(*shared_result));
                 }
               },
               /*timeout=*/5 * sim::kSecond);
  }
}

Status ActiveReplMember::ApplyOrdered(uint64_t write_version, const Invocation& invocation) {
  if (write_version <= version_) {
    return OkStatus();  // duplicate
  }
  pending_[write_version] = invocation;
  // Apply every consecutively-numbered buffered write.
  while (true) {
    auto it = pending_.find(version_ + 1);
    if (it == pending_.end()) {
      break;
    }
    Result<Bytes> result = semantics_->Invoke(it->second);
    if (!result.ok()) {
      GLOG_ERROR << "active replica diverged applying v" << it->first << ": "
                 << result.status();
      return result.status();
    }
    ++version_;
    pending_.erase(it);
  }
  return OkStatus();
}

}  // namespace globe::dso
