#include "src/dso/active_repl.h"

#include <limits>
#include <memory>

#include "src/util/log.h"

namespace globe::dso {

namespace {

struct ApplyMessage {
  uint64_t version = 0;
  uint64_t epoch = 0;
  // Commit floor at send time (see VersionedState::committed): members execute
  // buffered writes only up to the floor; this write itself executes when a
  // later message's floor reaches it.
  uint64_t committed = 0;
  Invocation invocation;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteU64(epoch);
    w.WriteU64(committed);
    w.WriteLengthPrefixed(invocation.Serialize());
    return w.Take();
  }
  static Result<ApplyMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    ApplyMessage msg;
    ASSIGN_OR_RETURN(msg.version, r.ReadU64());
    ASSIGN_OR_RETURN(msg.epoch, r.ReadU64());
    ASSIGN_OR_RETURN(msg.committed, r.ReadU64());
    // Decode the nested invocation straight out of the outer frame; only the
    // Invocation's own fields copy (it owns them past the parse).
    ASSIGN_OR_RETURN(ByteSpan inv, r.ReadLengthPrefixedView());
    ASSIGN_OR_RETURN(msg.invocation, Invocation::Deserialize(inv));
    return msg;
  }
};

const sim::TypedMethod<EndpointMessage, VersionedState> kArRegister{"ar.register"};
// Ordering a write executes it at the sequencer and claims a version slot, so a
// duplicate delivery must be answered from the dedup table, never re-ordered.
// ar.apply needs no dedup: ApplyOrdered drops already-applied versions itself,
// and the epoch fence refuses applies from a deposed sequencer.
const sim::TypedMethod<Invocation, Bytes> kArOrder{"ar.order", sim::kNonIdempotent};
const sim::TypedMethod<ApplyMessage, PushAck> kArApply{"ar.apply"};

}  // namespace

ActiveReplMember::ActiveReplMember(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   sim::Endpoint sequencer, WriteGuard write_guard,
                                   FailoverConfig failover)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      sequencer_(sequencer),
      group_(&comm_, sequencer.node == sim::kNoNode ? GroupRole::kMaster
                                                    : GroupRole::kSlave) {
  failover.protocol = kProtoActiveRepl;
  ReplicaGroup::Callbacks callbacks;
  callbacks.on_won_mastership = [this](uint64_t committed_floor) {
    sequencer_ = sim::Endpoint{};
    if (group_.quorum_enabled()) {
      // Execute the buffered suffix the acked-write floor covers, then drop
      // the rest: anything above the floor was refused at its sequencer and
      // must not resurrect through this election.
      group_.RecordCommit(committed_floor);
      DrainPending();
    }
    pending_.clear();  // our state is now the authoritative prefix
  };
  callbacks.on_adopted_master = [this](sim::Endpoint new_sequencer, uint64_t) {
    sequencer_ = new_sequencer;
    RegisterWithSequencer([](Status) {});
  };
  callbacks.version = [this] { return version_; };
  callbacks.durable_version = [this] { return DurableVersion(); };
  group_.EnableFailover(std::move(failover), std::move(callbacks));

  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    InvokeFrom(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{is_sequencer() ? comm_.endpoint()
                                                         : sequencer_};
                 });
  comm_.Register(kDsoLease,
                 [this](const sim::RpcContext& ctx,
                        const LeaseMessage& lease) -> Result<PushAck> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   PushAck ack = group_.FenceIncoming(lease.epoch);
                   if (ack.accepted != 0 && !is_sequencer()) {
                     if (lease.master != sequencer_) {
                       sequencer_ = lease.master;
                     }
                     // The lease carries the commit floor: execute buffered
                     // writes it has reached; a floor past our contiguous
                     // suffix exposes a hole only a snapshot can fill.
                     group_.RecordCommit(lease.committed);
                     DrainPending();
                     MaybeResync();
                   }
                   ack.durable_version = DurableVersion();
                   return ack;
                 });

  // Sequencer-only methods: harmless to register everywhere, they just fail politely
  // on non-sequencers.
  comm_.Register(kArRegister,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionedState> {
                   if (!is_sequencer()) {
                     return FailedPrecondition("not the sequencer");
                   }
                   group_.AddMember(request.endpoint);
                   if (write_in_flight_) {
                     // Mid-quorum-round: hand out the rollback point, never
                     // state that may yet be rolled back and refused.
                     return VersionedState{pre_write_version_, group_.epoch(),
                                           pre_write_version_, pre_write_state_};
                   }
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
  comm_.RegisterAsync(kArOrder, [this](const sim::RpcContext& ctx,
                                       Invocation invocation,
                                       std::function<void(Result<Bytes>)> respond) {
    if (group_.retired()) {
      group_.CountRetiredRefusal();
      respond(FailedPrecondition("replica retired (object migrated); rebind"));
      return;
    }
    if (!is_sequencer()) {
      respond(FailedPrecondition("not the sequencer"));
      return;
    }
    if (write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    OrderWrite(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kArApply,
                 [this](const sim::RpcContext& ctx,
                        const ApplyMessage& msg) -> Result<PushAck> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   PushAck ack = group_.FenceIncoming(msg.epoch);
                   if (ack.accepted == 0) {
                     return ack;  // deposed sequencer: refuse the apply
                   }
                   if (is_sequencer()) {
                     return PushAck{0, group_.epoch()};
                   }
                   group_.RecordCommit(msg.committed);
                   RETURN_IF_ERROR(ApplyOrdered(msg.version, msg.invocation));
                   ack.durable_version = DurableVersion();
                   return ack;
                 });
}

void ActiveReplMember::Start(std::function<void(Status)> done) {
  if (is_sequencer()) {
    group_.StartMaster(std::move(done));
    return;
  }
  RegisterWithSequencer([this, done = std::move(done)](Status s) {
    // Watch regardless of the registration outcome: a member whose sequencer
    // moved (restore across an election) recovers through the claim path.
    group_.StartFollower();
    done(s);
  });
}

void ActiveReplMember::Shutdown(std::function<void(Status)> done) {
  group_.Stop();
  done(OkStatus());
}

void ActiveReplMember::RegisterWithSequencer(std::function<void(Status)> done) {
  comm_.Call(kArRegister, sequencer_, EndpointMessage{comm_.endpoint()},
             [this, done = std::move(done)](Result<VersionedState> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
                 pending_.clear();  // buffered applies predate this snapshot
                 group_.RecordCommit(result->committed);
                 if (result->epoch > group_.epoch()) {
                   group_.set_epoch(result->epoch);
                 }
                 group_.RecordLease();
               }
               done(s);
             },
             WriteCallOptions());
}

void ActiveReplMember::Invoke(const Invocation& invocation, InvokeCallback done) {
  InvokeFrom(invocation, comm_.endpoint().node, std::move(done));
}

void ActiveReplMember::InvokeFrom(const Invocation& invocation, sim::NodeId client,
                                  InvokeCallback done) {
  if (group_.retired()) {
    group_.CountRetiredRefusal();
    done(FailedPrecondition("replica retired (object migrated); rebind"));
    return;
  }
  if (invocation.read_only) {
    Result<Bytes> result = semantics_->Invoke(invocation);
    if (access_hook_ && result.ok()) {
      access_hook_(AccessSample{false, result->size(), client});
    }
    done(std::move(result));
    return;
  }
  if (is_sequencer()) {
    if (group_.quorum_enabled()) {
      write_queue_.push_back(QueuedWrite{invocation, client, std::move(done)});
      PumpQuorumOrders();
      return;
    }
    OrderWrite(invocation, client, std::move(done));
    return;
  }
  comm_.Call(kArOrder, sequencer_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

void ActiveReplMember::OrderWrite(const Invocation& invocation, sim::NodeId client,
                                  InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;
  if (access_hook_) {
    access_hook_(AccessSample{true, invocation.args.size(), client});
  }

  // Apply fan-out through the group engine: retries on loss (ApplyOrdered is
  // version-guarded, so duplicates are no-ops), drops unreachable members (they
  // re-register for a snapshot), and a fenced apply — a member on a newer
  // epoch — fails the write unacknowledged: we were deposed.
  ApplyMessage broadcast{version_, group_.epoch(), version_, invocation};
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  bool strict = group_.failover_enabled();
  group_.FanOut(kArApply, broadcast, 5 * sim::kSecond, /*drop_unreachable=*/true,
                /*commit_point=*/0,
                [shared_done, shared_result, strict](const FanOutResult& fan) {
                  if (fan.fenced) {
                    (*shared_done)(FailedPrecondition(
                        "no longer the sequencer: deposed by epoch " +
                        std::to_string(fan.fence_epoch)));
                    return;
                  }
                  if (strict && fan.failures > 0) {
                    // As in master/slave: an evicted member may be elected
                    // later, so an apply it never received must not be acked.
                    (*shared_done)(FailedPrecondition(
                        "write ordered but not fully replicated: " +
                        std::to_string(fan.failures) + " of " +
                        std::to_string(fan.peers) + " apply(s) unconfirmed"));
                    return;
                  }
                  (*shared_done)(std::move(*shared_result));
                });
}

Status ActiveReplMember::ApplyOrdered(uint64_t write_version,
                                      const Invocation& invocation) {
  if (write_version <= version_) {
    return OkStatus();  // duplicate
  }
  // Overwrite is unconditional: after a rollback at the sequencer the version
  // slot is reused, and the superseding invocation must replace the refused
  // one a previous broadcast left buffered here.
  pending_[write_version] = invocation;
  Status s = DrainPending();
  MaybeResync();
  return s;
}

Status ActiveReplMember::DrainPending() {
  // Quorum mode executes only up to the commit floor; without quorum writes
  // execute as soon as they are consecutive (the floor is not a gate).
  uint64_t limit = group_.quorum_enabled()
                       ? group_.committed_version()
                       : std::numeric_limits<uint64_t>::max();
  while (version_ < limit) {
    auto it = pending_.find(version_ + 1);
    if (it == pending_.end()) {
      break;
    }
    Result<Bytes> result = semantics_->Invoke(it->second);
    if (!result.ok()) {
      GLOG_ERROR << "active replica diverged applying v" << it->first << ": "
                 << result.status();
      return result.status();
    }
    ++version_;
    pending_.erase(it);
  }
  return OkStatus();
}

void ActiveReplMember::MaybeResync() {
  if (!group_.quorum_enabled() || resync_in_flight_ || is_sequencer() ||
      sequencer_.node == sim::kNoNode) {
    return;
  }
  if (group_.committed_version() <= DurableVersion()) {
    return;
  }
  // The commit floor moved past a write we never received (we were unreachable
  // for one broadcast): no later broadcast can fill the hole, only a snapshot.
  resync_in_flight_ = true;
  RegisterWithSequencer([this](Status) { resync_in_flight_ = false; });
}

void ActiveReplMember::PumpQuorumOrders() {
  if (write_in_flight_ || write_queue_.empty()) {
    return;
  }
  if (!is_sequencer()) {
    // Deposed while writes were queued: forward them to the winner.
    while (!write_queue_.empty()) {
      QueuedWrite w = std::move(write_queue_.front());
      write_queue_.pop_front();
      comm_.Call(kArOrder, sequencer_, w.invocation,
                 [done = std::move(w.done)](Result<Bytes> result) {
                   done(std::move(result));
                 },
                 WriteCallOptions());
    }
    return;
  }
  if (!group_.QuorumPossible()) {
    QueuedWrite w = std::move(write_queue_.front());
    write_queue_.pop_front();
    group_.CountQuorumRefusal();
    w.done(FailedPrecondition(
        "write refused: quorum unreachable (" +
        std::to_string(1 + group_.num_members()) + " of " +
        std::to_string(group_.group_strength()) + " replicas reachable, need " +
        std::to_string(group_.quorum_size()) + "); nothing was applied"));
    PumpQuorumOrders();
    return;
  }

  write_in_flight_ = true;
  QueuedWrite w = std::move(write_queue_.front());
  write_queue_.pop_front();
  pre_write_state_ = semantics_->GetState();
  pre_write_version_ = version_;
  Result<Bytes> result = semantics_->Invoke(w.invocation);
  if (!result.ok()) {
    write_in_flight_ = false;
    w.done(std::move(result));
    PumpQuorumOrders();
    return;
  }
  ++version_;
  if (access_hook_) {
    access_hook_(AccessSample{true, w.invocation.args.size(), w.client});
  }

  uint64_t commit_point = version_;
  // Stamp the CURRENT floor: members buffer this write and execute it once the
  // floor — published below before the ack — reaches it.
  ApplyMessage broadcast{commit_point, group_.epoch(),
                         group_.committed_version(), w.invocation};
  auto shared_done = std::make_shared<InvokeCallback>(std::move(w.done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  group_.FanOut(
      kArApply, broadcast, 5 * sim::kSecond, /*drop_unreachable=*/true,
      commit_point,
      [this, shared_done, shared_result, commit_point](const FanOutResult& fan) {
        auto refuse = [&](const std::string& why) {
          RollbackWrite();
          group_.CountQuorumRefusal();
          write_in_flight_ = false;
          (*shared_done)(FailedPrecondition(why));
          PumpQuorumOrders();
        };
        if (fan.fenced) {
          refuse("no longer the sequencer: deposed by epoch " +
                 std::to_string(fan.fence_epoch) + "; write rolled back");
          return;
        }
        size_t votes = 1 + fan.acks;
        if (votes < group_.quorum_size()) {
          refuse("write under-replicated (" + std::to_string(votes) + " of " +
                 std::to_string(group_.group_strength()) +
                 " replicas hold it, need " +
                 std::to_string(group_.quorum_size()) + "); rolled back");
          return;
        }
        group_.PublishCommitFloor(
            commit_point, [this, shared_done, shared_result](Status s) {
              if (!s.ok()) {
                RollbackWrite();
                group_.CountQuorumRefusal();
                write_in_flight_ = false;
                (*shared_done)(FailedPrecondition(
                    "write held by a quorum but the commit floor could not be "
                    "published; rolled back: " +
                    s.message()));
                PumpQuorumOrders();
                return;
              }
              group_.CountQuorumCommit();
              write_in_flight_ = false;
              (*shared_done)(std::move(*shared_result));
              PumpQuorumOrders();
            });
      });
}

void ActiveReplMember::RollbackWrite() {
  if (Status s = semantics_->SetState(pre_write_state_); !s.ok()) {
    GLOG_ERROR << "quorum rollback failed to restore state: " << s;
  }
  version_ = pre_write_version_;
}

}  // namespace globe::dso
