#include "src/dso/active_repl.h"

#include <memory>

#include "src/util/log.h"

namespace globe::dso {

namespace {

struct ApplyMessage {
  uint64_t version = 0;
  uint64_t epoch = 0;
  Invocation invocation;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteU64(epoch);
    w.WriteLengthPrefixed(invocation.Serialize());
    return w.Take();
  }
  static Result<ApplyMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    ApplyMessage msg;
    ASSIGN_OR_RETURN(msg.version, r.ReadU64());
    ASSIGN_OR_RETURN(msg.epoch, r.ReadU64());
    // Decode the nested invocation straight out of the outer frame; only the
    // Invocation's own fields copy (it owns them past the parse).
    ASSIGN_OR_RETURN(ByteSpan inv, r.ReadLengthPrefixedView());
    ASSIGN_OR_RETURN(msg.invocation, Invocation::Deserialize(inv));
    return msg;
  }
};

const sim::TypedMethod<EndpointMessage, VersionedState> kArRegister{"ar.register"};
// Ordering a write executes it at the sequencer and claims a version slot, so a
// duplicate delivery must be answered from the dedup table, never re-ordered.
// ar.apply needs no dedup: ApplyOrdered drops already-applied versions itself,
// and the epoch fence refuses applies from a deposed sequencer.
const sim::TypedMethod<Invocation, Bytes> kArOrder{"ar.order", sim::kNonIdempotent};
const sim::TypedMethod<ApplyMessage, PushAck> kArApply{"ar.apply"};

}  // namespace

ActiveReplMember::ActiveReplMember(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   sim::Endpoint sequencer, WriteGuard write_guard,
                                   FailoverConfig failover)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      sequencer_(sequencer),
      group_(&comm_, sequencer.node == sim::kNoNode ? GroupRole::kMaster
                                                    : GroupRole::kSlave) {
  failover.protocol = kProtoActiveRepl;
  ReplicaGroup::Callbacks callbacks;
  callbacks.on_won_mastership = [this] {
    sequencer_ = sim::Endpoint{};
    pending_.clear();  // our state is now the authoritative prefix
  };
  callbacks.on_adopted_master = [this](sim::Endpoint new_sequencer, uint64_t) {
    sequencer_ = new_sequencer;
    RegisterWithSequencer([](Status) {});
  };
  callbacks.version = [this] { return version_; };
  group_.EnableFailover(std::move(failover), std::move(callbacks));

  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    InvokeFrom(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, group_.epoch(),
                                         semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{is_sequencer() ? comm_.endpoint()
                                                         : sequencer_};
                 });
  comm_.Register(kDsoLease,
                 [this](const sim::RpcContext& ctx,
                        const LeaseMessage& lease) -> Result<PushAck> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   PushAck ack = group_.FenceIncoming(lease.epoch);
                   if (ack.accepted != 0 && !is_sequencer() &&
                       lease.master != sequencer_) {
                     sequencer_ = lease.master;
                   }
                   return ack;
                 });

  // Sequencer-only methods: harmless to register everywhere, they just fail politely
  // on non-sequencers.
  comm_.Register(kArRegister,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionedState> {
                   if (!is_sequencer()) {
                     return FailedPrecondition("not the sequencer");
                   }
                   group_.AddMember(request.endpoint);
                   return VersionedState{version_, group_.epoch(),
                                         semantics_->GetState()};
                 });
  comm_.RegisterAsync(kArOrder, [this](const sim::RpcContext& ctx,
                                       Invocation invocation,
                                       std::function<void(Result<Bytes>)> respond) {
    if (!is_sequencer()) {
      respond(FailedPrecondition("not the sequencer"));
      return;
    }
    if (write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    OrderWrite(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kArApply,
                 [this](const sim::RpcContext& ctx,
                        const ApplyMessage& msg) -> Result<PushAck> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   PushAck ack = group_.FenceIncoming(msg.epoch);
                   if (ack.accepted == 0) {
                     return ack;  // deposed sequencer: refuse the apply
                   }
                   if (is_sequencer()) {
                     return PushAck{0, group_.epoch()};
                   }
                   RETURN_IF_ERROR(ApplyOrdered(msg.version, msg.invocation));
                   return ack;
                 });
}

void ActiveReplMember::Start(std::function<void(Status)> done) {
  if (is_sequencer()) {
    group_.StartMaster(std::move(done));
    return;
  }
  RegisterWithSequencer([this, done = std::move(done)](Status s) {
    // Watch regardless of the registration outcome: a member whose sequencer
    // moved (restore across an election) recovers through the claim path.
    group_.StartFollower();
    done(s);
  });
}

void ActiveReplMember::Shutdown(std::function<void(Status)> done) {
  group_.Stop();
  done(OkStatus());
}

void ActiveReplMember::RegisterWithSequencer(std::function<void(Status)> done) {
  comm_.Call(kArRegister, sequencer_, EndpointMessage{comm_.endpoint()},
             [this, done = std::move(done)](Result<VersionedState> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
                 pending_.clear();  // buffered applies predate this snapshot
                 if (result->epoch > group_.epoch()) {
                   group_.set_epoch(result->epoch);
                 }
                 group_.RecordLease();
               }
               done(s);
             },
             WriteCallOptions());
}

void ActiveReplMember::Invoke(const Invocation& invocation, InvokeCallback done) {
  InvokeFrom(invocation, comm_.endpoint().node, std::move(done));
}

void ActiveReplMember::InvokeFrom(const Invocation& invocation, sim::NodeId client,
                                  InvokeCallback done) {
  if (invocation.read_only) {
    Result<Bytes> result = semantics_->Invoke(invocation);
    if (access_hook_ && result.ok()) {
      access_hook_(AccessSample{false, result->size(), client});
    }
    done(std::move(result));
    return;
  }
  if (is_sequencer()) {
    OrderWrite(invocation, client, std::move(done));
    return;
  }
  comm_.Call(kArOrder, sequencer_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

void ActiveReplMember::OrderWrite(const Invocation& invocation, sim::NodeId client,
                                  InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;
  if (access_hook_) {
    access_hook_(AccessSample{true, invocation.args.size(), client});
  }

  // Apply fan-out through the group engine: retries on loss (ApplyOrdered is
  // version-guarded, so duplicates are no-ops), drops unreachable members (they
  // re-register for a snapshot), and a fenced apply — a member on a newer
  // epoch — fails the write unacknowledged: we were deposed.
  ApplyMessage broadcast{version_, group_.epoch(), invocation};
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  bool strict = group_.failover_enabled();
  group_.FanOut(kArApply, broadcast, 5 * sim::kSecond, /*drop_unreachable=*/true,
                [shared_done, shared_result, strict](const FanOutResult& fan) {
                  if (fan.fenced) {
                    (*shared_done)(FailedPrecondition(
                        "no longer the sequencer: deposed by epoch " +
                        std::to_string(fan.fence_epoch)));
                    return;
                  }
                  if (strict && fan.failures > 0) {
                    // As in master/slave: an evicted member may be elected
                    // later, so an apply it never received must not be acked.
                    (*shared_done)(FailedPrecondition(
                        "write ordered but not fully replicated: " +
                        std::to_string(fan.failures) + " of " +
                        std::to_string(fan.peers) + " apply(s) unconfirmed"));
                    return;
                  }
                  (*shared_done)(std::move(*shared_result));
                });
}

Status ActiveReplMember::ApplyOrdered(uint64_t write_version,
                                      const Invocation& invocation) {
  if (write_version <= version_) {
    return OkStatus();  // duplicate
  }
  pending_[write_version] = invocation;
  // Apply every consecutively-numbered buffered write.
  while (true) {
    auto it = pending_.find(version_ + 1);
    if (it == pending_.end()) {
      break;
    }
    Result<Bytes> result = semantics_->Invoke(it->second);
    if (!result.ok()) {
      GLOG_ERROR << "active replica diverged applying v" << it->first << ": "
                 << result.status();
      return result.status();
    }
    ++version_;
    pending_.erase(it);
  }
  return OkStatus();
}

}  // namespace globe::dso
