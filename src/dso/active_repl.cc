#include "src/dso/active_repl.h"

#include <algorithm>

#include "src/util/log.h"

namespace globe::dso {

namespace {

struct ApplyMessage {
  uint64_t version = 0;
  Invocation invocation;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU64(version);
    w.WriteLengthPrefixed(invocation.Serialize());
    return w.Take();
  }
  static Result<ApplyMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    ApplyMessage msg;
    ASSIGN_OR_RETURN(msg.version, r.ReadU64());
    ASSIGN_OR_RETURN(Bytes inv, r.ReadLengthPrefixed());
    ASSIGN_OR_RETURN(msg.invocation, Invocation::Deserialize(inv));
    return msg;
  }
};

const sim::TypedMethod<EndpointMessage, VersionedState> kArRegister{"ar.register"};
// Ordering a write executes it at the sequencer and claims a version slot, so a
// duplicate delivery must be answered from the dedup table, never re-ordered.
// ar.apply needs no dedup: ApplyOrdered drops already-applied versions itself.
const sim::TypedMethod<Invocation, Bytes> kArOrder{"ar.order", sim::kNonIdempotent};
const sim::TypedMethod<ApplyMessage, sim::EmptyMessage> kArApply{"ar.apply"};

}  // namespace

ActiveReplMember::ActiveReplMember(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   sim::Endpoint sequencer, WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      sequencer_(sequencer) {
  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    Invoke(invocation, [respond = std::move(respond)](Result<Bytes> result) {
      respond(std::move(result));
    });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{is_sequencer() ? comm_.endpoint() : sequencer_};
                 });

  // Sequencer-only methods: harmless to register everywhere, they just fail politely
  // on non-sequencers.
  comm_.Register(kArRegister,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionedState> {
                   if (!is_sequencer()) {
                     return FailedPrecondition("not the sequencer");
                   }
                   if (std::find(members_.begin(), members_.end(), request.endpoint) ==
                       members_.end()) {
                     members_.push_back(request.endpoint);
                   }
                   return VersionedState{version_, semantics_->GetState()};
                 });
  comm_.RegisterAsync(kArOrder, [this](const sim::RpcContext& ctx,
                                       Invocation invocation,
                                       std::function<void(Result<Bytes>)> respond) {
    if (!is_sequencer()) {
      respond(FailedPrecondition("not the sequencer"));
      return;
    }
    if (write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    OrderWrite(invocation, [respond = std::move(respond)](Result<Bytes> result) {
      respond(std::move(result));
    });
  });
  comm_.Register(kArApply,
                 [this](const sim::RpcContext& ctx,
                        const ApplyMessage& msg) -> Result<sim::EmptyMessage> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   RETURN_IF_ERROR(ApplyOrdered(msg.version, msg.invocation));
                   return sim::EmptyMessage{};
                 });
}

void ActiveReplMember::Start(std::function<void(Status)> done) {
  if (is_sequencer()) {
    done(OkStatus());
    return;
  }
  comm_.Call(kArRegister, sequencer_, EndpointMessage{comm_.endpoint()},
             [this, done = std::move(done)](Result<VersionedState> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
               }
               done(s);
             },
             WriteCallOptions());
}

void ActiveReplMember::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  if (is_sequencer()) {
    OrderWrite(invocation, std::move(done));
    return;
  }
  comm_.Call(kArOrder, sequencer_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

void ActiveReplMember::OrderWrite(const Invocation& invocation, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;

  if (members_.empty()) {
    done(std::move(result));
    return;
  }
  // Apply fan-out retries on loss: ApplyOrdered is version-guarded, so a
  // duplicate apply is a no-op at the member.
  ApplyMessage broadcast{version_, invocation};
  sim::CallOptions apply_options = WriteCallOptions(5 * sim::kSecond);
  auto remaining = std::make_shared<size_t>(members_.size());
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  for (const sim::Endpoint& member : members_) {
    comm_.Call(kArApply, member, broadcast,
               [remaining, shared_done, shared_result,
                member](Result<sim::EmptyMessage> ack) {
                 if (!ack.ok()) {
                   GLOG_WARN << "ar.apply to " << sim::ToString(member)
                             << " failed: " << ack.status();
                 }
                 if (--*remaining == 0) {
                   (*shared_done)(std::move(*shared_result));
                 }
               },
               apply_options);
  }
}

Status ActiveReplMember::ApplyOrdered(uint64_t write_version,
                                      const Invocation& invocation) {
  if (write_version <= version_) {
    return OkStatus();  // duplicate
  }
  pending_[write_version] = invocation;
  // Apply every consecutively-numbered buffered write.
  while (true) {
    auto it = pending_.find(version_ + 1);
    if (it == pending_.end()) {
      break;
    }
    Result<Bytes> result = semantics_->Invoke(it->second);
    if (!result.ok()) {
      GLOG_ERROR << "active replica diverged applying v" << it->first << ": "
                 << result.status();
      return result.status();
    }
    ++version_;
    pending_.erase(it);
  }
  return OkStatus();
}

}  // namespace globe::dso
