// Client/(single) server replication: the simplest of the two protocols shipped with
// the first Globe release (paper §7). One server-side local representative holds the
// state and executes every invocation; clients hold thin proxies that forward
// everything to it.
//
// RemoteProxy doubles as the generic thin-client binding for every other protocol:
// replicas of all protocols accept "dso.invoke" and route reads/writes per their own
// rules, so a proxy only needs to pick the nearest replica and forward.
//
// Peer methods:
//   dso.invoke    : Invocation -> result bytes
//   dso.get_state : empty -> VersionedState

#ifndef SRC_DSO_CLIENT_SERVER_H_
#define SRC_DSO_CLIENT_SERVER_H_

#include <memory>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/replica_group.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class ClientServerServer : public ReplicationObject {
 public:
  ClientServerServer(sim::Transport* transport, sim::NodeId host,
                     std::unique_ptr<SemanticsObject> semantics,
                     WriteGuard write_guard = nullptr);

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  uint64_t epoch() const override { return group_.epoch(); }
  void set_epoch(uint64_t e) override { group_.set_epoch(e); }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoClientServer,
                               ToReplicaRole(group_.role())};
  }

  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }
  const ReplicaGroup* group() const override { return &group_; }
  void set_access_hook(AccessHook hook) override { access_hook_ = std::move(hook); }

 private:
  // Single-server protocol: every access — read or write — executes here, so
  // every sample is recorded here, attributed to the invoking client.
  Result<Bytes> Execute(const Invocation& invocation, sim::NodeId client);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  // Single-replica protocol: the group is a trivial permanent master — no
  // members, no transitions — but role/epoch bookkeeping stays uniform.
  ReplicaGroup group_;
  uint64_t version_ = 0;
  AccessHook access_hook_;
};

// Thin client-side representative: no semantics subobject, no local state; every
// invocation crosses the network to one chosen replica.
class RemoteProxy : public ReplicationObject {
 public:
  RemoteProxy(sim::Transport* transport, sim::NodeId host, gls::ContactAddress peer);

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return 0; }

  const gls::ContactAddress& peer() const { return peer_; }

 private:
  CommunicationObject comm_;
  gls::ContactAddress peer_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_CLIENT_SERVER_H_
