#include "src/dso/master_slave.h"

#include <algorithm>
#include <memory>

#include "src/util/log.h"

namespace globe::dso {

namespace {

const sim::TypedMethod<EndpointMessage, VersionedState> kMsRegisterSlave{
    "ms.register_slave"};
const sim::TypedMethod<EndpointMessage, sim::EmptyMessage> kMsUnregisterSlave{
    "ms.unregister_slave"};
const sim::TypedMethod<VersionedState, sim::EmptyMessage> kMsStatePush{"ms.state_push"};

}  // namespace

MasterSlaveMaster::MasterSlaveMaster(sim::Transport* transport, sim::NodeId host,
                                     std::unique_ptr<SemanticsObject> semantics,
                                     WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)) {
  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    Invoke(invocation, [respond = std::move(respond)](Result<Bytes> result) {
      respond(std::move(result));
    });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{comm_.endpoint()};
                 });
  comm_.Register(kMsRegisterSlave,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionedState> {
                   if (std::find(slaves_.begin(), slaves_.end(), request.endpoint) ==
                       slaves_.end()) {
                     slaves_.push_back(request.endpoint);
                   }
                   return VersionedState{version_, semantics_->GetState()};
                 });
  comm_.Register(kMsUnregisterSlave,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<sim::EmptyMessage> {
                   slaves_.erase(
                       std::remove(slaves_.begin(), slaves_.end(), request.endpoint),
                       slaves_.end());
                   return sim::EmptyMessage{};
                 });
}

void MasterSlaveMaster::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  ExecuteWrite(invocation, std::move(done));
}

void MasterSlaveMaster::ExecuteWrite(const Invocation& invocation, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;

  if (slaves_.empty()) {
    done(std::move(result));
    return;
  }

  // Eager push: one state message per slave, respond when all have answered (or
  // failed — a dead slave must not wedge the master; see the fault-injection
  // tests). Pushes retry on loss: ms.state_push is version-guarded, so a
  // duplicate is a no-op on the slave even without server-side dedup.
  VersionedState push{version_, semantics_->GetState()};
  sim::CallOptions push_options = WriteCallOptions(5 * sim::kSecond);
  auto remaining = std::make_shared<size_t>(slaves_.size());
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  for (const sim::Endpoint& slave : slaves_) {
    comm_.Call(kMsStatePush, slave, push,
               [remaining, shared_done, shared_result,
                slave](Result<sim::EmptyMessage> ack) {
                 if (!ack.ok()) {
                   GLOG_WARN << "state push to slave " << sim::ToString(slave)
                             << " failed: " << ack.status();
                 }
                 if (--*remaining == 0) {
                   (*shared_done)(std::move(*shared_result));
                 }
               },
               push_options);
  }
}

MasterSlaveSlave::MasterSlaveSlave(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   sim::Endpoint master, WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      master_(master) {
  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    Invoke(invocation, [respond = std::move(respond)](Result<Bytes> result) {
      respond(std::move(result));
    });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{master_};
                 });
  comm_.Register(
      kMsStatePush,
      [this](const sim::RpcContext& ctx,
             const VersionedState& push) -> Result<sim::EmptyMessage> {
        if (write_guard_) {
          RETURN_IF_ERROR(write_guard_(ctx));
        }
        if (push.version <= version_) {
          return sim::EmptyMessage{};  // stale or duplicate push
        }
        RETURN_IF_ERROR(semantics_->SetState(push.state));
        version_ = push.version;
        return sim::EmptyMessage{};
      });
}

void MasterSlaveSlave::Start(std::function<void(Status)> done) {
  // Registration is find-before-insert on the master, so retrying it is safe.
  comm_.Call(kMsRegisterSlave, master_, EndpointMessage{comm_.endpoint()},
             [this, done = std::move(done)](Result<VersionedState> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
                 started_ = true;
               }
               done(s);
             },
             WriteCallOptions());
}

void MasterSlaveSlave::Shutdown(std::function<void(Status)> done) {
  comm_.Call(kMsUnregisterSlave, master_, EndpointMessage{comm_.endpoint()},
             [done = std::move(done)](Result<sim::EmptyMessage> result) {
               done(result.ok() ? OkStatus() : result.status());
             },
             WriteCallOptions());
}

void MasterSlaveSlave::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  // Writes go to the master; our copy is refreshed by its push. dso.invoke is
  // deduped on the master, so the retry budget cannot double-execute a write.
  comm_.Call(kDsoInvoke, master_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

}  // namespace globe::dso
