#include "src/dso/master_slave.h"

#include <memory>

#include "src/util/log.h"

namespace globe::dso {

namespace {

const sim::TypedMethod<EndpointMessage, VersionedState> kMsRegisterSlave{
    "ms.register_slave"};
const sim::TypedMethod<EndpointMessage, sim::EmptyMessage> kMsUnregisterSlave{
    "ms.unregister_slave"};
// Pushes are version-guarded (duplicates are no-ops) and epoch-fenced (a stale
// master's push is refused, never applied), so no server-side dedup is needed.
const sim::TypedMethod<VersionedState, PushAck> kMsStatePush{"ms.state_push"};

}  // namespace

MasterSlaveReplica::MasterSlaveReplica(sim::Transport* transport, sim::NodeId host,
                                       std::unique_ptr<SemanticsObject> semantics,
                                       GroupRole role, sim::Endpoint master,
                                       WriteGuard write_guard,
                                       FailoverConfig failover)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      master_(master),
      group_(&comm_, role) {
  failover.protocol = kProtoMasterSlave;
  ReplicaGroup::Callbacks callbacks;
  callbacks.on_won_mastership = [this] {
    // The member list starts empty: surviving slaves join as their own lease
    // watches fire and their claims lose to ours.
    master_ = sim::Endpoint{};
  };
  callbacks.on_adopted_master = [this](sim::Endpoint new_master, uint64_t) {
    master_ = new_master;
    // Join the winner and refresh our snapshot (this also discards anything a
    // deposed master diverged on — those writes were never acknowledged). On
    // failure the lease watch retries via the next claim.
    RegisterWithMaster([](Status) {});
  };
  callbacks.version = [this] { return version_; };
  group_.EnableFailover(std::move(failover), std::move(callbacks));

  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    InvokeFrom(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, group_.epoch(),
                                         semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{group_.is_master() ? comm_.endpoint()
                                                             : master_};
                 });
  comm_.Register(kDsoLease,
                 [this](const sim::RpcContext& ctx,
                        const LeaseMessage& lease) -> Result<PushAck> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   PushAck ack = group_.FenceIncoming(lease.epoch);
                   if (ack.accepted != 0 && !group_.is_master() &&
                       lease.master != master_) {
                     // A newer master introduced itself before our watch fired
                     // (we are in its member list, or we would not get leases).
                     master_ = lease.master;
                   }
                   return ack;
                 });
  comm_.Register(kMsRegisterSlave,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionedState> {
                   if (!group_.is_master()) {
                     return FailedPrecondition("not the master");
                   }
                   group_.AddMember(request.endpoint);
                   return VersionedState{version_, group_.epoch(),
                                         semantics_->GetState()};
                 });
  comm_.Register(kMsUnregisterSlave,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<sim::EmptyMessage> {
                   group_.RemoveMember(request.endpoint);
                   return sim::EmptyMessage{};
                 });
  comm_.Register(
      kMsStatePush,
      [this](const sim::RpcContext& ctx,
             const VersionedState& push) -> Result<PushAck> {
        if (write_guard_) {
          RETURN_IF_ERROR(write_guard_(ctx));
        }
        PushAck ack = group_.FenceIncoming(push.epoch);
        if (ack.accepted == 0) {
          return ack;  // stale master: refuse, report our epoch
        }
        if (group_.is_master()) {
          // Two masters under one epoch should not exist; refuse rather than
          // let a peer overwrite the authoritative copy.
          return PushAck{0, group_.epoch()};
        }
        if (push.version > version_) {  // else: stale or duplicate push
          RETURN_IF_ERROR(semantics_->SetState(push.state));
          version_ = push.version;
        }
        return ack;
      });
}

void MasterSlaveReplica::Start(std::function<void(Status)> done) {
  if (group_.is_master()) {
    group_.StartMaster(std::move(done));
    return;
  }
  RegisterWithMaster([this, done = std::move(done)](Status s) {
    // The lease watch starts even when the registration failed (e.g. a replica
    // restored from a checkpoint whose master moved): the watch times out,
    // claims, and either wins mastership or adopts the GLS record's master and
    // re-registers there — the self-healing loop.
    group_.StartFollower();
    done(s);
  });
}

void MasterSlaveReplica::RegisterWithMaster(std::function<void(Status)> done) {
  // Registration is find-before-insert on the master, so retrying it is safe.
  comm_.Call(kMsRegisterSlave, master_, EndpointMessage{comm_.endpoint()},
             [this, done = std::move(done)](Result<VersionedState> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
                 if (result->epoch > group_.epoch()) {
                   group_.set_epoch(result->epoch);
                 }
                 group_.RecordLease();
               }
               done(s);
             },
             WriteCallOptions());
}

void MasterSlaveReplica::Shutdown(std::function<void(Status)> done) {
  group_.Stop();
  if (group_.is_master()) {
    done(OkStatus());
    return;
  }
  comm_.Call(kMsUnregisterSlave, master_, EndpointMessage{comm_.endpoint()},
             [done = std::move(done)](Result<sim::EmptyMessage> result) {
               done(result.ok() ? OkStatus() : result.status());
             },
             WriteCallOptions());
}

void MasterSlaveReplica::Invoke(const Invocation& invocation, InvokeCallback done) {
  InvokeFrom(invocation, comm_.endpoint().node, std::move(done));
}

void MasterSlaveReplica::InvokeFrom(const Invocation& invocation, sim::NodeId client,
                                    InvokeCallback done) {
  if (invocation.read_only) {
    Result<Bytes> result = semantics_->Invoke(invocation);
    if (access_hook_ && result.ok()) {
      access_hook_(AccessSample{false, result->size(), client});
    }
    done(std::move(result));
    return;
  }
  if (group_.is_master()) {
    ExecuteWrite(invocation, client, std::move(done));
    return;
  }
  // Writes go to the master; our copy is refreshed by its push. dso.invoke is
  // deduped on the master, so the retry budget cannot double-execute a write.
  comm_.Call(kDsoInvoke, master_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

void MasterSlaveReplica::ExecuteWrite(const Invocation& invocation,
                                      sim::NodeId client, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;
  if (access_hook_) {
    access_hook_(AccessSample{true, invocation.args.size(), client});
  }

  // Eager push through the group fan-out: one epoch-stamped state message per
  // slave, respond when all have answered (a dead slave must not wedge the
  // master; with fail-over on it is dropped from the set and rejoins through
  // its own lease watch). A slave refusing under a newer epoch means WE were
  // deposed, so the write must not be acknowledged.
  VersionedState push{version_, group_.epoch(), semantics_->GetState()};
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  bool strict = group_.failover_enabled();
  group_.FanOut(kMsStatePush, push, 5 * sim::kSecond, /*drop_unreachable=*/true,
                [shared_done, shared_result, strict](const FanOutResult& fan) {
                  if (fan.fenced) {
                    (*shared_done)(FailedPrecondition(
                        "no longer master: deposed by epoch " +
                        std::to_string(fan.fence_epoch)));
                    return;
                  }
                  if (strict && fan.failures > 0) {
                    // With fail-over on, an evicted slave may later be elected:
                    // acknowledging a write it never received would break the
                    // acked-write floor. Refuse the ack (definitive, so the
                    // dedup table replays it — a retry must not re-execute).
                    // The outcome is INDETERMINATE, not rolled back: the write
                    // stays applied locally and becomes visible if this master
                    // survives — the floor only promises that *acked* writes
                    // are never lost, never that refused ones vanish.
                    (*shared_done)(FailedPrecondition(
                        "write executed but not fully replicated: " +
                        std::to_string(fan.failures) + " of " +
                        std::to_string(fan.peers) + " push(es) unconfirmed"));
                    return;
                  }
                  (*shared_done)(std::move(*shared_result));
                });
}

}  // namespace globe::dso
