#include "src/dso/master_slave.h"

#include <memory>

#include "src/util/log.h"

namespace globe::dso {

namespace {

const sim::TypedMethod<EndpointMessage, VersionedState> kMsRegisterSlave{
    "ms.register_slave"};
const sim::TypedMethod<EndpointMessage, sim::EmptyMessage> kMsUnregisterSlave{
    "ms.unregister_slave"};
// Pushes are version-guarded (duplicates are no-ops) and epoch-fenced (a stale
// master's push is refused, never applied), so no server-side dedup is needed.
const sim::TypedMethod<VersionedState, PushAck> kMsStatePush{"ms.state_push"};

}  // namespace

MasterSlaveReplica::MasterSlaveReplica(sim::Transport* transport, sim::NodeId host,
                                       std::unique_ptr<SemanticsObject> semantics,
                                       GroupRole role, sim::Endpoint master,
                                       WriteGuard write_guard,
                                       FailoverConfig failover)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      master_(master),
      group_(&comm_, role) {
  failover.protocol = kProtoMasterSlave;
  ReplicaGroup::Callbacks callbacks;
  callbacks.on_won_mastership = [this](uint64_t committed_floor) {
    // The member list starts empty: surviving slaves join as their own lease
    // watches fire and their claims lose to ours.
    master_ = sim::Endpoint{};
    // The grant names the acked-write floor: execute the staged suffix up to
    // exactly there, discard anything above it (those writes were refused at
    // their master and must not resurrect through an election).
    ApplyStagedUpTo(committed_floor);
    staged_ = Staged{};
  };
  callbacks.on_adopted_master = [this](sim::Endpoint new_master, uint64_t) {
    master_ = new_master;
    // Join the winner and refresh our snapshot (this also discards anything a
    // deposed master diverged on — those writes were never acknowledged). On
    // failure the lease watch retries via the next claim.
    RegisterWithMaster([](Status) {});
  };
  callbacks.version = [this] { return version_; };
  callbacks.durable_version = [this] { return DurableVersion(); };
  group_.EnableFailover(std::move(failover), std::move(callbacks));

  comm_.RegisterAsync(kDsoInvoke, [this](const sim::RpcContext& ctx,
                                         Invocation invocation,
                                         std::function<void(Result<Bytes>)> respond) {
    if (!invocation.read_only && write_guard_) {
      if (Status s = write_guard_(ctx); !s.ok()) {
        respond(s);
        return;
      }
    }
    InvokeFrom(invocation, ctx.client.node,
               [respond = std::move(respond)](Result<Bytes> result) {
                 respond(std::move(result));
               });
  });
  comm_.Register(kDsoGetState,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<VersionedState> {
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
  comm_.Register(kDsoMasterEndpoint,
                 [this](const sim::RpcContext&,
                        const sim::EmptyMessage&) -> Result<EndpointMessage> {
                   return EndpointMessage{group_.is_master() ? comm_.endpoint()
                                                             : master_};
                 });
  comm_.Register(kDsoLease,
                 [this](const sim::RpcContext& ctx,
                        const LeaseMessage& lease) -> Result<PushAck> {
                   if (write_guard_) {
                     RETURN_IF_ERROR(write_guard_(ctx));
                   }
                   PushAck ack = group_.FenceIncoming(lease.epoch);
                   if (ack.accepted != 0 && !group_.is_master()) {
                     if (lease.master != master_) {
                       // A newer master introduced itself before our watch
                       // fired (we are in its member list, or we would not get
                       // leases).
                       master_ = lease.master;
                     }
                     // The lease piggybacks the commit floor: execute staged
                     // writes the floor has reached, so slave staleness under
                     // quorum mode is bounded by one lease interval.
                     group_.RecordCommit(lease.committed);
                     ApplyStagedUpTo(lease.committed);
                   }
                   ack.durable_version = DurableVersion();
                   return ack;
                 });
  comm_.Register(kMsRegisterSlave,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<VersionedState> {
                   if (!group_.is_master()) {
                     return FailedPrecondition("not the master");
                   }
                   group_.AddMember(request.endpoint);
                   if (write_in_flight_) {
                     // Mid-quorum-round: hand out the rollback point, never
                     // state that may yet be rolled back and refused.
                     return VersionedState{pre_write_version_, group_.epoch(),
                                           pre_write_version_, pre_write_state_};
                   }
                   return VersionedState{version_, group_.epoch(), version_,
                                         semantics_->GetState()};
                 });
  comm_.Register(kMsUnregisterSlave,
                 [this](const sim::RpcContext&,
                        const EndpointMessage& request) -> Result<sim::EmptyMessage> {
                   group_.RemoveMember(request.endpoint);
                   return sim::EmptyMessage{};
                 });
  comm_.Register(
      kMsStatePush,
      [this](const sim::RpcContext& ctx,
             const VersionedState& push) -> Result<PushAck> {
        if (write_guard_) {
          RETURN_IF_ERROR(write_guard_(ctx));
        }
        PushAck ack = group_.FenceIncoming(push.epoch);
        if (ack.accepted == 0) {
          return ack;  // stale master: refuse, report our epoch
        }
        if (group_.is_master()) {
          // Two masters under one epoch should not exist; refuse rather than
          // let a peer overwrite the authoritative copy.
          return PushAck{0, group_.epoch()};
        }
        // The push carries the commit floor: settle anything it has reached.
        group_.RecordCommit(push.committed);
        ApplyStagedUpTo(push.committed);
        if (push.version <= push.committed) {
          // Committed (non-quorum masters stamp committed == version): apply
          // directly, exactly the original eager-push behaviour.
          if (push.version > version_) {  // else: stale or duplicate push
            RETURN_IF_ERROR(semantics_->SetState(push.state));
            version_ = push.version;
          }
        } else if (push.version > version_) {
          // Above the floor: hold it durably without executing — it commits
          // when a later push or lease raises the floor past it. Overwrite is
          // unconditional: a re-pushed version slot (after a rollback at the
          // master) carries the write that superseded the rolled-back one.
          staged_ = Staged{push.version, push.epoch, push.state};
        }
        ack.durable_version = DurableVersion();
        return ack;
      });
}

void MasterSlaveReplica::Start(std::function<void(Status)> done) {
  if (group_.is_master()) {
    group_.StartMaster(std::move(done));
    return;
  }
  RegisterWithMaster([this, done = std::move(done)](Status s) {
    // The lease watch starts even when the registration failed (e.g. a replica
    // restored from a checkpoint whose master moved): the watch times out,
    // claims, and either wins mastership or adopts the GLS record's master and
    // re-registers there — the self-healing loop.
    group_.StartFollower();
    done(s);
  });
}

void MasterSlaveReplica::RegisterWithMaster(std::function<void(Status)> done) {
  // Registration is find-before-insert on the master, so retrying it is safe.
  comm_.Call(kMsRegisterSlave, master_, EndpointMessage{comm_.endpoint()},
             [this, done = std::move(done)](Result<VersionedState> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               Status s = semantics_->SetState(result->state);
               if (s.ok()) {
                 version_ = result->version;
                 // The snapshot supersedes anything held from a previous
                 // membership — including a staged write that was refused.
                 staged_ = Staged{};
                 group_.RecordCommit(result->committed);
                 if (result->epoch > group_.epoch()) {
                   group_.set_epoch(result->epoch);
                 }
                 group_.RecordLease();
               }
               done(s);
             },
             WriteCallOptions());
}

void MasterSlaveReplica::Shutdown(std::function<void(Status)> done) {
  group_.Stop();
  if (group_.is_master()) {
    done(OkStatus());
    return;
  }
  comm_.Call(kMsUnregisterSlave, master_, EndpointMessage{comm_.endpoint()},
             [done = std::move(done)](Result<sim::EmptyMessage> result) {
               done(result.ok() ? OkStatus() : result.status());
             },
             WriteCallOptions());
}

void MasterSlaveReplica::Invoke(const Invocation& invocation, InvokeCallback done) {
  InvokeFrom(invocation, comm_.endpoint().node, std::move(done));
}

void MasterSlaveReplica::InvokeFrom(const Invocation& invocation, sim::NodeId client,
                                    InvokeCallback done) {
  if (group_.retired()) {
    // The object migrated away from this binding: refusing reads too is the
    // point — a retired slave must never serve dead state silently.
    group_.CountRetiredRefusal();
    done(FailedPrecondition("replica retired (object migrated); rebind"));
    return;
  }
  if (invocation.read_only) {
    Result<Bytes> result = semantics_->Invoke(invocation);
    if (access_hook_ && result.ok()) {
      access_hook_(AccessSample{false, result->size(), client});
    }
    done(std::move(result));
    return;
  }
  if (group_.is_master()) {
    if (group_.quorum_enabled()) {
      write_queue_.push_back(QueuedWrite{invocation, client, std::move(done)});
      PumpQuorumWrites();
      return;
    }
    ExecuteWrite(invocation, client, std::move(done));
    return;
  }
  // Writes go to the master; our copy is refreshed by its push. dso.invoke is
  // deduped on the master, so the retry budget cannot double-execute a write.
  comm_.Call(kDsoInvoke, master_, invocation,
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); },
             WriteCallOptions());
}

void MasterSlaveReplica::ExecuteWrite(const Invocation& invocation,
                                      sim::NodeId client, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;
  if (access_hook_) {
    access_hook_(AccessSample{true, invocation.args.size(), client});
  }

  // Eager push through the group fan-out: one epoch-stamped state message per
  // slave, respond when all have answered (a dead slave must not wedge the
  // master; with fail-over on it is dropped from the set and rejoins through
  // its own lease watch). A slave refusing under a newer epoch means WE were
  // deposed, so the write must not be acknowledged.
  VersionedState push{version_, group_.epoch(), version_, semantics_->GetState()};
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  bool strict = group_.failover_enabled();
  group_.FanOut(kMsStatePush, push, 5 * sim::kSecond, /*drop_unreachable=*/true,
                /*commit_point=*/0,
                [shared_done, shared_result, strict](const FanOutResult& fan) {
                  if (fan.fenced) {
                    (*shared_done)(FailedPrecondition(
                        "no longer master: deposed by epoch " +
                        std::to_string(fan.fence_epoch)));
                    return;
                  }
                  if (strict && fan.failures > 0) {
                    // With fail-over on, an evicted slave may later be elected:
                    // acknowledging a write it never received would break the
                    // acked-write floor. Refuse the ack (definitive, so the
                    // dedup table replays it — a retry must not re-execute).
                    // The outcome is INDETERMINATE, not rolled back: the write
                    // stays applied locally and becomes visible if this master
                    // survives — the floor only promises that *acked* writes
                    // are never lost, never that refused ones vanish.
                    (*shared_done)(FailedPrecondition(
                        "write executed but not fully replicated: " +
                        std::to_string(fan.failures) + " of " +
                        std::to_string(fan.peers) + " push(es) unconfirmed"));
                    return;
                  }
                  (*shared_done)(std::move(*shared_result));
                });
}

void MasterSlaveReplica::PumpQuorumWrites() {
  if (write_in_flight_ || write_queue_.empty()) {
    return;
  }
  if (!group_.is_master()) {
    // Demoted while writes were queued: forward them to the winner (deduped
    // there, so a client retry cannot double-execute).
    while (!write_queue_.empty()) {
      QueuedWrite w = std::move(write_queue_.front());
      write_queue_.pop_front();
      comm_.Call(kDsoInvoke, master_, w.invocation,
                 [done = std::move(w.done)](Result<Bytes> result) {
                   done(std::move(result));
                 },
                 WriteCallOptions());
    }
    return;
  }
  if (!group_.QuorumPossible()) {
    // The reachable group cannot assemble a majority (e.g. this master is
    // partitioned from everyone): refuse without executing. Definitive — the
    // dedup table replays the refusal, and nothing was applied anywhere.
    QueuedWrite w = std::move(write_queue_.front());
    write_queue_.pop_front();
    group_.CountQuorumRefusal();
    w.done(FailedPrecondition(
        "write refused: quorum unreachable (" +
        std::to_string(1 + group_.num_members()) + " of " +
        std::to_string(group_.group_strength()) + " replicas reachable, need " +
        std::to_string(group_.quorum_size()) + "); nothing was applied"));
    PumpQuorumWrites();
    return;
  }

  write_in_flight_ = true;
  QueuedWrite w = std::move(write_queue_.front());
  write_queue_.pop_front();
  pre_write_state_ = semantics_->GetState();
  pre_write_version_ = version_;
  Result<Bytes> result = semantics_->Invoke(w.invocation);
  if (!result.ok()) {
    write_in_flight_ = false;
    w.done(std::move(result));
    PumpQuorumWrites();
    return;
  }
  ++version_;
  if (access_hook_) {
    access_hook_(AccessSample{true, w.invocation.args.size(), w.client});
  }

  uint64_t commit_point = version_;
  // The push stamps the CURRENT floor, not the new write: members stage this
  // write and execute it only once the floor catches up — which happens after
  // the floor publication below succeeds, via the next push or lease.
  VersionedState push{commit_point, group_.epoch(), group_.committed_version(),
                      semantics_->GetState()};
  auto shared_done = std::make_shared<InvokeCallback>(std::move(w.done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  group_.FanOut(
      kMsStatePush, push, 5 * sim::kSecond, /*drop_unreachable=*/true,
      commit_point,
      [this, shared_done, shared_result, commit_point](const FanOutResult& fan) {
        auto refuse = [&](const std::string& why) {
          RollbackWrite();
          group_.CountQuorumRefusal();
          write_in_flight_ = false;
          (*shared_done)(FailedPrecondition(why));
          PumpQuorumWrites();
        };
        if (fan.fenced) {
          refuse("no longer master: deposed by epoch " +
                 std::to_string(fan.fence_epoch) + "; write rolled back");
          return;
        }
        // This master's own durable copy plus every member whose durable
        // version reached the write.
        size_t votes = 1 + fan.acks;
        if (votes < group_.quorum_size()) {
          refuse("write under-replicated (" + std::to_string(votes) + " of " +
                 std::to_string(group_.group_strength()) +
                 " replicas hold it, need " +
                 std::to_string(group_.quorum_size()) + "); rolled back");
          return;
        }
        // A quorum durably holds the write: publish the exact floor to the
        // arbiter, and only then ack. If publication fails the write is rolled
        // back and refused even though members hold it staged — staged entries
        // above the floor never execute and are overwritten by the slot reuse.
        group_.PublishCommitFloor(
            commit_point, [this, shared_done, shared_result](Status s) {
              if (!s.ok()) {
                RollbackWrite();
                group_.CountQuorumRefusal();
                write_in_flight_ = false;
                (*shared_done)(FailedPrecondition(
                    "write held by a quorum but the commit floor could not be "
                    "published; rolled back: " +
                    s.message()));
                PumpQuorumWrites();
                return;
              }
              group_.CountQuorumCommit();
              write_in_flight_ = false;
              (*shared_done)(std::move(*shared_result));
              PumpQuorumWrites();
            });
      });
}

void MasterSlaveReplica::RollbackWrite() {
  if (Status s = semantics_->SetState(pre_write_state_); !s.ok()) {
    GLOG_ERROR << "quorum rollback failed to restore state: " << s;
  }
  version_ = pre_write_version_;
}

void MasterSlaveReplica::ApplyStagedUpTo(uint64_t floor) {
  if (staged_.version == 0 || staged_.version > floor) {
    return;
  }
  if (staged_.version > version_) {
    // A committed version's payload is unique (the floor only ever rises past
    // writes a quorum acked), so executing a staged entry from an older epoch
    // is safe: any superseding write of the same slot would have overwritten
    // it through the push path before the floor reached this version.
    if (Status s = semantics_->SetState(staged_.state); s.ok()) {
      version_ = staged_.version;
    } else {
      GLOG_ERROR << "failed to apply staged write " << staged_.version << ": "
                 << s;
      return;  // keep the staged entry; a later floor carrier retries
    }
  }
  staged_ = Staged{};
}

}  // namespace globe::dso
