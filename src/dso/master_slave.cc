#include "src/dso/master_slave.h"

#include <algorithm>
#include <memory>

#include "src/util/log.h"

namespace globe::dso {

MasterSlaveMaster::MasterSlaveMaster(sim::Transport* transport, sim::NodeId host,
                                     std::unique_ptr<SemanticsObject> semantics,
                                     WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)) {
  comm_.RegisterAsyncMethod(
      "dso.invoke", [this](const sim::RpcContext& ctx, ByteSpan request,
                           sim::RpcServer::Responder respond) {
        auto invocation = Invocation::Deserialize(request);
        if (!invocation.ok()) {
          respond(invocation.status());
          return;
        }
        if (!invocation->read_only && write_guard_) {
          if (Status s = write_guard_(ctx); !s.ok()) {
            respond(s);
            return;
          }
        }
        Invoke(*invocation, [respond = std::move(respond)](Result<Bytes> result) {
          respond(std::move(result));
        });
      });
  comm_.RegisterMethod("dso.get_state",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         return VersionedState{version_, semantics_->GetState()}.Serialize();
                       });
  comm_.RegisterMethod("dso.master_endpoint",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         ByteWriter w;
                         SerializeEndpoint(comm_.endpoint(), &w);
                         return w.Take();
                       });
  comm_.RegisterMethod(
      "ms.register_slave", [this](const sim::RpcContext&, ByteSpan request) -> Result<Bytes> {
        ByteReader r(request);
        ASSIGN_OR_RETURN(sim::Endpoint slave, DeserializeEndpoint(&r));
        if (std::find(slaves_.begin(), slaves_.end(), slave) == slaves_.end()) {
          slaves_.push_back(slave);
        }
        return VersionedState{version_, semantics_->GetState()}.Serialize();
      });
  comm_.RegisterMethod(
      "ms.unregister_slave",
      [this](const sim::RpcContext&, ByteSpan request) -> Result<Bytes> {
        ByteReader r(request);
        ASSIGN_OR_RETURN(sim::Endpoint slave, DeserializeEndpoint(&r));
        slaves_.erase(std::remove(slaves_.begin(), slaves_.end(), slave), slaves_.end());
        return Bytes{};
      });
}

void MasterSlaveMaster::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  ExecuteWrite(invocation, std::move(done));
}

void MasterSlaveMaster::ExecuteWrite(const Invocation& invocation, InvokeCallback done) {
  Result<Bytes> result = semantics_->Invoke(invocation);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  ++version_;

  if (slaves_.empty()) {
    done(std::move(result));
    return;
  }

  // Eager push: one state message per slave, respond when all have answered (or
  // failed — a dead slave must not wedge the master; see the fault-injection tests).
  Bytes push = VersionedState{version_, semantics_->GetState()}.Serialize();
  auto remaining = std::make_shared<size_t>(slaves_.size());
  auto shared_done = std::make_shared<InvokeCallback>(std::move(done));
  auto shared_result = std::make_shared<Result<Bytes>>(std::move(result));
  for (const sim::Endpoint& slave : slaves_) {
    comm_.Call(slave, "ms.state_push", push,
               [remaining, shared_done, shared_result, slave](Result<Bytes> ack) {
                 if (!ack.ok()) {
                   GLOG_WARN << "state push to slave " << sim::ToString(slave)
                             << " failed: " << ack.status();
                 }
                 if (--*remaining == 0) {
                   (*shared_done)(std::move(*shared_result));
                 }
               },
               /*timeout=*/5 * sim::kSecond);
  }
}

MasterSlaveSlave::MasterSlaveSlave(sim::Transport* transport, sim::NodeId host,
                                   std::unique_ptr<SemanticsObject> semantics,
                                   sim::Endpoint master, WriteGuard write_guard)
    : comm_(transport, host),
      semantics_(std::move(semantics)),
      write_guard_(std::move(write_guard)),
      master_(master) {
  comm_.RegisterAsyncMethod(
      "dso.invoke", [this](const sim::RpcContext& ctx, ByteSpan request,
                           sim::RpcServer::Responder respond) {
        auto invocation = Invocation::Deserialize(request);
        if (!invocation.ok()) {
          respond(invocation.status());
          return;
        }
        if (!invocation->read_only && write_guard_) {
          if (Status s = write_guard_(ctx); !s.ok()) {
            respond(s);
            return;
          }
        }
        Invoke(*invocation, [respond = std::move(respond)](Result<Bytes> result) {
          respond(std::move(result));
        });
      });
  comm_.RegisterMethod("dso.get_state",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         return VersionedState{version_, semantics_->GetState()}.Serialize();
                       });
  comm_.RegisterMethod("dso.master_endpoint",
                       [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                         ByteWriter w;
                         SerializeEndpoint(master_, &w);
                         return w.Take();
                       });
  comm_.RegisterMethod(
      "ms.state_push", [this](const sim::RpcContext& ctx, ByteSpan request) -> Result<Bytes> {
        if (write_guard_) {
          RETURN_IF_ERROR(write_guard_(ctx));
        }
        ASSIGN_OR_RETURN(VersionedState vs, VersionedState::Deserialize(request));
        if (vs.version <= version_) {
          return Bytes{};  // stale or duplicate push
        }
        RETURN_IF_ERROR(semantics_->SetState(vs.state));
        version_ = vs.version;
        return Bytes{};
      });
}

void MasterSlaveSlave::Start(std::function<void(Status)> done) {
  ByteWriter w;
  SerializeEndpoint(comm_.endpoint(), &w);
  comm_.Call(master_, "ms.register_slave", w.Take(),
             [this, done = std::move(done)](Result<Bytes> result) {
               if (!result.ok()) {
                 done(result.status());
                 return;
               }
               auto vs = VersionedState::Deserialize(*result);
               if (!vs.ok()) {
                 done(vs.status());
                 return;
               }
               Status s = semantics_->SetState(vs->state);
               if (s.ok()) {
                 version_ = vs->version;
                 started_ = true;
               }
               done(s);
             });
}

void MasterSlaveSlave::Shutdown(std::function<void(Status)> done) {
  ByteWriter w;
  SerializeEndpoint(comm_.endpoint(), &w);
  comm_.Call(master_, "ms.unregister_slave", w.Take(),
             [done = std::move(done)](Result<Bytes> result) {
               done(result.ok() ? OkStatus() : result.status());
             });
}

void MasterSlaveSlave::Invoke(const Invocation& invocation, InvokeCallback done) {
  if (invocation.read_only) {
    done(semantics_->Invoke(invocation));
    return;
  }
  // Writes go to the master; our copy is refreshed by its push.
  comm_.Call(master_, "dso.invoke", invocation.Serialize(),
             [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); });
}

}  // namespace globe::dso
