#include "src/dso/protocols.h"

#include <limits>

#include "src/dso/active_repl.h"
#include "src/dso/cache_inval.h"
#include "src/dso/client_server.h"
#include "src/dso/master_slave.h"

namespace globe::dso {

WriteGuard RequireRoles(const sec::KeyRegistry* registry, std::vector<sec::Role> roles) {
  return [registry, roles = std::move(roles)](const sim::RpcContext& context) -> Status {
    if (context.peer_principal == sec::kAnonymous || !context.integrity_protected) {
      return PermissionDenied(
          "state-modifying request requires an authenticated channel");
    }
    auto role = registry->RoleOf(context.peer_principal);
    if (!role.ok()) {
      return PermissionDenied("unknown principal");
    }
    for (sec::Role allowed : roles) {
      if (*role == allowed) {
        return OkStatus();
      }
    }
    return PermissionDenied("sender role not authorized to modify this object");
  };
}

std::string_view ProtocolName(gls::ProtocolId protocol) {
  switch (protocol) {
    case kProtoClientServer:
      return "client/server";
    case kProtoMasterSlave:
      return "master/slave";
    case kProtoActiveRepl:
      return "active";
    case kProtoCacheInval:
      return "cache/invalidate";
    default:
      return "unknown";
  }
}

namespace {
// Finds the master (or sequencer) among the known peer addresses.
Result<gls::ContactAddress> FindMaster(const std::vector<gls::ContactAddress>& peers) {
  for (const auto& peer : peers) {
    if (peer.role == gls::ReplicaRole::kMaster) {
      return peer;
    }
  }
  return FailedPrecondition("no master replica among known contact addresses");
}
}  // namespace

Result<gls::ContactAddress> NearestAddress(sim::Transport* transport, sim::NodeId host,
                                           const std::vector<gls::ContactAddress>&
                                               addresses) {
  if (addresses.empty()) {
    return NotFound("no contact addresses");
  }
  // Ranks by the transport's advisory delay estimate. Under the simulated
  // network this is the topology latency; socket backends report 0 for every
  // peer, so the first listed address wins — a deterministic, sensible default
  // when all peers are equally near.
  const gls::ContactAddress* best = nullptr;
  double best_latency = std::numeric_limits<double>::infinity();
  for (const auto& address : addresses) {
    double latency = transport->EstimateDeliveryDelayUs(host, address.endpoint.node, 0);
    if (latency < best_latency) {
      best_latency = latency;
      best = &address;
    }
  }
  return *best;
}

Result<std::unique_ptr<ReplicationObject>> MakeReplica(gls::ProtocolId protocol,
                                                       ReplicaSetup setup) {
  if (setup.semantics == nullptr) {
    return InvalidArgument("replica requires a semantics subobject");
  }
  // The hook is installed post-construction on whichever protocol class the
  // switch below builds, so every branch stays a plain constructor call.
  AccessHook hook = std::move(setup.access_hook);
  auto result = [&]() -> Result<std::unique_ptr<ReplicationObject>> {
    switch (protocol) {
    case kProtoClientServer:
      if (setup.role != gls::ReplicaRole::kMaster) {
        return InvalidArgument("client/server supports a single master replica only");
      }
      return std::unique_ptr<ReplicationObject>(std::make_unique<ClientServerServer>(
          setup.transport, setup.host, std::move(setup.semantics),
          std::move(setup.write_guard)));

    case kProtoMasterSlave: {
      if (setup.role == gls::ReplicaRole::kMaster) {
        return std::unique_ptr<ReplicationObject>(std::make_unique<MasterSlaveMaster>(
            setup.transport, setup.host, std::move(setup.semantics),
            std::move(setup.write_guard), std::move(setup.failover)));
      }
      ASSIGN_OR_RETURN(gls::ContactAddress master, FindMaster(setup.peers));
      return std::unique_ptr<ReplicationObject>(std::make_unique<MasterSlaveSlave>(
          setup.transport, setup.host, std::move(setup.semantics), master.endpoint,
          std::move(setup.write_guard), std::move(setup.failover)));
    }

    case kProtoActiveRepl: {
      if (setup.role == gls::ReplicaRole::kMaster) {
        return std::unique_ptr<ReplicationObject>(std::make_unique<ActiveReplMember>(
            setup.transport, setup.host, std::move(setup.semantics),
            sim::Endpoint{sim::kNoNode, 0}, std::move(setup.write_guard),
            std::move(setup.failover)));
      }
      ASSIGN_OR_RETURN(gls::ContactAddress sequencer, FindMaster(setup.peers));
      return std::unique_ptr<ReplicationObject>(std::make_unique<ActiveReplMember>(
          setup.transport, setup.host, std::move(setup.semantics), sequencer.endpoint,
          std::move(setup.write_guard), std::move(setup.failover)));
    }

    case kProtoCacheInval: {
      if (setup.role == gls::ReplicaRole::kMaster) {
        return std::unique_ptr<ReplicationObject>(std::make_unique<CacheInvalMaster>(
            setup.transport, setup.host, std::move(setup.semantics),
            std::move(setup.write_guard)));
      }
      ASSIGN_OR_RETURN(gls::ContactAddress master, FindMaster(setup.peers));
      return std::unique_ptr<ReplicationObject>(std::make_unique<CacheInvalCache>(
          setup.transport, setup.host, std::move(setup.semantics), master.endpoint,
          std::move(setup.write_guard)));
    }

    default:
      return InvalidArgument("unknown replication protocol " + std::to_string(protocol));
    }
  }();
  if (result.ok() && hook) {
    (*result)->set_access_hook(std::move(hook));
  }
  return result;
}

Result<std::unique_ptr<ReplicationObject>> MakeProxy(
    sim::Transport* transport, sim::NodeId host,
    const std::vector<gls::ContactAddress>& addresses) {
  ASSIGN_OR_RETURN(gls::ContactAddress nearest,
                   NearestAddress(transport, host, addresses));
  return std::unique_ptr<ReplicationObject>(
      std::make_unique<RemoteProxy>(transport, host, nearest));
}

}  // namespace globe::dso
