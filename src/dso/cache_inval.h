// Lazy caching with invalidation (paper §3.3: "another may use lazy replication").
//
// The master holds the authoritative state. Cache replicas fetch state on demand and
// serve reads from the local copy while it is valid; on every write the master sends
// invalidations, and caches re-fetch lazily on the next read. Ideal for read-mostly
// objects whose state is large relative to the read traffic — the situation the GDN's
// popular-but-rarely-updated software packages are in.
//
// Cache tracking and the invalidation fan-out ride on the shared dso::ReplicaGroup
// layer; invalidations are epoch-stamped like every other group push. Caches hold
// the terminal kCache role — they are never electable (a cache may not even hold
// valid state), so this protocol has no master fail-over.
//
// Peer methods (beyond dso.invoke / dso.get_state):
//   ci.register   : endpoint -> version, epoch  (cache joins; no state transferred)
//   ci.unregister : endpoint -> empty
//   ci.fetch      : empty -> VersionedState     (cache -> master, on demand)
//   ci.invalidate : version, epoch -> PushAck   (master -> caches)

#ifndef SRC_DSO_CACHE_INVAL_H_
#define SRC_DSO_CACHE_INVAL_H_

#include <memory>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/replica_group.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class CacheInvalMaster : public ReplicationObject {
 public:
  CacheInvalMaster(sim::Transport* transport, sim::NodeId host,
                   std::unique_ptr<SemanticsObject> semantics,
                   WriteGuard write_guard = nullptr);

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  uint64_t epoch() const override { return group_.epoch(); }
  void set_epoch(uint64_t e) override { group_.set_epoch(e); }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoCacheInval,
                               ToReplicaRole(group_.role())};
  }

  size_t num_caches() const { return group_.num_members(); }
  uint64_t fetches_served() const { return fetches_served_; }
  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }
  const ReplicaGroup* group() const override { return &group_; }
  void set_access_hook(AccessHook hook) override { access_hook_ = std::move(hook); }

 private:
  // Reads and writes both execute at the master (caches forward writes here),
  // so both sample kinds are recorded here.
  void InvokeFrom(const Invocation& invocation, sim::NodeId client,
                  InvokeCallback done);
  void ExecuteWrite(const Invocation& invocation, sim::NodeId client,
                    InvokeCallback done);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  ReplicaGroup group_;
  uint64_t version_ = 0;
  uint64_t fetches_served_ = 0;
  AccessHook access_hook_;
};

class CacheInvalCache : public ReplicationObject {
 public:
  CacheInvalCache(sim::Transport* transport, sim::NodeId host,
                  std::unique_ptr<SemanticsObject> semantics, sim::Endpoint master,
                  WriteGuard write_guard = nullptr);

  void Start(std::function<void(Status)> done) override;
  void Shutdown(std::function<void(Status)> done) override;

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  uint64_t epoch() const override { return group_.epoch(); }
  void set_epoch(uint64_t e) override { group_.set_epoch(e); }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoCacheInval,
                               ToReplicaRole(group_.role())};
  }

  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }
  const ReplicaGroup* group() const override { return &group_; }
  bool valid() const { return valid_; }
  uint64_t fetches() const { return fetches_; }
  void set_access_hook(AccessHook hook) override { access_hook_ = std::move(hook); }

 private:
  // Reads served from the local copy are recorded here; forwarded writes are
  // recorded at the master, not here, so they are never double-counted.
  void InvokeFrom(const Invocation& invocation, sim::NodeId client,
                  InvokeCallback done);
  // Ensures a valid local copy (fetching if necessary), then runs fn.
  void WithValidState(std::function<void(Status)> fn);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  sim::Endpoint master_;
  ReplicaGroup group_;
  bool valid_ = false;
  uint64_t version_ = 0;
  uint64_t fetches_ = 0;
  AccessHook access_hook_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_CACHE_INVAL_H_
