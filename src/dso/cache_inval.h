// Lazy caching with invalidation (paper §3.3: "another may use lazy replication").
//
// The master holds the authoritative state. Cache replicas fetch state on demand and
// serve reads from the local copy while it is valid; on every write the master sends
// invalidations, and caches re-fetch lazily on the next read. Ideal for read-mostly
// objects whose state is large relative to the read traffic — the situation the GDN's
// popular-but-rarely-updated software packages are in.
//
// Peer methods (beyond dso.invoke / dso.get_state):
//   ci.register   : endpoint -> u64 version   (cache joins; no state transferred yet)
//   ci.unregister : endpoint -> empty
//   ci.fetch      : empty -> VersionedState   (cache -> master, on demand)
//   ci.invalidate : u64 version -> empty      (master -> caches)

#ifndef SRC_DSO_CACHE_INVAL_H_
#define SRC_DSO_CACHE_INVAL_H_

#include <memory>
#include <vector>

#include "src/dso/comm.h"
#include "src/dso/protocols.h"
#include "src/dso/subobjects.h"
#include "src/dso/wire.h"

namespace globe::dso {

class CacheInvalMaster : public ReplicationObject {
 public:
  CacheInvalMaster(sim::Transport* transport, sim::NodeId host,
                   std::unique_ptr<SemanticsObject> semantics,
                   WriteGuard write_guard = nullptr);

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoCacheInval,
                               gls::ReplicaRole::kMaster};
  }

  size_t num_caches() const { return caches_.size(); }
  uint64_t fetches_served() const { return fetches_served_; }
  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }

 private:
  void ExecuteWrite(const Invocation& invocation, InvokeCallback done);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  std::vector<sim::Endpoint> caches_;
  uint64_t version_ = 0;
  uint64_t fetches_served_ = 0;
};

class CacheInvalCache : public ReplicationObject {
 public:
  CacheInvalCache(sim::Transport* transport, sim::NodeId host,
                  std::unique_ptr<SemanticsObject> semantics, sim::Endpoint master,
                  WriteGuard write_guard = nullptr);

  void Start(std::function<void(Status)> done) override;
  void Shutdown(std::function<void(Status)> done) override;

  void Invoke(const Invocation& invocation, InvokeCallback done) override;
  uint64_t version() const override { return version_; }
  std::optional<gls::ContactAddress> contact_address() const override {
    return gls::ContactAddress{comm_.endpoint(), kProtoCacheInval,
                               gls::ReplicaRole::kCache};
  }

  SemanticsObject* semantics() override { return semantics_.get(); }
  void set_version(uint64_t v) override { version_ = v; }
  bool valid() const { return valid_; }
  uint64_t fetches() const { return fetches_; }

 private:
  // Ensures a valid local copy (fetching if necessary), then runs fn.
  void WithValidState(std::function<void(Status)> fn);

  CommunicationObject comm_;
  std::unique_ptr<SemanticsObject> semantics_;
  WriteGuard write_guard_;
  sim::Endpoint master_;
  bool valid_ = false;
  uint64_t version_ = 0;
  uint64_t fetches_ = 0;
};

}  // namespace globe::dso

#endif  // SRC_DSO_CACHE_INVAL_H_
