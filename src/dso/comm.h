// Communication subobject: the system-provided messaging component of a local
// representative (paper §3.3).
//
// "This is generally a system-provided subobject (i.e., taken from a library). It is
// responsible for handling communication between parts of the distributed object that
// reside in different address spaces." Replication subobjects talk to their peers
// exclusively through this class — they never touch the transport directly, which is
// what lets the secure transport interpose beneath every protocol uniformly. Calls
// and handlers go through sim::TypedMethod descriptors, so each peer message has one
// wire definition shared by both sides.

#ifndef SRC_DSO_COMM_H_
#define SRC_DSO_COMM_H_

#include <memory>
#include <string>
#include <utility>

#include "src/sim/rpc.h"

namespace globe::dso {

class CommunicationObject {
 public:
  // Binds a server on an allocated port of `host` for peer traffic, plus a channel
  // for outgoing calls.
  CommunicationObject(sim::Transport* transport, sim::NodeId host);

  CommunicationObject(const CommunicationObject&) = delete;
  CommunicationObject& operator=(const CommunicationObject&) = delete;

  sim::Endpoint endpoint() const { return server_->endpoint(); }
  sim::NodeId host() const { return server_->node(); }
  sim::Transport* transport() { return transport_; }
  sim::Clock* clock() { return transport_->clock(); }
  sim::Channel* channel() { return channel_.get(); }

  template <typename Req, typename Resp>
  void Register(const sim::TypedMethod<Req, Resp>& method,
                typename sim::TypedMethod<Req, Resp>::SyncHandler handler) {
    method.Register(server_.get(), std::move(handler));
  }

  template <typename Req, typename Resp>
  void RegisterAsync(const sim::TypedMethod<Req, Resp>& method,
                     typename sim::TypedMethod<Req, Resp>::AsyncHandler handler) {
    method.RegisterAsync(server_.get(), std::move(handler));
  }

  template <typename Req, typename Resp>
  sim::CallHandle Call(const sim::TypedMethod<Req, Resp>& method,
                       const sim::Endpoint& peer, const Req& request,
                       typename sim::TypedMethod<Req, Resp>::Callback done,
                       sim::CallOptions options = {}) {
    return method.Call(channel_.get(), peer, request, std::move(done), options);
  }

 private:
  sim::Transport* transport_;
  std::unique_ptr<sim::RpcServer> server_;
  std::unique_ptr<sim::Channel> channel_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_COMM_H_
