// Communication subobject: the system-provided messaging component of a local
// representative (paper §3.3).
//
// "This is generally a system-provided subobject (i.e., taken from a library). It is
// responsible for handling communication between parts of the distributed object that
// reside in different address spaces." Replication subobjects talk to their peers
// exclusively through this class — they never touch the transport directly, which is
// what lets the secure transport interpose beneath every protocol uniformly.

#ifndef SRC_DSO_COMM_H_
#define SRC_DSO_COMM_H_

#include <memory>
#include <string>

#include "src/sim/rpc.h"

namespace globe::dso {

class CommunicationObject {
 public:
  // Binds a server on an allocated port of `host` for peer traffic, plus a client
  // for outgoing calls.
  CommunicationObject(sim::Transport* transport, sim::NodeId host);

  CommunicationObject(const CommunicationObject&) = delete;
  CommunicationObject& operator=(const CommunicationObject&) = delete;

  sim::Endpoint endpoint() const { return server_->endpoint(); }
  sim::NodeId host() const { return server_->node(); }
  sim::Transport* transport() { return transport_; }
  sim::Simulator* simulator() { return transport_->simulator(); }

  void RegisterMethod(std::string method, sim::RpcServer::SyncHandler handler) {
    server_->RegisterMethod(std::move(method), std::move(handler));
  }
  void RegisterAsyncMethod(std::string method, sim::RpcServer::AsyncHandler handler) {
    server_->RegisterAsyncMethod(std::move(method), std::move(handler));
  }

  void Call(const sim::Endpoint& peer, std::string_view method, Bytes request,
            sim::RpcClient::Callback done,
            sim::SimTime timeout = sim::RpcClient::kDefaultTimeout) {
    client_->Call(peer, method, std::move(request), std::move(done), timeout);
  }

 private:
  sim::Transport* transport_;
  std::unique_ptr<sim::RpcServer> server_;
  std::unique_ptr<sim::RpcClient> client_;
};

}  // namespace globe::dso

#endif  // SRC_DSO_COMM_H_
