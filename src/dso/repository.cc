#include "src/dso/repository.h"

namespace globe::dso {

void ImplementationRepository::RegisterSemantics(std::unique_ptr<SemanticsObject> prototype) {
  uint16_t type_id = prototype->type_id();
  prototypes_[type_id] = std::move(prototype);
}

Result<std::unique_ptr<SemanticsObject>> ImplementationRepository::Instantiate(
    uint16_t type_id) const {
  auto it = prototypes_.find(type_id);
  if (it == prototypes_.end()) {
    return NotFound("no implementation registered for semantics type " +
                    std::to_string(type_id));
  }
  return it->second->CloneEmpty();
}

}  // namespace globe::dso
