// An authoritative DNS zone: the unit of authority, transfer and update.
//
// The GDN registers all package names in one leaf zone, the "GDN Zone" (paper §5),
// kept on a primary name server and replicated to secondaries via zone transfer.

#ifndef SRC_DNS_ZONE_H_
#define SRC_DNS_ZONE_H_

#include <map>
#include <string>
#include <vector>

#include "src/dns/record.h"
#include "src/util/status.h"

namespace globe::dns {

class Zone {
 public:
  Zone() = default;
  // `origin` must already be canonical. The SOA minimum TTL doubles as the negative
  // caching TTL, as in RFC 2308.
  Zone(std::string origin, uint32_t soa_minimum_ttl = 300);

  const std::string& origin() const { return origin_; }
  uint32_t serial() const { return serial_; }
  uint32_t soa_minimum_ttl() const { return soa_minimum_ttl_; }

  // True if the owner name falls under this zone's origin.
  bool Contains(std::string_view name) const;

  // Adds a record (owner name must be in the zone) and bumps the serial.
  Status Add(ResourceRecord record);

  // Removes all records with the given owner name (and type, unless type is nullopt
  // semantics via RemoveName). Bumps the serial if anything was removed.
  size_t Remove(std::string_view name, RrType type);
  size_t RemoveName(std::string_view name);

  // Records with the exact owner name and type. Empty if none.
  std::vector<ResourceRecord> Lookup(std::string_view name, RrType type) const;

  // True if any record exists under the owner name.
  bool HasName(std::string_view name) const;

  size_t record_count() const;
  std::vector<ResourceRecord> AllRecords() const;

  // Zone transfer: full serialization, including origin and serial.
  void Serialize(ByteWriter* writer) const;
  static Result<Zone> Deserialize(ByteSpan data);

 private:
  std::string origin_;
  uint32_t soa_minimum_ttl_ = 300;
  uint32_t serial_ = 1;
  // owner name -> records at that name
  std::map<std::string, std::vector<ResourceRecord>, std::less<>> records_;
};

}  // namespace globe::dns

#endif  // SRC_DNS_ZONE_H_
