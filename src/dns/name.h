// DNS name handling.
//
// Names are kept in presentation form ("gimp.gdn.cs.vu.nl"), lowercased, with RFC
// 1034-style syntax restrictions — the very restrictions the paper lists as a
// disadvantage of building the GNS on DNS (§5): labels of 1..63 characters drawn from
// letters, digits and hyphen, total length at most 255.

#ifndef SRC_DNS_NAME_H_
#define SRC_DNS_NAME_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace globe::dns {

// Validates and canonicalizes (lowercases) a DNS name.
Result<std::string> CanonicalName(std::string_view name);

// True if `name` equals `zone` or ends with "." + zone (case already canonical).
bool IsInZone(std::string_view name, std::string_view zone);

// Splits into labels: "a.b.c" -> {"a","b","c"}.
std::vector<std::string> NameLabels(std::string_view name);

}  // namespace globe::dns

#endif  // SRC_DNS_NAME_H_
