// Authoritative DNS server: the BIND8 stand-in under the GNS.
//
// Serves queries for its zones, applies TSIG-authenticated dynamic updates on
// primaries, and pushes full zone transfers to configured secondaries after each
// applied update (the paper scales the GDN Zone "by creating multiple authoritative
// name servers", §5).
//
// RPC methods (port sim::kPortDns):
//   dns.query  : QueryRequest  -> QueryResponse
//   dns.update : UpdateRequest -> empty (errors via status)
//   dns.axfr   : ZoneTransfer  -> empty

#ifndef SRC_DNS_SERVER_H_
#define SRC_DNS_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dns/message.h"
#include "src/dns/zone.h"
#include "src/sim/rpc.h"

namespace globe::dns {

// Shared-secret TSIG keys by key name. In the deployed GDN these would be configured
// out of band between the Naming Authority and the zone's name servers.
using TsigKeyTable = std::map<std::string, Bytes>;

struct ServerStats {
  uint64_t queries = 0;
  uint64_t updates_applied = 0;
  uint64_t updates_rejected = 0;
  uint64_t transfers_sent = 0;
  uint64_t transfers_applied = 0;
  uint64_t transfers_rejected = 0;
};

class AuthoritativeServer {
 public:
  AuthoritativeServer(sim::Transport* transport, sim::NodeId node,
                      TsigKeyTable tsig_keys);

  // Hosts a zone. Only primaries accept dns.update; secondaries are refreshed via
  // dns.axfr pushes from their primary.
  void AddZone(Zone zone, bool primary);

  // Registers a secondary server to receive AXFR pushes for the given zone.
  void AddSecondary(const std::string& zone_origin, const sim::Endpoint& secondary);

  sim::Endpoint endpoint() const { return server_.endpoint(); }
  sim::NodeId node() const { return server_.node(); }
  const ServerStats& stats() const { return stats_; }

  // Direct (non-RPC) zone inspection for tests and tools.
  const Zone* FindZone(std::string_view name) const;

 private:
  Result<QueryResponse> HandleQuery(const QueryRequest& request);
  Result<sim::EmptyMessage> HandleUpdate(const UpdateRequest& update);
  Result<sim::EmptyMessage> HandleTransfer(const ZoneTransfer& transfer);
  void PushToSecondaries(const std::string& zone_origin);

  struct HostedZone {
    Zone zone;
    bool primary = false;
    std::vector<sim::Endpoint> secondaries;
  };

  sim::RpcServer server_;
  std::unique_ptr<sim::Channel> push_client_;
  TsigKeyTable tsig_keys_;
  std::map<std::string, HostedZone, std::less<>> zones_;  // by origin
  std::map<std::string, uint64_t> tsig_high_water_;       // replay protection per key
  uint64_t next_transfer_sequence_ = 1;
  ServerStats stats_;
};

}  // namespace globe::dns

#endif  // SRC_DNS_SERVER_H_
