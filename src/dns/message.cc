#include "src/dns/message.h"

#include "src/util/hmac.h"

namespace globe::dns {

std::string_view RcodeName(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError:
      return "NOERROR";
    case Rcode::kServFail:
      return "SERVFAIL";
    case Rcode::kNxDomain:
      return "NXDOMAIN";
    case Rcode::kNotImplemented:
      return "NOTIMP";
    case Rcode::kRefused:
      return "REFUSED";
    case Rcode::kNotAuth:
      return "NOTAUTH";
  }
  return "?";
}

Bytes QueryRequest::Serialize() const {
  ByteWriter w;
  w.WriteString(question.name);
  w.WriteU16(static_cast<uint16_t>(question.type));
  return w.Take();
}

Result<QueryRequest> QueryRequest::Deserialize(ByteSpan data) {
  ByteReader r(data);
  QueryRequest request;
  ASSIGN_OR_RETURN(request.question.name, r.ReadString());
  ASSIGN_OR_RETURN(uint16_t type, r.ReadU16());
  request.question.type = static_cast<RrType>(type);
  return request;
}

Bytes QueryResponse::Serialize() const {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(rcode));
  w.WriteBool(authoritative);
  w.WriteBool(from_cache);
  SerializeRecords(answers, &w);
  w.WriteU32(negative_ttl);
  return w.Take();
}

Result<QueryResponse> QueryResponse::Deserialize(ByteSpan data) {
  ByteReader r(data);
  QueryResponse response;
  ASSIGN_OR_RETURN(uint8_t rcode, r.ReadU8());
  response.rcode = static_cast<Rcode>(rcode);
  ASSIGN_OR_RETURN(response.authoritative, r.ReadBool());
  ASSIGN_OR_RETURN(response.from_cache, r.ReadBool());
  ASSIGN_OR_RETURN(response.answers, DeserializeRecords(&r));
  ASSIGN_OR_RETURN(response.negative_ttl, r.ReadU32());
  return response;
}

namespace {
void WriteUpdateBody(const UpdateRequest& update, ByteWriter* w) {
  w->WriteString(update.zone);
  SerializeRecords(update.additions, w);
  w->WriteVarint(update.deletions.size());
  for (const auto& deletion : update.deletions) {
    w->WriteString(deletion.name);
    w->WriteU16(static_cast<uint16_t>(deletion.type));
    w->WriteBool(deletion.whole_name);
  }
  w->WriteString(update.key_name);
  w->WriteU64(update.sequence);
}
}  // namespace

Bytes UpdateRequest::SignedPortion() const {
  ByteWriter w;
  WriteUpdateBody(*this, &w);
  return w.Take();
}

Bytes UpdateRequest::Serialize() const {
  ByteWriter w;
  WriteUpdateBody(*this, &w);
  w.WriteLengthPrefixed(mac);
  return w.Take();
}

Result<UpdateRequest> UpdateRequest::Deserialize(ByteSpan data) {
  ByteReader r(data);
  UpdateRequest update;
  ASSIGN_OR_RETURN(update.zone, r.ReadString());
  ASSIGN_OR_RETURN(update.additions, DeserializeRecords(&r));
  ASSIGN_OR_RETURN(uint64_t num_deletions, r.ReadVarint());
  if (num_deletions > 100000) {
    return InvalidArgument("implausible deletion count");
  }
  update.deletions.reserve(num_deletions);
  for (uint64_t i = 0; i < num_deletions; ++i) {
    UpdateRequest::Deletion deletion;
    ASSIGN_OR_RETURN(deletion.name, r.ReadString());
    ASSIGN_OR_RETURN(uint16_t type, r.ReadU16());
    deletion.type = static_cast<RrType>(type);
    ASSIGN_OR_RETURN(deletion.whole_name, r.ReadBool());
    update.deletions.push_back(std::move(deletion));
  }
  ASSIGN_OR_RETURN(update.key_name, r.ReadString());
  ASSIGN_OR_RETURN(update.sequence, r.ReadU64());
  // The MAC is held for TSIG verification after the wire buffer is gone:
  // ownership boundary, copied explicitly.
  ASSIGN_OR_RETURN(ByteSpan mac, r.ReadLengthPrefixedView());
  update.mac = ToBytes(mac);
  return update;
}

void TsigSign(UpdateRequest* update, ByteSpan key) {
  update->mac = HmacSha256(key, update->SignedPortion());
}

bool TsigVerify(const UpdateRequest& update, ByteSpan key) {
  return VerifyHmacSha256(key, update.SignedPortion(), update.mac);
}

Bytes ZoneTransfer::SignedPortion() const {
  ByteWriter w;
  w.WriteLengthPrefixed(zone_bytes);
  w.WriteString(key_name);
  w.WriteU64(sequence);
  return w.Take();
}

Bytes ZoneTransfer::Serialize() const {
  ByteWriter w;
  w.WriteLengthPrefixed(zone_bytes);
  w.WriteString(key_name);
  w.WriteU64(sequence);
  w.WriteLengthPrefixed(mac);
  return w.Take();
}

Result<ZoneTransfer> ZoneTransfer::Deserialize(ByteSpan data) {
  ByteReader r(data);
  ZoneTransfer transfer;
  // Both fields outlive the wire buffer (the zone is installed, the MAC
  // verified later): ownership boundaries, copied explicitly.
  ASSIGN_OR_RETURN(ByteSpan zone_bytes, r.ReadLengthPrefixedView());
  transfer.zone_bytes = ToBytes(zone_bytes);
  ASSIGN_OR_RETURN(transfer.key_name, r.ReadString());
  ASSIGN_OR_RETURN(transfer.sequence, r.ReadU64());
  ASSIGN_OR_RETURN(ByteSpan mac, r.ReadLengthPrefixedView());
  transfer.mac = ToBytes(mac);
  return transfer;
}

void TsigSign(ZoneTransfer* transfer, ByteSpan key) {
  transfer->mac = HmacSha256(key, transfer->SignedPortion());
}

bool TsigVerify(const ZoneTransfer& transfer, ByteSpan key) {
  return VerifyHmacSha256(key, transfer.SignedPortion(), transfer.mac);
}

}  // namespace globe::dns
