#include "src/dns/zone.h"

#include <algorithm>

#include "src/dns/name.h"

namespace globe::dns {

Zone::Zone(std::string origin, uint32_t soa_minimum_ttl)
    : origin_(std::move(origin)), soa_minimum_ttl_(soa_minimum_ttl) {}

bool Zone::Contains(std::string_view name) const {
  return IsInZone(name, origin_);
}

Status Zone::Add(ResourceRecord record) {
  if (!Contains(record.name)) {
    return InvalidArgument("record " + record.name + " not in zone " + origin_);
  }
  auto& at_name = records_[record.name];
  // Exact duplicates are idempotent, as in RFC 2136 update semantics.
  if (std::find(at_name.begin(), at_name.end(), record) != at_name.end()) {
    return OkStatus();
  }
  at_name.push_back(std::move(record));
  ++serial_;
  return OkStatus();
}

size_t Zone::Remove(std::string_view name, RrType type) {
  auto it = records_.find(name);
  if (it == records_.end()) {
    return 0;
  }
  auto& at_name = it->second;
  size_t before = at_name.size();
  at_name.erase(std::remove_if(at_name.begin(), at_name.end(),
                               [&](const ResourceRecord& r) { return r.type == type; }),
                at_name.end());
  size_t removed = before - at_name.size();
  if (at_name.empty()) {
    records_.erase(it);
  }
  if (removed > 0) {
    ++serial_;
  }
  return removed;
}

size_t Zone::RemoveName(std::string_view name) {
  auto it = records_.find(name);
  if (it == records_.end()) {
    return 0;
  }
  size_t removed = it->second.size();
  records_.erase(it);
  ++serial_;
  return removed;
}

std::vector<ResourceRecord> Zone::Lookup(std::string_view name, RrType type) const {
  std::vector<ResourceRecord> out;
  auto it = records_.find(name);
  if (it == records_.end()) {
    return out;
  }
  for (const auto& record : it->second) {
    if (record.type == type) {
      out.push_back(record);
    }
  }
  return out;
}

bool Zone::HasName(std::string_view name) const {
  return records_.find(name) != records_.end();
}

size_t Zone::record_count() const {
  size_t count = 0;
  for (const auto& [name, at_name] : records_) {
    count += at_name.size();
  }
  return count;
}

std::vector<ResourceRecord> Zone::AllRecords() const {
  std::vector<ResourceRecord> out;
  for (const auto& [name, at_name] : records_) {
    out.insert(out.end(), at_name.begin(), at_name.end());
  }
  return out;
}

void Zone::Serialize(ByteWriter* writer) const {
  writer->WriteString(origin_);
  writer->WriteU32(soa_minimum_ttl_);
  writer->WriteU32(serial_);
  SerializeRecords(AllRecords(), writer);
}

Result<Zone> Zone::Deserialize(ByteSpan data) {
  ByteReader reader(data);
  ASSIGN_OR_RETURN(std::string origin, reader.ReadString());
  ASSIGN_OR_RETURN(uint32_t soa_minimum, reader.ReadU32());
  ASSIGN_OR_RETURN(uint32_t serial, reader.ReadU32());
  ASSIGN_OR_RETURN(std::vector<ResourceRecord> records, DeserializeRecords(&reader));
  Zone zone(std::move(origin), soa_minimum);
  for (auto& record : records) {
    RETURN_IF_ERROR(zone.Add(std::move(record)));
  }
  zone.serial_ = serial;
  return zone;
}

}  // namespace globe::dns
