// DNS resource records.
//
// The GNS stores a Globe object identifier in a TXT record under the package's DNS
// name (paper §5): "These DNS names point to a TXT DNS Resource Record that contains
// the encoded object identifier for the DSO."

#ifndef SRC_DNS_RECORD_H_
#define SRC_DNS_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::dns {

enum class RrType : uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kTxt = 16,
};

std::string_view RrTypeName(RrType type);

struct ResourceRecord {
  std::string name;   // canonical owner name
  RrType type = RrType::kTxt;
  uint32_t ttl = 3600;  // seconds
  std::string data;   // presentation-form RDATA (TXT payload, NS target, ...)

  bool operator==(const ResourceRecord&) const = default;

  void Serialize(ByteWriter* writer) const;
  static Result<ResourceRecord> Deserialize(ByteReader* reader);
};

void SerializeRecords(const std::vector<ResourceRecord>& records, ByteWriter* writer);
Result<std::vector<ResourceRecord>> DeserializeRecords(ByteReader* reader);

}  // namespace globe::dns

#endif  // SRC_DNS_RECORD_H_
