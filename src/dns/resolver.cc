#include "src/dns/resolver.h"

#include "src/dns/name.h"
#include "src/util/log.h"

namespace globe::dns {

CachingResolver::CachingResolver(sim::Transport* transport, sim::NodeId node,
                                 ResolverOptions options)
    : server_(transport, node, sim::kPortDns),
      upstream_client_(std::make_unique<sim::RpcClient>(transport, node)),
      simulator_(transport->simulator()),
      options_(options) {
  server_.RegisterAsyncMethod(
      "dns.resolve",
      [this](const sim::RpcContext& ctx, ByteSpan req, sim::RpcServer::Responder respond) {
        HandleResolve(ctx, req, std::move(respond));
      });
}

void CachingResolver::AddUpstream(const std::string& zone_suffix, const sim::Endpoint& server) {
  upstreams_[zone_suffix].servers.push_back(server);
}

const sim::Endpoint* CachingResolver::PickUpstream(std::string_view name) {
  Upstream* best = nullptr;
  size_t best_len = 0;
  for (auto& [suffix, upstream] : upstreams_) {
    if (IsInZone(name, suffix) && suffix.size() >= best_len) {
      best = &upstream;
      best_len = suffix.size();
    }
  }
  if (best == nullptr || best->servers.empty()) {
    return nullptr;
  }
  const sim::Endpoint* chosen = &best->servers[best->next % best->servers.size()];
  ++best->next;
  return chosen;
}

void CachingResolver::HandleResolve(const sim::RpcContext&, ByteSpan request,
                                    sim::RpcServer::Responder respond) {
  ++stats_.queries;
  auto parsed = QueryRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  auto canonical = CanonicalName(parsed->question.name);
  if (!canonical.ok()) {
    respond(canonical.status());
    return;
  }
  std::string name = *canonical;
  RrType type = parsed->question.type;

  if (options_.enable_cache) {
    auto it = cache_.find({name, type});
    if (it != cache_.end()) {
      if (it->second.expires_at > simulator_->Now()) {
        QueryResponse cached = it->second.response;
        cached.from_cache = true;
        if (cached.rcode == Rcode::kNxDomain || cached.answers.empty()) {
          ++stats_.negative_cache_hits;
        } else {
          ++stats_.cache_hits;
        }
        respond(cached.Serialize());
        return;
      }
      cache_.erase(it);
    }
  }
  ++stats_.cache_misses;

  const sim::Endpoint* upstream = PickUpstream(name);
  if (upstream == nullptr) {
    QueryResponse response;
    response.rcode = Rcode::kServFail;
    respond(response.Serialize());
    return;
  }

  ++stats_.upstream_queries;
  QueryRequest forward;
  forward.question = {name, type};
  upstream_client_->Call(
      *upstream, "dns.query", forward.Serialize(),
      [this, name, type, respond = std::move(respond)](Result<Bytes> result) {
        if (!result.ok()) {
          ++stats_.upstream_failures;
          QueryResponse response;
          response.rcode = Rcode::kServFail;
          respond(response.Serialize());
          return;
        }
        auto response = QueryResponse::Deserialize(*result);
        if (!response.ok()) {
          ++stats_.upstream_failures;
          respond(response.status());
          return;
        }
        if (options_.enable_cache) {
          uint32_t ttl_seconds = 0;
          if (!response->answers.empty()) {
            ttl_seconds = response->answers.front().ttl;
            for (const auto& record : response->answers) {
              ttl_seconds = std::min(ttl_seconds, record.ttl);
            }
          } else {
            ttl_seconds = response->negative_ttl;
          }
          if (ttl_seconds > 0 && response->rcode != Rcode::kServFail &&
              response->rcode != Rcode::kRefused) {
            cache_[{name, type}] =
                CacheEntry{*response, simulator_->Now() + ttl_seconds * sim::kSecond};
          }
        }
        respond(response->Serialize());
      });
}

DnsClient::DnsClient(sim::Transport* transport, sim::NodeId node, sim::Endpoint resolver)
    : client_(transport, node), resolver_(resolver) {}

void DnsClient::Resolve(std::string_view name, RrType type, ResolveCallback done) {
  QueryRequest request;
  request.question = {std::string(name), type};
  client_.Call(resolver_, "dns.resolve", request.Serialize(),
               [done = std::move(done)](Result<Bytes> result) {
                 if (!result.ok()) {
                   done(result.status());
                   return;
                 }
                 done(QueryResponse::Deserialize(*result));
               });
}

void DnsClient::QueryServer(const sim::Endpoint& server, std::string_view name, RrType type,
                            ResolveCallback done) {
  QueryRequest request;
  request.question = {std::string(name), type};
  client_.Call(server, "dns.query", request.Serialize(),
               [done = std::move(done)](Result<Bytes> result) {
                 if (!result.ok()) {
                   done(result.status());
                   return;
                 }
                 done(QueryResponse::Deserialize(*result));
               });
}

}  // namespace globe::dns
