#include "src/dns/resolver.h"

#include "src/dns/name.h"
#include "src/util/log.h"

namespace globe::dns {

CachingResolver::CachingResolver(sim::Transport* transport, sim::NodeId node,
                                 ResolverOptions options)
    : server_(transport, node, sim::kPortDns),
      upstream_client_(std::make_unique<sim::Channel>(transport, node)),
      clock_(transport->clock()),
      options_(options) {
  kDnsResolve.RegisterAsync(
      &server_, [this](const sim::RpcContext&, QueryRequest request,
                       std::function<void(Result<QueryResponse>)> respond) {
        HandleResolve(std::move(request), std::move(respond));
      });
}

void CachingResolver::AddUpstream(const std::string& zone_suffix,
                                  const sim::Endpoint& server) {
  upstreams_[zone_suffix].servers.push_back(server);
}

const sim::Endpoint* CachingResolver::PickUpstream(std::string_view name) {
  Upstream* best = nullptr;
  size_t best_len = 0;
  for (auto& [suffix, upstream] : upstreams_) {
    if (IsInZone(name, suffix) && suffix.size() >= best_len) {
      best = &upstream;
      best_len = suffix.size();
    }
  }
  if (best == nullptr || best->servers.empty()) {
    return nullptr;
  }
  const sim::Endpoint* chosen = &best->servers[best->next % best->servers.size()];
  ++best->next;
  return chosen;
}

void CachingResolver::HandleResolve(QueryRequest request,
                                    std::function<void(Result<QueryResponse>)> respond) {
  ++stats_.queries;
  auto canonical = CanonicalName(request.question.name);
  if (!canonical.ok()) {
    respond(canonical.status());
    return;
  }
  std::string name = *canonical;
  RrType type = request.question.type;

  if (options_.enable_cache) {
    auto it = cache_.find({name, type});
    if (it != cache_.end()) {
      if (it->second.expires_at > clock_->Now()) {
        QueryResponse cached = it->second.response;
        cached.from_cache = true;
        if (cached.rcode == Rcode::kNxDomain || cached.answers.empty()) {
          ++stats_.negative_cache_hits;
        } else {
          ++stats_.cache_hits;
        }
        respond(std::move(cached));
        return;
      }
      cache_.erase(it);
    }
  }
  ++stats_.cache_misses;

  const sim::Endpoint* upstream = PickUpstream(name);
  if (upstream == nullptr) {
    QueryResponse response;
    response.rcode = Rcode::kServFail;
    respond(std::move(response));
    return;
  }

  ++stats_.upstream_queries;
  QueryRequest forward;
  forward.question = {name, type};
  kDnsQuery.Call(
      upstream_client_.get(), *upstream, forward,
      [this, name, type, respond = std::move(respond)](Result<QueryResponse> result) {
        if (!result.ok()) {
          ++stats_.upstream_failures;
          QueryResponse response;
          response.rcode = Rcode::kServFail;
          respond(std::move(response));
          return;
        }
        if (options_.enable_cache) {
          uint32_t ttl_seconds = 0;
          if (!result->answers.empty()) {
            ttl_seconds = result->answers.front().ttl;
            for (const auto& record : result->answers) {
              ttl_seconds = std::min(ttl_seconds, record.ttl);
            }
          } else {
            ttl_seconds = result->negative_ttl;
          }
          if (ttl_seconds > 0 && result->rcode != Rcode::kServFail &&
              result->rcode != Rcode::kRefused) {
            cache_[{name, type}] =
                CacheEntry{*result, clock_->Now() + ttl_seconds * sim::kSecond};
          }
        }
        respond(std::move(result));
      });
}

DnsClient::DnsClient(sim::Transport* transport, sim::NodeId node, sim::Endpoint resolver)
    : client_(transport, node), resolver_(resolver) {}

void DnsClient::Resolve(std::string_view name, RrType type, ResolveCallback done) {
  QueryRequest request;
  request.question = {std::string(name), type};
  kDnsResolve.Call(&client_, resolver_, request, std::move(done));
}

void DnsClient::QueryServer(const sim::Endpoint& server, std::string_view name,
                            RrType type, ResolveCallback done) {
  QueryRequest request;
  request.question = {std::string(name), type};
  kDnsQuery.Call(&client_, server, request, std::move(done));
}

}  // namespace globe::dns
