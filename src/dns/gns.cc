#include "src/dns/gns.h"

#include <algorithm>

#include "src/dns/name.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace globe::dns {

Result<std::string> GlobeNameToDnsName(std::string_view globe_name,
                                       std::string_view zone) {
  std::vector<std::string> parts = SplitSkipEmpty(globe_name, '/');
  if (parts.empty()) {
    return InvalidArgument("empty Globe object name");
  }
  std::reverse(parts.begin(), parts.end());
  std::string dns_name = Join(parts, ".") + "." + std::string(zone);
  return CanonicalName(dns_name);
}

Result<std::string> DnsNameToGlobeName(std::string_view dns_name, std::string_view zone) {
  ASSIGN_OR_RETURN(std::string canonical, CanonicalName(dns_name));
  // Build via += rather than `"." + rvalue` — the latter trips GCC 12's
  // -Wrestrict false positive (PR105329) in string::insert under -O3.
  std::string zone_suffix = ".";
  zone_suffix += AsciiToLower(zone);
  if (!EndsWith(canonical, zone_suffix)) {
    return InvalidArgument("DNS name " + canonical + " not in zone " + std::string(zone));
  }
  std::string local = canonical.substr(0, canonical.size() - zone_suffix.size());
  std::vector<std::string> parts = SplitSkipEmpty(local, '.');
  if (parts.empty()) {
    return InvalidArgument("no object labels in DNS name " + canonical);
  }
  std::reverse(parts.begin(), parts.end());
  std::string globe_name = "/";
  globe_name += Join(parts, "/");
  return globe_name;
}

GnsNamingAuthority::GnsNamingAuthority(sim::Transport* transport, sim::NodeId node,
                                       std::string zone, const sec::KeyRegistry* registry,
                                       std::string tsig_key_name, Bytes tsig_key,
                                       sim::Endpoint primary_dns,
                                       NamingAuthorityOptions options)
    : server_(transport, node, sim::kPortGnsAuthority),
      dns_client_(std::make_unique<sim::Channel>(transport, node)),
      clock_(transport->clock()),
      zone_(std::move(zone)),
      registry_(registry),
      tsig_key_name_(std::move(tsig_key_name)),
      tsig_key_(std::move(tsig_key)),
      primary_dns_(primary_dns),
      options_(options) {
  kGnsAdd.Register(&server_,
                   [this](const sim::RpcContext& ctx, const GnsAddRequest& request) {
                     return HandleAdd(ctx, request);
                   });
  kGnsRemove.Register(&server_, [this](const sim::RpcContext& ctx,
                                       const GnsRemoveRequest& request) {
    return HandleRemove(ctx, request);
  });
  kGnsFlush.Register(&server_,
                     [this](const sim::RpcContext&,
                            const sim::EmptyMessage&) -> Result<sim::EmptyMessage> {
                       Flush();
                       return sim::EmptyMessage{};
                     });
}

Status GnsNamingAuthority::CheckModerator(const sim::RpcContext& context) const {
  // Paper §6.1 requirement 3: "A GDN Naming Authority should accept only updates from
  // moderator tools operated by official GDN moderators." The secure transport gives
  // us the authenticated peer; the registry gives its role.
  if (!options_.enforce_authorization) {
    return OkStatus();
  }
  if (context.peer_principal == sec::kAnonymous || !context.integrity_protected) {
    return PermissionDenied("GNS update requires an authenticated channel");
  }
  auto role = registry_->RoleOf(context.peer_principal);
  if (!role.ok()) {
    return PermissionDenied("unknown principal");
  }
  if (*role != sec::Role::kModerator && *role != sec::Role::kAdministrator) {
    return PermissionDenied("caller is not a GDN moderator");
  }
  return OkStatus();
}

Result<sim::EmptyMessage> GnsNamingAuthority::HandleAdd(const sim::RpcContext& context,
                                                        const GnsAddRequest& request) {
  if (Status s = CheckModerator(context); !s.ok()) {
    ++stats_.requests_denied;
    return s;
  }
  ASSIGN_OR_RETURN(std::string dns_name, GlobeNameToDnsName(request.globe_name, zone_));

  pending_additions_.push_back(
      ResourceRecord{dns_name, RrType::kTxt, options_.record_ttl, request.oid_hex});
  ++stats_.adds_accepted;
  MaybeScheduleFlush();
  return sim::EmptyMessage{};
}

Result<sim::EmptyMessage> GnsNamingAuthority::HandleRemove(
    const sim::RpcContext& context, const GnsRemoveRequest& request) {
  if (Status s = CheckModerator(context); !s.ok()) {
    ++stats_.requests_denied;
    return s;
  }
  ASSIGN_OR_RETURN(std::string dns_name, GlobeNameToDnsName(request.globe_name, zone_));

  pending_deletions_.push_back(UpdateRequest::Deletion{dns_name, RrType::kTxt, true});
  ++stats_.removes_accepted;
  MaybeScheduleFlush();
  return sim::EmptyMessage{};
}

void GnsNamingAuthority::MaybeScheduleFlush() {
  if (pending() >= options_.max_batch) {
    Flush();
    return;
  }
  if (flush_scheduled_) {
    return;
  }
  flush_scheduled_ = true;
  clock_->ScheduleAfter(options_.max_batch_delay, [this] {
    flush_scheduled_ = false;
    Flush();
  });
}

void GnsNamingAuthority::Flush() {
  if (pending_additions_.empty() && pending_deletions_.empty()) {
    return;
  }
  UpdateRequest update;
  update.zone = zone_;
  update.additions = std::move(pending_additions_);
  update.deletions = std::move(pending_deletions_);
  pending_additions_.clear();
  pending_deletions_.clear();
  update.key_name = tsig_key_name_;
  update.sequence = next_sequence_++;
  TsigSign(&update, tsig_key_);

  ++stats_.batches_sent;
  kDnsUpdate.Call(dns_client_.get(), primary_dns_, update,
                  [this](Result<sim::EmptyMessage> result) {
                    if (!result.ok()) {
                      ++stats_.update_failures;
                      GLOG_WARN << "GNS zone update failed: " << result.status();
                    }
                  });
}

GnsClient::GnsClient(sim::Transport* transport, sim::NodeId node, std::string zone,
                     sim::Endpoint naming_authority, sim::Endpoint resolver)
    : rpc_(transport, node),
      dns_(transport, node, resolver),
      zone_(std::move(zone)),
      naming_authority_(naming_authority) {}

void GnsClient::AddName(std::string_view globe_name, std::string_view oid_hex,
                        DoneCallback done) {
  kGnsAdd.Call(&rpc_, naming_authority_,
               GnsAddRequest{std::string(globe_name), std::string(oid_hex)},
               [done = std::move(done)](Result<sim::EmptyMessage> r) {
                 done(r.ok() ? OkStatus() : r.status());
               },
               sim::WriteCallOptions());
}

void GnsClient::RemoveName(std::string_view globe_name, DoneCallback done) {
  kGnsRemove.Call(&rpc_, naming_authority_, GnsRemoveRequest{std::string(globe_name)},
                  [done = std::move(done)](Result<sim::EmptyMessage> r) {
                    done(r.ok() ? OkStatus() : r.status());
                  },
                  sim::WriteCallOptions());
}

void GnsClient::Resolve(std::string_view globe_name, ResolveCallback done) {
  auto dns_name = GlobeNameToDnsName(globe_name, zone_);
  if (!dns_name.ok()) {
    done(dns_name.status());
    return;
  }
  dns_.Resolve(*dns_name, RrType::kTxt,
               [done = std::move(done), name = *dns_name](Result<QueryResponse> result) {
                 if (!result.ok()) {
                   done(result.status());
                   return;
                 }
                 if (result->rcode == Rcode::kNxDomain || result->answers.empty()) {
                   done(NotFound("no such object name: " + name));
                   return;
                 }
                 done(result->answers.front().data);
               });
}

}  // namespace globe::dns
