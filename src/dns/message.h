// DNS message types: QUERY (RFC 1034), dynamic UPDATE (RFC 2136) and TSIG
// authentication for updates (RFC 2845 in spirit).
//
// The paper's GNS Naming Authority "sends DNS UPDATE messages to the name servers
// responsible for the GDN Zone" (§5), protected by "BIND's TSIG security feature"
// (§6.3). These are the messages it sends.

#ifndef SRC_DNS_MESSAGE_H_
#define SRC_DNS_MESSAGE_H_

#include <string>
#include <vector>

#include "src/dns/record.h"
#include "src/sim/rpc.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace globe::dns {

enum class Rcode : uint8_t {
  kNoError = 0,
  kServFail = 2,
  kNxDomain = 3,
  kNotImplemented = 4,
  kRefused = 5,
  kNotAuth = 9,
};

std::string_view RcodeName(Rcode rcode);

struct Question {
  std::string name;
  RrType type = RrType::kTxt;
};

struct QueryRequest {
  Question question;

  Bytes Serialize() const;
  static Result<QueryRequest> Deserialize(ByteSpan data);
};

struct QueryResponse {
  Rcode rcode = Rcode::kNoError;
  bool authoritative = false;
  bool from_cache = false;
  std::vector<ResourceRecord> answers;
  // For NXDOMAIN / empty answers: how long a resolver may cache the absence
  // (the zone's SOA minimum, RFC 2308).
  uint32_t negative_ttl = 0;

  Bytes Serialize() const;
  static Result<QueryResponse> Deserialize(ByteSpan data);
};

struct UpdateRequest {
  struct Deletion {
    std::string name;
    RrType type = RrType::kTxt;
    bool whole_name = false;  // delete all RRs at the name, regardless of type

    bool operator==(const Deletion&) const = default;
  };

  std::string zone;
  std::vector<ResourceRecord> additions;
  std::vector<Deletion> deletions;

  // TSIG: shared-key authentication with a per-key monotonic sequence number in
  // place of RFC 2845's wall-clock fudge window (the simulator's clock is virtual).
  std::string key_name;
  uint64_t sequence = 0;
  Bytes mac;

  // Bytes covered by the TSIG MAC (everything but the MAC itself).
  Bytes SignedPortion() const;

  Bytes Serialize() const;
  static Result<UpdateRequest> Deserialize(ByteSpan data);
};

// Computes and attaches the TSIG MAC.
void TsigSign(UpdateRequest* update, ByteSpan key);

// Verifies the MAC. Does not check the sequence number — the server does that
// against its per-key high-water mark.
bool TsigVerify(const UpdateRequest& update, ByteSpan key);

// A full zone transfer (AXFR push from primary to secondaries), TSIG-protected the
// same way updates are.
struct ZoneTransfer {
  Bytes zone_bytes;  // Zone::Serialize output
  std::string key_name;
  uint64_t sequence = 0;
  Bytes mac;

  Bytes SignedPortion() const;
  Bytes Serialize() const;
  static Result<ZoneTransfer> Deserialize(ByteSpan data);
};

void TsigSign(ZoneTransfer* transfer, ByteSpan key);
bool TsigVerify(const ZoneTransfer& transfer, ByteSpan key);

// Typed method descriptors shared by servers, resolvers and clients.
//   dns.query   : authoritative lookup (port sim::kPortDns)
//   dns.resolve : recursive lookup at a caching resolver (same port)
//   dns.update  : TSIG-authenticated dynamic update, primaries only
//   dns.axfr    : TSIG-authenticated full zone push, secondaries only
inline constexpr sim::TypedMethod<QueryRequest, QueryResponse> kDnsQuery{"dns.query"};
inline constexpr sim::TypedMethod<QueryRequest, QueryResponse> kDnsResolve{
    "dns.resolve"};
inline constexpr sim::TypedMethod<UpdateRequest, sim::EmptyMessage> kDnsUpdate{
    "dns.update"};
inline constexpr sim::TypedMethod<ZoneTransfer, sim::EmptyMessage> kDnsAxfr{
    "dns.axfr"};

}  // namespace globe::dns

#endif  // SRC_DNS_MESSAGE_H_
