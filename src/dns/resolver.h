// Caching DNS resolver.
//
// "DNS works under the assumption that the mapping of names to addresses does not
// change very frequently. This allows the DNS to cache entries at client-side
// resolvers" (paper §5) — which is exactly the property that makes Globe's two-level
// naming cheap. This resolver caches positive answers for the record TTL and negative
// answers for the zone's SOA minimum (RFC 2308), and spreads load across replicated
// authoritative servers round-robin.
//
// RPC method (port sim::kPortDns on the resolver's node):
//   dns.resolve : QueryRequest -> QueryResponse

#ifndef SRC_DNS_RESOLVER_H_
#define SRC_DNS_RESOLVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dns/message.h"
#include "src/sim/rpc.h"

namespace globe::dns {

struct ResolverStats {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t negative_cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t upstream_queries = 0;
  uint64_t upstream_failures = 0;
};

struct ResolverOptions {
  bool enable_cache = true;
};

class CachingResolver {
 public:
  CachingResolver(sim::Transport* transport, sim::NodeId node,
                  ResolverOptions options = {});

  // Adds an authoritative server for names under `zone_suffix`. Multiple servers per
  // suffix are rotated round-robin.
  void AddUpstream(const std::string& zone_suffix, const sim::Endpoint& server);

  sim::Endpoint endpoint() const { return server_.endpoint(); }
  const ResolverStats& stats() const { return stats_; }
  void FlushCache() { cache_.clear(); }
  size_t cache_size() const { return cache_.size(); }

 private:
  struct CacheEntry {
    QueryResponse response;
    sim::SimTime expires_at = 0;
  };
  struct Upstream {
    std::vector<sim::Endpoint> servers;
    size_t next = 0;
  };

  void HandleResolve(QueryRequest request,
                     std::function<void(Result<QueryResponse>)> respond);
  const sim::Endpoint* PickUpstream(std::string_view name);

  sim::RpcServer server_;
  std::unique_ptr<sim::Channel> upstream_client_;
  sim::Clock* clock_;
  ResolverOptions options_;
  std::map<std::string, Upstream, std::less<>> upstreams_;  // by zone suffix
  std::map<std::pair<std::string, RrType>, CacheEntry> cache_;
  ResolverStats stats_;
};

// Client-side stub: the piece of the Globe run-time system that talks to the local
// resolver.
class DnsClient {
 public:
  using ResolveCallback = std::function<void(Result<QueryResponse>)>;

  DnsClient(sim::Transport* transport, sim::NodeId node, sim::Endpoint resolver);

  void Resolve(std::string_view name, RrType type, ResolveCallback done);

  // Bypasses the resolver and queries an authoritative server directly.
  void QueryServer(const sim::Endpoint& server, std::string_view name, RrType type,
                   ResolveCallback done);

 private:
  sim::Channel client_;
  sim::Endpoint resolver_;
};

}  // namespace globe::dns

#endif  // SRC_DNS_RESOLVER_H_
