#include "src/dns/record.h"

namespace globe::dns {

std::string_view RrTypeName(RrType type) {
  switch (type) {
    case RrType::kA:
      return "A";
    case RrType::kNs:
      return "NS";
    case RrType::kCname:
      return "CNAME";
    case RrType::kSoa:
      return "SOA";
    case RrType::kTxt:
      return "TXT";
  }
  return "?";
}

void ResourceRecord::Serialize(ByteWriter* writer) const {
  writer->WriteString(name);
  writer->WriteU16(static_cast<uint16_t>(type));
  writer->WriteU32(ttl);
  writer->WriteString(data);
}

Result<ResourceRecord> ResourceRecord::Deserialize(ByteReader* reader) {
  ResourceRecord record;
  ASSIGN_OR_RETURN(record.name, reader->ReadString());
  ASSIGN_OR_RETURN(uint16_t type, reader->ReadU16());
  record.type = static_cast<RrType>(type);
  ASSIGN_OR_RETURN(record.ttl, reader->ReadU32());
  ASSIGN_OR_RETURN(record.data, reader->ReadString());
  return record;
}

void SerializeRecords(const std::vector<ResourceRecord>& records, ByteWriter* writer) {
  writer->WriteVarint(records.size());
  for (const auto& record : records) {
    record.Serialize(writer);
  }
}

Result<std::vector<ResourceRecord>> DeserializeRecords(ByteReader* reader) {
  ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
  if (count > 100000) {
    return InvalidArgument("implausible record count");
  }
  std::vector<ResourceRecord> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(ResourceRecord record, ResourceRecord::Deserialize(reader));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace globe::dns
