// The Globe Name Service (GNS): symbolic object names -> object identifiers.
//
// Paper §5: Globe object names map one-to-one to DNS names whose TXT record holds the
// encoded object identifier. "/nl/vu/cs/globe/somePackage" becomes
// "somepackage.globe.cs.vu.nl". The GDN uses one leaf zone (the "GDN Zone") so users
// see names like /apps/graphics/Gimp with the zone suffix hidden.
//
// Components:
//   - GlobeNameToDnsName / DnsNameToGlobeName: the name mapping.
//   - GnsNamingAuthority: "the daemon that sends DNS UPDATE messages to the name
//     servers responsible for the GDN Zone, in response to add and remove requests
//     from clients" (§4). It enforces that only moderators may change the zone (§6.1
//     requirement 3), batches updates to keep the update rate low (§5), and signs
//     every UPDATE with its TSIG key (§6.3).
//   - GnsClient: run-time-system routines to add, resolve and delete object names.
//
// RPC methods (port sim::kPortGnsAuthority):
//   gns.add    : string globe_name, string oid_hex -> empty
//   gns.remove : string globe_name -> empty
//   gns.flush  : empty -> empty (forces the pending batch out; used by tools/tests)

#ifndef SRC_DNS_GNS_H_
#define SRC_DNS_GNS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dns/resolver.h"
#include "src/sec/principal.h"
#include "src/sim/rpc.h"

namespace globe::dns {

// "/apps/graphics/Gimp" + zone "gdn.cs.vu.nl" -> "gimp.graphics.apps.gdn.cs.vu.nl".
// Fails on empty names or components violating DNS syntax (paper §5 lists these
// restrictions as a known disadvantage of the DNS-based GNS).
Result<std::string> GlobeNameToDnsName(std::string_view globe_name,
                                       std::string_view zone);

// Inverse mapping: "gimp.graphics.apps.gdn.cs.vu.nl" -> "/apps/graphics/Gimp" modulo
// case (DNS names are case-insensitive, so the original case is not recoverable).
Result<std::string> DnsNameToGlobeName(std::string_view dns_name, std::string_view zone);

// gns.add wire format.
struct GnsAddRequest {
  std::string globe_name;
  std::string oid_hex;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteString(globe_name);
    w.WriteString(oid_hex);
    return w.Take();
  }
  static Result<GnsAddRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    GnsAddRequest request;
    ASSIGN_OR_RETURN(request.globe_name, r.ReadString());
    ASSIGN_OR_RETURN(request.oid_hex, r.ReadString());
    return request;
  }
};

// gns.remove wire format.
struct GnsRemoveRequest {
  std::string globe_name;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteString(globe_name);
    return w.Take();
  }
  static Result<GnsRemoveRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    GnsRemoveRequest request;
    ASSIGN_OR_RETURN(request.globe_name, r.ReadString());
    return request;
  }
};

// Name mutations queue zone updates at the authority; a duplicate delivery must
// not enqueue (and later apply) the update twice.
inline constexpr sim::TypedMethod<GnsAddRequest, sim::EmptyMessage> kGnsAdd{
    "gns.add", sim::kNonIdempotent};
inline constexpr sim::TypedMethod<GnsRemoveRequest, sim::EmptyMessage> kGnsRemove{
    "gns.remove", sim::kNonIdempotent};
inline constexpr sim::TypedMethod<sim::EmptyMessage, sim::EmptyMessage> kGnsFlush{
    "gns.flush"};

struct NamingAuthorityStats {
  uint64_t adds_accepted = 0;
  uint64_t removes_accepted = 0;
  uint64_t requests_denied = 0;
  uint64_t batches_sent = 0;
  uint64_t update_failures = 0;
};

struct NamingAuthorityOptions {
  // Require authenticated moderator callers (paper §6.1 requirement 3). Off in the
  // unsecured June-2000 first version.
  bool enforce_authorization = true;
  // Pending changes are flushed when the batch reaches this size...
  size_t max_batch = 16;
  // ...or when the oldest pending change has waited this long.
  sim::SimTime max_batch_delay = 5 * sim::kSecond;
  uint32_t record_ttl = 3600;  // seconds, for the TXT records it creates
};

class GnsNamingAuthority {
 public:
  GnsNamingAuthority(sim::Transport* transport, sim::NodeId node, std::string zone,
                     const sec::KeyRegistry* registry, std::string tsig_key_name,
                     Bytes tsig_key, sim::Endpoint primary_dns,
                     NamingAuthorityOptions options = {});

  sim::Endpoint endpoint() const { return server_.endpoint(); }
  const NamingAuthorityStats& stats() const { return stats_; }
  size_t pending() const { return pending_additions_.size() + pending_deletions_.size(); }

  // Sends any pending batch immediately.
  void Flush();

 private:
  Result<sim::EmptyMessage> HandleAdd(const sim::RpcContext& context,
                                      const GnsAddRequest& request);
  Result<sim::EmptyMessage> HandleRemove(const sim::RpcContext& context,
                                         const GnsRemoveRequest& request);
  Status CheckModerator(const sim::RpcContext& context) const;
  void MaybeScheduleFlush();

  sim::RpcServer server_;
  std::unique_ptr<sim::Channel> dns_client_;
  sim::Clock* clock_;
  std::string zone_;
  const sec::KeyRegistry* registry_;
  std::string tsig_key_name_;
  Bytes tsig_key_;
  sim::Endpoint primary_dns_;
  NamingAuthorityOptions options_;
  uint64_t next_sequence_ = 1;
  bool flush_scheduled_ = false;
  std::vector<ResourceRecord> pending_additions_;
  std::vector<UpdateRequest::Deletion> pending_deletions_;
  NamingAuthorityStats stats_;
};

// Client-side GNS routines used by moderator tools (add/remove) and by the binding
// machinery of the run-time system (resolve).
class GnsClient {
 public:
  GnsClient(sim::Transport* transport, sim::NodeId node, std::string zone,
            sim::Endpoint naming_authority, sim::Endpoint resolver);

  using DoneCallback = std::function<void(Status)>;
  using ResolveCallback = std::function<void(Result<std::string>)>;  // OID hex

  // Registers `globe_name` -> `oid_hex`. Requires the caller's node to hold a
  // moderator credential on the secure transport.
  void AddName(std::string_view globe_name, std::string_view oid_hex, DoneCallback done);

  void RemoveName(std::string_view globe_name, DoneCallback done);

  // Resolves a Globe object name to an OID through the local caching resolver.
  void Resolve(std::string_view globe_name, ResolveCallback done);

 private:
  sim::Channel rpc_;
  DnsClient dns_;
  std::string zone_;
  sim::Endpoint naming_authority_;
};

}  // namespace globe::dns

#endif  // SRC_DNS_GNS_H_
