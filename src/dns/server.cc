#include "src/dns/server.h"

#include "src/dns/name.h"
#include "src/util/log.h"

namespace globe::dns {

AuthoritativeServer::AuthoritativeServer(sim::Transport* transport, sim::NodeId node,
                                         TsigKeyTable tsig_keys)
    : server_(transport, node, sim::kPortDns),
      push_client_(std::make_unique<sim::Channel>(transport, node)),
      tsig_keys_(std::move(tsig_keys)) {
  kDnsQuery.Register(&server_, [this](const sim::RpcContext&, const QueryRequest& req) {
    return HandleQuery(req);
  });
  kDnsUpdate.Register(&server_,
                      [this](const sim::RpcContext&, const UpdateRequest& update) {
                        return HandleUpdate(update);
                      });
  kDnsAxfr.Register(&server_,
                    [this](const sim::RpcContext&, const ZoneTransfer& transfer) {
                      return HandleTransfer(transfer);
                    });
}

void AuthoritativeServer::AddZone(Zone zone, bool primary) {
  std::string origin = zone.origin();
  zones_[origin] = HostedZone{std::move(zone), primary, {}};
}

void AuthoritativeServer::AddSecondary(const std::string& zone_origin,
                                       const sim::Endpoint& secondary) {
  auto it = zones_.find(zone_origin);
  if (it != zones_.end()) {
    it->second.secondaries.push_back(secondary);
  }
}

const Zone* AuthoritativeServer::FindZone(std::string_view name) const {
  // Longest-origin match: the most specific zone containing the name wins.
  const Zone* best = nullptr;
  for (const auto& [origin, hosted] : zones_) {
    if (IsInZone(name, origin)) {
      if (best == nullptr || origin.size() > best->origin().size()) {
        best = &hosted.zone;
      }
    }
  }
  return best;
}

Result<QueryResponse> AuthoritativeServer::HandleQuery(const QueryRequest& query) {
  ++stats_.queries;
  ASSIGN_OR_RETURN(std::string name, CanonicalName(query.question.name));

  QueryResponse response;
  const Zone* zone = FindZone(name);
  if (zone == nullptr) {
    response.rcode = Rcode::kRefused;  // not authoritative for this name
    return response;
  }
  response.authoritative = true;
  response.answers = zone->Lookup(name, query.question.type);
  if (response.answers.empty()) {
    response.rcode = zone->HasName(name) ? Rcode::kNoError : Rcode::kNxDomain;
    response.negative_ttl = zone->soa_minimum_ttl();
  }
  return response;
}

Result<sim::EmptyMessage> AuthoritativeServer::HandleUpdate(const UpdateRequest& update) {
  auto zone_it = zones_.find(update.zone);
  if (zone_it == zones_.end()) {
    ++stats_.updates_rejected;
    return Status(StatusCode::kNotFound, "not authoritative for zone " + update.zone);
  }
  if (!zone_it->second.primary) {
    ++stats_.updates_rejected;
    return FailedPrecondition("zone " + update.zone + " is a secondary here");
  }

  // TSIG verification: known key, valid MAC, fresh sequence number.
  auto key_it = tsig_keys_.find(update.key_name);
  if (key_it == tsig_keys_.end()) {
    ++stats_.updates_rejected;
    return PermissionDenied("unknown TSIG key " + update.key_name);
  }
  if (!TsigVerify(update, key_it->second)) {
    ++stats_.updates_rejected;
    return PermissionDenied("TSIG verification failed for key " + update.key_name);
  }
  uint64_t& high_water = tsig_high_water_[update.key_name];
  if (update.sequence <= high_water) {
    ++stats_.updates_rejected;
    return PermissionDenied("TSIG sequence replayed");
  }
  high_water = update.sequence;

  Zone& zone = zone_it->second.zone;
  for (const auto& deletion : update.deletions) {
    if (deletion.whole_name) {
      zone.RemoveName(deletion.name);
    } else {
      zone.Remove(deletion.name, deletion.type);
    }
  }
  for (const auto& record : update.additions) {
    RETURN_IF_ERROR(zone.Add(record));
  }
  ++stats_.updates_applied;

  PushToSecondaries(update.zone);
  return sim::EmptyMessage{};
}

void AuthoritativeServer::PushToSecondaries(const std::string& zone_origin) {
  auto it = zones_.find(zone_origin);
  if (it == zones_.end() || it->second.secondaries.empty()) {
    return;
  }
  auto key_it = tsig_keys_.find("axfr");
  if (key_it == tsig_keys_.end()) {
    GLOG_WARN << "no 'axfr' TSIG key configured; cannot push zone " << zone_origin;
    return;
  }

  ZoneTransfer transfer;
  ByteWriter zone_writer;
  it->second.zone.Serialize(&zone_writer);
  transfer.zone_bytes = zone_writer.Take();
  transfer.key_name = "axfr";
  transfer.sequence = next_transfer_sequence_++;
  TsigSign(&transfer, key_it->second);

  for (const auto& secondary : it->second.secondaries) {
    ++stats_.transfers_sent;
    kDnsAxfr.Call(push_client_.get(), secondary, transfer,
                  [](Result<sim::EmptyMessage> result) {
                    if (!result.ok()) {
                      GLOG_WARN << "zone transfer push failed: " << result.status();
                    }
                  });
  }
}

Result<sim::EmptyMessage> AuthoritativeServer::HandleTransfer(
    const ZoneTransfer& transfer) {
  auto key_it = tsig_keys_.find(transfer.key_name);
  if (key_it == tsig_keys_.end() || !TsigVerify(transfer, key_it->second)) {
    ++stats_.transfers_rejected;
    return PermissionDenied("AXFR TSIG verification failed");
  }

  ASSIGN_OR_RETURN(Zone incoming, Zone::Deserialize(transfer.zone_bytes));
  auto zone_it = zones_.find(incoming.origin());
  if (zone_it == zones_.end()) {
    ++stats_.transfers_rejected;
    return Status(StatusCode::kNotFound, "not configured for zone " + incoming.origin());
  }
  if (zone_it->second.primary) {
    ++stats_.transfers_rejected;
    return FailedPrecondition("refusing AXFR into primary zone");
  }
  // Serial comparison: only move forward.
  if (incoming.serial() <= zone_it->second.zone.serial() &&
      zone_it->second.zone.record_count() > 0) {
    return sim::EmptyMessage{};  // already current; idempotent
  }
  zone_it->second.zone = std::move(incoming);
  ++stats_.transfers_applied;
  return sim::EmptyMessage{};
}

}  // namespace globe::dns
