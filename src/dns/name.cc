#include "src/dns/name.h"

#include "src/util/strings.h"

namespace globe::dns {

namespace {
bool ValidLabelChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' || c == '_';
}
}  // namespace

Result<std::string> CanonicalName(std::string_view name) {
  if (name.empty()) {
    return InvalidArgument("empty DNS name");
  }
  std::string canonical = AsciiToLower(name);
  if (canonical.size() > 255) {
    return InvalidArgument("DNS name longer than 255 characters");
  }
  for (const std::string& label : Split(canonical, '.')) {
    if (label.empty()) {
      return InvalidArgument("empty label in DNS name: " + canonical);
    }
    if (label.size() > 63) {
      return InvalidArgument("label longer than 63 characters: " + label);
    }
    for (char c : label) {
      if (!ValidLabelChar(c)) {
        return InvalidArgument("invalid character in DNS label: " + label);
      }
    }
    if (label.front() == '-' || label.back() == '-') {
      return InvalidArgument("label may not start or end with '-': " + label);
    }
  }
  return canonical;
}

bool IsInZone(std::string_view name, std::string_view zone) {
  if (name == zone) {
    return true;
  }
  // Build via += rather than string + string — see the -Wrestrict note in gns.cc.
  std::string suffix = ".";
  suffix += zone;
  return EndsWith(name, suffix);
}

std::vector<std::string> NameLabels(std::string_view name) {
  return Split(name, '.');
}

}  // namespace globe::dns
