#include "src/util/bytes.h"

namespace globe {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(ByteSpan bytes) {
  return std::string(bytes.begin(), bytes.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

std::string HexEncode(ByteSpan bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

bool HexDecode(std::string_view hex, Bytes* out) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace globe
