#include "src/util/serial.h"

namespace globe {

void ByteWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void ByteWriter::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::WriteU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::WriteU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::WriteBytes(ByteSpan bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteLengthPrefixed(ByteSpan bytes) {
  WriteVarint(bytes.size());
  WriteBytes(bytes);
}

void ByteWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) {
    return OutOfRange("ReadU8 past end");
  }
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  if (remaining() < 2) {
    return OutOfRange("ReadU16 past end");
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) {
    return OutOfRange("ReadU32 past end");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) {
    return OutOfRange("ReadU64 past end");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return OutOfRange("ReadVarint past end");
    }
    if (shift >= 64) {
      return InvalidArgument("varint too long");
    }
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

Result<Bytes> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) {
    return OutOfRange("ReadBytes past end");
  }
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<Bytes> ByteReader::ReadLengthPrefixed() {
  ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (len > remaining()) {
    return OutOfRange("length prefix exceeds remaining data");
  }
  return ReadBytes(static_cast<size_t>(len));
}

Result<std::string> ByteReader::ReadString() {
  ASSIGN_OR_RETURN(Bytes bytes, ReadLengthPrefixed());
  return std::string(bytes.begin(), bytes.end());
}

Result<ByteSpan> ByteReader::ReadSpan(size_t n) {
  if (remaining() < n) {
    return OutOfRange("ReadSpan past end");
  }
  ByteSpan out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Result<ByteSpan> ByteReader::ReadLengthPrefixedView() {
  ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (len > remaining()) {
    return OutOfRange("length prefix exceeds remaining data");
  }
  return ReadSpan(static_cast<size_t>(len));
}

Result<std::string_view> ByteReader::ReadStringView() {
  ASSIGN_OR_RETURN(ByteSpan bytes, ReadLengthPrefixedView());
  return std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

Result<bool> ByteReader::ReadBool() {
  ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  if (v > 1) {
    return InvalidArgument("bool byte not 0/1");
  }
  return v == 1;
}

}  // namespace globe
