// HMAC-SHA-256 (RFC 2104), built on src/util/sha256.h.
//
// This is the integrity primitive behind the simulated TLS channels (§6.3) and the
// TSIG protection of DNS UPDATE messages sent by the GNS Naming Authority (§6.3).

#ifndef SRC_UTIL_HMAC_H_
#define SRC_UTIL_HMAC_H_

#include "src/util/bytes.h"
#include "src/util/sha256.h"

namespace globe {

// A prepared HMAC-SHA-256 key: the padded key block's inner (key ^ ipad) and
// outer (key ^ opad) compression states are computed once at construction and
// every MAC starts from a copy of them. That saves two SHA-256 block
// compressions per MAC versus the one-shot functions below — exactly the
// per-frame cost a long-lived session key pays over and over — and the
// streaming interface lets callers MAC multi-part input (header fields +
// ciphertext) without concatenating it into a scratch buffer first. MAC values
// are byte-identical to HmacSha256().
class HmacKey {
 public:
  HmacKey() : HmacKey(ByteSpan{}) {}
  explicit HmacKey(ByteSpan key);

  // Starts a MAC: feed message parts with Sha256::Update, then Finish()/Verify().
  Sha256 Start() const { return inner_midstate_; }

  // Completes the MAC over everything fed to `inner`.
  Bytes Finish(Sha256 inner) const;

  // Completes the MAC and compares it against `mac` in constant time.
  bool Verify(Sha256 inner, ByteSpan mac) const;

  // One-shot convenience over a single part.
  Bytes Mac(ByteSpan message) const;

 private:
  Sha256 inner_midstate_;  // one block of key ^ ipad absorbed
  Sha256 outer_midstate_;  // one block of key ^ opad absorbed
};

// Computes HMAC-SHA-256(key, message). Keys longer than the block size are hashed
// first, exactly as RFC 2104 prescribes. Prefer HmacKey when the same key MACs
// more than one message.
Bytes HmacSha256(ByteSpan key, ByteSpan message);

// Verifies a MAC in constant time.
bool VerifyHmacSha256(ByteSpan key, ByteSpan message, ByteSpan mac);

}  // namespace globe

#endif  // SRC_UTIL_HMAC_H_
