// HMAC-SHA-256 (RFC 2104), built on src/util/sha256.h.
//
// This is the integrity primitive behind the simulated TLS channels (§6.3) and the
// TSIG protection of DNS UPDATE messages sent by the GNS Naming Authority (§6.3).

#ifndef SRC_UTIL_HMAC_H_
#define SRC_UTIL_HMAC_H_

#include "src/util/bytes.h"
#include "src/util/sha256.h"

namespace globe {

// Computes HMAC-SHA-256(key, message). Keys longer than the block size are hashed
// first, exactly as RFC 2104 prescribes.
Bytes HmacSha256(ByteSpan key, ByteSpan message);

// Verifies a MAC in constant time.
bool VerifyHmacSha256(ByteSpan key, ByteSpan message, ByteSpan mac);

}  // namespace globe

#endif  // SRC_UTIL_HMAC_H_
