// Manual byte-level serialization.
//
// Globe's replication and communication subobjects operate on *opaque invocation
// messages*: method identifiers and parameters encoded into byte blobs (paper §3.3).
// This header provides the bounded writer/reader pair every wire format in this
// repository is built from. Encodings:
//   - fixed-width integers are little-endian
//   - varints are LEB128 (7 bits per byte, high bit = continuation)
//   - strings and byte blobs are varint length followed by raw bytes

#ifndef SRC_UTIL_SERIAL_H_
#define SRC_UTIL_SERIAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace globe {

// Appends values to an owned byte buffer. Never fails; growth is amortized.
//
// Reusable-buffer mode: Reset() empties the writer but keeps its capacity, so a
// long-lived scratch writer (the Channel's per-call serializer, a server's
// response writer) stops allocating once it reaches its high-water mark. Frame
// the bytes with span() and hand them to Transport::Send, which consumes them
// before returning; Take() is for callers that need to keep the buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteVarint(uint64_t v);
  void WriteBytes(ByteSpan bytes);              // raw, no length prefix
  void WriteLengthPrefixed(ByteSpan bytes);     // varint length + raw bytes
  void WriteString(std::string_view s);         // varint length + raw bytes
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  const Bytes& data() const { return buffer_; }
  ByteSpan span() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

  // Clears the contents, retaining capacity for reuse.
  void Reset() { buffer_.clear(); }

 private:
  Bytes buffer_;
};

// Reads values from a non-owned byte span with strict bounds checking. Every read
// returns OUT_OF_RANGE on truncation — malformed network input must never crash a
// service (paper §6.1: availability despite bogus protocol messages).
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<uint64_t> ReadVarint();
  Result<Bytes> ReadBytes(size_t n);       // raw
  Result<Bytes> ReadLengthPrefixed();      // varint length + raw
  Result<std::string> ReadString();
  Result<bool> ReadBool();

  // Zero-copy variants: the returned view aliases the span this reader was
  // constructed over, so it is valid only while that buffer is. The RPC hot
  // path parses frames with these — one receive buffer, no per-field copies —
  // and copies exactly the fields that must outlive the delivery.
  Result<ByteSpan> ReadSpan(size_t n);            // raw view
  Result<ByteSpan> ReadLengthPrefixedView();      // varint length + raw view
  Result<std::string_view> ReadStringView();      // varint length + raw view

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace globe

#endif  // SRC_UTIL_SERIAL_H_
