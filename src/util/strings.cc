#include "src/util/strings.h"

#include <cctype>
#include <cstdio>

namespace globe {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : Split(s, sep)) {
    if (!part.empty()) {
      out.push_back(std::move(part));
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatMicros(double micros) {
  char buf[64];
  if (micros >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f s", micros / 1e6);
  } else if (micros >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", micros / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f us", micros);
  }
  return buf;
}

}  // namespace globe
