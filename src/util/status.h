// Lightweight error-propagation types used throughout the Globe libraries.
//
// The Globe paper's substrates (GLS, GNS, GOS) are long-running services that must
// report failures to remote callers rather than abort, so almost every fallible
// operation in this codebase returns a Status or a Result<T>.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace globe {

// Error categories. Kept deliberately small; remote services marshal the code as one
// byte, so values must stay stable and below 256.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   // malformed input (bad name syntax, truncated message, ...)
  kNotFound = 2,          // object / name / record does not exist
  kAlreadyExists = 3,     // insert of something that is already registered
  kPermissionDenied = 4,  // caller is not authorized (moderator checks, TSIG, ...)
  kUnavailable = 5,       // transient: peer down, message dropped, timeout
  kInternal = 6,          // invariant violation on the service side
  kOutOfRange = 7,        // index/offset beyond bounds
  kFailedPrecondition = 8,  // operation not valid in current state
  kDataLoss = 9,            // integrity check failed (tampered message, bad MAC)
};

std::string_view StatusCodeName(StatusCode code);

// A Status is either OK or an (error code, message) pair.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status DataLoss(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit: lets `return value;` and `return SomeError(...);` both work.
  Result(T value) : value_(std::move(value)) {}              // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {       // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors up the call chain, expression-statement style:
//   RETURN_IF_ERROR(writer.Flush());
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::globe::Status _status = (expr);           \
    if (!_status.ok()) {                        \
      return _status;                           \
    }                                           \
  } while (0)

// Assigns the value of a Result<T> expression or propagates its error:
//   ASSIGN_OR_RETURN(auto record, zone.Find(name));
#define ASSIGN_OR_RETURN(lhs, rexpr) ASSIGN_OR_RETURN_IMPL_(GLOBE_CONCAT_(_res, __LINE__), lhs, rexpr)
#define GLOBE_CONCAT_INNER_(a, b) a##b
#define GLOBE_CONCAT_(a, b) GLOBE_CONCAT_INNER_(a, b)
#define ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                           \
  if (!tmp.ok()) {                              \
    return tmp.status();                        \
  }                                             \
  lhs = std::move(tmp).value()

}  // namespace globe

#endif  // SRC_UTIL_STATUS_H_
