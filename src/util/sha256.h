// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for: content hashes of package files (integrity, paper §6.1), object-identifier
// derivation in the GLS, and as the compression function under HMAC for the simulated
// TLS channels and DNS TSIG records.

#ifndef SRC_UTIL_SHA256_H_
#define SRC_UTIL_SHA256_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace globe {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  // Streaming interface: feed any number of chunks, then Finish() once.
  void Update(ByteSpan data);
  std::array<uint8_t, kDigestSize> Finish();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Digest(ByteSpan data);
  static Bytes DigestBytes(ByteSpan data);
  static std::string HexDigest(ByteSpan data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace globe

#endif  // SRC_UTIL_SHA256_H_
