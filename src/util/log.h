// Minimal leveled logging.
//
// Services in the simulator are numerous (hundreds of directory nodes / object servers
// in the larger benches), so logging defaults to kWarn and is cheap when disabled.

#ifndef SRC_UTIL_LOG_H_
#define SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace globe {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define GLOBE_LOG(level)                                   \
  if (static_cast<int>(::globe::LogLevel::level) <         \
      static_cast<int>(::globe::GetLogLevel())) {          \
  } else                                                   \
    ::globe::internal::LogMessage(::globe::LogLevel::level)

#define GLOG_DEBUG GLOBE_LOG(kDebug)
#define GLOG_INFO GLOBE_LOG(kInfo)
#define GLOG_WARN GLOBE_LOG(kWarn)
#define GLOG_ERROR GLOBE_LOG(kError)

}  // namespace globe

#endif  // SRC_UTIL_LOG_H_
