#include "src/util/hmac.h"

namespace globe {

Bytes HmacSha256(ByteSpan key, ByteSpan message) {
  constexpr size_t kBlock = Sha256::kBlockSize;
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    auto digest = Sha256::Digest(key);
    std::copy(digest.begin(), digest.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  auto inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(ByteSpan(inner_digest.data(), inner_digest.size()));
  auto outer_digest = outer.Finish();
  return Bytes(outer_digest.begin(), outer_digest.end());
}

bool VerifyHmacSha256(ByteSpan key, ByteSpan message, ByteSpan mac) {
  Bytes expected = HmacSha256(key, message);
  return ConstantTimeEqual(expected, mac);
}

}  // namespace globe
