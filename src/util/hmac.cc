#include "src/util/hmac.h"

namespace globe {

HmacKey::HmacKey(ByteSpan key) {
  constexpr size_t kBlock = Sha256::kBlockSize;
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    auto digest = Sha256::Digest(key);
    std::copy(digest.begin(), digest.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes pad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    pad[i] = k[i] ^ 0x36;
  }
  inner_midstate_.Update(pad);
  for (size_t i = 0; i < kBlock; ++i) {
    pad[i] = k[i] ^ 0x5c;
  }
  outer_midstate_.Update(pad);
}

Bytes HmacKey::Finish(Sha256 inner) const {
  auto inner_digest = inner.Finish();
  Sha256 outer = outer_midstate_;
  outer.Update(ByteSpan(inner_digest.data(), inner_digest.size()));
  auto outer_digest = outer.Finish();
  return Bytes(outer_digest.begin(), outer_digest.end());
}

bool HmacKey::Verify(Sha256 inner, ByteSpan mac) const {
  return ConstantTimeEqual(Finish(std::move(inner)), mac);
}

Bytes HmacKey::Mac(ByteSpan message) const {
  Sha256 inner = Start();
  inner.Update(message);
  return Finish(std::move(inner));
}

Bytes HmacSha256(ByteSpan key, ByteSpan message) { return HmacKey(key).Mac(message); }

bool VerifyHmacSha256(ByteSpan key, ByteSpan message, ByteSpan mac) {
  Bytes expected = HmacSha256(key, message);
  return ConstantTimeEqual(expected, mac);
}

}  // namespace globe
