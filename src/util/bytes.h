// Byte-buffer aliases and hex helpers.
//
// All Globe wire formats ("opaque invocation messages", GLS records, DNS messages) are
// byte vectors produced by the manual serializers in src/util/serial.h.

#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace globe {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

// Converts a string's characters to bytes verbatim (no encoding applied).
Bytes ToBytes(std::string_view s);

// Materialises a view as owned bytes — the explicit copy at an ownership
// boundary, for a parsed wire field that must outlive its receive buffer.
inline Bytes ToBytes(ByteSpan bytes) { return Bytes(bytes.begin(), bytes.end()); }

// Converts bytes back to a std::string verbatim.
std::string ToString(ByteSpan bytes);

// Lowercase hex encoding, two characters per byte.
std::string HexEncode(ByteSpan bytes);

// Parses a hex string. Returns false on odd length or non-hex characters.
bool HexDecode(std::string_view hex, Bytes* out);

// Constant-time byte comparison: used for MAC verification so the comparison itself
// does not leak a timing side channel (mirrors real TLS/TSIG implementations).
bool ConstantTimeEqual(ByteSpan a, ByteSpan b);

}  // namespace globe

#endif  // SRC_UTIL_BYTES_H_
