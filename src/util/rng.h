// Deterministic pseudo-random number generation for simulation workloads.
//
// Reproducibility matters more than cryptographic quality here: every benchmark in
// bench/ must produce identical workloads across runs so that paper-vs-measured
// comparisons in EXPERIMENTS.md are stable. The generator is xoshiro256** seeded
// through splitmix64.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"

namespace globe {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to avoid
  // modulo bias.
  uint64_t UniformInt(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Random byte blob of length n.
  Bytes RandomBytes(size_t n);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

// Zipf-distributed sampler over ranks 0..n-1 (rank 0 most popular), with exponent s.
// Web-object popularity is classically Zipf-like, which is the access-pattern model
// behind the paper's selective-replication argument (§3.1).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  // Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

  // Probability mass of a given rank.
  double Pmf(size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace globe

#endif  // SRC_UTIL_RNG_H_
