#include "src/util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace globe {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  uint64_t result = RotL(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls in the largest multiple of bound.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  double u = UniformDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return UniformDouble() < p;
}

Bytes Rng::RandomBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = NextU64();
    for (int b = 0; b < 8; ++b) {
      out[i + b] = static_cast<uint8_t>(v >> (8 * b));
    }
    i += 8;
  }
  if (i < n) {
    uint64_t v = NextU64();
    for (; i < n; ++i) {
      out[i] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) {
    c /= sum;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) {
    return cdf_[0];
  }
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace globe
