// Small string helpers shared by the name services and the HTTP layer.

#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace globe {

// Splits on a single character. Empty segments are preserved: Split("a//b", '/')
// yields {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits and drops empty segments: SplitSkipEmpty("/a//b/", '/') yields {"a", "b"}.
std::vector<std::string> SplitSkipEmpty(std::string_view s, char sep);

// Joins with a separator string.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII case conversion (DNS names are case-insensitive).
std::string AsciiToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

// Formats byte counts ("1.5 MB") and durations in microseconds ("2.30 ms") for
// bench output.
std::string FormatBytes(uint64_t bytes);
std::string FormatMicros(double micros);

}  // namespace globe

#endif  // SRC_UTIL_STRINGS_H_
