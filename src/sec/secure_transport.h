// TLS-style secure transport decorating any inner transport.
//
// Paper §6.3: "we replace all communication between GDN parties by integrity-protected
// and authenticated communication ... all TCP connections between GDN parties are
// replaced by connections secured via the TLS protocol", with two-way authentication
// between GDN hosts and server-side authentication towards users' machines (Figure 4).
//
// This class implements sim::Transport by wrapping an inner Transport (the
// simulated network's PlainTransport, or a socket backend) so the RPC layer — and
// thus every service — is oblivious to it: the same clean communication/functional
// separation the paper relies on to make the TLS retrofit cheap.
//
// Model of one channel (a node pair), mirroring a TLS connection:
//   - Handshake on first use: a synthetic 2 KB flight is charged to the network (so
//     wide-area byte counters see it) and the first data frame is delayed by
//     handshake_rtts round trips plus handshake CPU. Credential verification against
//     the KeyRegistry happens here, like certificate verification: in kMutualAuth both
//     nodes must hold registry-matching credentials, in kServerAuth only the responder.
//   - Data frames: sequence number per direction (replay protection), optional
//     encryption under the session key (SHA-256 CTR keystream), and an HMAC-SHA-256
//     over (session id, seq, endpoints, ciphertext). Tampering — whether injected by
//     the network's fault injection or by test "attackers" — fails MAC verification
//     and the frame is dropped and counted.
//   - Delivered frames carry the authenticated peer principal so services can apply
//     role checks ("only a moderator may add packages", §6.1).
//   - Inbound verification is batched by default (VerifyMode::kBatched): frames
//     arriving in one event-loop wake queue as pinned views and are verified
//     together in a single deferred flush, against the session's precomputed
//     HMAC midstates. A tampered frame is rejected individually; the rest of
//     its batch still delivers.
//
// Per-byte MAC and cipher costs are charged as extra delivery delay, which is how the
// benchmarks measure the paper's "paying for confidentiality we do not need" concern.

#ifndef SRC_SEC_SECURE_TRANSPORT_H_
#define SRC_SEC_SECURE_TRANSPORT_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/sec/principal.h"
#include "src/sim/transport.h"
#include "src/util/hmac.h"
#include "src/util/rng.h"
#include "src/util/serial.h"

namespace globe::sec {

enum class AuthMode : uint8_t {
  kPlain = 0,       // no handshake, no MAC — the June 2000 first-version GDN
  kServerAuth = 1,  // responder authenticated; initiator anonymous (user -> GDN host)
  kMutualAuth = 2,  // both authenticated (GDN host <-> GDN host)
};

struct ChannelConfig {
  AuthMode auth = AuthMode::kPlain;
  bool encrypt = false;  // confidentiality on top of integrity
};

// Decides how a (src, dst) node pair communicates. Installed once per transport;
// the GdnWorld policy gives mutual auth between GDN hosts and server auth towards
// user machines, as in Figure 4.
using ChannelPolicy = std::function<ChannelConfig(sim::NodeId src, sim::NodeId dst)>;

// Cost model for the simulated crypto, loosely calibrated to year-2000 hardware.
struct CryptoProfile {
  double mac_us_per_byte = 0.01;      // ~100 MB/s HMAC
  double cipher_us_per_byte = 0.04;   // ~25 MB/s symmetric cipher
  double handshake_cpu_us = 3000;     // asymmetric crypto at both ends
  uint64_t handshake_bytes = 2048;    // hello + certificate + key exchange flights
  int handshake_rtts = 2;             // TLS 1.0: two round trips before app data
  uint64_t mac_trailer_bytes = 32;    // HMAC-SHA-256 length on the wire
};

// How inbound secure frames are MAC-verified.
enum class VerifyMode : uint8_t {
  // Legacy: verify each frame the moment it arrives, rebuilding the HMAC key
  // schedule and concatenating the MAC input per frame. Kept as the baseline
  // the batched mode is benchmarked against.
  kPerFrame = 0,
  // Default: frames arriving in one event-loop wake are queued (their views
  // pinned) and verified together in a single deferred flush, sharing the
  // session's precomputed HMAC midstates and one scratch header buffer — the
  // per-message crypto setup cost amortizes across the batch.
  kBatched = 1,
};

struct SecureStats {
  uint64_t handshakes = 0;
  uint64_t frames_sent = 0;
  uint64_t plain_frames_sent = 0;
  uint64_t mac_failures = 0;
  uint64_t replay_rejects = 0;
  uint64_t auth_failures = 0;     // handshake credential verification failures
  uint64_t unknown_session = 0;   // frames naming a session we never established
  uint64_t malformed_frames = 0;
  uint64_t verify_batches = 0;    // batched mode: flushes executed
  uint64_t batched_frames = 0;    // batched mode: frames verified across all flushes
  uint64_t max_batch_frames = 0;  // batched mode: largest single flush
  double crypto_us = 0;           // total simulated crypto CPU time

  void Clear() { *this = SecureStats(); }
};

class SecureTransport : public sim::Transport {
 public:
  SecureTransport(sim::Transport* inner, const KeyRegistry* registry,
                  CryptoProfile profile = {});
  ~SecureTransport() override;

  // Installs the host credential a node uses when it must authenticate. Nodes without
  // credentials can only initiate kServerAuth or kPlain channels.
  void SetNodeCredential(sim::NodeId node, Credential credential);

  void SetChannelPolicy(ChannelPolicy policy) { policy_ = std::move(policy); }

  void set_verify_mode(VerifyMode mode) { verify_mode_ = mode; }
  VerifyMode verify_mode() const { return verify_mode_; }

  // sim::Transport interface.
  void Send(const sim::Endpoint& src, const sim::Endpoint& dst, ByteSpan payload) override;
  void RegisterPort(sim::NodeId node, uint16_t port,
                    sim::TransportHandler handler) override;
  void UnregisterPort(sim::NodeId node, uint16_t port) override;
  sim::Clock* clock() override { return inner_->clock(); }
  double EstimateDeliveryDelayUs(sim::NodeId src, sim::NodeId dst,
                                 size_t bytes) const override {
    return inner_->EstimateDeliveryDelayUs(src, dst, bytes);
  }

  const SecureStats& stats() const { return stats_; }
  SecureStats* mutable_stats() { return &stats_; }

  // Drops the session state for a node pair, forcing a fresh handshake (used to test
  // reconnection after failures).
  void ResetChannel(sim::NodeId a, sim::NodeId b);

 private:
  struct Session {
    uint64_t id = 0;
    Bytes key;
    // The HMAC key schedule (padded key block midstates), computed once per
    // session instead of once per frame.
    HmacKey mac_key;
    ChannelConfig config;
    // Authenticated principal per side, kAnonymous if that side is not authenticated.
    std::map<sim::NodeId, PrincipalId> principals;
    std::map<sim::NodeId, uint64_t> next_seq;      // per sending direction
    std::map<sim::NodeId, uint64_t> last_accepted; // per receiving direction
    // TLS runs over TCP: frames on one channel may not overtake each other. Per
    // sending direction this holds the earliest time the next frame may arrive,
    // initialized to the end of the handshake.
    std::map<sim::NodeId, double> delivery_floor;
  };

  using NodePair = std::pair<sim::NodeId, sim::NodeId>;
  static NodePair MakePair(sim::NodeId a, sim::NodeId b) {
    return a < b ? NodePair{a, b} : NodePair{b, a};
  }

  // One parsed secure frame awaiting MAC verification. The ciphertext and MAC
  // are pinned views into the inner transport's receive buffer — queuing a
  // frame for a batched flush costs refcounts, not copies.
  struct PendingSecureFrame {
    sim::Endpoint src;
    sim::Endpoint dst;
    uint64_t session_id = 0;
    uint64_t seq = 0;
    uint8_t flags = 0;
    sim::PayloadView ciphertext;
    sim::PayloadView mac;
  };

  // Returns the session for the pair, establishing it (and charging handshake costs
  // via the channel's delivery floors) if needed. nullptr if credential verification
  // failed.
  Session* GetOrEstablish(sim::NodeId src, sim::NodeId dst);

  void OnRawDelivery(const sim::TransportDelivery& delivery);
  // Verifies, replay-checks, decrypts and delivers one secure frame.
  void VerifyAndDeliver(PendingSecureFrame& frame);
  // Batched mode: drains every frame queued during the wake, in arrival order.
  void FlushPending();

  sim::Transport* inner_;
  const KeyRegistry* registry_;
  CryptoProfile profile_;
  ChannelPolicy policy_;
  Rng rng_;
  uint64_t next_session_id_ = 1;
  std::map<sim::NodeId, Credential> credentials_;
  std::map<NodePair, Session> sessions_;
  std::map<uint64_t, NodePair> session_by_id_;
  // Values are shared_ptr so OnRawDelivery() can pin the handler it is
  // invoking without copying the closure: a handler may close its own port
  // mid-call.
  std::map<std::pair<sim::NodeId, uint16_t>, std::shared_ptr<sim::TransportHandler>>
      handlers_;
  SecureStats stats_;
  VerifyMode verify_mode_ = VerifyMode::kBatched;
  // Frames queued for the next batched flush (one 0-delay event per wake).
  std::vector<PendingSecureFrame> pending_;
  // Scratch buffers reused across frames: MAC header bytes and outbound frames.
  ByteWriter mac_scratch_;
  ByteWriter frame_scratch_;
  // Guards frames held back on the clock (crypto cost, delivery floors) against
  // a transport destroyed before they go out.
  std::shared_ptr<bool> alive_;
};

}  // namespace globe::sec

#endif  // SRC_SEC_SECURE_TRANSPORT_H_
