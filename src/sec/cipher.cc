#include "src/sec/cipher.h"

#include "src/util/serial.h"
#include "src/util/sha256.h"

namespace globe::sec {

void ApplyKeystream(ByteSpan key, uint64_t nonce, Bytes* data) {
  size_t offset = 0;
  uint64_t counter = 0;
  while (offset < data->size()) {
    ByteWriter block_input;
    block_input.WriteBytes(key);
    block_input.WriteU64(nonce);
    block_input.WriteU64(counter++);
    auto keystream = Sha256::Digest(block_input.data());
    size_t n = std::min(keystream.size(), data->size() - offset);
    for (size_t i = 0; i < n; ++i) {
      (*data)[offset + i] ^= keystream[i];
    }
    offset += n;
  }
}

}  // namespace globe::sec
