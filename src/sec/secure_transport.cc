#include "src/sec/secure_transport.h"

#include "src/sec/cipher.h"
#include "src/util/hmac.h"
#include "src/util/log.h"
#include "src/util/serial.h"

namespace globe::sec {

namespace {
constexpr uint8_t kVersion = 1;
constexpr uint8_t kFramePlain = 0;
constexpr uint8_t kFrameSecure = 1;
constexpr uint8_t kFlagEncrypted = 0x01;
// Port 1 receives the synthetic handshake flights; nothing listens there, so the
// bytes are charged to the network's traffic counters and then discarded.
constexpr uint16_t kHandshakeSinkPort = 1;

Bytes MacInput(uint64_t session_id, uint64_t seq, const sim::Endpoint& src,
               const sim::Endpoint& dst, uint8_t flags, ByteSpan ciphertext) {
  ByteWriter w;
  w.WriteU64(session_id);
  w.WriteU64(seq);
  w.WriteU32(src.node);
  w.WriteU16(src.port);
  w.WriteU32(dst.node);
  w.WriteU16(dst.port);
  w.WriteU8(flags);
  w.WriteLengthPrefixed(ciphertext);
  return w.Take();
}
}  // namespace

SecureTransport::SecureTransport(sim::Transport* inner, const KeyRegistry* registry,
                                 CryptoProfile profile)
    : inner_(inner),
      registry_(registry),
      profile_(profile),
      rng_(0x5ec43a11),
      alive_(std::make_shared<bool>(true)) {}

SecureTransport::~SecureTransport() { *alive_ = false; }

void SecureTransport::SetNodeCredential(sim::NodeId node, Credential credential) {
  credentials_[node] = std::move(credential);
}

void SecureTransport::RegisterPort(sim::NodeId node, uint16_t port,
                                   sim::TransportHandler handler) {
  handlers_[{node, port}] = std::make_shared<sim::TransportHandler>(std::move(handler));
  inner_->RegisterPort(node, port,
                       [this](const sim::TransportDelivery& d) { OnRawDelivery(d); });
}

void SecureTransport::UnregisterPort(sim::NodeId node, uint16_t port) {
  handlers_.erase({node, port});
  inner_->UnregisterPort(node, port);
}

void SecureTransport::ResetChannel(sim::NodeId a, sim::NodeId b) {
  auto it = sessions_.find(MakePair(a, b));
  if (it != sessions_.end()) {
    session_by_id_.erase(it->second.id);
    sessions_.erase(it);
  }
}

SecureTransport::Session* SecureTransport::GetOrEstablish(sim::NodeId src,
                                                           sim::NodeId dst) {
  NodePair pair = MakePair(src, dst);
  auto it = sessions_.find(pair);
  if (it != sessions_.end()) {
    return &it->second;
  }

  ChannelConfig config = policy_ ? policy_(src, dst) : ChannelConfig{};
  Session session;
  session.id = next_session_id_++;
  session.key = rng_.RandomBytes(32);
  session.config = config;

  // Certificate verification, simulated: the authenticated side(s) must hold the key
  // the registry lists for their claimed principal.
  auto authenticate = [&](sim::NodeId node) -> bool {
    auto cred = credentials_.find(node);
    if (cred == credentials_.end() || !registry_->Verify(cred->second)) {
      return false;
    }
    session.principals[node] = cred->second.id;
    return true;
  };

  // The responder authenticates in both secured modes; the initiator only in mutual.
  if (config.auth != AuthMode::kPlain) {
    if (!authenticate(dst)) {
      ++stats_.auth_failures;
      GLOG_WARN << "handshake failed: node " << dst << " has no valid credential";
      return nullptr;
    }
    if (config.auth == AuthMode::kMutualAuth && !authenticate(src)) {
      ++stats_.auth_failures;
      GLOG_WARN << "handshake failed: initiator node " << src
                << " has no valid credential";
      return nullptr;
    }

    // Charge the handshake: one synthetic 2 KB flight on the wire (so the traffic
    // accounting sees it) plus the round trips and CPU as a delivery floor — no data
    // frame in either direction may arrive before the handshake completes.
    inner_->Send({src, kHandshakeSinkPort}, {dst, kHandshakeSinkPort},
                 Bytes(profile_.handshake_bytes));
    double one_way = inner_->EstimateDeliveryDelayUs(src, dst, 0);
    double ready_at = static_cast<double>(inner_->clock()->Now()) +
                      profile_.handshake_rtts * 2 * one_way + profile_.handshake_cpu_us;
    session.delivery_floor[src] = ready_at;
    session.delivery_floor[dst] = ready_at;
    ++stats_.handshakes;
    stats_.crypto_us += profile_.handshake_cpu_us;
  }

  auto [inserted, _] = sessions_.emplace(pair, std::move(session));
  session_by_id_[inserted->second.id] = pair;
  return &inserted->second;
}

void SecureTransport::Send(const sim::Endpoint& src, const sim::Endpoint& dst,
                           Bytes payload) {
  ChannelConfig config = policy_ ? policy_(src.node, dst.node) : ChannelConfig{};

  if (config.auth == AuthMode::kPlain) {
    ByteWriter w;
    w.WriteU8(kVersion);
    w.WriteU8(kFramePlain);
    w.WriteLengthPrefixed(payload);
    ++stats_.plain_frames_sent;
    inner_->Send(src, dst, w.Take());
    return;
  }

  double extra_delay_us = 0;
  Session* session = GetOrEstablish(src.node, dst.node);
  if (session == nullptr) {
    return;  // handshake failed: connection refused, message lost
  }

  uint64_t seq = session->next_seq[src.node]++;
  uint8_t flags = 0;
  Bytes ciphertext = std::move(payload);
  double crypto_us = static_cast<double>(ciphertext.size()) * profile_.mac_us_per_byte;
  if (session->config.encrypt) {
    flags |= kFlagEncrypted;
    // Distinct nonces per direction prevent keystream reuse.
    uint64_t nonce = seq * 2 + (src.node < dst.node ? 0 : 1);
    ApplyKeystream(session->key, nonce, &ciphertext);
    crypto_us += static_cast<double>(ciphertext.size()) * profile_.cipher_us_per_byte;
  }
  Bytes mac = HmacSha256(session->key,
                         MacInput(session->id, seq, src, dst, flags, ciphertext));

  ByteWriter w;
  w.WriteU8(kVersion);
  w.WriteU8(kFrameSecure);
  w.WriteU64(session->id);
  w.WriteU64(seq);
  w.WriteU8(flags);
  w.WriteLengthPrefixed(ciphertext);
  w.WriteLengthPrefixed(mac);

  Bytes frame = w.Take();

  // Enforce per-direction FIFO delivery (TCP semantics under TLS): delay the frame
  // until at least the channel's delivery floor, then advance the floor. Crypto CPU
  // and floor padding are charged by holding the frame back on the clock before it
  // enters the inner transport, so the arrival time matches the old model exactly:
  // send time + extra + the inner transport's own delay.
  double base_delay = inner_->EstimateDeliveryDelayUs(src.node, dst.node, frame.size());
  double now = static_cast<double>(inner_->clock()->Now());
  double delivery_at = now + base_delay + extra_delay_us + crypto_us;
  double& floor = session->delivery_floor[src.node];
  if (delivery_at < floor) {
    extra_delay_us += floor - delivery_at;
    delivery_at = floor;
  }
  floor = delivery_at;

  ++stats_.frames_sent;
  stats_.crypto_us += crypto_us;
  double hold_us = extra_delay_us + crypto_us;
  if (hold_us <= 0) {
    inner_->Send(src, dst, std::move(frame));
    return;
  }
  inner_->clock()->ScheduleAfter(
      static_cast<sim::SimTime>(hold_us),
      [this, alive = std::weak_ptr<bool>(alive_), src, dst,
       frame = std::move(frame)]() mutable {
        auto a = alive.lock();
        if (!a || !*a) {
          return;
        }
        inner_->Send(src, dst, std::move(frame));
      });
}

void SecureTransport::OnRawDelivery(const sim::TransportDelivery& delivery) {
  auto handler_it = handlers_.find({delivery.dst.node, delivery.dst.port});
  if (handler_it == handlers_.end()) {
    return;
  }

  if (delivery.transport_error) {
    // Connection-level failure from the backend: not a frame at all. Forward it
    // untouched so the RPC layer can fail calls towards the lost peer fast.
    std::shared_ptr<sim::TransportHandler> handler = handler_it->second;
    (*handler)(delivery);
    return;
  }

  ByteReader r(delivery.payload);
  auto version = r.ReadU8();
  auto frame_type = r.ReadU8();
  if (!version.ok() || !frame_type.ok() || *version != kVersion) {
    ++stats_.malformed_frames;
    return;
  }

  if (*frame_type == kFramePlain) {
    auto payload = r.ReadLengthPrefixed();
    if (!payload.ok()) {
      ++stats_.malformed_frames;
      return;
    }
    // Pin the handler: it may unregister its own port mid-call, which would
    // destroy the std::function we are executing.
    std::shared_ptr<sim::TransportHandler> handler = handler_it->second;
    (*handler)(sim::TransportDelivery{delivery.src, delivery.dst,
                                      std::move(*payload), kAnonymous,
                                      /*integrity_protected=*/false});
    return;
  }

  if (*frame_type != kFrameSecure) {
    ++stats_.malformed_frames;
    return;
  }
  auto session_id = r.ReadU64();
  auto seq = r.ReadU64();
  auto flags = r.ReadU8();
  auto ciphertext = r.ReadLengthPrefixed();
  auto mac = r.ReadLengthPrefixed();
  if (!session_id.ok() || !seq.ok() || !flags.ok() || !ciphertext.ok() || !mac.ok()) {
    ++stats_.malformed_frames;
    return;
  }

  auto pair_it = session_by_id_.find(*session_id);
  if (pair_it == session_by_id_.end()) {
    ++stats_.unknown_session;
    return;
  }
  Session& session = sessions_.at(pair_it->second);

  Bytes expected_input =
      MacInput(*session_id, *seq, delivery.src, delivery.dst, *flags, *ciphertext);
  if (!VerifyHmacSha256(session.key, expected_input, *mac)) {
    ++stats_.mac_failures;
    GLOG_WARN << "MAC verification failed on frame "
              << sim::ToString(delivery.src) << " -> "
              << sim::ToString(delivery.dst) << " (tampered or forged)";
    return;
  }

  // Replay protection: per direction, `last_accepted` holds one past the highest
  // sequence number accepted so far (0 = nothing accepted yet). Frames at or above it
  // are fresh; anything below is a replay or stale reordering.
  uint64_t& last = session.last_accepted[delivery.src.node];
  if (*seq < last) {
    ++stats_.replay_rejects;
    return;
  }
  last = *seq + 1;

  Bytes plaintext = std::move(*ciphertext);
  if (*flags & kFlagEncrypted) {
    uint64_t nonce = *seq * 2 + (delivery.src.node < delivery.dst.node ? 0 : 1);
    ApplyKeystream(session.key, nonce, &plaintext);
  }

  PrincipalId peer = kAnonymous;
  if (auto it = session.principals.find(delivery.src.node);
      it != session.principals.end()) {
    peer = it->second;
  }
  // Pin the handler: it may unregister its own port mid-call, which would
  // destroy the std::function we are executing.
  std::shared_ptr<sim::TransportHandler> handler = handler_it->second;
  (*handler)(sim::TransportDelivery{delivery.src, delivery.dst,
                                    std::move(plaintext), peer,
                                    /*integrity_protected=*/true});
}

}  // namespace globe::sec
