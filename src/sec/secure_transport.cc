#include "src/sec/secure_transport.h"

#include "src/sec/cipher.h"
#include "src/util/hmac.h"
#include "src/util/log.h"
#include "src/util/serial.h"

namespace globe::sec {

namespace {
constexpr uint8_t kVersion = 1;
constexpr uint8_t kFramePlain = 0;
constexpr uint8_t kFrameSecure = 1;
constexpr uint8_t kFlagEncrypted = 0x01;
// Port 1 receives the synthetic handshake flights; nothing listens there, so the
// bytes are charged to the network's traffic counters and then discarded.
constexpr uint16_t kHandshakeSinkPort = 1;

// The MAC input header: everything but the ciphertext bytes themselves. The
// streaming path feeds this scratch header and then the ciphertext span into
// the session's HMAC midstate — same MAC bytes as the legacy concatenation,
// without materialising the concatenation.
void WriteMacHeader(ByteWriter* w, uint64_t session_id, uint64_t seq,
                    const sim::Endpoint& src, const sim::Endpoint& dst, uint8_t flags,
                    uint64_t ciphertext_len) {
  w->Reset();
  w->WriteU64(session_id);
  w->WriteU64(seq);
  w->WriteU32(src.node);
  w->WriteU16(src.port);
  w->WriteU32(dst.node);
  w->WriteU16(dst.port);
  w->WriteU8(flags);
  w->WriteVarint(ciphertext_len);
}

// Legacy one-shot MAC input (VerifyMode::kPerFrame): one concatenated buffer,
// ciphertext copy included — the per-frame cost the batched mode amortizes away.
Bytes MacInput(uint64_t session_id, uint64_t seq, const sim::Endpoint& src,
               const sim::Endpoint& dst, uint8_t flags, ByteSpan ciphertext) {
  ByteWriter w;
  w.WriteU64(session_id);
  w.WriteU64(seq);
  w.WriteU32(src.node);
  w.WriteU16(src.port);
  w.WriteU32(dst.node);
  w.WriteU16(dst.port);
  w.WriteU8(flags);
  w.WriteLengthPrefixed(ciphertext);
  return w.Take();
}
}  // namespace

SecureTransport::SecureTransport(sim::Transport* inner, const KeyRegistry* registry,
                                 CryptoProfile profile)
    : inner_(inner),
      registry_(registry),
      profile_(profile),
      rng_(0x5ec43a11),
      alive_(std::make_shared<bool>(true)) {}

SecureTransport::~SecureTransport() { *alive_ = false; }

void SecureTransport::SetNodeCredential(sim::NodeId node, Credential credential) {
  credentials_[node] = std::move(credential);
}

void SecureTransport::RegisterPort(sim::NodeId node, uint16_t port,
                                   sim::TransportHandler handler) {
  handlers_[{node, port}] = std::make_shared<sim::TransportHandler>(std::move(handler));
  inner_->RegisterPort(node, port,
                       [this](const sim::TransportDelivery& d) { OnRawDelivery(d); });
}

void SecureTransport::UnregisterPort(sim::NodeId node, uint16_t port) {
  handlers_.erase({node, port});
  inner_->UnregisterPort(node, port);
}

void SecureTransport::ResetChannel(sim::NodeId a, sim::NodeId b) {
  auto it = sessions_.find(MakePair(a, b));
  if (it != sessions_.end()) {
    session_by_id_.erase(it->second.id);
    sessions_.erase(it);
  }
}

SecureTransport::Session* SecureTransport::GetOrEstablish(sim::NodeId src,
                                                           sim::NodeId dst) {
  NodePair pair = MakePair(src, dst);
  auto it = sessions_.find(pair);
  if (it != sessions_.end()) {
    return &it->second;
  }

  ChannelConfig config = policy_ ? policy_(src, dst) : ChannelConfig{};
  Session session;
  session.id = next_session_id_++;
  session.key = rng_.RandomBytes(32);
  session.mac_key = HmacKey(session.key);
  session.config = config;

  // Certificate verification, simulated: the authenticated side(s) must hold the key
  // the registry lists for their claimed principal.
  auto authenticate = [&](sim::NodeId node) -> bool {
    auto cred = credentials_.find(node);
    if (cred == credentials_.end() || !registry_->Verify(cred->second)) {
      return false;
    }
    session.principals[node] = cred->second.id;
    return true;
  };

  // The responder authenticates in both secured modes; the initiator only in mutual.
  if (config.auth != AuthMode::kPlain) {
    if (!authenticate(dst)) {
      ++stats_.auth_failures;
      GLOG_WARN << "handshake failed: node " << dst << " has no valid credential";
      return nullptr;
    }
    if (config.auth == AuthMode::kMutualAuth && !authenticate(src)) {
      ++stats_.auth_failures;
      GLOG_WARN << "handshake failed: initiator node " << src
                << " has no valid credential";
      return nullptr;
    }

    // Charge the handshake: one synthetic 2 KB flight on the wire (so the traffic
    // accounting sees it) plus the round trips and CPU as a delivery floor — no data
    // frame in either direction may arrive before the handshake completes.
    inner_->Send({src, kHandshakeSinkPort}, {dst, kHandshakeSinkPort},
                 Bytes(profile_.handshake_bytes));
    double one_way = inner_->EstimateDeliveryDelayUs(src, dst, 0);
    double ready_at = static_cast<double>(inner_->clock()->Now()) +
                      profile_.handshake_rtts * 2 * one_way + profile_.handshake_cpu_us;
    session.delivery_floor[src] = ready_at;
    session.delivery_floor[dst] = ready_at;
    ++stats_.handshakes;
    stats_.crypto_us += profile_.handshake_cpu_us;
  }

  auto [inserted, _] = sessions_.emplace(pair, std::move(session));
  session_by_id_[inserted->second.id] = pair;
  return &inserted->second;
}

void SecureTransport::Send(const sim::Endpoint& src, const sim::Endpoint& dst,
                           ByteSpan payload) {
  ChannelConfig config = policy_ ? policy_(src.node, dst.node) : ChannelConfig{};

  if (config.auth == AuthMode::kPlain) {
    frame_scratch_.Reset();
    frame_scratch_.WriteU8(kVersion);
    frame_scratch_.WriteU8(kFramePlain);
    frame_scratch_.WriteLengthPrefixed(payload);
    ++stats_.plain_frames_sent;
    inner_->Send(src, dst, frame_scratch_.span());
    return;
  }

  double extra_delay_us = 0;
  Session* session = GetOrEstablish(src.node, dst.node);
  if (session == nullptr) {
    return;  // handshake failed: connection refused, message lost
  }

  uint64_t seq = session->next_seq[src.node]++;
  uint8_t flags = 0;
  ByteSpan ciphertext = payload;
  Bytes encrypted;  // only materialised when the channel encrypts
  double crypto_us = static_cast<double>(payload.size()) * profile_.mac_us_per_byte;
  if (session->config.encrypt) {
    flags |= kFlagEncrypted;
    // Distinct nonces per direction prevent keystream reuse.
    uint64_t nonce = seq * 2 + (src.node < dst.node ? 0 : 1);
    encrypted = ToBytes(payload);
    ApplyKeystream(session->key, nonce, &encrypted);
    ciphertext = encrypted;
    crypto_us += static_cast<double>(encrypted.size()) * profile_.cipher_us_per_byte;
  }
  // Multi-part MAC from the session's precomputed midstates: header scratch +
  // ciphertext span, no concatenation buffer, no key schedule recomputation.
  WriteMacHeader(&mac_scratch_, session->id, seq, src, dst, flags, ciphertext.size());
  Sha256 inner_hash = session->mac_key.Start();
  inner_hash.Update(mac_scratch_.span());
  inner_hash.Update(ciphertext);
  Bytes mac = session->mac_key.Finish(std::move(inner_hash));

  frame_scratch_.Reset();
  frame_scratch_.WriteU8(kVersion);
  frame_scratch_.WriteU8(kFrameSecure);
  frame_scratch_.WriteU64(session->id);
  frame_scratch_.WriteU64(seq);
  frame_scratch_.WriteU8(flags);
  frame_scratch_.WriteLengthPrefixed(ciphertext);
  frame_scratch_.WriteLengthPrefixed(mac);

  // Enforce per-direction FIFO delivery (TCP semantics under TLS): delay the frame
  // until at least the channel's delivery floor, then advance the floor. Crypto CPU
  // and floor padding are charged by holding the frame back on the clock before it
  // enters the inner transport, so the arrival time matches the old model exactly:
  // send time + extra + the inner transport's own delay.
  double base_delay =
      inner_->EstimateDeliveryDelayUs(src.node, dst.node, frame_scratch_.size());
  double now = static_cast<double>(inner_->clock()->Now());
  double delivery_at = now + base_delay + extra_delay_us + crypto_us;
  double& floor = session->delivery_floor[src.node];
  if (delivery_at < floor) {
    extra_delay_us += floor - delivery_at;
    delivery_at = floor;
  }
  floor = delivery_at;

  ++stats_.frames_sent;
  stats_.crypto_us += crypto_us;
  double hold_us = extra_delay_us + crypto_us;
  if (hold_us <= 0) {
    inner_->Send(src, dst, frame_scratch_.span());
    return;
  }
  // Held-back frames outlive the scratch buffer: the closure owns a copy.
  inner_->clock()->ScheduleAfter(
      static_cast<sim::SimTime>(hold_us),
      [this, alive = std::weak_ptr<bool>(alive_), src, dst,
       frame = Bytes(frame_scratch_.data())]() {
        auto a = alive.lock();
        if (!a || !*a) {
          return;
        }
        inner_->Send(src, dst, frame);
      });
}

void SecureTransport::OnRawDelivery(const sim::TransportDelivery& delivery) {
  auto handler_it = handlers_.find({delivery.dst.node, delivery.dst.port});
  if (handler_it == handlers_.end()) {
    return;
  }

  if (delivery.transport_error) {
    // Connection-level failure from the backend: not a frame at all. Forward it
    // untouched so the RPC layer can fail calls towards the lost peer fast.
    std::shared_ptr<sim::TransportHandler> handler = handler_it->second;
    (*handler)(delivery);
    return;
  }

  ByteReader r(delivery.payload);
  auto version = r.ReadU8();
  auto frame_type = r.ReadU8();
  if (!version.ok() || !frame_type.ok() || *version != kVersion) {
    ++stats_.malformed_frames;
    return;
  }

  if (*frame_type == kFramePlain) {
    auto payload = r.ReadLengthPrefixedView();
    if (!payload.ok()) {
      ++stats_.malformed_frames;
      return;
    }
    // Pin the handler: it may unregister its own port mid-call, which would
    // destroy the std::function we are executing. The payload is a sub-view
    // sharing the inner delivery's backing buffer — no copy.
    std::shared_ptr<sim::TransportHandler> handler = handler_it->second;
    (*handler)(sim::TransportDelivery{delivery.src, delivery.dst,
                                      delivery.payload.Share(*payload), kAnonymous,
                                      /*integrity_protected=*/false});
    return;
  }

  if (*frame_type != kFrameSecure) {
    ++stats_.malformed_frames;
    return;
  }
  auto session_id = r.ReadU64();
  auto seq = r.ReadU64();
  auto flags = r.ReadU8();
  auto ciphertext = r.ReadLengthPrefixedView();
  auto mac = r.ReadLengthPrefixedView();
  if (!session_id.ok() || !seq.ok() || !flags.ok() || !ciphertext.ok() || !mac.ok()) {
    ++stats_.malformed_frames;
    return;
  }

  PendingSecureFrame frame{delivery.src,
                           delivery.dst,
                           *session_id,
                           *seq,
                           *flags,
                           delivery.payload.Share(*ciphertext),
                           delivery.payload.Share(*mac)};

  if (verify_mode_ == VerifyMode::kPerFrame) {
    VerifyAndDeliver(frame);
    return;
  }

  // Batched mode: pin the frame's views and verify at the end of the wake, so
  // every frame the backend parsed out of this read shares one flush. The
  // 0-delay event preserves delivery time on both clocks (virtual and real)
  // and fires deterministically, so pinned-seed chaos replays are unaffected.
  pending_.push_back(std::move(frame));
  if (pending_.size() == 1) {
    inner_->clock()->ScheduleAfter(0, [this, alive = std::weak_ptr<bool>(alive_)]() {
      auto a = alive.lock();
      if (!a || !*a) {
        return;
      }
      FlushPending();
    });
  }
}

void SecureTransport::FlushPending() {
  std::vector<PendingSecureFrame> batch;
  batch.swap(pending_);
  if (batch.empty()) {
    return;
  }
  ++stats_.verify_batches;
  stats_.batched_frames += batch.size();
  stats_.max_batch_frames = std::max(stats_.max_batch_frames,
                                     static_cast<uint64_t>(batch.size()));
  for (PendingSecureFrame& frame : batch) {
    VerifyAndDeliver(frame);
  }
}

void SecureTransport::VerifyAndDeliver(PendingSecureFrame& frame) {
  // Re-resolved at verification time: the port may have closed between arrival
  // and a batched flush, which drops the frame exactly like a closed UDP port.
  auto handler_it = handlers_.find({frame.dst.node, frame.dst.port});
  if (handler_it == handlers_.end()) {
    return;
  }
  auto pair_it = session_by_id_.find(frame.session_id);
  if (pair_it == session_by_id_.end()) {
    ++stats_.unknown_session;
    return;
  }
  Session& session = sessions_.at(pair_it->second);

  bool mac_ok;
  if (verify_mode_ == VerifyMode::kPerFrame) {
    // Legacy cost model: rebuild the key schedule and concatenate the MAC
    // input for every frame.
    Bytes expected_input = MacInput(frame.session_id, frame.seq, frame.src, frame.dst,
                                    frame.flags, frame.ciphertext);
    mac_ok = VerifyHmacSha256(session.key, expected_input, frame.mac);
  } else {
    WriteMacHeader(&mac_scratch_, frame.session_id, frame.seq, frame.src, frame.dst,
                   frame.flags, frame.ciphertext.size());
    Sha256 inner_hash = session.mac_key.Start();
    inner_hash.Update(mac_scratch_.span());
    inner_hash.Update(frame.ciphertext);
    mac_ok = session.mac_key.Verify(std::move(inner_hash), frame.mac);
  }
  if (!mac_ok) {
    ++stats_.mac_failures;
    GLOG_WARN << "MAC verification failed on frame " << sim::ToString(frame.src)
              << " -> " << sim::ToString(frame.dst) << " (tampered or forged)";
    return;
  }

  // Replay protection: per direction, `last_accepted` holds one past the highest
  // sequence number accepted so far (0 = nothing accepted yet). Frames at or above it
  // are fresh; anything below is a replay or stale reordering.
  uint64_t& last = session.last_accepted[frame.src.node];
  if (frame.seq < last) {
    ++stats_.replay_rejects;
    return;
  }
  last = frame.seq + 1;

  // Unencrypted channels deliver the ciphertext view itself — zero-copy end to
  // end; decryption is the one true ownership boundary left.
  sim::PayloadView plaintext = frame.ciphertext;
  if (frame.flags & kFlagEncrypted) {
    uint64_t nonce = frame.seq * 2 + (frame.src.node < frame.dst.node ? 0 : 1);
    Bytes decrypted = frame.ciphertext.Copy();
    ApplyKeystream(session.key, nonce, &decrypted);
    plaintext = sim::PayloadView::Own(std::move(decrypted));
  }

  PrincipalId peer = kAnonymous;
  if (auto it = session.principals.find(frame.src.node); it != session.principals.end()) {
    peer = it->second;
  }
  // Pin the handler: it may unregister its own port mid-call, which would
  // destroy the std::function we are executing.
  std::shared_ptr<sim::TransportHandler> handler = handler_it->second;
  (*handler)(sim::TransportDelivery{frame.src, frame.dst, std::move(plaintext), peer,
                                    /*integrity_protected=*/true});
}

}  // namespace globe::sec
