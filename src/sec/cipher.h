// Stream cipher built from SHA-256 in counter mode.
//
// The paper notes TLS buys the GDN confidentiality it does not need (§6.3). To let the
// benchmarks *measure* that, encryption here is real enough to hide plaintext from the
// network eavesdropper while being symmetric (apply twice to decrypt).

#ifndef SRC_SEC_CIPHER_H_
#define SRC_SEC_CIPHER_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace globe::sec {

// XORs `data` in place with the keystream SHA256(key || nonce || counter), counter
// incrementing per 32-byte block. Applying the function twice with the same key and
// nonce restores the original data.
void ApplyKeystream(ByteSpan key, uint64_t nonce, Bytes* data);

}  // namespace globe::sec

#endif  // SRC_SEC_CIPHER_H_
