// Principals, roles and the key registry.
//
// The GDN divides its user community into users, moderators and administrators, with
// maintainers planned (paper §2), and its machines into trusted "GDN hosts" and
// untrusted user machines (§6.2). A Principal models one such identity.
//
// Real Globe planned X.509-style certificates under TLS. Here the trust anchor is a
// KeyRegistry: a table of (principal -> secret key, role) playing the role of the CA.
// An entity proves an identity by holding the key the registry lists for it; the
// HMAC-based "signatures" this enables have the same authorization semantics as
// certificate verification (see DESIGN.md substitution table).

#ifndef SRC_SEC_PRINCIPAL_H_
#define SRC_SEC_PRINCIPAL_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/util/bytes.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace globe::sec {

using PrincipalId = uint64_t;
constexpr PrincipalId kAnonymous = 0;

enum class Role : uint8_t {
  kUser = 0,           // may retrieve packages only
  kModerator = 1,      // may create/update/remove packages
  kAdministrator = 2,  // complete control; hands out moderator privileges
  kMaintainer = 3,     // may manage the contents of specific packages (future work §2)
  kGdnHost = 4,        // a trusted machine: GOS, GLS node, GDN-HTTPD, naming authority
};

std::string_view RoleName(Role role);

struct Principal {
  PrincipalId id = kAnonymous;
  std::string name;
  Role role = Role::kUser;
};

// What an entity actually holds: its claimed identity plus the secret that should
// match the registry. An attacker can fabricate the id but not the key.
struct Credential {
  PrincipalId id = kAnonymous;
  Bytes key;
};

class KeyRegistry {
 public:
  explicit KeyRegistry(uint64_t seed = 0x6c0be5ec);

  // Registers a new principal and returns its credential (id + fresh secret key).
  Credential Register(std::string name, Role role);

  // CA-style verification: does this credential hold the key the registry lists?
  bool Verify(const Credential& credential) const;

  Result<Principal> Find(PrincipalId id) const;
  Result<Role> RoleOf(PrincipalId id) const;
  Result<Bytes> KeyOf(PrincipalId id) const;

  size_t size() const { return principals_.size(); }

 private:
  Rng rng_;
  PrincipalId next_id_ = 1;
  std::map<PrincipalId, Principal> principals_;
  std::map<PrincipalId, Bytes> keys_;
};

}  // namespace globe::sec

#endif  // SRC_SEC_PRINCIPAL_H_
