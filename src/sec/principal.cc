#include "src/sec/principal.h"

namespace globe::sec {

std::string_view RoleName(Role role) {
  switch (role) {
    case Role::kUser:
      return "user";
    case Role::kModerator:
      return "moderator";
    case Role::kAdministrator:
      return "administrator";
    case Role::kMaintainer:
      return "maintainer";
    case Role::kGdnHost:
      return "gdn-host";
  }
  return "?";
}

KeyRegistry::KeyRegistry(uint64_t seed) : rng_(seed) {}

Credential KeyRegistry::Register(std::string name, Role role) {
  PrincipalId id = next_id_++;
  Bytes key = rng_.RandomBytes(32);
  principals_[id] = Principal{id, std::move(name), role};
  keys_[id] = key;
  return Credential{id, std::move(key)};
}

bool KeyRegistry::Verify(const Credential& credential) const {
  auto it = keys_.find(credential.id);
  if (it == keys_.end()) {
    return false;
  }
  return ConstantTimeEqual(it->second, credential.key);
}

Result<Principal> KeyRegistry::Find(PrincipalId id) const {
  auto it = principals_.find(id);
  if (it == principals_.end()) {
    return NotFound("unknown principal " + std::to_string(id));
  }
  return it->second;
}

Result<Role> KeyRegistry::RoleOf(PrincipalId id) const {
  ASSIGN_OR_RETURN(Principal p, Find(id));
  return p.role;
}

Result<Bytes> KeyRegistry::KeyOf(PrincipalId id) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) {
    return NotFound("no key for principal " + std::to_string(id));
  }
  return it->second;
}

}  // namespace globe::sec
