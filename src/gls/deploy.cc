#include "src/gls/deploy.h"

#include <cassert>

namespace globe::gls {

GlsDeployment::GlsDeployment(sim::Transport* transport, sim::Topology* topology,
                             const sec::KeyRegistry* registry,
                             GlsDeploymentOptions options,
                             std::function<void(sim::NodeId)> on_host_created)
    : transport_(transport), topology_(topology) {
  auto count_for = [&](sim::DomainId domain, int depth) {
    if (!options.subnode_count) {
      return 1;
    }
    int count = options.subnode_count(domain, depth);
    return count < 1 ? 1 : count;
  };

  // Pass 1: create every subnode and record the DirectoryRefs.
  for (sim::DomainId domain = 0; domain < topology->num_domains(); ++domain) {
    int depth = topology->DomainDepth(domain);
    int count = count_for(domain, depth);
    DirectoryRef ref;
    for (int i = 0; i < count; ++i) {
      sim::NodeId host = topology->AddNode(
          "gls." + topology->DomainName(domain) + "." + std::to_string(i), domain);
      if (on_host_created) {
        on_host_created(host);
      }
      auto subnode = std::make_unique<DirectorySubnode>(
          transport, host, domain, depth, options.node_options, registry,
          options.rng_seed + domain * 131 + i);
      ref.subnodes.push_back(subnode->endpoint());
      subnodes_.push_back(std::move(subnode));
    }
    directories_[domain] = std::move(ref);
  }

  // Pass 2: wire parents, children and each subnode's view of its own node (the
  // sibling set power-of-two routing and the delete fan-out need).
  for (auto& subnode : subnodes_) {
    sim::DomainId domain = subnode->domain();
    sim::DomainId parent = topology->DomainParent(domain);
    if (parent != sim::kNoDomain) {
      subnode->SetParent(directories_.at(parent));
    }
    for (sim::DomainId child : topology->DomainChildren(domain)) {
      subnode->AddChild(child, directories_.at(child));
    }
    subnode->SetSelf(directories_.at(domain));
  }
}

const DirectoryRef& GlsDeployment::DirectoryFor(sim::DomainId domain) const {
  return directories_.at(domain);
}

const DirectoryRef& GlsDeployment::LeafDirectoryFor(sim::NodeId host) const {
  return directories_.at(topology_->NodeDomain(host));
}

std::unique_ptr<GlsClient> GlsDeployment::MakeClient(sim::NodeId host) const {
  return std::make_unique<GlsClient>(transport_, host, LeafDirectoryFor(host));
}

std::vector<const DirectorySubnode*> GlsDeployment::SubnodesOf(
    sim::DomainId domain) const {
  std::vector<const DirectorySubnode*> out;
  for (const auto& subnode : subnodes_) {
    if (subnode->domain() == domain) {
      out.push_back(subnode.get());
    }
  }
  return out;
}

SubnodeStats GlsDeployment::TotalStats() const {
  SubnodeStats total;
  for (const auto& subnode : subnodes_) {
    const SubnodeStats& s = subnode->stats();
    total.lookups += s.lookups;
    total.found_local += s.found_local;
    total.forwards_up += s.forwards_up;
    total.forwards_down += s.forwards_down;
    total.forwards_sideways += s.forwards_sideways;
    total.inserts += s.inserts;
    total.deletes += s.deletes;
    total.pointer_installs += s.pointer_installs;
    total.pointer_removes += s.pointer_removes;
    total.denied += s.denied;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_invalidations += s.cache_invalidations;
    total.batch_lookups += s.batch_lookups;
    total.batch_inserts += s.batch_inserts;
    total.batch_deletes += s.batch_deletes;
    total.negative_cache_hits += s.negative_cache_hits;
    total.master_claims += s.master_claims;
    total.master_claims_granted += s.master_claims_granted;
    total.lease_renewals += s.lease_renewals;
    total.stale_scrubs += s.stale_scrubs;
    total.insert_invals += s.insert_invals;
  }
  return total;
}

}  // namespace globe::gls
