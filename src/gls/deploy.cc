#include "src/gls/deploy.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace globe::gls {

GlsDeployment::GlsDeployment(sim::Transport* transport, sim::Topology* topology,
                             const sec::KeyRegistry* registry,
                             GlsDeploymentOptions options,
                             std::function<void(sim::NodeId)> on_host_created)
    : transport_(transport),
      topology_(topology),
      registry_(registry),
      options_(std::move(options)),
      on_host_created_(std::move(on_host_created)) {
  auto count_for = [&](sim::DomainId domain, int depth) {
    if (!options_.subnode_count) {
      return 1;
    }
    int count = options_.subnode_count(domain, depth);
    return count < 1 ? 1 : count;
  };

  // Pass 1: create every subnode and record the DirectoryRefs.
  for (sim::DomainId domain = 0; domain < topology->num_domains(); ++domain) {
    int depth = topology->DomainDepth(domain);
    int count = count_for(domain, depth);
    DirectoryRef ref;
    for (int i = 0; i < count; ++i) {
      auto subnode = MakeSubnode(domain, depth, i);
      ref.subnodes.push_back(subnode->endpoint());
      subnodes_.push_back(std::move(subnode));
    }
    directories_[domain] = std::move(ref);
  }

  // Pass 2: wire parents, children and each subnode's view of its own node (the
  // sibling set power-of-two routing and the delete fan-out need).
  for (auto& subnode : subnodes_) {
    sim::DomainId domain = subnode->domain();
    sim::DomainId parent = topology->DomainParent(domain);
    if (parent != sim::kNoDomain) {
      subnode->SetParent(directories_.at(parent));
    }
    for (sim::DomainId child : topology->DomainChildren(domain)) {
      subnode->AddChild(child, directories_.at(child));
    }
    subnode->SetSelf(directories_.at(domain));
  }
}

const DirectoryRef& GlsDeployment::DirectoryFor(sim::DomainId domain) const {
  return directories_.at(domain);
}

const DirectoryRef& GlsDeployment::LeafDirectoryFor(sim::NodeId host) const {
  return directories_.at(topology_->NodeDomain(host));
}

std::unique_ptr<GlsClient> GlsDeployment::MakeClient(sim::NodeId host) const {
  return std::make_unique<GlsClient>(transport_, host, LeafDirectoryFor(host));
}

std::vector<const DirectorySubnode*> GlsDeployment::SubnodesOf(
    sim::DomainId domain) const {
  std::vector<const DirectorySubnode*> out;
  for (const auto& subnode : subnodes_) {
    if (subnode->domain() == domain) {
      out.push_back(subnode.get());
    }
  }
  return out;
}

SubnodeStats GlsDeployment::TotalStats() const {
  SubnodeStats total;
  for (const auto& subnode : subnodes_) {
    const SubnodeStats& s = subnode->stats();
    total.lookups += s.lookups;
    total.found_local += s.found_local;
    total.forwards_up += s.forwards_up;
    total.forwards_down += s.forwards_down;
    total.forwards_sideways += s.forwards_sideways;
    total.inserts += s.inserts;
    total.deletes += s.deletes;
    total.pointer_installs += s.pointer_installs;
    total.pointer_removes += s.pointer_removes;
    total.denied += s.denied;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_invalidations += s.cache_invalidations;
    total.batch_lookups += s.batch_lookups;
    total.batch_inserts += s.batch_inserts;
    total.batch_deletes += s.batch_deletes;
    total.negative_cache_hits += s.negative_cache_hits;
    total.master_claims += s.master_claims;
    total.master_claims_granted += s.master_claims_granted;
    total.lease_renewals += s.lease_renewals;
    total.stale_scrubs += s.stale_scrubs;
    total.insert_invals += s.insert_invals;
    total.lookup_alls += s.lookup_alls;
    total.store_evictions += s.store_evictions;
    total.store_fault_ins += s.store_fault_ins;
    total.store_spilled_bytes += s.store_spilled_bytes;
    total.store_peak_resident += s.store_peak_resident;
  }
  return total;
}

std::unique_ptr<DirectorySubnode> GlsDeployment::MakeSubnode(sim::DomainId domain,
                                                             int depth, int index) {
  sim::NodeId host = topology_->AddNode(
      "gls." + topology_->DomainName(domain) + "." + std::to_string(index), domain);
  if (on_host_created_) {
    on_host_created_(host);
  }
  return std::make_unique<DirectorySubnode>(transport_, host, domain, depth,
                                            options_.node_options, registry_,
                                            options_.rng_seed + domain * 131 + index);
}

void GlsDeployment::SplitDirectoryNode(sim::DomainId domain, int new_subnode_count) {
  // The domain's subnodes in ref order (creation order within the domain).
  std::vector<DirectorySubnode*> members;
  for (const auto& subnode : subnodes_) {
    if (subnode->domain() == domain) {
      members.push_back(subnode.get());
    }
  }
  assert(!members.empty() && "split of a domain with no directory node");
  if (new_subnode_count <= static_cast<int>(members.size())) {
    return;  // splitting only grows a node
  }

  // Drain the node's entire directory state before the hash rule changes.
  std::vector<std::pair<ObjectId, DirectoryEntry>> entries;
  std::vector<std::pair<ObjectId, DirectorySubnode::OwnerRecord>> owners;
  for (DirectorySubnode* member : members) {
    for (auto& item : member->ExportEntries()) {
      entries.push_back(std::move(item));
    }
    for (auto& item : member->ExportOwners()) {
      owners.push_back(std::move(item));
    }
    member->ClearDirectoryState();
  }

  // Grow the subnode set and rebuild the ref.
  int depth = topology_->DomainDepth(domain);
  for (int i = static_cast<int>(members.size()); i < new_subnode_count; ++i) {
    auto subnode = MakeSubnode(domain, depth, i);
    members.push_back(subnode.get());
    subnodes_.push_back(std::move(subnode));
  }
  DirectoryRef ref;
  for (DirectorySubnode* member : members) {
    ref.subnodes.push_back(member->endpoint());
  }
  directories_[domain] = ref;

  // Redistribute by the new hash rule.
  for (auto& [oid, entry] : entries) {
    members[ref.SubnodeIndex(oid)]->ImportEntry(oid, std::move(entry));
  }
  for (const auto& [oid, record] : owners) {
    members[ref.SubnodeIndex(oid)]->ImportOwner(oid, record);
  }

  // Rewire every ref that names this node: the members' own parent/children/
  // self views, the parent node's child ref, and the children's parent refs.
  sim::DomainId parent = topology_->DomainParent(domain);
  auto children = topology_->DomainChildren(domain);
  for (DirectorySubnode* member : members) {
    if (parent != sim::kNoDomain) {
      member->SetParent(directories_.at(parent));
    }
    for (sim::DomainId child : children) {
      member->AddChild(child, directories_.at(child));
    }
    member->SetSelf(ref);
  }
  for (const auto& subnode : subnodes_) {
    if (parent != sim::kNoDomain && subnode->domain() == parent) {
      subnode->AddChild(domain, ref);
    }
    for (sim::DomainId child : children) {
      if (subnode->domain() == child) {
        subnode->SetParent(ref);
      }
    }
  }
}

int GlsDeployment::SplitOverloadedNodes(size_t max_entries_per_subnode) {
  // Measure first, then split: a split changes the subnode set it iterates.
  std::vector<std::pair<sim::DomainId, int>> to_split;
  std::map<sim::DomainId, std::pair<size_t, int>> fullest;  // domain -> (max, count)
  for (const auto& subnode : subnodes_) {
    auto& [max_entries, count] = fullest[subnode->domain()];
    max_entries = std::max(max_entries, subnode->TotalEntries());
    ++count;
  }
  for (const auto& [domain, load] : fullest) {
    if (load.first > max_entries_per_subnode) {
      to_split.push_back({domain, load.second * 2});
    }
  }
  for (const auto& [domain, new_count] : to_split) {
    SplitDirectoryNode(domain, new_count);
  }
  return static_cast<int>(to_split.size());
}

}  // namespace globe::gls
