#include "src/gls/cache.h"

#include <algorithm>

namespace globe::gls {

const LookupCache::Entry* LookupCache::Get(const ObjectId& oid, sim::SimTime now) {
  auto it = entries_.find(oid);
  if (it == entries_.end()) {
    return nullptr;
  }
  if (it->second.expires_at <= now) {
    entries_.erase(it);
    return nullptr;
  }
  return &it->second;
}

LookupCache::Entry* LookupCache::Install(const ObjectId& oid, sim::SimTime now,
                                         sim::SimTime ttl) {
  if (max_entries_ == 0) {
    return nullptr;
  }
  if (auto it = quarantined_.find(oid); it != quarantined_.end()) {
    if (now < it->second) {
      return nullptr;  // a recent invalidation outranks this (possibly stale) answer
    }
    quarantined_.erase(it);
  }
  if (entries_.count(oid) == 0 && entries_.size() >= max_entries_) {
    EvictOne();
  }
  Entry& entry = entries_[oid];
  entry.expires_at = now + ttl;
  order_.emplace_back(oid, entry.expires_at);
  if (order_.size() > 2 * max_entries_) {
    PruneOrder();
  }
  PruneQuarantine(now);
  return &entry;
}

void LookupCache::Put(const ObjectId& oid, std::vector<ContactAddress> addresses,
                      int32_t found_depth, sim::SimTime now) {
  if (addresses.empty()) {
    return;
  }
  Entry* entry = Install(oid, now, ttl_);
  if (entry == nullptr) {
    return;
  }
  entry->addresses = std::move(addresses);
  entry->found_depth = found_depth;
  entry->negative = 0;
}

void LookupCache::PutNegative(const ObjectId& oid, sim::SimTime now) {
  Entry* entry = Install(oid, now, negative_ttl_);
  if (entry == nullptr) {
    return;
  }
  entry->addresses.clear();
  entry->found_depth = 0;
  entry->negative = 1;
}

bool LookupCache::Invalidate(const ObjectId& oid, sim::SimTime now, bool quarantine) {
  if (quarantine) {
    quarantined_[oid] = now + kPutQuarantine;
    PruneQuarantine(now);
  }
  return entries_.erase(oid) > 0;
}

void LookupCache::Clear() {
  entries_.clear();
  order_.clear();
  quarantined_.clear();
}

void LookupCache::EvictOne() {
  // Skip queue references that no longer match a live entry (refreshed or
  // invalidated since they were enqueued).
  while (!order_.empty()) {
    const auto& [oid, expires_at] = order_.front();
    auto it = entries_.find(oid);
    if (it != entries_.end() && it->second.expires_at == expires_at) {
      entries_.erase(it);
      order_.pop_front();
      return;
    }
    order_.pop_front();
  }
  // Queue out of sync (only possible right after Restore of a corrupt mix):
  // drop an arbitrary entry rather than grow without bound.
  if (!entries_.empty()) {
    entries_.erase(entries_.begin());
  }
}

void LookupCache::PruneOrder() {
  std::deque<std::pair<ObjectId, sim::SimTime>> live;
  for (const auto& [oid, expires_at] : order_) {
    auto it = entries_.find(oid);
    if (it != entries_.end() && it->second.expires_at == expires_at) {
      live.push_back({oid, expires_at});
    }
  }
  order_ = std::move(live);
}

void LookupCache::PruneQuarantine(sim::SimTime now) {
  if (quarantined_.size() <= std::max<size_t>(max_entries_, 64)) {
    return;
  }
  for (auto it = quarantined_.begin(); it != quarantined_.end();) {
    it = it->second <= now ? quarantined_.erase(it) : std::next(it);
  }
}

void LookupCache::Serialize(ByteWriter* writer) const {
  writer->WriteVarint(entries_.size());
  for (const auto& [oid, entry] : entries_) {
    oid.Serialize(writer);
    writer->WriteVarint(entry.addresses.size());
    for (const auto& address : entry.addresses) {
      address.Serialize(writer);
    }
    writer->WriteU32(static_cast<uint32_t>(entry.found_depth));
    writer->WriteU64(entry.expires_at);
    writer->WriteU8(entry.negative);
  }
}

Status LookupCache::Restore(ByteReader* reader) {
  // Bounded against corrupt input; a count merely exceeding the current capacity
  // (e.g. the cache was reconfigured smaller across the reboot) is handled by
  // truncation below — a droppable cache must never fail a subnode's recovery of
  // its authoritative state.
  constexpr uint64_t kMaxRestoredEntries = 100000;
  std::map<ObjectId, Entry> entries;
  ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
  if (count > kMaxRestoredEntries) {
    return InvalidArgument("implausible cached entry count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(reader));
    ASSIGN_OR_RETURN(uint64_t num_addresses, reader->ReadVarint());
    Entry entry;
    for (uint64_t j = 0; j < num_addresses; ++j) {
      ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(reader));
      entry.addresses.push_back(address);
    }
    ASSIGN_OR_RETURN(uint32_t found_depth, reader->ReadU32());
    entry.found_depth = static_cast<int32_t>(found_depth);
    ASSIGN_OR_RETURN(entry.expires_at, reader->ReadU64());
    ASSIGN_OR_RETURN(entry.negative, reader->ReadU8());
    entries[oid] = std::move(entry);
  }
  // Rebuild the eviction queue in expiry order; when the checkpoint holds more
  // entries than this cache's capacity, keep the ones furthest from expiry.
  std::vector<std::pair<sim::SimTime, ObjectId>> by_expiry;
  for (const auto& [oid, entry] : entries) {
    by_expiry.emplace_back(entry.expires_at, oid);
  }
  std::sort(by_expiry.begin(), by_expiry.end());
  size_t drop = by_expiry.size() > max_entries_ ? by_expiry.size() - max_entries_ : 0;
  for (size_t i = 0; i < drop; ++i) {
    entries.erase(by_expiry[i].second);
  }
  entries_ = std::move(entries);
  order_.clear();
  for (size_t i = drop; i < by_expiry.size(); ++i) {
    order_.emplace_back(by_expiry[i].second, by_expiry[i].first);
  }
  quarantined_.clear();
  return OkStatus();
}

}  // namespace globe::gls
