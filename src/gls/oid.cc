#include "src/gls/oid.h"

#include "src/util/bytes.h"

namespace globe::gls {

ObjectId ObjectId::Generate(Rng* rng) {
  ObjectId oid;
  Bytes random = rng->RandomBytes(kSize);
  std::copy(random.begin(), random.end(), oid.bytes_.begin());
  return oid;
}

Result<ObjectId> ObjectId::FromHex(std::string_view hex) {
  Bytes decoded;
  if (!HexDecode(hex, &decoded) || decoded.size() != kSize) {
    return InvalidArgument("bad object identifier hex: " + std::string(hex));
  }
  ObjectId oid;
  std::copy(decoded.begin(), decoded.end(), oid.bytes_.begin());
  return oid;
}

std::string ObjectId::ToHex() const {
  return HexEncode(ByteSpan(bytes_.data(), bytes_.size()));
}

bool ObjectId::IsNil() const {
  for (uint8_t b : bytes_) {
    if (b != 0) {
      return false;
    }
  }
  return true;
}

uint64_t ObjectId::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes_) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ObjectId::Serialize(ByteWriter* writer) const {
  writer->WriteBytes(ByteSpan(bytes_.data(), bytes_.size()));
}

Result<ObjectId> ObjectId::Deserialize(ByteReader* reader) {
  ASSIGN_OR_RETURN(Bytes bytes, reader->ReadBytes(kSize));
  ObjectId oid;
  std::copy(bytes.begin(), bytes.end(), oid.bytes_.begin());
  return oid;
}

std::string_view ReplicaRoleName(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kMaster:
      return "master";
    case ReplicaRole::kSlave:
      return "slave";
    case ReplicaRole::kCache:
      return "cache";
  }
  return "?";
}

void ContactAddress::Serialize(ByteWriter* writer) const {
  writer->WriteU32(endpoint.node);
  writer->WriteU16(endpoint.port);
  writer->WriteU16(protocol);
  writer->WriteU8(static_cast<uint8_t>(role));
}

Result<ContactAddress> ContactAddress::Deserialize(ByteReader* reader) {
  ContactAddress address;
  ASSIGN_OR_RETURN(address.endpoint.node, reader->ReadU32());
  ASSIGN_OR_RETURN(address.endpoint.port, reader->ReadU16());
  ASSIGN_OR_RETURN(address.protocol, reader->ReadU16());
  ASSIGN_OR_RETURN(uint8_t role, reader->ReadU8());
  address.role = static_cast<ReplicaRole>(role);
  return address;
}

std::string ContactAddress::ToString() const {
  return sim::ToString(endpoint) + "/proto" + std::to_string(protocol) + "/" +
         std::string(ReplicaRoleName(role));
}

}  // namespace globe::gls
