#include "src/gls/subnode_store.h"

#include <cassert>

namespace globe::gls {

namespace {
// Cap for deserialized counts: a corrupt cold blob must not drive unbounded
// allocation (same discipline as the wire decoders in directory.cc).
constexpr uint64_t kMaxEntryItems = 1000000;
}  // namespace

Bytes SubnodeStore::SerializeEntry(const DirectoryEntry& entry) {
  ByteWriter w;
  w.WriteVarint(entry.addresses.size());
  for (const ContactAddress& address : entry.addresses) {
    address.Serialize(&w);
  }
  w.WriteVarint(entry.pointers.size());
  for (sim::DomainId domain : entry.pointers) {
    w.WriteU32(domain);
  }
  return w.Take();
}

Result<DirectoryEntry> SubnodeStore::DeserializeEntry(ByteSpan data) {
  ByteReader r(data);
  DirectoryEntry entry;
  ASSIGN_OR_RETURN(uint64_t address_count, r.ReadVarint());
  if (address_count > kMaxEntryItems) {
    return InvalidArgument("implausible spilled address count");
  }
  entry.addresses.reserve(address_count);
  for (uint64_t i = 0; i < address_count; ++i) {
    ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
    entry.addresses.push_back(std::move(address));
  }
  ASSIGN_OR_RETURN(uint64_t pointer_count, r.ReadVarint());
  if (pointer_count > kMaxEntryItems) {
    return InvalidArgument("implausible spilled pointer count");
  }
  for (uint64_t i = 0; i < pointer_count; ++i) {
    ASSIGN_OR_RETURN(uint32_t domain, r.ReadU32());
    entry.pointers.insert(domain);
  }
  return entry;
}

SubnodeStore::HotEntry& SubnodeStore::InsertHot(const ObjectId& oid,
                                                DirectoryEntry entry) {
  lru_.push_front(oid);
  HotEntry& hot = hot_[oid];
  hot.entry = std::move(entry);
  hot.lru_it = lru_.begin();
  return hot;
}

void SubnodeStore::EnforceCapacity() {
  if (capacity_ == 0) {
    return;
  }
  while (hot_.size() > capacity_) {
    const ObjectId victim = lru_.back();
    auto it = hot_.find(victim);
    // Empty entries are dropped rather than spilled: they carry no state and
    // must not resurrect as registrations.
    if (!it->second.entry.Empty()) {
      Bytes blob = SerializeEntry(it->second.entry);
      spilled_bytes_ += blob.size();
      cold_[victim] = std::move(blob);
      ++evictions_;
    }
    hot_.erase(it);
    lru_.pop_back();
  }
}

DirectoryEntry& SubnodeStore::Mutable(const ObjectId& oid) {
  if (auto it = hot_.find(oid); it != hot_.end()) {
    Touch(it->second);
    return it->second.entry;
  }
  DirectoryEntry entry;
  if (auto cold_it = cold_.find(oid); cold_it != cold_.end()) {
    // Fault-in: the cold blob was produced by SerializeEntry, so a decode
    // failure is a programming error, not input corruption.
    Result<DirectoryEntry> decoded = DeserializeEntry(cold_it->second);
    assert(decoded.ok() && "corrupt spilled directory entry");
    if (decoded.ok()) {
      entry = std::move(*decoded);
    }
    cold_.erase(cold_it);
    ++fault_ins_;
  }
  HotEntry& hot = InsertHot(oid, std::move(entry));
  // The fresh entry sits at the LRU front, so enforcing capacity now can only
  // evict *other* entries — the returned reference stays valid. Peak resident
  // is sampled after enforcement: it reports the bound the store actually held.
  EnforceCapacity();
  peak_resident_ = std::max(peak_resident_, hot_.size());
  return hot.entry;
}

DirectoryEntry* SubnodeStore::Find(const ObjectId& oid) {
  if (auto it = hot_.find(oid); it != hot_.end()) {
    Touch(it->second);
    return &it->second.entry;
  }
  if (cold_.count(oid) == 0) {
    return nullptr;
  }
  return &Mutable(oid);
}

const DirectoryEntry* SubnodeStore::Peek(const ObjectId& oid,
                                         DirectoryEntry* scratch) const {
  if (auto it = hot_.find(oid); it != hot_.end()) {
    return &it->second.entry;
  }
  if (auto cold_it = cold_.find(oid); cold_it != cold_.end()) {
    Result<DirectoryEntry> decoded = DeserializeEntry(cold_it->second);
    assert(decoded.ok() && "corrupt spilled directory entry");
    if (!decoded.ok()) {
      return nullptr;
    }
    *scratch = std::move(*decoded);
    return scratch;
  }
  return nullptr;
}

void SubnodeStore::Erase(const ObjectId& oid) {
  if (auto it = hot_.find(oid); it != hot_.end()) {
    lru_.erase(it->second.lru_it);
    hot_.erase(it);
    return;
  }
  cold_.erase(oid);
}

void SubnodeStore::ForEachSorted(
    const std::function<void(const ObjectId&, const DirectoryEntry&)>& fn) const {
  // Merge a sorted view of the hot keys with the (already sorted) cold map.
  std::vector<const ObjectId*> hot_keys;
  hot_keys.reserve(hot_.size());
  for (const auto& [oid, unused] : hot_) {
    hot_keys.push_back(&oid);
  }
  std::sort(hot_keys.begin(), hot_keys.end(),
            [](const ObjectId* a, const ObjectId* b) { return *a < *b; });

  auto cold_it = cold_.begin();
  size_t hot_idx = 0;
  while (hot_idx < hot_keys.size() || cold_it != cold_.end()) {
    bool take_hot =
        cold_it == cold_.end() ||
        (hot_idx < hot_keys.size() && *hot_keys[hot_idx] < cold_it->first);
    if (take_hot) {
      const ObjectId& oid = *hot_keys[hot_idx++];
      fn(oid, hot_.at(oid).entry);
    } else {
      Result<DirectoryEntry> decoded = DeserializeEntry(cold_it->second);
      assert(decoded.ok() && "corrupt spilled directory entry");
      if (decoded.ok()) {
        fn(cold_it->first, *decoded);
      }
      ++cold_it;
    }
  }
}

void SubnodeStore::Clear() {
  hot_.clear();
  lru_.clear();
  cold_.clear();
}

}  // namespace globe::gls
