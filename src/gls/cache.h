// TTL'd lookup cache for Globe Location Service directory subnodes.
//
// Lookups climb the directory tree and then descend a forwarding-pointer chain to
// the node holding a contact address (paper §3.5). Under GDN-scale read traffic the
// mid-tree nodes re-answer the same hot OIDs over and over; each subnode therefore
// keeps a small cache of the contact addresses its *descents* returned. A hit lets
// the node answer immediately instead of re-walking the pointer chain, cutting the
// descent half of the lookup's directory-to-directory hops.
//
// Scope and safety rules (enforced by DirectorySubnode, documented here):
//   - populated only on lookup descent, i.e. only at nodes that hold a forwarding
//     pointer for the OID — exactly the nodes a deregistration chain visits,
//   - only authoritative answers are stored (never a descendant's cache hit, which
//     would restart the TTL and compound staleness),
//   - consulted only for lookups that set allow_cached, never for mutations,
//   - invalidated by every mutation touching the OID at this node (gls.insert,
//     gls.delete, gls.install_ptr, gls.remove_ptr and the gls.inval_cache chain a
//     delete sends towards the root); an invalidation also quarantines the OID
//     briefly so a lookup response that was already in flight when the delete ran
//     cannot re-install the deregistered address behind it,
//   - entries additionally expire after a TTL, bounding staleness across subnodes
//     that no mutation chain visits.

#ifndef SRC_GLS_CACHE_H_
#define SRC_GLS_CACHE_H_

#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/gls/oid.h"
#include "src/sim/clock.h"

namespace globe::gls {

class LookupCache {
 public:
  struct Entry {
    std::vector<ContactAddress> addresses;
    int32_t found_depth = 0;
    sim::SimTime expires_at = 0;
    // Negative entry: a recent climb for this OID came back NotFound. Served
    // (as NotFound) only to allow_cached lookups, so repeat misses for deleted
    // or unknown OIDs stop at the first cache instead of re-climbing to the
    // root. Short-TTL'd: an OID registered elsewhere becomes visible here at
    // the latest when the negative entry expires (insert/install_ptr chains
    // invalidate the nodes they touch immediately).
    uint8_t negative = 0;
  };

  // Default TTL for negative entries: long enough to absorb a miss storm,
  // short enough that a registration the local mutation chains never touch
  // becomes visible quickly. Re-caching a parent's negative answer restarts
  // this TTL, so worst-case staleness is bounded by depth x negative TTL.
  static constexpr sim::SimTime kDefaultNegativeTtl = 5 * sim::kSecond;

  // How long Put refuses to re-admit an OID after Invalidate. Sized to outlive any
  // response that was in flight when the invalidation ran: with per-request
  // service-time queueing a response can trail its request by up to the issuing
  // call's deadline (default 30 s), not just the network delivery delay. A descent
  // request issued *after* the invalidating delete sees post-delete (safe) state
  // anyway, and only deregistration paths quarantine, so this long window never
  // blocks the hot insert -> lookup -> cache sequence.
  static constexpr sim::SimTime kPutQuarantine = 30 * sim::kSecond;

  LookupCache(sim::SimTime ttl, size_t max_entries,
              sim::SimTime negative_ttl = kDefaultNegativeTtl)
      : ttl_(ttl), negative_ttl_(negative_ttl), max_entries_(max_entries) {}

  // The live entry for `oid`, or nullptr. An expired entry is erased on access.
  const Entry* Get(const ObjectId& oid, sim::SimTime now);

  // Stores (or refreshes) the entry for `oid` with expiry now + ttl. No-op while
  // the OID is quarantined by a recent Invalidate. Evicts the entry closest to
  // expiry when full.
  void Put(const ObjectId& oid, std::vector<ContactAddress> addresses,
           int32_t found_depth, sim::SimTime now);

  // Stores a negative (NotFound) entry with expiry now + negative_ttl. Respects
  // the same quarantine and capacity rules as Put; overwrites any positive
  // entry (the authoritative chain just said the OID is gone).
  void PutNegative(const ObjectId& oid, sim::SimTime now);

  // Drops the entry for `oid`. With `quarantine` set it additionally blocks Put
  // for the OID until now + kPutQuarantine — required on deregistration paths,
  // where an in-flight pre-delete answer must not re-install the removed address;
  // insert-driven invalidation skips it (re-caching a pre-insert answer is only
  // TTL-bounded nearness staleness). Returns true if an entry was present.
  bool Invalidate(const ObjectId& oid, sim::SimTime now, bool quarantine = true);

  void Clear();
  size_t size() const { return entries_.size(); }
  sim::SimTime ttl() const { return ttl_; }
  sim::SimTime negative_ttl() const { return negative_ttl_; }

  // Persistence: cache contents ride along in DirectorySubnode::SaveState so a
  // rebooted subnode resumes warm. Expiry times are absolute simulated time;
  // quarantines are transient and not persisted.
  void Serialize(ByteWriter* writer) const;
  Status Restore(ByteReader* reader);

 private:
  void EvictOne();
  // Shared tail of Put/PutNegative: quarantine and capacity checks, then the
  // entry install and order-queue upkeep.
  Entry* Install(const ObjectId& oid, sim::SimTime now, sim::SimTime ttl);

  sim::SimTime ttl_;
  sim::SimTime negative_ttl_;
  size_t max_entries_;
  std::map<ObjectId, Entry> entries_;
  // Insertion order approximates expiry order (exactly, before negative entries
  // existed; their shorter TTL can put a sooner-expiring entry behind a later
  // one), so the front of this queue is the eviction victim. Refreshed or
  // invalidated entries leave stale queue references behind; EvictOne skips them
  // and PruneOrder() compacts the queue when they accumulate.
  std::deque<std::pair<ObjectId, sim::SimTime>> order_;
  // OID -> time until which Put must refuse it (see kPutQuarantine).
  std::map<ObjectId, sim::SimTime> quarantined_;

  void PruneOrder();
  void PruneQuarantine(sim::SimTime now);
};

}  // namespace globe::gls

#endif  // SRC_GLS_CACHE_H_
